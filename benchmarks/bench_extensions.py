"""Extension benches: energy comparison and depth-first memory study.

Neither appears in the paper's evaluation, but both follow directly
from its motivation: heterogeneous acceleration is an *energy* play
(Sec. I), and depth-first execution (MCUNetV2 [11]) is the related-work
alternative for fitting activation memory.
"""

import pytest

from repro.eval.harness import CONFIGS, deploy
from repro.eval.tables import format_table
from repro.extensions import (
    analyze_depth_first, chain_from_graph, layer_by_layer_peak_bytes,
)
from repro.frontend.modelzoo import MLPERF_TINY, mobilenet_v1
from repro.patterns import default_specs, partition
from repro.soc import DianaSoC, energy_by_target_uj, execution_energy_uj


@pytest.fixture(scope="module")
def energy_table():
    params = DianaSoC().params
    rows = []
    values = {}
    for model in sorted(MLPERF_TINY):
        row = [model]
        for config in CONFIGS:
            r = deploy(model, config, verify=False)
            if r.oom or r.execution is None:
                row.append("OoM")
                continue
            uj = execution_energy_uj(r.execution.perf, params)
            values[(model, config)] = uj
            row.append(f"{uj:.1f}")
        rows.append(row)
    return rows, values


def test_energy_per_inference(report, energy_table, benchmark):
    rows, values = energy_table
    benchmark(lambda: deploy("resnet", "digital", verify=False))
    report(format_table(
        ["model"] + [f"{c} uJ" for c in CONFIGS], rows,
        title="Extension — energy per inference (model estimate, uJ)"))
    # the motivation claim: accelerators cut energy by >1 order of
    # magnitude vs the CPU
    for model in MLPERF_TINY:
        cpu = values.get((model, "cpu-tvm"))
        if cpu is None:
            continue
        assert cpu / values[(model, "digital")] > 10


def test_energy_analog_advantage(energy_table):
    _, values = energy_table
    # where the analog core carries a MAC-heavy workload (ResNet), its
    # per-MAC advantage wins even though it is *slower* end-to-end; on
    # the MAC-light ToyAdmos, static energy erodes most of the gain
    assert values[("resnet", "analog")] < values[("resnet", "digital")]
    assert values[("toyadmos", "analog")] < 2 * values[("toyadmos", "digital")]


def test_depth_first_memory_study(report):
    graph = partition(mobilenet_v1(), default_specs())
    chain = chain_from_graph(graph, max_len=3)
    baseline = layer_by_layer_peak_bytes(chain)
    rows = []
    for grid in ((1, 1), (2, 2), (4, 4), (8, 8)):
        plan = analyze_depth_first(chain, grid)
        rows.append([
            f"{grid[0]}x{grid[1]}",
            f"{plan.patch_buffer_bytes / 1024:.1f}",
            f"{plan.peak_bytes / 1024:.1f}",
            f"{plan.recompute_factor:.3f}x",
        ])
    report(format_table(
        ["patch grid", "patch buffers kB", "peak incl. I/O kB", "recompute"],
        rows,
        title=f"Extension — depth-first execution of MobileNet's first "
              f"{len(chain)} convs\n(layer-by-layer peak: "
              f"{baseline / 1024:.1f} kB of intermediates)"))
    plan = analyze_depth_first(chain, (4, 4))
    assert plan.patch_buffer_bytes < baseline
    assert plan.recompute_factor < 2.0
