"""Fleet serving benchmark: tail latency under load and under chaos.

Measures the supervised multi-process :class:`~repro.serve.ServingFleet`
on resnet8 (fast execution mode, 2 workers) and writes
``BENCH_fleet.json``:

* **latency vs. offered load** — closed-loop client sweep (1, 2, 4, 8
  clients), p50/p99/throughput per point, all requests accounted
  (``lost`` must be 0 at every point);
* **single-worker-kill chaos** — the same 4-client load with a
  deterministic fault plan that kills one of the two workers
  mid-run. The fleet must retry the orphaned request, restart the
  worker, and keep the p99 within ``MAX_P99_INFLATION`` (2x) of the
  fault-free 4-client baseline — the headline robustness number.

Runs standalone (``python benchmarks/bench_fleet.py``) and under
pytest (quick sizes, invariant assertions only).
"""

import argparse
import json
import pathlib
import sys
import tempfile

from repro.eval.harness import CONFIGS
from repro.eval.loadgen import run_load
from repro.frontend.modelzoo import MLPERF_TINY
from repro.serve import FaultPlan, FaultRule, FleetConfig, ServingFleet, \
    pack_model
from repro.serve.resilience import RetryPolicy
from repro.soc import DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_fleet.json"
MODEL = "resnet"
CONFIG = "digital"
L1_BUDGET = 16 * 1024  # as in bench_serve: genuinely tiled schedules
WORKERS = 2
CLIENT_SWEEP = (1, 2, 4, 8)
CHAOS_CLIENTS = 4
REQUESTS_PER_CLIENT = 150
MAX_P99_INFLATION = 2.0


class FleetBenchError(AssertionError):
    """A fleet invariant (zero lost, bounded p99) did not hold."""


def _fleet_config(faults=None) -> FleetConfig:
    """Fast-recovery tuning: crash detection and retry backoff well
    under one p99 so a worker kill stays inside the latency budget."""
    return FleetConfig(
        workers=WORKERS, exec_mode="fast", tick_s=0.005,
        restart_base_s=0.02,
        retry=RetryPolicy(max_attempts=4, base_delay_s=0.02,
                          max_delay_s=0.5),
        queue_limit=256, shed_watermark=256, faults=faults)


def _kill_one_worker_plan(nth: int) -> FaultPlan:
    """Deterministic chaos: worker 0's first incarnation dies on its
    ``nth`` request (SIGKILL-like, request in hand)."""
    return FaultPlan(seed=7, rules=(
        FaultRule(kind="crash", worker=0, gen=0, nth=(nth,)),))


def _run_point(path, clients, requests_per_client, faults=None,
               random_inputs=None):
    with ServingFleet(_fleet_config(faults)) as fleet:
        key = fleet.add_deployment(str(path), key="bench")
        if not fleet.wait_ready(key, timeout=120):
            raise FleetBenchError("fleet worker(s) failed to become ready")
        fleet.infer(key, random_inputs, timeout=60)  # warm both workers
        fleet.infer(key, random_inputs, timeout=60)
        load = run_load(fleet, key, random_inputs, clients=clients,
                        requests_per_client=requests_per_client,
                        deadline_s=60.0)
        stats = fleet.stats()[key]
    if load.lost:
        raise FleetBenchError(f"{load.lost} lost request(s) at "
                              f"{clients} client(s)")
    if load.completed + load.failed != load.accepted:
        raise FleetBenchError("accepted requests not fully accounted")
    return load, stats


def run_bench(requests_per_client=REQUESTS_PER_CLIENT, write=True) -> dict:
    from repro.runtime import random_inputs

    precision, soc_kwargs, cfg = CONFIGS[CONFIG]
    graph = MLPERF_TINY[MODEL](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    feeds = random_inputs(graph, seed=0)

    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        path = pathlib.Path(tmp) / "bench.dna"
        pack_model(graph, soc, cfg.with_overrides(l1_budget=L1_BUDGET),
                   str(path), validate_runs=1)

        sweep = []
        for clients in CLIENT_SWEEP:
            load, _ = _run_point(path, clients, requests_per_client,
                                 random_inputs=feeds)
            lat = load.latency_summary()
            sweep.append({
                "clients": clients,
                "requests": load.issued,
                "completed": load.completed,
                "lost": load.lost,
                "throughput_rps": round(load.throughput_rps, 1),
                "p50_ms": lat["p50_ms"],
                "p99_ms": lat["p99_ms"],
            })

        # chaos: kill one of the two workers mid-load at 4 clients
        nth = max(requests_per_client * CHAOS_CLIENTS // (2 * WORKERS), 2)
        chaos_load, chaos_stats = _run_point(
            path, CHAOS_CLIENTS, requests_per_client,
            faults=_kill_one_worker_plan(nth), random_inputs=feeds)
        if chaos_stats["restarts"] < 1:
            raise FleetBenchError("chaos run killed no worker")

    base = next(p for p in sweep if p["clients"] == CHAOS_CLIENTS)
    chaos_lat = chaos_load.latency_summary()
    inflation = chaos_lat["p99_ms"] / max(base["p99_ms"], 1e-9)
    record = {
        "model": MODEL,
        "config": CONFIG,
        "exec_mode": "fast",
        "workers": WORKERS,
        "requests_per_client": requests_per_client,
        "sweep": sweep,
        "chaos": {
            "clients": CHAOS_CLIENTS,
            "fault": f"kill worker 0 on request {nth}",
            "requests": chaos_load.issued,
            "completed": chaos_load.completed,
            "failed": chaos_load.failed,
            "lost": chaos_load.lost,
            "retried": chaos_stats["retried"],
            "restarts": chaos_stats["restarts"],
            "throughput_rps": round(chaos_load.throughput_rps, 1),
            "p50_ms": chaos_lat["p50_ms"],
            "p99_ms": chaos_lat["p99_ms"],
        },
        "p99_inflation_under_chaos": round(inflation, 3),
        "max_p99_inflation": MAX_P99_INFLATION,
    }
    if write:
        OUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _format(record: dict) -> str:
    lines = [f"fleet bench ({record['model']}8 {record['config']}, "
             f"{record['workers']} workers, fast mode):",
             "  clients   req/s    p50 ms    p99 ms   lost"]
    for p in record["sweep"]:
        lines.append(f"  {p['clients']:>7}  {p['throughput_rps']:>6.1f}  "
                     f"{p['p50_ms']:>8.2f}  {p['p99_ms']:>8.2f}  "
                     f"{p['lost']:>5}")
    c = record["chaos"]
    lines.append(
        f"  chaos ({c['fault']}): {c['throughput_rps']:.1f} req/s  "
        f"p50 {c['p50_ms']:.2f} ms  p99 {c['p99_ms']:.2f} ms  "
        f"lost {c['lost']}  retried {c['retried']}  "
        f"restarts {c['restarts']}")
    lines.append(
        f"  p99 inflation under single-worker kill: "
        f"{record['p99_inflation_under_chaos']:.2f}x "
        f"(budget {record['max_p99_inflation']:.1f}x)")
    return "\n".join(lines)


def test_fleet_latency(report):
    """Quick sizes: the accounting invariants must hold exactly; the
    committed BENCH_fleet.json documents the full-size tail-latency
    margin."""
    record = run_bench(requests_per_client=12, write=False)
    for point in record["sweep"]:
        assert point["lost"] == 0
        assert point["completed"] == point["requests"]
    assert record["chaos"]["lost"] == 0
    assert record["chaos"]["restarts"] >= 1
    report(_format(record))


def main(argv=None) -> int:
    global OUT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests-per-client", type=int,
                        default=REQUESTS_PER_CLIENT)
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    OUT = pathlib.Path(args.out)
    try:
        record = run_bench(requests_per_client=args.requests_per_client)
        if record["p99_inflation_under_chaos"] > MAX_P99_INFLATION:
            raise FleetBenchError(
                f"p99 inflated {record['p99_inflation_under_chaos']:.2f}x "
                f"under chaos (budget {MAX_P99_INFLATION}x)")
    except FleetBenchError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(_format(record))
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
