"""Table II — comparison with SotA tools/platforms at 260 MHz.

Competitor columns (STM32L4R5ZIT6U with TVM / TVM+CMSIS-NN, GAP9 with
GAPflow) are the published MLPerf Tiny v1.0 values the paper also uses;
the HTVM/DIANA-digital column is re-measured on the simulator.

Paper claims checked:
* ~150x faster than STM32+TVM on ResNet,
* ~24x faster than STM32+CMSIS-NN on MobileNet,
* GAP9 + GAPflow (hand-tuned commercial flow) remains faster.
"""

import pytest

from repro.eval.sota import format_table2, run_table2, speedups


@pytest.fixture(scope="module")
def table():
    return run_table2()


def test_table2_regenerate(report, table, benchmark):
    benchmark(lambda: speedups(table))
    report(format_table2(table))
    sp = speedups(table)
    lines = ["Table II headline claims (ours vs paper):"]
    lines.append(f"  ResNet vs STM32+TVM      : {sp['resnet']['stm32-tvm']:6.0f}x (paper ~150x)")
    lines.append(f"  MobileNet vs STM32+CMSIS : {sp['mobilenet']['stm32-cmsis']:6.0f}x (paper ~24x)")
    gap = min(sp[m]["gap9-gapflow"] for m in sp)
    lines.append(f"  GAP9 still faster        : min speed-up {gap:.2f}x (< 1)")
    report("\n".join(lines))


def test_beats_stm32_tvm(table):
    sp = speedups(table)
    assert sp["resnet"]["stm32-tvm"] > 50
    assert all(sp[m]["stm32-tvm"] > 5 for m in sp)


def test_beats_cmsis(table):
    sp = speedups(table)
    assert sp["mobilenet"]["stm32-cmsis"] > 10


def test_gap9_remains_faster(table):
    # paper: GAP9 outperforms HTVM/DIANA on all four benchmarks. Our
    # digital cost model is ~2x optimistic on ResNet (EXPERIMENTS.md),
    # which flips that single cell; the other three hold.
    sp = speedups(table)
    slower_than_gap9 = [m for m in sp if sp[m]["gap9-gapflow"] < 1.0]
    assert len(slower_than_gap9) >= 3
    assert sp["mobilenet"]["gap9-gapflow"] < 1.0
