"""Fig. 5 — single-layer overhead characterization.

Regenerates the figure's series: accelerator-peak vs. full-HTVM-call
throughput for Conv2D / FC / DWConv2D geometries on the digital core
and Conv2D channel/spatial scaling on the analog core.

Paper claims checked (loss = 1 - peak/full):
* analog Conv2D loses ~5.2% on average, as little as 0.51%,
* digital Conv2D loses only a few percent at best (paper: 1.32%),
* the fastest FC layers lose the most (paper: ~54.5%),
* DWConv2D is never more than 20.7% slower, at 3.75 MACs/cycle peak.
"""

import pytest

from repro.eval import fig5
from repro.eval.fig5 import loss_stats


@pytest.fixture(scope="module")
def points():
    return fig5.characterize()


def test_fig5_regenerate(report, points, benchmark):
    benchmark(fig5.characterize, series=["digital_conv_spatial"])
    report(fig5.format_fig5(points))
    stats = loss_stats(points)
    lines = ["Fig. 5 headline losses (ours vs paper):"]
    lines.append(f"  analog conv mean  {stats['analog_conv_channel']['mean']*100:5.2f}%  (paper 5.20%)")
    lines.append(f"  analog conv min   {min(stats['analog_conv_channel']['min'], stats['analog_conv_spatial']['min'])*100:5.2f}%  (paper 0.51%)")
    lines.append(f"  digital conv best {stats['digital_conv_spatial']['min']*100:5.2f}%  (paper 1.32%)")
    lines.append(f"  digital FC worst  {stats['digital_fc_channel']['max']*100:5.2f}%  (paper 54.5%)")
    lines.append(f"  digital DW max    {stats['digital_dwconv']['max']*100:5.2f}%  (paper <= 20.7%)")
    report("\n".join(lines))


def test_fig5_dw_bounded(points):
    stats = loss_stats(points)
    assert stats["digital_dwconv"]["max"] <= 0.207


def test_fig5_fc_worst_case(points):
    stats = loss_stats(points)
    assert stats["digital_fc_channel"]["max"] > 0.30


def test_fig5_conv_overhead_small(points):
    stats = loss_stats(points)
    assert stats["digital_conv_spatial"]["min"] < 0.10
    assert stats["analog_conv_channel"]["mean"] < 0.15


def test_fig5_dw_peak_throughput(points):
    dw = [p for p in points if p.series == "digital_dwconv"]
    assert max(p.peak_throughput for p in dw) <= 3.75 + 1e-9
    assert max(p.peak_throughput for p in dw) > 3.0
