"""Depth-first schedule benchmark: peak-L2 reduction vs. cycle overhead.

For each model (digital configuration, 16 kB Eq. 2 tiling budget — the
Table I memory-constrained cell) the benchmark measures three
deployments on the simulated SoC:

* ``base``   — layer-by-layer compile, fast execution,
* ``fused``  — ``depthfirst="on"`` at the stock 512 kB L2: every
  eligible chain fused, outputs asserted byte-identical to base,
* ``rescue`` — ``depthfirst="auto"`` on a *shrunk* L2 sized so the
  layer-by-layer deployment no longer fits: the compile must succeed,
  the measured execution peak must respect the budget, and the output
  must match the reference interpreter bit for bit.

Any violation raises (this is the CI ``depthfirst-smoke`` gate;
``--check`` runs the assertions for one model and skips the artifact).
Results land in ``BENCH_depthfirst.json``.

Runs standalone (``python benchmarks/bench_depthfirst.py``) and under
pytest.
"""

import argparse
import dataclasses
import json
import pathlib
import sys

import numpy as np

from repro.core.compiler import compile_model
from repro.errors import OutOfMemoryError
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.runtime import Executor, random_inputs, run_reference
from repro.soc import DEFAULT_PARAMS, DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_depthfirst.json"
MODELS = ("resnet", "mobilenet", "dscnn")
L1_BUDGET = 16 * 1024
#: models the auto rescue is known to save at 80% of their arena —
#: an OutOfMemoryError from their rescue compile is a regression, not
#: an acceptable outcome (dscnn's arena floor lies outside its chains,
#: so it is legitimately unrescuable and stays off this list).
REQUIRE_RESCUE = ("resnet", "mobilenet")


class DepthFirstGateError(AssertionError):
    """A depth-first invariant (bit-exactness or budget) failed."""


def _compile(model, cfg_overrides, params=None):
    precision, soc_kwargs, cfg = CONFIGS["digital"]
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(params=params, **soc_kwargs)
    cfg = cfg.with_overrides(l1_budget=L1_BUDGET, **cfg_overrides)
    return graph, soc, compile_model(graph, soc, cfg)


def bench_model(model: str) -> dict:
    graph, soc, base = _compile(model, dict(check_l2=False))
    feeds = random_inputs(graph, seed=1)
    golden = np.asarray(run_reference(graph, feeds))
    run_base = Executor(soc, exec_mode="fast").run(base, feeds)
    if not np.array_equal(run_base.output, golden):
        raise DepthFirstGateError(f"{model}: base run != reference")

    # -- fused at stock L2 ---------------------------------------------------
    _, _, fused = _compile(model, dict(check_l2=False, depthfirst="on"))
    run_fused = Executor(soc, exec_mode="depthfirst").run(fused, feeds)
    if not np.array_equal(run_fused.output, golden):
        raise DepthFirstGateError(
            f"{model}: depth-first output != layer-by-layer")

    # -- auto rescue on a shrunk L2 ------------------------------------------
    # size the platform so layer-by-layer no longer fits (static image
    # + 80% of its activation arena), forcing the rescue path
    tight_l2 = base.size.total + int(base.memory_plan.arena_bytes * 0.8)
    params = dataclasses.replace(DEFAULT_PARAMS, l2_bytes=tight_l2)
    rescue = None
    try:
        _, rsoc, rescued = _compile(model, dict(depthfirst="auto"),
                                    params=params)
    except OutOfMemoryError:
        if model in REQUIRE_RESCUE:
            raise DepthFirstGateError(
                f"{model}: auto rescue regressed — no longer compiles "
                f"at {tight_l2} B L2")
        rescued = rsoc = None  # genuinely unrescuable at this budget
    if rescued is not None:
        if not rescued.depthfirst_chains:
            raise DepthFirstGateError(
                f"{model}: rescue compile adopted no chains")
        run_rescue = Executor(rsoc, exec_mode="depthfirst").run(
            rescued, feeds)
        if not np.array_equal(run_rescue.output, golden):
            raise DepthFirstGateError(f"{model}: rescued run != reference")
        if run_rescue.l2_peak_bytes > tight_l2:
            raise DepthFirstGateError(
                f"{model}: rescued peak {run_rescue.l2_peak_bytes} B "
                f"exceeds the {tight_l2} B budget")
        rescue = {
            "l2_budget_bytes": tight_l2,
            "chains": len(rescued.depthfirst_chains),
            "arena_bytes": rescued.memory_plan.arena_bytes,
            "l2_peak_bytes": run_rescue.l2_peak_bytes,
            "cycles": run_rescue.total_cycles,
        }

    chains = fused.depthfirst_chains
    return {
        "config": "digital",
        "l1_budget_bytes": L1_BUDGET,
        "base": {
            "arena_bytes": base.memory_plan.arena_bytes,
            "l2_peak_bytes": run_base.l2_peak_bytes,
            "cycles": run_base.total_cycles,
        },
        "fused": {
            "chains": [
                {"start": c.start, "length": c.length,
                 "patch_grid": list(c.patch_grid),
                 "recompute_factor": round(c.recompute_factor, 4)}
                for c in chains],
            "arena_bytes": fused.memory_plan.arena_bytes,
            "l2_peak_bytes": run_fused.l2_peak_bytes,
            "cycles": run_fused.total_cycles,
        },
        "rescue": rescue,
        "arena_reduction": round(
            base.memory_plan.arena_bytes
            / max(1, fused.memory_plan.arena_bytes), 4),
        "cycle_overhead": round(
            run_fused.total_cycles / run_base.total_cycles, 4),
        "bit_exact": True,
    }


def run_bench(models=MODELS, write=True) -> dict:
    record = {"l1_budget_bytes": L1_BUDGET, "models": {}}
    for model in models:
        record["models"][model] = bench_model(model)
        m = record["models"][model]
        print(f"{model:<10} arena {m['base']['arena_bytes']:>7} -> "
              f"{m['fused']['arena_bytes']:>7} B "
              f"({m['arena_reduction']:.2f}x), cycles x"
              f"{m['cycle_overhead']:.2f}, "
              f"{len(m['fused']['chains'])} chains"
              + (f", rescue fits {m['rescue']['l2_budget_bytes']} B"
                 if m["rescue"] else ""))
    if write:
        OUT.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {OUT}")
    return record


def test_depthfirst_gate():
    """Pytest entry: the assertions are the benchmark's point."""
    record = run_bench(models=("resnet",), write=False)
    assert record["models"]["resnet"]["bit_exact"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--models", nargs="+", default=list(MODELS),
                        choices=sorted(MLPERF_TINY))
    parser.add_argument("--check", action="store_true",
                        help="assert the gates on one model, no artifact")
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    if args.check:
        bench_model(args.models[0])
        print(f"depth-first gates hold for {args.models[0]}")
        return 0
    record = run_bench(models=args.models, write=False)
    pathlib.Path(args.out).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
