"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantitative support for its design
arguments:

1. L2 buffer reuse (HTVM's memory schedule) vs. naive allocation,
2. individual tiling-heuristic terms (Eq. 3-4 vs. Eq. 5),
3. the double-buffered DMA pipeline vs. a serial-transfer model,
4. analog macro noise sensitivity (extension experiment).
"""

import numpy as np
import pytest

from repro.core import HTVM, TVM_CPU, compile_model
from repro.dory import (
    DoryTiler, digital_heuristics, digital_pe_only_heuristics,
    make_conv_spec, no_heuristics,
)
from repro.eval.tables import format_table
from repro.frontend.modelzoo import MLPERF_TINY, fig4_layers
from repro.runtime.cost import cost_layer
from repro.soc import DianaSoC


def test_ablation_memory_planner(report, benchmark):
    """Buffer reuse shrinks the activation arena by large factors."""
    rows = []
    soc = DianaSoC(enable_digital=False, enable_analog=False)
    for name, fn in sorted(MLPERF_TINY.items()):
        graph = fn()
        reuse = compile_model(graph, soc,
                              TVM_CPU.with_overrides(buffer_reuse=True,
                                                     check_l2=False))
        naive = compile_model(graph, soc,
                              TVM_CPU.with_overrides(check_l2=False))
        rows.append([
            name,
            f"{naive.memory_plan.arena_bytes / 1024:.1f}",
            f"{reuse.memory_plan.arena_bytes / 1024:.1f}",
            f"{naive.memory_plan.arena_bytes / max(reuse.memory_plan.arena_bytes, 1):.2f}x",
        ])
        assert reuse.memory_plan.arena_bytes <= naive.memory_plan.arena_bytes
    benchmark(compile_model, MLPERF_TINY["resnet"](), soc,
              TVM_CPU.with_overrides(check_l2=False))
    report(format_table(
        ["model", "naive arena kB", "planned arena kB", "reduction"],
        rows, title="Ablation 1 — L2 activation planning (reuse vs naive)"))


def test_ablation_heuristic_terms(report):
    """Contribution of each heuristic term across the Fig. 4 budgets."""
    soc = DianaSoC()
    accel = soc.accelerator("soc.digital")
    rows = []
    for spec in fig4_layers():
        for budget_kb in (16, 8, 4):
            budget = budget_kb * 1024
            cyc = {}
            for label, heur in (("baseline", no_heuristics()),
                                ("pe-only", digital_pe_only_heuristics()),
                                ("full", digital_heuristics())):
                try:
                    sol = DoryTiler("soc.digital", soc.params, heur,
                                    l1_budget=budget).solve(spec)
                except Exception:
                    cyc[label] = None
                    continue
                cyc[label] = cost_layer(spec, sol, accel,
                                        soc.params).total_cycles
            if cyc.get("baseline") and cyc.get("full"):
                rows.append([
                    spec.name, budget_kb,
                    f"{cyc['baseline']:.0f}",
                    None if cyc["pe-only"] is None else f"{cyc['pe-only']:.0f}",
                    f"{cyc['full']:.0f}",
                    f"{cyc['baseline'] / cyc['full']:.2f}x",
                ])
    report(format_table(
        ["layer", "budget kB", "baseline", "pe-only", "full", "full vs base"],
        rows, title="Ablation 2 — tiling heuristic terms"))


def test_ablation_dma_bandwidth(report):
    """Sensitivity of end-to-end latency to the activation DMA port."""
    from repro.eval.harness import deploy
    from repro.soc import DianaParams
    rows = []
    for bw in (4.0, 8.0, 16.0, 32.0):
        params = DianaParams(dma_act_bytes_per_cycle=bw)
        r = deploy("resnet", "digital", params=params, verify=False)
        rows.append([f"{bw:.0f} B/cy", f"{r.latency_ms:.3f}"])
    report(format_table(["act DMA bandwidth", "ResNet digital ms"], rows,
                        title="Ablation 3 — DMA bandwidth sensitivity"))
    # monotone: more bandwidth never hurts
    vals = [float(r[1]) for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(vals, vals[1:]))


def test_ablation_analog_noise(report):
    """Extension: analog accumulator noise vs. output disagreement."""
    from repro.soc import AnalogAccelerator, DEFAULT_PARAMS
    accel = AnalogAccelerator(DEFAULT_PARAMS)
    spec = make_conv_spec("noise_probe", 32, 32, 16, 16, padding=(1, 1),
                          weight_dtype="ternary", shift=4)
    rng = np.random.default_rng(0)
    x = rng.integers(-64, 64, (1, 32, 16, 16)).astype(np.int8)
    w = rng.integers(-1, 2, (32, 32, 3, 3)).astype(np.int8)
    clean = accel.execute(spec, x, w, None)
    rows = []
    prev = 0.0
    for sigma in (0.0, 0.1, 0.5, 1.0, 2.0):
        noisy = accel.execute_noisy(spec, x, w, None, sigma,
                                    np.random.default_rng(42))
        frac = float((noisy != clean).mean())
        rows.append([f"{sigma:.1f}", f"{100 * frac:.2f}%"])
        assert frac >= prev - 0.02  # roughly monotone
        prev = frac
    report(format_table(["noise sigma / row", "outputs changed"], rows,
                        title="Ablation 4 — analog noise sensitivity"))
