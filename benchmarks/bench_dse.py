"""Platform-DSE benchmark: grid pricing throughput + thread scaling.

Times ``repro.eval.dse.sweep_grid`` over the default platform x model
x budget x objective grid — cold (fresh
:class:`~repro.core.cache.TilingCache`) vs. cache-warm, serial vs.
``jobs=4`` — and records the numbers to ``BENCH_dse.json`` at the repo
root together with a drift fingerprint: the per-cell mapping signature
and modeled cycles of a reduced grid.

``--check`` recomputes the fingerprint and fails if it drifts from the
committed file — the CI companion to ``repro dse --check`` (which
gates the full committed ``DSE_GRID.json``).
"""

import argparse
import json
import pathlib
import sys

from bench_timing import best_of
from repro.core.cache import TilingCache
from repro.eval.dse import sweep_grid

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_dse.json"
REPS = 3

#: the reduced fingerprint grid (fast enough to re-price on --check).
FP_PLATFORMS = ("diana", "diana-noanalog", "diana-nodig")
FP_MODELS = ("resnet", "dscnn")
FP_BUDGETS_KB = (64,)
FP_OBJECTIVES = ("latency", "energy")


class DriftError(AssertionError):
    """A DSE grid cell (mapping or modeled cycles) changed."""


def grid_fingerprint() -> dict:
    """Per-cell mapping signature + modeled cycles of the reduced grid."""
    points = sweep_grid(platforms=FP_PLATFORMS, models=FP_MODELS,
                        budgets_kb=FP_BUDGETS_KB, objectives=FP_OBJECTIVES,
                        cache=TilingCache())
    out = {}
    for p in points:
        cell = "/".join([p.platform, p.model, str(p.budget_kb), p.objective])
        out[cell] = {
            "feasible": p.feasible,
            "signature": p.signature,
            "modeled_cycles": p.cycles,
        }
    return out


#: tight L1 budget for the timing runs — forces a real DORY search per
#: candidate (64/256 kB solve most layers on the fast path), matching
#: bench_mapping's scenario; the fingerprint stays on the 64 kB grid.
TIME_BUDGETS_KB = (16,)


def run_bench(reps: int = REPS, write: bool = True) -> dict:
    def cold():
        sweep_grid(platforms=FP_PLATFORMS, models=FP_MODELS,
                   budgets_kb=TIME_BUDGETS_KB, objectives=FP_OBJECTIVES,
                   cache=TilingCache())

    warm_cache = TilingCache()
    points = sweep_grid(platforms=FP_PLATFORMS, models=FP_MODELS,
                        budgets_kb=TIME_BUDGETS_KB, objectives=FP_OBJECTIVES,
                        cache=warm_cache)

    def warm():
        sweep_grid(platforms=FP_PLATFORMS, models=FP_MODELS,
                   budgets_kb=TIME_BUDGETS_KB, objectives=FP_OBJECTIVES,
                   cache=warm_cache)

    def warm_jobs():
        sweep_grid(platforms=FP_PLATFORMS, models=FP_MODELS,
                   budgets_kb=TIME_BUDGETS_KB, objectives=FP_OBJECTIVES,
                   cache=warm_cache, jobs=4)

    cold_s = best_of(cold, reps)
    warm_cache.reset_counters()
    warm_s = best_of(warm, reps)
    stats = warm_cache.stats()
    assert stats["misses"] == 0, "warm sweep re-solved tilings"
    jobs_s = best_of(warm_jobs, reps)

    record = {
        "platforms": list(FP_PLATFORMS),
        "models": list(FP_MODELS),
        "budgets_kb": list(FP_BUDGETS_KB),
        "timing_budgets_kb": list(TIME_BUDGETS_KB),
        "objectives": list(FP_OBJECTIVES),
        "cells": len(points),
        "reps": reps,
        "grid_cold_s": cold_s,
        "grid_warm_s": warm_s,
        "grid_warm_jobs4_s": jobs_s,
        "cache_speedup": cold_s / max(warm_s, 1e-12),
        "grid_fingerprint": grid_fingerprint(),
    }
    if write:
        OUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def check_drift(path: pathlib.Path = OUT) -> None:
    """Fail if any reduced-grid cell diverges from the committed file."""
    committed = json.loads(path.read_text())["grid_fingerprint"]
    current = grid_fingerprint()
    for cell, base in committed.items():
        got = current.get(cell)
        if got is None:
            raise DriftError(f"{cell}: missing from current grid")
        if got["feasible"] != base["feasible"]:
            raise DriftError(
                f"{cell}: feasibility drifted "
                f"({base['feasible']} -> {got['feasible']})")
        if got["signature"] != base["signature"]:
            raise DriftError(
                f"{cell}: mapping signature drifted "
                f"({base['signature']} -> {got['signature']})")
        if abs(got["modeled_cycles"] - base["modeled_cycles"]) > 0.5:
            raise DriftError(
                f"{cell}: modeled cycles drifted "
                f"({base['modeled_cycles']} -> {got['modeled_cycles']})")


def _format(record: dict) -> str:
    return (
        f"platform DSE bench ({record['cells']} cells, best of "
        f"{record['reps']}):\n"
        f"  grid cold {record['grid_cold_s'] * 1e3:8.3f} ms   "
        f"warm {record['grid_warm_s'] * 1e3:8.3f} ms "
        f"({record['cache_speedup']:.1f}x)   "
        f"warm jobs=4 {record['grid_warm_jobs4_s'] * 1e3:8.3f} ms")


def test_dse_grid_and_drift(report, benchmark):
    """Drift gate + timing on the reduced grid (CI / standalone)."""
    check_drift()
    cache = TilingCache()
    sweep_grid(platforms=FP_PLATFORMS, models=FP_MODELS,
               budgets_kb=FP_BUDGETS_KB, objectives=FP_OBJECTIVES,
               cache=cache)  # warm it
    benchmark(lambda: sweep_grid(
        platforms=FP_PLATFORMS, models=FP_MODELS, budgets_kb=FP_BUDGETS_KB,
        objectives=FP_OBJECTIVES, cache=cache))
    record = run_bench(reps=1, write=False)
    report(_format(record))


def main(argv=None) -> int:
    global OUT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS,
                        help="timing repetitions (best-of)")
    parser.add_argument("--check", action="store_true",
                        help="only verify the grid fingerprint has not "
                             "drifted from the committed BENCH_dse.json")
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    OUT = pathlib.Path(args.out)
    if args.check:
        try:
            check_drift(OUT)
        except DriftError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(f"DSE grid fingerprint matches {OUT.name}")
        return 0
    record = run_bench(reps=args.reps)
    print(_format(record))
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
