"""Fig. 4 — latency effect of tiling with accelerator-aware heuristics.

Regenerates the figure's four layer panels (L0..L3): cycle counts for
the baseline ("only tile size"), PE-heuristic (Eqs. 3-4) and full
(Eqs. 3-4-5) tiling strategies while the Eq. 2 L1 budget shrinks.

Paper claims reproduced:
* the grey no-tiling region at large budgets,
* heuristic tiling never slower than the baseline,
* a multi-x speed-up at awkward budgets (paper: up to 6.2x; our cost
  model yields a smaller but clearly visible gap — see EXPERIMENTS.md).
"""

import pytest

from repro.dory import DoryTiler, digital_heuristics
from repro.eval import fig4
from repro.frontend.modelzoo import fig4_layers
from repro.soc import DEFAULT_PARAMS


@pytest.fixture(scope="module")
def points():
    return fig4.sweep()


def test_fig4_regenerate(report, points, benchmark):
    spec = fig4_layers()[2]
    tiler = DoryTiler("soc.digital", DEFAULT_PARAMS, digital_heuristics(),
                      l1_budget=16 * 1024)
    benchmark(tiler.solve, spec)

    report(fig4.format_fig4(points))
    speedup = fig4.max_heuristic_speedup(points)
    report(f"Fig. 4 headline: max heuristic speed-up = {speedup:.2f}x "
           f"(paper: up to 6.2x)")
    assert speedup > 1.2


def test_fig4_heuristics_never_slower(points):
    by_key = {}
    for p in points:
        if p.cycles is not None:
            by_key.setdefault((p.layer, p.budget_bytes), {})[p.strategy] = p
    for (layer, budget), cell in by_key.items():
        if "baseline" in cell and "full" in cell:
            assert cell["full"].cycles <= cell["baseline"].cycles * 1.05, \
                (layer, budget)


def test_fig4_grey_region(points):
    """Large budgets host the entire layer: no tiling required."""
    for p in points:
        if p.strategy != "full" or p.cycles is None:
            continue
        in_b = {"L0": 16, "L1": 32, "L2": 32, "L3": 64}[p.layer] * 1024
        out_b = {"L0": 16, "L1": 32, "L2": 64, "L3": 128}[p.layer] * 1024
        w_b = {"L0": 2.25, "L1": 9, "L2": 18, "L3": 72}[p.layer] * 1024
        if in_b + out_b + w_b <= p.budget_bytes:
            assert p.needs_tiling is False
