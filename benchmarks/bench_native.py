"""Native backend benchmark: compiled C vs. the numpy fast executor.

For every MLPerf Tiny model (digital configuration) the benchmark
measures the three costs that matter for the compile-once/serve-many
story of ``exec_mode="native"``:

* **cold build** — ``cc -O3`` of the emitted ``native.c`` into the
  fingerprint-keyed shared library (paid once per artifact, ever),
* **warm load**  — ``dlopen`` + ABI check + weight binding (paid once
  per process),
* **steady state** — single-request latency of the loaded library vs.
  the ``fast`` interpreter, the number a serving worker lives on.

Every timed pair is first checked byte-identical against ``fast`` and
``tiled`` (identical modeled cycles too); ``--check`` runs only that
gate, which is what CI's native-smoke job calls. Without a C compiler
the benchmark degrades exactly like the executor does: it reports the
skip and exits cleanly. Results land in ``BENCH_native.json``.

Runs standalone (``python benchmarks/bench_native.py --reps 5``) and
under pytest.
"""

import argparse
import json
import pathlib
import shutil
import sys
import tempfile
import time

import numpy as np
import pytest

from bench_timing import best_of
from repro.codegen.build import (
    NativeModule, build_native_library, find_c_compiler,
    load_native_module,
)
from repro.core.compiler import compile_model
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.runtime import Executor, random_inputs
from repro.soc import DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_native.json"
MODELS = ("dscnn", "mobilenet", "resnet", "toyadmos")
REPS = 10


class DivergenceError(AssertionError):
    """Native mode disagreed with fast/tiled mode."""


def _compiled(model: str, config: str):
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    return graph, soc, compile_model(graph, soc, cfg)


def _check_equivalence(model: str, config: str, graph, soc, compiled,
                       cache_dir: str):
    """Byte/cycle equality of native vs. fast vs. tiled."""
    feeds = random_inputs(graph, seed=1)
    fast = Executor(soc, exec_mode="fast").run(compiled, feeds)
    tiled = Executor(soc, exec_mode="tiled").run(compiled, feeds)
    native = Executor(soc, exec_mode="native",
                      native_cache_dir=cache_dir).run(compiled, feeds)
    for name, other in (("fast", fast), ("tiled", tiled)):
        if not np.array_equal(native.output, other.output):
            raise DivergenceError(f"{model}/{config}: native != {name}")
        if native.total_cycles != other.total_cycles:
            raise DivergenceError(
                f"{model}/{config}: cycles differ vs {name} "
                f"({native.total_cycles} vs {other.total_cycles})")
    return native.total_cycles


def run_check(cache_dir: str, models=MODELS) -> dict:
    """The CI gate: zoo digital + resnet across Table I configs."""
    gate = {}
    for model in models:
        graph, soc, compiled = _compiled(model, "digital")
        cycles = _check_equivalence(model, "digital", graph, soc, compiled,
                                    cache_dir)
        gate[f"{model}/digital"] = {"bit_exact": True, "cycles_equal": True,
                                    "total_cycles": cycles}
    for config in CONFIGS:
        if config == "digital":
            continue
        graph, soc, compiled = _compiled("resnet", config)
        cycles = _check_equivalence("resnet", config, graph, soc, compiled,
                                    cache_dir)
        gate[f"resnet/{config}"] = {"bit_exact": True, "cycles_equal": True,
                                    "total_cycles": cycles}
    return gate


def run_bench(cache_dir: str, models=MODELS, reps=REPS,
              write=True) -> dict:
    compiler = find_c_compiler()
    per_model = {}
    for model in models:
        graph, soc, compiled = _compiled(model, "digital")
        _check_equivalence(model, "digital", graph, soc, compiled,
                           cache_dir)
        feeds = random_inputs(graph, seed=1)

        t0 = time.perf_counter()
        lib = build_native_library(compiled, cache_dir=cache_dir,
                                   force=True)
        cold_build_s = time.perf_counter() - t0
        assert lib is not None, f"{model}: native build failed"
        warm_load_s = best_of(lambda: NativeModule(lib, compiled),
                              max(1, reps // 2))

        native = Executor(soc, exec_mode="native",
                          native_cache_dir=cache_dir)
        fast = Executor(soc, exec_mode="fast")
        native.run(compiled, feeds)  # prime the module cache
        native_s = best_of(lambda: native.run(compiled, feeds), reps)
        fast_s = best_of(lambda: fast.run(compiled, feeds), reps)
        per_model[model] = {
            "cold_build_s": cold_build_s,
            "warm_load_s": warm_load_s,
            "native_s": native_s,
            "fast_s": fast_s,
            "speedup_vs_fast": fast_s / max(native_s, 1e-12),
            "full_run": bool(
                getattr(load_native_module(compiled, cache_dir),
                        "has_full_run", False)),
        }

    record = {
        "config": "digital",
        "compiler": compiler,
        "reps": reps,
        "models": per_model,
        "table1_equivalence": run_check(cache_dir, models=()),
        # headline: the serving win where the whole network runs in one
        # native call (null when toyadmos was excluded)
        "toyadmos_speedup": (
            per_model["toyadmos"]["speedup_vs_fast"]
            if "toyadmos" in per_model else None),
    }
    if write:
        OUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _format(record: dict) -> str:
    lines = [f"native backend bench (digital, {record['compiler']}, "
             f"best of {record['reps']}):"]
    for model, r in record["models"].items():
        lines.append(
            f"  {model:<10} build {r['cold_build_s'] * 1e3:7.1f} ms   "
            f"load {r['warm_load_s'] * 1e3:6.2f} ms   "
            f"fast {r['fast_s'] * 1e3:7.3f} ms   "
            f"native {r['native_s'] * 1e3:7.3f} ms "
            f"({r['speedup_vs_fast']:.2f}x"
            f"{', full-run' if r['full_run'] else ''})")
    if record["toyadmos_speedup"] is not None:
        lines.append(f"  toyadmos steady-state speedup: "
                     f"{record['toyadmos_speedup']:.2f}x")
    return "\n".join(lines)


def test_native_vs_fast(report, benchmark):
    """Equivalence gate + a quick timing pass (full run: CI/standalone)."""
    if find_c_compiler() is None:
        pytest.skip("no C compiler on PATH")
    cache = tempfile.mkdtemp(prefix="bench-native-")
    try:
        record = run_bench(cache, models=("toyadmos",), reps=3,
                           write=False)
        r = record["models"]["toyadmos"]
        assert r["full_run"]  # whole network in one native call
        assert r["speedup_vs_fast"] > 1.0
        graph, soc, compiled = _compiled("toyadmos", "digital")
        feeds = random_inputs(graph, seed=1)
        native = Executor(soc, exec_mode="native", native_cache_dir=cache)
        native.run(compiled, feeds)
        benchmark(lambda: native.run(compiled, feeds))
        report(_format(record))
    finally:
        shutil.rmtree(cache, ignore_errors=True)


def main(argv=None) -> int:
    global OUT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS,
                        help="timing repetitions (best-of)")
    parser.add_argument("--models", nargs="+", default=list(MODELS),
                        choices=sorted(MLPERF_TINY))
    parser.add_argument("--check", action="store_true",
                        help="equivalence gate only, no timings, no "
                             "BENCH_native.json")
    parser.add_argument("--cache-dir", default=None,
                        help="native library cache (default: a "
                             "temporary directory)")
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    OUT = pathlib.Path(args.out)
    if find_c_compiler() is None:
        print("SKIP: no C compiler on PATH — native mode would serve "
              "via its fast fallback; nothing to measure")
        return 0
    cache = args.cache_dir or tempfile.mkdtemp(prefix="bench-native-")
    try:
        if args.check:
            gate = run_check(cache, models=tuple(args.models))
            for cell in gate:
                print(f"  {cell}: bit-exact, cycles equal")
            print(f"OK: {len(gate)} cells native == fast == tiled")
            return 0
        record = run_bench(cache, models=tuple(args.models),
                           reps=args.reps)
        print(_format(record))
        print(f"wrote {OUT}")
        return 0
    except DivergenceError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    finally:
        if args.cache_dir is None:
            shutil.rmtree(cache, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
