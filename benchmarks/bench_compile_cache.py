"""Micro-benchmark: cold vs. warm compilation with the tiling cache.

Measures wall-clock of ``compile_model`` for ResNet-8 on the digital
configuration with a cold cache (every layer runs the DORY search) and
a warm cache (every layer hits the memo; zero searches — asserted via
the cache counters), and records the numbers to ``BENCH_compile.json``
at the repo root.
"""

import json
import pathlib

from bench_timing import best_of
from repro.core import HTVM, TilingCache, compile_model
from repro.frontend.modelzoo import resnet8
from repro.soc import DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_compile.json"
REPS = 5


def test_compile_cache_cold_vs_warm(report, benchmark):
    graph = resnet8(precision="int8")
    soc = DianaSoC(enable_analog=False)
    # a tight Eq. 2 budget forces a real search on every layer — the
    # scenario (Fig. 4-style sweeps, constrained platforms) the cache
    # is built for
    config = HTVM.with_overrides(l1_budget=16 * 1024, check_l2=False)

    def cold():
        compile_model(graph, soc, config, cache=TilingCache())

    cache = TilingCache()
    compile_model(graph, soc, config, cache=cache)  # populate
    cache.reset_counters()

    def warm():
        compile_model(graph, soc, config, cache=cache)

    cold_s = best_of(cold, REPS)
    warm_s = best_of(warm, REPS)

    stats = cache.stats()
    # the warm path performed zero DoryTiler.solve searches
    assert stats["misses"] == 0
    assert stats["hits"] > 0

    record = {
        "model": "resnet8",
        "config": "digital",
        "l1_budget": 16 * 1024,
        "reps": REPS,
        "cold_compile_s": cold_s,
        "warm_compile_s": warm_s,
        "speedup": cold_s / max(warm_s, 1e-12),
        "cache_entries": stats["entries"],
        "warm_hits_per_compile": stats["hits"] // REPS,
    }
    OUT.write_text(json.dumps(record, indent=2) + "\n")
    benchmark(warm)
    report(f"compile cache micro-bench (best of {REPS}):\n"
           f"  cold : {cold_s * 1e3:8.3f} ms\n"
           f"  warm : {warm_s * 1e3:8.3f} ms  "
           f"({record['speedup']:.2f}x, {stats['entries']} entries)\n"
           f"  wrote {OUT.name}")
