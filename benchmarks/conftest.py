"""Benchmark fixtures: un-captured report printing."""

import pytest


@pytest.fixture
def report(capfd):
    """Print through pytest's capture so tables appear in the console."""

    def _print(text: str):
        with capfd.disabled():
            print()
            print(text)

    return _print
