"""Benchmark fixtures: un-captured report printing.

Shared helpers live in ``tests/helpers.py`` (a uniquely named module);
keeping this conftest free of them avoids the
``sys.modules["conftest"]`` shadowing hazard between tests/ and
benchmarks/.
"""

import pathlib
import sys

import pytest

# make tests/helpers.py importable when only benchmarks/ is collected
_TESTS = str(pathlib.Path(__file__).resolve().parent.parent / "tests")
if _TESTS not in sys.path:
    sys.path.insert(0, _TESTS)


@pytest.fixture
def report(capfd):
    """Print through pytest's capture so tables appear in the console."""

    def _print(text: str):
        with capfd.disabled():
            print()
            print(text)

    return _print
