"""Shared timing helper for the micro-benchmarks.

Lives next to the bench scripts (benchmarks/ is on ``sys.path`` both
under pytest's rootdir insertion and when a script runs standalone), so
every ``BENCH_*.json`` uses the same best-of methodology.
"""

import time


def best_of(fn, reps):
    """Minimum wall-clock of ``reps`` calls to ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best
