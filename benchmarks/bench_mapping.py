"""Mapping-engine benchmark + rules-drift smoke check.

Times the cost-driven ``"dp"`` search cold (fresh
:class:`~repro.core.cache.TilingCache`, every candidate solves its
tiling) vs. cache-warm (all candidate tilings memoized) per MLPerf
Tiny model, and records the numbers to ``BENCH_mapping.json`` at the
repo root together with the ``"rules"`` baseline fingerprint: the
per-model rule-based target assignment and its modeled total cycles.

``--check`` recomputes the fingerprint and fails if it drifts from the
committed file — the CI mapping-smoke gate that protects the seed
mapping policy (and its cost model) against accidental changes.
"""

import argparse
import json
import pathlib
import sys

from bench_timing import best_of
from repro.core.cache import TilingCache
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.mapping import analyze_mapping, make_objective, prepare_graph
from repro.soc import DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_mapping.json"
REPS = 3
CONFIG = "mixed"


class DriftError(AssertionError):
    """The rules mapping (or its modeled cycles) changed."""


def _prepared(model: str, config: str = CONFIG):
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = prepare_graph(MLPERF_TINY[model](precision=precision))
    return graph, DianaSoC(**soc_kwargs), cfg


def rules_fingerprint() -> dict:
    """Per-model rules assignment + modeled cycles (the drift baseline).

    Covers the whole zoo on the mixed platform plus resnet on every
    Table I configuration.
    """
    out = {}
    cells = [(m, CONFIG) for m in sorted(MLPERF_TINY)]
    cells += [("resnet", c) for c in CONFIGS if c != CONFIG]
    for model, config in cells:
        graph, soc, cfg = _prepared(model, config)
        plan = analyze_mapping(graph, soc, cfg, cache=TilingCache(),
                               strategy="rules",
                               objective=make_objective("latency"))
        out[f"{model}/{config}"] = {
            "targets": list(plan.assignment),
            "modeled_cycles": plan.total_cycles,
        }
    return out


#: Eq. 2 budget for the timing runs — a tight L1 forces a real DORY
#: search per candidate (the default 256 kB solves most layers on the
#: fast path), matching bench_compile_cache's scenario.
L1_BUDGET = 16 * 1024


def run_bench(reps: int = REPS, write: bool = True) -> dict:
    models = {}
    for model in sorted(MLPERF_TINY):
        graph, soc, cfg = _prepared(model)
        cfg = cfg.with_overrides(l1_budget=L1_BUDGET)

        def cold():
            analyze_mapping(graph, soc, cfg, cache=TilingCache(),
                            strategy="dp")

        warm_cache = TilingCache()
        plan = analyze_mapping(graph, soc, cfg, cache=warm_cache,
                               strategy="dp")

        def warm():
            analyze_mapping(graph, soc, cfg, cache=warm_cache,
                            strategy="dp")

        cold_s = best_of(cold, reps)
        warm_cache.reset_counters()
        warm_s = best_of(warm, reps)
        stats = warm_cache.stats()
        assert stats["misses"] == 0, f"{model}: warm search re-solved tilings"
        models[model] = {
            "sites": len(plan.sites),
            "dp_cold_s": cold_s,
            "dp_warm_s": warm_s,
            "speedup": cold_s / max(warm_s, 1e-12),
            "dp_cycles": plan.total_cycles,
            "rules_cycles": plan.baseline_cycles,
            "dp_vs_rules": plan.total_cycles / max(plan.baseline_cycles, 1e-12),
        }
        assert plan.total_cycles <= plan.baseline_cycles, (
            f"{model}: dp mapping worse than rules")

    record = {
        "config": CONFIG,
        "l1_budget": L1_BUDGET,
        "reps": reps,
        "models": models,
        "rules_baseline": rules_fingerprint(),
    }
    if write:
        OUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def check_drift(path: pathlib.Path = OUT) -> None:
    """Fail if the current rules mapping diverges from the committed one."""
    committed = json.loads(path.read_text())["rules_baseline"]
    current = rules_fingerprint()
    for cell, base in committed.items():
        got = current.get(cell)
        if got is None:
            raise DriftError(f"{cell}: missing from current fingerprint")
        if got["targets"] != base["targets"]:
            raise DriftError(
                f"{cell}: rules targets drifted\n"
                f"  committed: {base['targets']}\n"
                f"  current  : {got['targets']}")
        if abs(got["modeled_cycles"] - base["modeled_cycles"]) > 0.5:
            raise DriftError(
                f"{cell}: modeled cycles drifted "
                f"({base['modeled_cycles']} -> {got['modeled_cycles']})")


def _format(record: dict) -> str:
    lines = [f"mapping engine bench ({record['config']}, "
             f"{record['l1_budget'] // 1024} kB L1 budget, best of "
             f"{record['reps']}):"]
    for model, r in record["models"].items():
        lines.append(
            f"  {model:<10} {r['sites']:3d} sites   "
            f"dp cold {r['dp_cold_s'] * 1e3:8.3f} ms   "
            f"warm {r['dp_warm_s'] * 1e3:8.3f} ms ({r['speedup']:.1f}x)   "
            f"dp/rules modeled latency {r['dp_vs_rules']:.3f}")
    return "\n".join(lines)


def test_mapping_search_and_drift(report, benchmark):
    """Drift gate + timing on one model (full zoo: CI / standalone)."""
    check_drift()
    graph, soc, cfg = _prepared("resnet")
    cache = TilingCache()
    analyze_mapping(graph, soc, cfg, cache=cache, strategy="dp")  # warm it
    benchmark(lambda: analyze_mapping(graph, soc, cfg, cache=cache,
                                      strategy="dp"))
    record = run_bench(reps=1, write=False)
    report(_format(record))


def main(argv=None) -> int:
    global OUT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS,
                        help="timing repetitions (best-of)")
    parser.add_argument("--check", action="store_true",
                        help="only verify the rules baseline has not "
                             "drifted from the committed BENCH_mapping.json")
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    OUT = pathlib.Path(args.out)
    if args.check:
        try:
            check_drift(OUT)
        except DriftError as exc:
            print(f"FAIL: {exc}", file=sys.stderr)
            return 1
        print(f"rules baseline matches {OUT.name}")
        return 0
    record = run_bench(reps=args.reps)
    print(_format(record))
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
