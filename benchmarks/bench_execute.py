"""Execution-engine benchmark: tiled vs. fast mode, batch 1 vs. batch 8.

For every MLPerf Tiny model (digital configuration, 16 kB Eq. 2 budget
so the DORY schedules are genuinely tiled) the benchmark measures the
simulator wall-clock of

* ``tiled``  — the tile-accurate verification mode,
* ``fast``   — full-layer kernels + analytic cycle replay, batch 1,
* ``fast`` at batch 8 — the vectorized throughput mode (per-sample).

Every timed pair is first checked for byte-identical outputs and
exactly equal cycle counts, and the four Table I configurations of
ResNet-8 are cross-checked the same way — a divergence fails the run
(this is the CI smoke gate). Results land in ``BENCH_execute.json``.

Runs standalone (``python benchmarks/bench_execute.py --reps 1``) and
under pytest.
"""

import argparse
import json
import pathlib
import sys

import numpy as np

from bench_timing import best_of
from repro.core.compiler import compile_model
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.runtime import Executor, random_inputs, random_inputs_batched
from repro.soc import DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_execute.json"
MODELS = ("dscnn", "mobilenet", "resnet", "toyadmos")
L1_BUDGET = 16 * 1024
BATCH = 8
REPS = 10


class DivergenceError(AssertionError):
    """Fast mode disagreed with tiled mode."""


def _compiled(model: str, config: str):
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    cfg = cfg.with_overrides(l1_budget=L1_BUDGET, check_l2=False)
    return graph, soc, compile_model(graph, soc, cfg)


def _check_equivalence(model: str, config: str, graph, soc, compiled,
                       batch: int):
    """Byte/cycle equality of fast vs. tiled, batch vs. per-sample."""
    feeds = random_inputs(graph, seed=1)
    tiled = Executor(soc, exec_mode="tiled").run(compiled, feeds)
    fast = Executor(soc, exec_mode="fast").run(compiled, feeds)
    if not np.array_equal(tiled.output, fast.output):
        raise DivergenceError(f"{model}/{config}: fast output != tiled")
    if tiled.total_cycles != fast.total_cycles:
        raise DivergenceError(
            f"{model}/{config}: cycles differ "
            f"({fast.total_cycles} vs {tiled.total_cycles})")
    if batch > 1:
        bfeeds = random_inputs_batched(graph, batch, seed=1)
        fb = Executor(soc, exec_mode="fast").run_batch(compiled, bfeeds)
        if not np.array_equal(fb.outputs[:1], fast.output):
            raise DivergenceError(
                f"{model}/{config}: batched sample 0 != single-sample run")
        if fb.perf.total_cycles != fast.total_cycles:
            raise DivergenceError(
                f"{model}/{config}: batched per-inference cycles differ")
    return tiled.total_cycles


def run_bench(models=MODELS, reps=REPS, batch=BATCH, write=True) -> dict:
    """Measure all models + the Table I equivalence gate; return record."""
    per_model = {}
    for model in models:
        graph, soc, compiled = _compiled(model, "digital")
        _check_equivalence(model, "digital", graph, soc, compiled, batch)
        feeds = random_inputs(graph, seed=1)
        bfeeds = random_inputs_batched(graph, batch, seed=1)
        tiled = Executor(soc, exec_mode="tiled")
        fast = Executor(soc, exec_mode="fast")
        tiled_s = best_of(lambda: tiled.run(compiled, feeds), reps)
        fast_s = best_of(lambda: fast.run(compiled, feeds), reps)
        fast_batch_s = best_of(lambda: fast.run_batch(compiled, bfeeds),
                               max(1, reps // 2))
        per_sample = fast_batch_s / batch
        per_model[model] = {
            "tiled_s": tiled_s,
            "fast_s": fast_s,
            "fast_batch_s": fast_batch_s,
            "fast_batch_per_sample_s": per_sample,
            "speedup_batch1": tiled_s / max(fast_s, 1e-12),
            "speedup_throughput": tiled_s / max(per_sample, 1e-12),
        }

    equivalence = {}
    for config in CONFIGS:
        graph, soc, compiled = _compiled("resnet", config)
        cycles = _check_equivalence("resnet", config, graph, soc, compiled,
                                    batch)
        equivalence[config] = {"bit_exact": True, "cycles_equal": True,
                               "total_cycles": cycles}

    resnet = per_model.get("resnet")
    record = {
        "config": "digital",
        "l1_budget": L1_BUDGET,
        "batch": batch,
        "reps": reps,
        "models": per_model,
        "table1_equivalence": equivalence,
        # headline: best end-to-end fast-vs-tiled ratio on resnet8
        # (null when resnet was excluded from the measured set)
        "resnet_speedup": (max(resnet["speedup_batch1"],
                               resnet["speedup_throughput"])
                           if resnet else None),
    }
    if write:
        OUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _format(record: dict) -> str:
    lines = [f"execution engine bench (digital, {L1_BUDGET // 1024} kB L1, "
             f"best of {record['reps']}):"]
    for model, r in record["models"].items():
        lines.append(
            f"  {model:<10} tiled {r['tiled_s'] * 1e3:8.3f} ms   "
            f"fast {r['fast_s'] * 1e3:8.3f} ms ({r['speedup_batch1']:.2f}x)  "
            f"batch-{record['batch']} {r['fast_batch_per_sample_s'] * 1e3:7.3f}"
            f" ms/sample ({r['speedup_throughput']:.2f}x)")
    lines.append("  table1 equivalence: " + ", ".join(
        f"{cfg}: ok" for cfg in record["table1_equivalence"]))
    if record["resnet_speedup"] is not None:
        lines.append(f"  resnet8 end-to-end speedup: "
                     f"{record['resnet_speedup']:.2f}x")
    return "\n".join(lines)


def test_execute_fast_vs_tiled(report, benchmark):
    """Equivalence gate + a quick timing pass (full run: CI / standalone)."""
    record = run_bench(models=("resnet",), reps=3, write=False)
    r = record["models"]["resnet"]
    assert record["table1_equivalence"]["digital"]["bit_exact"]
    # fast mode must actually be a fast path
    assert r["speedup_batch1"] > 1.0
    graph, soc, compiled = _compiled("resnet", "digital")
    feeds = random_inputs(graph, seed=1)
    fast = Executor(soc, exec_mode="fast")
    benchmark(lambda: fast.run(compiled, feeds))
    report(_format(record))


def main(argv=None) -> int:
    global OUT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS,
                        help="timing repetitions (best-of)")
    parser.add_argument("--batch", type=int, default=BATCH)
    parser.add_argument("--models", nargs="+", default=list(MODELS),
                        choices=sorted(MLPERF_TINY))
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    OUT = pathlib.Path(args.out)
    try:
        record = run_bench(models=tuple(args.models), reps=args.reps,
                           batch=args.batch)
    except DivergenceError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(_format(record))
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
