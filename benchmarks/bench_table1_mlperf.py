"""Table I — MLPerf Tiny deployments on DIANA, all four configurations.

Regenerates latency (peak + full HTVM) and binary size for DS-CNN,
MobileNetV1, ResNet-8 and the ToyAdmos DAE under:

* CPU-only plain TVM (incl. the MobileNet out-of-memory result),
* CPU + digital accelerator,
* CPU + analog accelerator (ternary),
* CPU + both (mixed precision).

Every deployment is verified bit-exact against the reference
interpreter before its numbers are reported.
"""

import os

import pytest

from repro.eval import format_table1, run_table1, summarize_claims
from repro.eval.harness import deploy


@pytest.fixture(scope="module")
def results():
    # the 16 cells are independent: fan out (results are identical to
    # a serial run, see tests/test_cache.py::TestParallelEvaluation)
    return run_table1(verify=True, jobs=min(4, os.cpu_count() or 1))


def test_table1_regenerate(report, results, benchmark):
    benchmark(deploy, "resnet", "digital", verify=False)
    report(format_table1(results))
    claims = summarize_claims(results)
    lines = ["Table I headline claims (ours vs paper):"]
    lines.append(f"  ResNet digital speed-up over TVM : "
                 f"{claims['resnet_digital_speedup_over_tvm']:6.0f}x (paper 112x)")
    lines.append(f"  ResNet mixed speed-up over TVM   : "
                 f"{claims['resnet_mixed_speedup_over_tvm']:6.0f}x (paper 120x)")
    lines.append(f"  DS-CNN mixed vs analog           : "
                 f"{claims['dscnn_mixed_speedup_over_analog']:6.1f}x (paper 8x)")
    lines.append(f"  ResNet binary reduction vs TVM   : "
                 f"{claims['resnet_binary_reduction']*100:6.1f}% (paper 12.3%)")
    report("\n".join(lines))


def test_all_verified(results):
    for r in results:
        if not r.oom:
            assert r.verified is True, (r.model, r.config)


def test_mobilenet_oom_only_on_tvm(results):
    ooms = [(r.model, r.config) for r in results if r.oom]
    assert ooms == [("mobilenet", "cpu-tvm")]


def test_headline_claims(results):
    claims = summarize_claims(results)
    assert claims["resnet_digital_speedup_over_tvm"] > 80
    assert claims["resnet_mixed_speedup_over_tvm"] > 80
    assert claims["dscnn_mixed_speedup_over_analog"] > 5
    assert 0.05 < claims["resnet_binary_reduction"] < 0.3


def test_sizes_within_20pct_of_paper(results):
    from repro.eval import paper
    close, total = 0, 0
    for r in results:
        ref = paper.TABLE1[r.model][r.config][2]
        if r.size_kb is None:
            continue
        total += 1
        if abs(r.size_kb - ref) / ref < 0.20:
            close += 1
    # most cells land within 20% (known deviations in EXPERIMENTS.md)
    assert close >= total * 0.6, f"{close}/{total}"
