"""Serving benchmark: artifact loading vs. compiling, batched vs. single.

Two headline measurements on resnet8 (fast execution mode), written to
``BENCH_serve.json``:

* **cold-compile vs. artifact-load latency** — time to first servable
  model: a full compile with an empty tiling cache vs.
  ``repro.serve.load_artifact`` on a packed ``.dna`` file (the
  compile-once/serve-many split the artifact store exists for);
* **single-request vs. dynamically-batched throughput** — wall-clock
  requests/second through the :class:`~repro.serve.InferenceServer`,
  first with batching disabled and one closed-loop client (every
  request waits for its response), then under saturated load with the
  dynamic batcher coalescing (open-loop submission, the server's
  steady-state regime).

Before anything is timed the served outputs are byte-compared against
the reference interpreter and the loaded artifact is checked bit-exact
(outputs + modeled cycles) against a fresh compile — a divergence
fails the run (CI smoke gate). Runs standalone
(``python benchmarks/bench_serve.py``) and under pytest.
"""

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from bench_timing import best_of
from repro.core import TilingCache, compile_model
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.runtime import Executor, random_inputs, run_reference
from repro.serve import InferenceServer, load_artifact, pack_model
from repro.soc import DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_serve.json"
MODEL = "resnet"
CONFIG = "digital"
#: Eq. 2 budget forcing genuinely tiled DORY schedules (as in
#: bench_execute), so "cold compile" includes a real tiling search.
L1_BUDGET = 16 * 1024
REQUESTS = 512
MAX_BATCH = 32
MAX_WAIT_MS = 2.0
POOL = 8  # distinct request payloads cycled by the load generator
REPS = 5


class ServeDivergenceError(AssertionError):
    """Served output or loaded artifact disagreed with the golden path."""


def _fresh(config=CONFIG, model=MODEL):
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = MLPERF_TINY[model](precision=precision)
    return graph, DianaSoC(**soc_kwargs), cfg.with_overrides(
        l1_budget=L1_BUDGET)


def _check_artifact(art, graph, soc, cfg):
    """Loaded artifact must equal a fresh compile: bytes and cycles."""
    fresh = compile_model(graph, soc, cfg)
    if fresh.fingerprint() != art.fingerprint:
        raise ServeDivergenceError("artifact fingerprint != fresh compile")
    feeds = random_inputs(graph, seed=1)
    a = Executor(art.soc, exec_mode="fast").run(art.model, feeds)
    b = Executor(soc, exec_mode="fast").run(fresh, feeds)
    if not np.array_equal(a.output, b.output):
        raise ServeDivergenceError("artifact output != fresh compile")
    if a.total_cycles != b.total_cycles:
        raise ServeDivergenceError(
            f"artifact cycles differ ({a.total_cycles} vs {b.total_cycles})")


def _throughput_legacy(requests):
    """The pre-serving status quo: every request re-runs the deploy
    path (compile_model + execute + golden-reference validation)."""
    from repro.eval.harness import deploy

    deploy(MODEL, CONFIG, exec_mode="fast")  # warm the tiling cache
    t0 = time.perf_counter()
    for i in range(requests):
        r = deploy(MODEL, CONFIG, exec_mode="fast")
        if r.verified is not True:
            raise ServeDivergenceError(f"legacy deploy {i} not verified")
    return requests / (time.perf_counter() - t0)


def _throughput_single(art, requests):
    """Closed-loop, batching disabled: one request in flight at a time."""
    graph = art.model.graph
    pool = [random_inputs(graph, seed=s) for s in range(POOL)]
    refs = [np.asarray(run_reference(graph, f)) for f in pool]
    with InferenceServer(capacity=1, max_batch_size=1,
                         max_wait_ms=0.0) as srv:
        key = srv.register_artifact(art)
        srv.infer(key, pool[0], timeout=60)  # warm caches
        outputs = []
        t0 = time.perf_counter()
        for i in range(requests):
            outputs.append(srv.infer(key, pool[i % POOL], timeout=60))
        dt = time.perf_counter() - t0
    for i, out in enumerate(outputs):
        if not np.array_equal(out, refs[i % POOL]):
            raise ServeDivergenceError(f"single request {i} != reference")
    return requests / dt


def _throughput_batched(art, requests, max_batch, max_wait_ms):
    """Open-loop saturation: the dynamic batcher coalesces the queue."""
    graph = art.model.graph
    pool = [random_inputs(graph, seed=s) for s in range(POOL)]
    refs = [np.asarray(run_reference(graph, f)) for f in pool]
    with InferenceServer(capacity=1, max_batch_size=max_batch,
                         max_wait_ms=max_wait_ms) as srv:
        key = srv.register_artifact(art)
        srv.infer(key, pool[0], timeout=60)
        t0 = time.perf_counter()
        futures = [srv.submit(key, pool[i % POOL]) for i in range(requests)]
        outputs = [fut.result(timeout=120) for fut in futures]
        dt = time.perf_counter() - t0
        stats = srv.stats()[key]
    for i, out in enumerate(outputs):
        if not np.array_equal(out[0], refs[i % POOL][0]):
            raise ServeDivergenceError(f"batched request {i} != reference")
    return requests / dt, stats


def run_bench(requests=REQUESTS, reps=REPS, max_batch=MAX_BATCH,
              max_wait_ms=MAX_WAIT_MS, write=True) -> dict:
    graph, soc, cfg = _fresh()
    artifact_path = str(ROOT / f"{MODEL}8-{CONFIG}.bench.dna")
    art = pack_model(graph, soc, cfg, artifact_path, validate_runs=1)
    _check_artifact(art, graph, soc, cfg)

    # time-to-first-servable-model: cold compile vs. artifact load.
    # A fresh TilingCache per rep keeps the compile genuinely cold.
    compile_s = best_of(
        lambda: compile_model(graph, soc, cfg, cache=TilingCache()), reps)
    load_s = best_of(lambda: load_artifact(artifact_path), reps)

    legacy_rps = _throughput_legacy(max(requests // 8, 8))
    single_rps = max(_throughput_single(art, requests) for _ in range(reps))
    batched_rps, batched_stats = max(
        (_throughput_batched(art, requests, max_batch, max_wait_ms)
         for _ in range(reps)), key=lambda rs: rs[0])

    pathlib.Path(artifact_path).unlink(missing_ok=True)
    record = {
        "model": MODEL,
        "config": CONFIG,
        "exec_mode": "fast",
        "requests": requests,
        "reps": reps,
        "max_batch_size": max_batch,
        "max_wait_ms": max_wait_ms,
        "cold_compile_s": compile_s,
        "artifact_load_s": load_s,
        "load_speedup": compile_s / max(load_s, 1e-12),
        "legacy_deploy_rps": legacy_rps,
        "single_request_rps": single_rps,
        "batched_rps": batched_rps,
        "batched_mean_batch": batched_stats["mean_batch_size"],
        "batching_speedup": batched_rps / max(single_rps, 1e-12),
        "serving_speedup_vs_legacy": batched_rps / max(legacy_rps, 1e-12),
    }
    if write:
        OUT.write_text(json.dumps(record, indent=2) + "\n")
    return record


def _format(record: dict) -> str:
    compile_ms = record["cold_compile_s"] * 1e3
    load_ms = record["artifact_load_s"] * 1e3
    return "\n".join([
        f"serving bench ({record['model']}8 {record['config']}, fast mode, "
        f"{record['requests']} requests, best of {record['reps']}):",
        f"  time to servable : cold compile {compile_ms:8.1f} ms   "
        f"artifact load {load_ms:6.1f} ms  ({record['load_speedup']:.1f}x)",
        f"  throughput       : single-request "
        f"{record['single_request_rps']:7.1f} req/s   batched "
        f"{record['batched_rps']:7.1f} req/s "
        f"({record['batching_speedup']:.2f}x, mean batch "
        f"{record['batched_mean_batch']:.1f})",
        f"  legacy deploy/req: {record['legacy_deploy_rps']:7.1f} req/s "
        f"(recompile + revalidate each request; batched serving is "
        f"{record['serving_speedup_vs_legacy']:.1f}x)",
    ])


def test_serve_throughput(report, benchmark):
    """Correctness gates + a quick timing pass (full run: CI/standalone)."""
    record = run_bench(requests=48, reps=2, write=False)
    # the artifact path must actually skip compilation...
    assert record["load_speedup"] > 1.0
    # ...and coalesced serving must beat request-at-a-time serving
    # (the committed BENCH_serve.json documents the full-size margin)
    assert record["batching_speedup"] > 1.0
    graph, soc, cfg = _fresh()
    compiled = compile_model(graph, soc, cfg)
    feeds = random_inputs(graph, seed=2)
    with InferenceServer(max_batch_size=4, max_wait_ms=1.0) as srv:
        key = srv.register_model(compiled, soc)
        benchmark(lambda: srv.infer(key, feeds, timeout=60))
    report(_format(record))


def main(argv=None) -> int:
    global OUT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=REQUESTS)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--max-batch-size", type=int, default=MAX_BATCH)
    parser.add_argument("--max-wait-ms", type=float, default=MAX_WAIT_MS)
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    OUT = pathlib.Path(args.out)
    try:
        record = run_bench(requests=args.requests, reps=args.reps,
                           max_batch=args.max_batch_size,
                           max_wait_ms=args.max_wait_ms)
    except ServeDivergenceError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1
    print(_format(record))
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
