"""Observability overhead benchmark and model-fidelity report.

The tracing hot path in :mod:`repro.runtime.executor` is one
``tracer = get_tracer()`` per run plus one ``tracer is not None``
branch per executed step. This benchmark gates that contract:

* **disabled overhead** — end-to-end fast-mode wall clock with the
  tracer disabled vs. the per-step guard cost measured directly by a
  microbenchmark. The committed gate is
  ``guard_ns * steps / fast_ns <= 2%`` — a machine-portable bound
  (both sides scale with the host) rather than a comparison between
  two noisy end-to-end timings;
* **enabled overhead** — the same fast run under ``enable_tracing()``
  (span records + ``monotonic_ns`` stamps), reported but not gated:
  enabling tracing is an explicit, paid-for choice;
* **model fidelity** — per-model measured-vs-modeled totals from
  :func:`repro.obs.profile_model`, the table behind
  ``docs/OBSERVABILITY.md``.

``--check`` runs only the disabled-overhead gate (the CI obs-smoke
job); a full run writes ``BENCH_obs.json``. Runs standalone
(``python benchmarks/bench_obs.py --reps 3``) and under pytest.
"""

import argparse
import json
import pathlib
import sys
import time

from bench_timing import best_of
from repro.core.compiler import compile_model
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.obs import disable_tracing, enable_tracing, profile_model
from repro.obs.trace import get_tracer
from repro.runtime import Executor, random_inputs
from repro.soc import DianaSoC

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_obs.json"
MODELS = ("dscnn", "mobilenet", "resnet", "toyadmos")
REPS = 5
GATE_PCT = 2.0  #: max disabled-tracing overhead on the fast path


def _compiled(model: str):
    precision, soc_kwargs, cfg = CONFIGS["digital"]
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    return graph, soc, compile_model(graph, soc, cfg)


def guard_cost_ns(iters: int = 200_000) -> float:
    """Per-step cost of the disabled-tracing guard, in nanoseconds.

    Times exactly what the executor adds per step when tracing is off:
    a ``get_tracer()`` module-global read plus an ``is not None``
    branch, against a calibration loop without them.
    """
    assert get_tracer() is None
    acc = 0

    def with_guard():
        nonlocal acc
        for _ in range(iters):
            tracer = get_tracer()
            if tracer is not None:  # pragma: no cover - tracing is off
                acc += 1

    def bare_loop():
        nonlocal acc
        for _ in range(iters):
            tracer = None
            if tracer is not None:  # pragma: no cover
                acc += 1

    guarded = best_of(with_guard, 5)
    bare = best_of(bare_loop, 5)
    return max(guarded - bare, 0.0) * 1e9 / iters


def run_gate(models=MODELS, reps: int = REPS) -> dict:
    """The CI gate: projected disabled overhead must stay under 2%.

    The projection ``guard_ns * steps / fast_ns`` is deliberately
    pessimistic — it charges the full microbenchmarked guard cost to
    every step of the fastest observed run.
    """
    guard_ns = guard_cost_ns()
    rows = {}
    for model in models:
        graph, soc, compiled = _compiled(model)
        feeds = random_inputs(graph, seed=1)
        executor = Executor(soc, exec_mode="fast")
        executor.run(compiled, feeds)  # warm caches
        fast_s = best_of(lambda: executor.run(compiled, feeds), reps)
        steps = len(compiled.steps)
        overhead_pct = 100.0 * guard_ns * steps / (fast_s * 1e9)
        rows[model] = {
            "fast_s": fast_s,
            "steps": steps,
            "disabled_overhead_pct": overhead_pct,
        }
        if overhead_pct > GATE_PCT:
            raise AssertionError(
                f"{model}: projected disabled-tracing overhead "
                f"{overhead_pct:.3f}% exceeds the {GATE_PCT}% gate "
                f"(guard {guard_ns:.1f} ns x {steps} steps over "
                f"{fast_s * 1e3:.3f} ms)")
    return {"guard_ns": guard_ns, "gate_pct": GATE_PCT, "models": rows}


def run_bench(models=MODELS, reps: int = REPS, write: bool = True) -> dict:
    gate = run_gate(models, reps)
    record = {
        "gate": gate,
        "models": {},
        "fidelity": {},
    }
    for model in models:
        graph, soc, compiled = _compiled(model)
        feeds = random_inputs(graph, seed=1)
        executor = Executor(soc, exec_mode="fast")
        executor.run(compiled, feeds)
        disabled_s = best_of(lambda: executor.run(compiled, feeds), reps)

        def traced_run():
            executor.run(compiled, feeds)
            get_tracer().drain()  # keep the span buffer flat

        tracer = enable_tracing()
        try:
            traced_run()
            enabled_s = best_of(traced_run, reps)
        finally:
            disable_tracing()
            tracer.drain()
        record["models"][model] = {
            "disabled_s": disabled_s,
            "enabled_s": enabled_s,
            "enabled_overhead_pct":
                100.0 * (enabled_s - disabled_s) / disabled_s,
            "steps": len(compiled.steps),
        }
        report = profile_model(compiled, soc, exec_mode="fast",
                               runs=reps, feeds=feeds)
        record["fidelity"][model] = {
            "measured_ms": report["total_measured_ms"],
            "modeled_ms": report["total_modeled_ms"],
            "ratio": report["ratio"],
            "steps": report["steps"],
        }
    if write:
        OUT.write_text(json.dumps(record, indent=1, sort_keys=True) + "\n")
    return record


def _format(record: dict) -> str:
    gate = record["gate"]
    lines = [
        f"disabled-tracing guard: {gate['guard_ns']:.1f} ns/step "
        f"(gate: <= {gate['gate_pct']}% of the fast path)",
    ]
    for model, r in record["models"].items():
        g = gate["models"][model]
        lines.append(
            f"  {model:10s} fast {r['disabled_s'] * 1e3:7.3f} ms  "
            f"disabled-overhead {g['disabled_overhead_pct']:.3f}%  "
            f"traced {r['enabled_s'] * 1e3:7.3f} ms "
            f"({r['enabled_overhead_pct']:+.1f}%)")
    lines.append("model fidelity (measured vs modeled, fast mode):")
    for model, f in record["fidelity"].items():
        lines.append(
            f"  {model:10s} measured {f['measured_ms']:8.3f} ms  "
            f"modeled {f['modeled_ms']:8.3f} ms  "
            f"ratio {f['ratio']:.2f} over {f['steps']} steps")
    return "\n".join(lines)


def test_disabled_overhead_gate(report):
    """CI variant: gate one model, sanity-check the traced run."""
    gate = run_gate(models=("dscnn",), reps=3)
    assert gate["models"]["dscnn"]["disabled_overhead_pct"] <= GATE_PCT
    graph, soc, compiled = _compiled("dscnn")
    fidelity = profile_model(compiled, soc, exec_mode="fast", runs=2,
                             feeds=random_inputs(graph, seed=1))
    assert fidelity["steps"] == len(compiled.steps)
    assert fidelity["total_measured_ms"] > 0
    report(_format({"gate": gate, "models": {}, "fidelity": {
        "dscnn": {"measured_ms": fidelity["total_measured_ms"],
                  "modeled_ms": fidelity["total_modeled_ms"],
                  "ratio": fidelity["ratio"],
                  "steps": fidelity["steps"]}}}))


def main(argv=None) -> int:
    global OUT
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reps", type=int, default=REPS,
                        help="timing repetitions (best-of)")
    parser.add_argument("--models", nargs="+", default=list(MODELS),
                        choices=sorted(MLPERF_TINY))
    parser.add_argument("--check", action="store_true",
                        help="disabled-overhead gate only, no timings, "
                             "no BENCH_obs.json")
    parser.add_argument("--out", default=str(OUT))
    args = parser.parse_args(argv)
    OUT = pathlib.Path(args.out)
    t0 = time.perf_counter()
    try:
        if args.check:
            gate = run_gate(models=tuple(args.models), reps=args.reps)
            for model, r in gate["models"].items():
                print(f"  {model}: disabled overhead "
                      f"{r['disabled_overhead_pct']:.3f}% "
                      f"<= {GATE_PCT}%")
            print(f"OK: guard {gate['guard_ns']:.1f} ns/step, "
                  f"{len(gate['models'])} models under the gate "
                  f"({time.perf_counter() - t0:.1f}s)")
            return 0
        record = run_bench(models=tuple(args.models), reps=args.reps)
        print(_format(record))
        print(f"wrote {OUT}")
        return 0
    except AssertionError as exc:
        print(f"FAIL: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
