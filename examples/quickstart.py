#!/usr/bin/env python3
"""Quickstart: compile and simulate ResNet-8 on DIANA with HTVM.

Walks the full flow of the paper's Fig. 1:

    quantized model -> pattern matching -> dispatch -> DORY tiling
    -> memory planning -> C emission -> simulated execution

and verifies the deployment bit-exactly against the reference
interpreter.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Executor, HTVM, compile_model, get_platform, latency_ms
from repro.frontend.modelzoo import resnet8
from repro.runtime import random_inputs, run_reference


def main():
    # 1. build the quantized model (MLPerf Tiny ResNet-8, int8 weights)
    graph = resnet8(precision="int8")
    print(f"model: {graph.name}, {graph.total_macs() / 1e6:.2f} MMACs, "
          f"{graph.weight_bytes() / 1024:.1f} kB weights")

    # 2. compile for the DIANA SoC with the full HTVM flow (the
    #    platform registry lists alternatives: `repro platforms`)
    soc = get_platform("diana")
    model = compile_model(graph, soc, HTVM)
    print(model.summary())
    print("\ndispatch decisions:")
    for d in model.dispatch_decisions:
        print(f"  {d.layer_name:<28} -> {d.target}")

    # 3. peek at the generated C
    driver = next(s for n, s in model.c_sources.items() if "dory" in n)
    print("\nfirst generated DORY driver:")
    print("\n".join(driver.splitlines()[:6]))

    # 4. run one inference on the simulated SoC
    feeds = random_inputs(graph, seed=0)
    result = Executor(soc).run(model, feeds)
    print(f"\nlatency: {latency_ms(result.total_cycles):.3f} ms "
          f"(peak view {latency_ms(result.peak_cycles):.3f} ms) "
          f"@ {soc.params.clock_hz / 1e6:.0f} MHz")
    print(f"predicted class: {int(np.argmax(result.output))}")

    # 5. verify against the golden interpreter
    reference = run_reference(model.graph, feeds)
    assert np.array_equal(result.output, reference)
    print("bit-exact vs reference interpreter: OK")

    # 6. per-kernel cycle breakdown
    print("\nper-kernel breakdown:")
    print(result.perf.report())


if __name__ == "__main__":
    main()
