#!/usr/bin/env python3
"""Keyword spotting (DS-CNN) across all four DIANA configurations.

Reproduces one row of the paper's Table I: DS-CNN deployed CPU-only,
digital-only, analog-only (ternary) and mixed, showing how the
dispatcher reacts to each platform and why the depthwise layers make
the analog-only configuration ~8x slower than mixed.

Run:  python examples/keyword_spotting.py
"""

from repro.eval.harness import CONFIGS, deploy
from repro.eval.tables import format_table


def main():
    rows = []
    details = {}
    for config in CONFIGS:
        r = deploy("dscnn", config, verify=True)
        rows.append([
            config,
            "OoM" if r.oom else f"{r.latency_ms:.2f}",
            "OoM" if r.oom else f"{r.peak_ms:.2f}",
            f"{r.size_kb:.0f}",
            r.verified,
        ])
        details[config] = r

    print(format_table(
        ["config", "HTVM ms", "peak ms", "binary kB", "bit-exact"],
        rows, title="DS-CNN keyword spotting on DIANA (Table I row)"))

    mixed = details["mixed"]
    analog = details["analog"]
    print(f"\nmixed vs analog speed-up: "
          f"{analog.latency_ms / mixed.latency_ms:.1f}x (paper: 8x)")

    print("\nwhy: cycles by target in the analog-only deployment")
    for target, cycles in analog.execution.perf.cycles_by_target().items():
        ms = cycles / 260e3
        print(f"  {target:<12} {ms:8.2f} ms")
    print("the 4 depthwise layers are unsupported by the analog core and "
          "fall back to the RISC-V CPU,\nwhich dominates the runtime — "
          "the mixed deployment routes them to the digital core instead.")

    print("\ndispatch decisions (mixed):")
    for d in details["mixed"].compiled.dispatch_decisions:
        reject = "; ".join(f"{k}: {v}" for k, v in d.rejections.items())
        print(f"  {d.layer_name:<30} -> {d.target:<12} {reject}")


if __name__ == "__main__":
    main()
