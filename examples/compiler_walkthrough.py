#!/usr/bin/env python3
"""Walk through every stage of the HTVM flow on a small model.

Prints the intermediate state after each box of the paper's Fig. 1:
the ingested Relay-style graph, the optimized graph, the pattern
matches, the dispatch decisions, the DORY tiling of one layer, the L2
memory plan, a generated C driver, and finally the simulated execution
with its Fig. 2-style timeline.

Run:  python examples/compiler_walkthrough.py
"""

import numpy as np

from repro import DianaSoC, Executor, HTVM, compile_model
from repro.dispatch import assign_targets, dispatch_summary
from repro.eval.timeline import render_timeline
from repro.frontend import import_model
from repro.ir import graph_to_text
from repro.patterns import default_specs, find_matches, partition
from repro.runtime import random_inputs, run_reference
from repro.transforms import canonicalize, eliminate_dead_code, fold_constants

MODEL = {
    "name": "walkthrough",
    "input": {"shape": [1, 8, 16, 16], "dtype": "int8"},
    "layers": [
        {"type": "conv2d", "filters": 16, "kernel": 3, "padding": 1},
        {"type": "residual", "layers": [
            {"type": "conv2d", "filters": 16, "kernel": 3, "padding": 1,
             "relu": False},
        ]},
        {"type": "max_pool", "size": 2},
        {"type": "flatten"},
        {"type": "dense", "units": 10},
        {"type": "softmax"},
    ],
}


def banner(title):
    print()
    print("=" * 72)
    print(f"== {title}")
    print("=" * 72)


def main():
    banner("1. ingest (model description -> IR)")
    graph = import_model(MODEL, seed=0)
    print(graph_to_text(graph))

    banner("2. TVM-style front-end optimizations")
    graph = eliminate_dead_code(fold_constants(canonicalize(graph)))
    print(f"{len(graph.calls())} calls after canonicalize/fold/DCE")

    banner("3. accelerator-aware pattern matching (paper Listing 1)")
    matches = find_matches(graph, default_specs())
    for m in matches:
        print(f"  matched {m.spec.name:<14} root={m.root!r} "
              f"({len(m.interior)} fused ops)")
    partitioned = partition(graph, default_specs())

    banner("4. dispatching (rule checks + bit-width selection)")
    soc = DianaSoC()
    dispatched, decisions = assign_targets(partitioned, soc)
    print(dispatch_summary(decisions))

    banner("5. the full compile (fusion, DORY tiling, planning, codegen)")
    model = compile_model(graph, soc, HTVM)
    print(model.summary())
    accel_step = next(s for s in model.steps if s.target != "cpu")
    sol = accel_step.tiling
    print(f"\nDORY tiling of {accel_step.spec.name}: "
          f"C_t={sol.cfg.c_t} K_t={sol.cfg.k_t} OY_t={sol.cfg.oy_t} "
          f"-> {sol.num_tiles} tile(s), "
          f"L1 use {sol.l1_total_bytes}/{soc.params.l1_bytes} B "
          f"(needs_tiling={sol.needs_tiling})")

    banner("6. L2 activation memory plan")
    print(model.memory_plan.report())

    banner("7. one generated DORY driver")
    name = next(n for n in model.c_sources if n.startswith("dory"))
    print(model.c_sources[name])

    banner("8. simulated execution + verification")
    feeds = random_inputs(graph, seed=1)
    result = Executor(soc).run(model, feeds)
    exact = np.array_equal(result.output, run_reference(model.graph, feeds))
    print(f"bit-exact vs reference: {exact}")
    print()
    print(render_timeline(result.perf))


if __name__ == "__main__":
    main()
