#!/usr/bin/env python3
"""Explore DORY's hardware-aware tiling (the paper's Fig. 4 machinery).

Takes one large convolution (the paper's L3: 64->128 channels, 3x3,
32x32 maps = 75.5 MMACs, 72 kB of weights) and shows, for a shrinking
L1 budget, which tile the solver picks under each heuristic strategy
and what it costs on the digital accelerator.

Run:  python examples/tiling_exploration.py
"""

from repro.dory import (
    DoryTiler, digital_heuristics, digital_pe_only_heuristics,
    no_heuristics,
)
from repro.eval.tables import format_table
from repro.frontend.modelzoo import fig4_layers
from repro.runtime.cost import cost_layer
from repro.soc import DianaSoC

STRATEGIES = [
    ("only tile size (baseline)", no_heuristics),
    ("+ PE utilization (Eqs. 3-4)", digital_pe_only_heuristics),
    ("+ DMA heuristic (Eqs. 3-5)", digital_heuristics),
]


def main():
    soc = DianaSoC()
    accel = soc.accelerator("soc.digital")
    layer = fig4_layers()[3]  # L3
    print(f"layer {layer.name}: C={layer.in_channels} K={layer.out_channels} "
          f"{layer.iy}x{layer.ix}, {layer.macs() / 1e6:.1f} MMACs, "
          f"{layer.weight_elements() / 1024:.0f} kB weights\n")

    for kb in (256, 64, 16, 8, 4):
        budget = kb * 1024
        rows = []
        for label, factory in STRATEGIES:
            tiler = DoryTiler("soc.digital", soc.params, factory(),
                              l1_budget=budget)
            sol = tiler.solve(layer)
            rec = cost_layer(layer, sol, accel, soc.params)
            cfg = sol.cfg
            rows.append([
                label,
                f"C{cfg.c_t} K{cfg.k_t} OY{cfg.oy_t}",
                sol.num_tiles,
                f"{sol.l1_total_bytes / 1024:.1f}",
                f"{rec.total_cycles:,.0f}",
                f"{rec.macs / rec.total_cycles:.1f}",
            ])
        print(format_table(
            ["strategy", "tile", "#tiles", "L1 kB", "cycles", "MAC/cy"],
            rows, title=f"L1 budget = {kb} kB"
                        + ("  (no tiling needed)" if kb == 256 else "")))
        print()

    print("note how the baseline drifts to hardware-hostile tile sizes as")
    print("the budget shrinks, while the Eq. 3-5 heuristics keep channel /")
    print("width tiles aligned to the 16x16 PE array and rows streaming")
    print("contiguously (paper Fig. 4: up to 6.2x faster execution).")


if __name__ == "__main__":
    main()
