#!/usr/bin/env python3
"""Design-space exploration with the parameterized platform model.

The HTVM flow adapts to the platform description (memory sizes, array
dimensions, DMA ports), so the reproduction can answer hardware/software
co-design questions: the tiler re-solves for each configuration and the
simulator re-measures. This script sweeps three architectural knobs and
shows how the compiler keeps deployments feasible as resources shrink.

Run:  python examples/design_space_exploration.py
"""

from repro.eval.sweep import (
    format_sweep, l1_size_sweep, sweep_param, weight_memory_sweep,
)


def main():
    print("1) shared L1 activation memory (ResNet-8, digital)")
    print("   smaller L1 -> more tiling -> more DMA jobs and PE underuse\n")
    points = l1_size_sweep("resnet", sizes_kb=(256, 64, 16, 8, 4, 2))
    print(format_sweep(points, unit=" B"))

    feasible = [p for p in points if p.latency_ms is not None]
    biggest, smallest = feasible[0], feasible[-1]
    print(f"\n   {biggest.value // 1024} kB -> {smallest.value // 1024} kB "
          f"costs {smallest.latency_ms / biggest.latency_ms:.2f}x latency, "
          f"but the deployment stays functional — the point of DORY's "
          f"hardware-aware tiling.\n")

    print("2) digital weight memory (ToyAdmos, FC-heavy)")
    print("   weights must stream through this SRAM; shrinking it "
          "forces finer K-tiles\n")
    print(format_sweep(weight_memory_sweep(
        "toyadmos", sizes_kb=(64, 32, 16, 8, 4)), unit=" B"))

    print("\n3) activation DMA port width (MobileNet, digital)")
    print("   the DW-heavy network streams large feature maps\n")
    print(format_sweep(sweep_param(
        "dma_act_bytes_per_cycle", (2.0, 4.0, 8.0, 16.0, 32.0),
        model="mobilenet", config="digital"), unit=" B/cy"))


if __name__ == "__main__":
    main()
