#!/usr/bin/env python3
"""Port HTVM to a new accelerator — the paper's generality claim.

"To support a specific heterogeneous platform, the user has to provide
to HTVM only three components: (1) the hardware specifications ... and
operations supported by the dedicated hardware, (2) the heuristics to
maximize the accelerator utilization and (3) the platform-specific
instructions" (paper Sec. III-C).

This example adds a fictitious 32x32-PE "BigNPU" to the platform,
provides those three components, and deploys ResNet-8 onto it —
without touching the compiler.

Run:  python examples/custom_accelerator.py
"""

import numpy as np

from repro import DianaSoC, Executor, HTVM, compile_model, latency_ms
from repro.frontend.modelzoo import resnet8
from repro.dispatch import assign_targets
from repro.runtime import random_inputs, run_reference
from repro.soc import DEFAULT_PARAMS
from repro.soc.digital import DigitalAccelerator


class BigNpu(DigitalAccelerator):
    """Component (1)+(3): capabilities and a 32x32 MAC-array cost model.

    It reuses the digital core's coarse-grained instruction set (so the
    functional model is inherited) but quadruples the array, keeping
    the same weight memory.
    """

    name = "soc.bignpu"
    ARRAY = 32

    def compute_cycles(self, spec, c_t, k_t, oy_t, ox_t):
        # same mapping as the 16x16 core but with 32-wide rows/columns
        import math
        if spec.kind == "conv2d":
            ix_t = min((ox_t - 1) * spec.strides[1] + spec.fx, spec.ix)
            return (k_t * oy_t * spec.fy * spec.fx
                    * math.ceil(c_t / self.ARRAY)
                    * math.ceil(ix_t / self.ARRAY))
        return super().compute_cycles(spec, c_t, k_t, oy_t, ox_t)


def prefer_bignpu(spec, accepted):
    """Component (2), selection side: send everything it can take to
    the NPU; the stock rule handles the rest."""
    if "soc.bignpu" in accepted:
        return "soc.bignpu"
    return accepted[0]


def main():
    graph = resnet8(precision="int8")

    # stock DIANA
    base_soc = DianaSoC(enable_analog=False)
    base = compile_model(graph, base_soc, HTVM)
    base_res = Executor(base_soc).run(base, random_inputs(graph, seed=0))

    # DIANA + BigNPU: register the accelerator on the platform object
    npu_soc = DianaSoC(enable_analog=False)
    npu_soc.accelerators["soc.bignpu"] = BigNpu(DEFAULT_PARAMS)

    # dispatch is a pluggable policy: prefer the NPU wherever its rules
    # accept the layer
    from repro.patterns import default_specs, partition
    from repro.transforms import fuse_cpu_ops
    import repro.dispatch.selector as selector

    pg = partition(graph, default_specs())
    dispatched, decisions = assign_targets(pg, npu_soc,
                                           prefer=prefer_bignpu)
    print("dispatch with the BigNPU registered:")
    for d in decisions[:5]:
        print(f"  {d.layer_name:<28} -> {d.target}")
    print("  ...")

    # compile against the extended platform via a custom prefer rule
    original = selector._prefer_by_bit_width
    selector._prefer_by_bit_width = prefer_bignpu
    try:
        npu_model = compile_model(graph, npu_soc, HTVM)
    finally:
        selector._prefer_by_bit_width = original

    npu_res = Executor(npu_soc).run(npu_model, random_inputs(graph, seed=0))
    assert np.array_equal(npu_res.output,
                          run_reference(npu_model.graph,
                                        random_inputs(graph, seed=0)))

    print(f"\nResNet-8 on stock DIANA digital : "
          f"{latency_ms(base_res.total_cycles):.3f} ms")
    print(f"ResNet-8 on DIANA + BigNPU      : "
          f"{latency_ms(npu_res.total_cycles):.3f} ms")
    print(f"speed-up from the larger array  : "
          f"{base_res.total_cycles / npu_res.total_cycles:.2f}x")
    print("\n(bit-exact against the reference interpreter in both cases)")


if __name__ == "__main__":
    main()
