#!/usr/bin/env python3
"""Port HTVM to a new accelerator — the paper's generality claim.

"To support a specific heterogeneous platform, the user has to provide
to HTVM only three components: (1) the hardware specifications ... and
operations supported by the dedicated hardware, (2) the heuristics to
maximize the accelerator utilization and (3) the platform-specific
instructions" (paper Sec. III-C).

This example provides those three components for a fictitious
32x32-PE "BigNPU", registers a ``diana-bignpu`` platform through the
plugin API (``repro.soc.register_platform``), and deploys ResNet-8
onto it — without touching the compiler. Because registration makes
the platform a first-class name, the same definition also works from
the CLI::

    REPRO_PLATFORMS=examples.custom_accelerator \
        repro run resnet --platform diana-bignpu
    REPRO_PLATFORMS=examples.custom_accelerator \
        repro dse --platforms diana diana-bignpu --models resnet

Run:  python examples/custom_accelerator.py
"""

import math
import os
import tempfile

import numpy as np

from repro import Executor, HTVM, compile_model, latency_ms
from repro.errors import ArtifactError
from repro.frontend.modelzoo import resnet8
from repro.runtime import random_inputs, run_reference
from repro.serve import load_artifact, pack_model
from repro.soc import PlatformSpec, get_platform, register_platform
from repro.soc.digital import DigitalAccelerator


class BigNpu(DigitalAccelerator):
    """Component (1)+(3): capabilities and a 32x32 MAC-array cost model.

    It reuses the digital core's coarse-grained instruction set (so the
    functional model is inherited) but quadruples the array, keeping
    the same weight memory.
    """

    name = "soc.bignpu"
    ARRAY = 32

    def compute_cycles(self, spec, c_t, k_t, oy_t, ox_t):
        # same mapping as the 16x16 core but with 32-wide rows/columns
        if spec.kind == "conv2d":
            ix_t = min((ox_t - 1) * spec.strides[1] + spec.fx, spec.ix)
            return (k_t * oy_t * spec.fy * spec.fx
                    * math.ceil(c_t / self.ARRAY)
                    * math.ceil(ix_t / self.ARRAY))
        return super().compute_cycles(spec, c_t, k_t, oy_t, ox_t)


def prefer_bignpu(spec, accepted):
    """Component (2), selection side: send everything it can take to
    the NPU; fall back to whatever else accepted the layer."""
    if "soc.bignpu" in accepted:
        return "soc.bignpu"
    return accepted[0]


# Registration is the porting step: one declarative spec. Importing
# this module is enough to make "diana-bignpu" resolvable everywhere —
# get_platform, repro --platform, repro dse, artifact loading.
register_platform(PlatformSpec(
    name="diana-bignpu",
    accelerators={"soc.digital": DigitalAccelerator,
                  "soc.bignpu": BigNpu},
    prefer=prefer_bignpu,
    model_precision="int8",
    description="example plugin: DIANA digital core + fictitious "
                "32x32-PE BigNPU (examples/custom_accelerator.py)",
))


def main():
    graph = resnet8(precision="int8")
    feeds = random_inputs(graph, seed=0)

    # stock DIANA (digital column) as the baseline
    base_soc = get_platform("diana", enable_analog=False)
    base = compile_model(graph, base_soc, HTVM)
    base_res = Executor(base_soc).run(base, feeds)

    # the registered plugin platform: its prefer hook steers dispatch,
    # no compiler or selector code is touched
    npu_soc = get_platform("diana-bignpu")
    npu_model = compile_model(graph, npu_soc, HTVM)
    print("dispatch on the diana-bignpu platform:")
    for d in npu_model.dispatch_decisions[:5]:
        print(f"  {d.layer_name:<28} -> {d.target}")
    print("  ...")

    npu_res = Executor(npu_soc).run(npu_model, feeds)
    assert np.array_equal(npu_res.output, run_reference(npu_model.graph,
                                                        feeds))

    # platform identity flows into fingerprints and artifacts
    assert npu_model.platform == "diana-bignpu"
    assert npu_model.fingerprint() != base.fingerprint()

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "resnet8.bignpu.dna")
        pack_model(graph, npu_soc, HTVM.with_overrides(
            platform="diana-bignpu"), path)
        art = load_artifact(path, expected_platform="diana-bignpu")
        replay = Executor(art.soc).run(art.model, feeds)
        assert np.array_equal(replay.output, npu_res.output)
        try:  # a diana deployment must refuse the BigNPU artifact
            load_artifact(path, expected_platform="diana")
        except ArtifactError as exc:
            assert "V-ART-012" in str(exc)
            print("\ncross-platform load rejected as expected:")
            print(f"  {exc}")

    print(f"\nResNet-8 on stock DIANA digital : "
          f"{latency_ms(base_res.total_cycles):.3f} ms")
    print(f"ResNet-8 on DIANA + BigNPU      : "
          f"{latency_ms(npu_res.total_cycles):.3f} ms")
    print(f"speed-up from the larger array  : "
          f"{base_res.total_cycles / npu_res.total_cycles:.2f}x")
    print("\n(bit-exact against the reference interpreter in both cases)")


if __name__ == "__main__":
    main()
