#!/usr/bin/env python3
"""Extension study: analog compute-in-memory noise vs. output stability.

The paper evaluates latency/size only, but DIANA's analog core computes
in charge domain and is subject to noise. The simulator ships an
optional Gaussian accumulator-noise model
(:meth:`AnalogAccelerator.execute_noisy`); this study sweeps the noise
level on a ternary ResNet-8 block and reports how often the quantized
outputs change, and whether the end-to-end argmax flips.

Run:  python examples/analog_noise_study.py
"""

import numpy as np

from repro.dory import make_conv_spec
from repro.eval.tables import format_table
from repro.soc import AnalogAccelerator, DEFAULT_PARAMS


def layer_study():
    accel = AnalogAccelerator(DEFAULT_PARAMS)
    spec = make_conv_spec("resnet_block", 64, 64, 8, 8, padding=(1, 1),
                          weight_dtype="ternary", shift=5)
    rng = np.random.default_rng(0)
    x = rng.integers(-64, 64, (1, 64, 8, 8)).astype(np.int8)
    w = rng.integers(-1, 2, (64, 64, 3, 3)).astype(np.int8)
    bias = rng.integers(-200, 200, 64).astype(np.int32)
    clean = accel.execute(spec, x, w, bias)

    rows = []
    for sigma in (0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0):
        flips = []
        max_abs = []
        for trial in range(10):
            noisy = accel.execute_noisy(
                spec, x, w, bias, sigma, np.random.default_rng(100 + trial))
            flips.append(float((noisy != clean).mean()))
            max_abs.append(int(np.abs(noisy.astype(np.int32)
                                      - clean.astype(np.int32)).max()))
        rows.append([
            f"{sigma:.2f}",
            f"{100 * np.mean(flips):6.2f}%",
            f"{np.mean(max_abs):.1f}",
        ])
    print(format_table(
        ["sigma per row", "outputs changed", "max |delta| (LSBs)"],
        rows,
        title="Analog noise study — 64ch 3x3 ternary conv "
              f"({spec.macs() / 1e6:.2f} MMACs, rows="
              f"{accel.mapped_rows(spec, 64)})"))
    print("\nnoise is injected on the int32 accumulator, scaled by "
          "sqrt(mapped rows);\nthe requantization right-shift absorbs "
          "small perturbations, which is why\nlow-sigma rows are nearly "
          "unaffected — the mechanism that lets DIANA\nrun inner layers "
          "in the analog domain 'without accuracy drop' (Sec. IV-C).")


if __name__ == "__main__":
    layer_study()
