"""Depth-first execution analysis tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dory import make_conv_spec
from repro.errors import UnsupportedError
from repro.extensions import (
    analyze_depth_first, chain_from_graph, layer_by_layer_peak_bytes,
)


def simple_chain(n=3, c=8, hw=32):
    chain = []
    for i in range(n):
        chain.append(make_conv_spec(f"c{i}", c, c, hw, hw, padding=(1, 1)))
    return chain


class TestChainValidation:
    def test_empty_rejected(self):
        with pytest.raises(UnsupportedError):
            layer_by_layer_peak_bytes([])

    def test_channel_mismatch_rejected(self):
        a = make_conv_spec("a", 8, 8, 16, 16, padding=(1, 1))
        b = make_conv_spec("b", 4, 4, 16, 16, padding=(1, 1))
        with pytest.raises(UnsupportedError, match="mismatch"):
            layer_by_layer_peak_bytes([a, b])

    def test_spatial_mismatch_rejected(self):
        a = make_conv_spec("a", 8, 8, 16, 16, padding=(1, 1))
        b = make_conv_spec("b", 8, 8, 8, 8, padding=(1, 1))
        with pytest.raises(UnsupportedError, match="mismatch"):
            layer_by_layer_peak_bytes([a, b])


class TestAnalysis:
    def test_single_patch_equals_nominal(self):
        chain = simple_chain()
        plan = analyze_depth_first(chain, (1, 1))
        assert plan.recompute_factor == pytest.approx(1.0)
        assert plan.total_macs == plan.nominal_macs

    def test_patching_reduces_intermediate_memory(self):
        chain = simple_chain(n=4, c=16, hw=64)
        whole = analyze_depth_first(chain, (1, 1))
        patched = analyze_depth_first(chain, (4, 4))
        assert patched.patch_buffer_bytes < whole.patch_buffer_bytes / 4

    def test_recompute_grows_with_patches(self):
        chain = simple_chain(n=4, c=8, hw=32)
        f2 = analyze_depth_first(chain, (2, 2)).recompute_factor
        f8 = analyze_depth_first(chain, (8, 8)).recompute_factor
        assert 1.0 < f2 < f8

    def test_recompute_never_below_one(self):
        chain = simple_chain(n=2)
        for grid in ((1, 1), (2, 2), (5, 3)):
            assert analyze_depth_first(chain, grid).recompute_factor >= 1.0

    def test_strided_chain(self):
        c0 = make_conv_spec("c0", 8, 16, 32, 32, strides=(2, 2),
                            padding=(1, 1))
        c1 = make_conv_spec("c1", 16, 16, 16, 16, padding=(1, 1))
        plan = analyze_depth_first([c0, c1], (2, 2))
        assert plan.num_patches == 4
        assert plan.recompute_factor > 1.0

    def test_depthwise_chain_macs(self):
        dw = make_conv_spec("dw", 8, 8, 16, 16, padding=(1, 1),
                            depthwise=True)
        plan = analyze_depth_first([dw], (1, 1))
        assert plan.nominal_macs == dw.macs()
        assert plan.total_macs == dw.macs()

    def test_invalid_grid(self):
        with pytest.raises(UnsupportedError):
            analyze_depth_first(simple_chain(), (0, 1))
        with pytest.raises(UnsupportedError):
            analyze_depth_first(simple_chain(n=1, hw=8), (100, 1))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 4), st.sampled_from([8, 16, 24]),
           st.integers(1, 4), st.integers(1, 4))
    def test_property_macs_partition(self, n, hw, py, px):
        """With 3x3/pad-1 layers, per-patch output regions partition the
        feature map, so single-patch totals must equal nominal MACs."""
        chain = simple_chain(n=n, c=4, hw=hw)
        plan = analyze_depth_first(chain, (1, 1))
        assert plan.total_macs == plan.nominal_macs
        grid = (min(py, hw), min(px, hw))
        patched = analyze_depth_first(chain, grid)
        # the final layer's MACs are never recomputed (patches tile it)
        last = chain[-1]
        assert patched.total_macs >= plan.total_macs
        assert patched.peak_bytes > 0


class TestChainExtraction:
    def test_mobilenet_prefix(self):
        from repro.frontend.modelzoo import mobilenet_v1
        from repro.patterns import default_specs, partition
        graph = partition(mobilenet_v1(), default_specs())
        chain = chain_from_graph(graph, max_len=5)
        assert 1 <= len(chain) <= 5
        assert chain[0].in_channels == 3

    def test_depth_first_wins_on_mobilenet_head(self):
        """The motivating case of MCUNetV2: early high-resolution
        stages dominate peak memory; patching trades a small recompute
        overhead for a large memory cut."""
        from repro.frontend.modelzoo import mobilenet_v1
        from repro.patterns import default_specs, partition
        graph = partition(mobilenet_v1(), default_specs())
        chain = chain_from_graph(graph, max_len=3)
        baseline = layer_by_layer_peak_bytes(chain)
        plan = analyze_depth_first(chain, (4, 4))
        assert plan.patch_buffer_bytes < baseline
        assert plan.recompute_factor < 2.0

    def test_no_chain_raises(self):
        from repro.ir import GraphBuilder
        from repro.patterns import default_specs, partition
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 8), "int8")
        g = partition(b.finish(b.dense_requant(x, 4)), default_specs())
        with pytest.raises(UnsupportedError):
            chain_from_graph(g)
