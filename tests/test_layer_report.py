"""Per-layer report tests."""

import pytest

from repro.core import HTVM, compile_model
from repro.eval.layer_report import format_layer_report, layer_report
from repro.frontend.modelzoo import resnet8
from repro.runtime import Executor, random_inputs
from repro.soc import DianaSoC


@pytest.fixture(scope="module")
def reported():
    soc = DianaSoC(enable_analog=False)
    graph = resnet8()
    model = compile_model(graph, soc, HTVM)
    result = Executor(soc).run(model, random_inputs(graph, seed=0))
    return model, result, layer_report(model, result, soc.params)


class TestLayerReport:
    def test_one_row_per_step(self, reported):
        model, _, rows = reported
        assert len(rows) == len(model.steps)

    def test_cycles_sum_to_total(self, reported):
        _, result, rows = reported
        assert sum(r.cycles for r in rows) == pytest.approx(
            result.total_cycles)

    def test_geometry_strings(self, reported):
        _, _, rows = reported
        geoms = [r.geometry for r in rows]
        assert any(g.startswith("conv 3->16") for g in geoms)
        assert any(g.startswith("dense 64->10") for g in geoms)
        assert any(g.startswith("add ") for g in geoms)

    def test_energy_positive(self, reported):
        _, _, rows = reported
        assert all(r.energy_uj > 0 for r in rows)

    def test_format_full(self, reported):
        _, _, rows = reported
        text = format_layer_report(rows)
        assert "per-layer report" in text
        assert "MAC/cy" in text
        assert len(text.splitlines()) == len(rows) + 3

    def test_format_top(self, reported):
        _, _, rows = reported
        text = format_layer_report(rows, top=3)
        assert "top 3" in text
        assert len(text.splitlines()) == 3 + 3

    def test_shares_sum_to_100(self, reported):
        _, _, rows = reported
        total = sum(r.cycles for r in rows)
        shares = [r.cycles / total for r in rows]
        assert sum(shares) == pytest.approx(1.0)
