"""Shared test helpers, importable from both tests/ and benchmarks/.

These live outside conftest.py on purpose: both tests/ and benchmarks/
carry a conftest.py, and a plain ``from conftest import ...`` resolves
to whichever directory pytest happened to visit first
(``sys.modules["conftest"]`` is claimed once per process). A uniquely
named module has no such ordering hazard.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import compile_model
from repro.core.config import HTVM
from repro.ir import GraphBuilder
from repro.runtime import Executor, random_inputs, run_reference


def build_small_cnn(seed: int = 1, channels: int = 16, hw: int = 16):
    """A small quantized CNN exercising conv/add/pool/dense/softmax."""
    b = GraphBuilder(name="small_cnn", seed=seed)
    x = b.input("data", (1, 3, hw, hw), "int8")
    y = b.conv2d_requant(x, channels, kernel=3, padding=(1, 1))
    z = b.conv2d_requant(y, channels, kernel=3, padding=(1, 1), relu=False)
    r = b.add_requant(y, z, shift=1)
    r = b.max_pool2d(r, 2)
    r = b.flatten(r)
    r = b.dense_requant(r, 10)
    r = b.softmax(r)
    return b.finish(r)


def assert_compiled_matches_reference(graph, soc, config=HTVM, seed=3):
    """Compile, execute on the SoC sim, compare against the interpreter."""
    model = compile_model(graph, soc, config)
    feeds = random_inputs(graph, seed=seed)
    result = Executor(soc).run(model, feeds)
    reference = run_reference(model.graph, feeds)
    np.testing.assert_array_equal(
        np.asarray(result.output), np.asarray(reference))
    return model, result
