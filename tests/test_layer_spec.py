"""LayerSpec extraction and construction tests."""

import numpy as np
import pytest

from repro.dory import LayerSpec, make_conv_spec, make_dense_spec, spec_from_composite
from repro.errors import UnsupportedError
from repro.ir import GraphBuilder
from repro.patterns import default_specs, partition
from helpers import build_small_cnn


def first_composite(graph, pattern):
    for comp in graph.composites():
        if comp.pattern_name == pattern:
            return comp
    raise AssertionError(f"no composite {pattern}")


class TestFromComposite:
    def test_conv_spec(self, small_cnn):
        pg = partition(small_cnn, default_specs())
        comp = first_composite(pg, "htvm.qconv2d")
        spec = spec_from_composite(comp, "L")
        assert spec.kind == "conv2d"
        assert spec.in_channels == 3
        assert spec.out_channels == 16
        assert (spec.iy, spec.ix) == (16, 16)
        assert spec.padding == (1, 1)
        assert spec.relu is True
        assert spec.shift == 8
        assert spec.weight.shape == (16, 3, 3, 3)
        assert spec.bias.shape == (16,)

    def test_dense_spec(self, small_cnn):
        pg = partition(small_cnn, default_specs())
        comp = first_composite(pg, "htvm.qdense")
        spec = spec_from_composite(comp, "fc")
        assert spec.kind == "dense"
        assert spec.out_channels == 10
        assert spec.relu is False

    def test_add_spec(self, small_cnn):
        pg = partition(small_cnn, default_specs())
        comp = first_composite(pg, "htvm.qadd")
        spec = spec_from_composite(comp, "add")
        assert spec.kind == "add"
        assert spec.macs() == 0

    def test_dwconv_spec(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 8, 8, 8), "int8")
        g = partition(b.finish(b.dwconv2d_requant(x, padding=(1, 1))),
                      default_specs())
        spec = spec_from_composite(first_composite(g, "htvm.qconv2d"), "dw")
        assert spec.kind == "dwconv2d"
        assert spec.groups == 8
        assert spec.macs() == 8 * 9 * 8 * 8

    def test_ternary_weight_dtype(self):
        from repro.frontend.modelzoo import resnet8
        pg = partition(resnet8(precision="ternary"), default_specs())
        comp = first_composite(pg, "htvm.qconv2d")
        spec = spec_from_composite(comp, "c")
        assert spec.weight_dtype == "ternary"
        assert spec.in_dtype == "int7"


class TestConstructors:
    def test_fig4_geometry(self):
        from repro.frontend.modelzoo import fig4_layers
        layers = fig4_layers()
        macs = [round(s.macs() / 1e6, 2) for s in layers]
        assert macs == [2.36, 9.44, 18.87, 75.5]
        params_kb = [s.weight_elements() / 1024 for s in layers]
        assert params_kb == [2.25, 9.0, 18.0, 72.0]

    def test_make_dense(self):
        s = make_dense_spec("fc", 640, 128)
        assert s.macs() == 640 * 128
        assert s.input_elements() == 640

    def test_ternary_spec_dtypes(self):
        s = make_conv_spec("c", 16, 16, 8, 8, padding=(1, 1),
                           weight_dtype="ternary")
        assert s.in_dtype == "int7"

    def test_input_tile_hw_halo(self):
        s = make_conv_spec("c", 8, 8, 16, 16, fy=3, fx=3, padding=(1, 1))
        assert s.input_tile_hw(4, 4) == (6, 6)
        s2 = make_conv_spec("c", 8, 8, 16, 16, fy=3, fx=3, strides=(2, 2),
                            padding=(1, 1))
        assert s2.input_tile_hw(4, 4) == (9, 9)

    def test_validate_rejects_bad_geometry(self):
        s = make_conv_spec("c", 8, 8, 16, 16, padding=(1, 1))
        s.oy = 99
        with pytest.raises(UnsupportedError):
            s.validate()

    def test_validate_rejects_bad_kind(self):
        s = make_dense_spec("fc", 4, 4)
        s.kind = "lstm"
        with pytest.raises(UnsupportedError):
            s.validate()

    def test_dw_requires_equal_channels(self):
        s = make_conv_spec("dw", 8, 8, 8, 8, padding=(1, 1), depthwise=True)
        s.out_channels = 16
        with pytest.raises(UnsupportedError):
            s.validate()
