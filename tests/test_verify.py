"""Mutation-based tests for the static verifier framework.

Every fault class named in the verifier design doc is *seeded* into an
otherwise-clean compile, and the test asserts that the matching checker
flags it with its specific diagnostic code — not merely that "something
failed".  A clean-pass sweep over the model zoo x Table I grid proves
the checkers are quiet on healthy deployments.
"""

from __future__ import annotations

import dataclasses
import gzip
import json
import subprocess
import sys

import pytest

from repro.core.compiler import compile_model
from repro.core.program import AccelStep
from repro.errors import ArtifactError, VerificationError
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.ir import Call, Constant, TensorType, Var
from repro.serve.artifact import (
    artifact_to_dict, load_artifact, save_artifact,
)
from repro.soc import DianaSoC
from repro.verify import (
    CHECK_SCHEMA, CODES, CheckResult, Diagnostic, Severity, assert_valid,
    check_artifact_dict, check_artifact_file, check_compiled_plan,
    check_graph, check_memory_plan, grid_report, verify_graph, verify_grid,
    verify_model,
)

from helpers import build_small_cnn


def _compile_cell(model: str, config: str):
    """Fresh (compiled, soc, cfg) for one zoo x Table I cell."""
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    return compile_model(graph, soc, cfg), soc, cfg


# ---------------------------------------------------------------------------
# diagnostic vocabulary
# ---------------------------------------------------------------------------

class TestDiagnostics:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("V-BOGUS-999", Severity.ERROR, "graph", "nope")

    def test_warning_does_not_fail_result(self):
        r = CheckResult(target="t")
        r.add([Diagnostic("V-GRAPH-003", Severity.WARNING, "graph", "m")],
              "graph")
        assert r.ok
        assert r.codes() == ["V-GRAPH-003"]
        assert "PASS" in r.render()

    def test_error_fails_result_and_assert_valid_raises(self):
        r = CheckResult(target="t")
        r.add([Diagnostic("V-MEM-002", Severity.ERROR, "memory", "overlap")],
              "memory")
        assert not r.ok
        with pytest.raises(VerificationError, match="V-MEM-002"):
            assert_valid(r)

    def test_to_dict_shape(self):
        d = Diagnostic("V-ART-001", Severity.ERROR, "artifact", "bad", "x.dna")
        dd = d.to_dict()
        assert dd["code"] == "V-ART-001"
        assert dd["severity"] == "error"
        assert dd["stage"] == "artifact"
        assert dd["location"] == "x.dna"


# ---------------------------------------------------------------------------
# graph checker
# ---------------------------------------------------------------------------

class TestGraphChecks:
    def test_clean_graph_passes(self):
        assert check_graph(build_small_cnn()) == []

    def test_dangling_input_warns(self):
        g = build_small_cnn()
        g.inputs.append(Var("unused", TensorType((1, 1), "int8")))
        result = verify_graph(g)
        assert result.ok  # warning only
        assert "V-GRAPH-003" in result.codes()

    def test_free_var_is_error(self):
        g = build_small_cnn()
        call = next(n for n in g.topo_order() if isinstance(n, Call))
        call._inputs[0] = Var("ghost", call.inputs[0].ttype)
        codes = [d.code for d in check_graph(g)]
        assert "V-GRAPH-002" in codes

    def test_cycle_detected(self):
        g = build_small_cnn()
        calls = [n for n in g.topo_order() if isinstance(n, Call)]
        # point an early call's input at the graph output: back edge
        calls[0]._inputs[0] = g.output
        codes = [d.code for d in check_graph(g)]
        assert codes == ["V-GRAPH-001"]  # cycle short-circuits the rest

    def test_type_disagreement(self):
        g = build_small_cnn()
        call = next(n for n in g.topo_order() if isinstance(n, Call))
        call.ttype = TensorType((1, 2, 3), "int8")
        codes = [d.code for d in check_graph(g)]
        assert "V-GRAPH-005" in codes

    def test_illegal_requant_shift(self):
        g = build_small_cnn()
        shift = next(n for n in g.topo_order()
                     if isinstance(n, Call) and n.op == "right_shift")
        const = shift.inputs[1]
        assert isinstance(const, Constant)
        const.value.data[...] = 40  # > 31: shifts out every bit
        codes = [d.code for d in check_graph(g)]
        assert "V-GRAPH-007" in codes


# ---------------------------------------------------------------------------
# memory-plan checker
# ---------------------------------------------------------------------------

class TestMemoryChecks:
    def test_clean_plan_passes(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        assert check_memory_plan(compiled,
                                 l2_bytes=soc.params.l2_bytes) == []

    def test_swapped_steps_break_liveness(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        compiled.steps[0], compiled.steps[1] = (
            compiled.steps[1], compiled.steps[0])
        result = verify_model(compiled, soc=soc, config=cfg)
        assert "V-MEM-005" in result.codes()
        assert "V-PLAN-001" in result.codes()  # consume-before-produce too

    def test_overlapping_l2_buffers(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        plan = compiled.memory_plan
        lives = plan.lifetimes
        names = sorted(lives)
        overlap = next(
            (a, b) for i, a in enumerate(names) for b in names[i + 1:]
            if lives[a].start <= lives[b].end
            and lives[b].start <= lives[a].end
            and plan.sizes[a] and plan.sizes[b])
        a, b = overlap
        plan.offsets[b] = plan.offsets[a]
        codes = [d.code for d in check_memory_plan(compiled)]
        assert "V-MEM-002" in codes

    def test_arena_over_l2_budget(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        codes = [d.code for d in check_memory_plan(compiled, l2_bytes=1)]
        assert "V-MEM-004" in codes

    def test_depthfirst_slab_too_small(self):
        precision, soc_kwargs, cfg = CONFIGS["digital"]
        cfg = dataclasses.replace(cfg, depthfirst="on")
        graph = MLPERF_TINY["mobilenet"](precision=precision)
        soc = DianaSoC(**soc_kwargs)
        compiled = compile_model(graph, soc, cfg)
        assert compiled.depthfirst_chains, "expected a fused chain"
        ch = compiled.depthfirst_chains[0]
        interior = compiled.steps[ch.start].output_name
        compiled.memory_plan.sizes[interior] //= 2
        codes = [d.code for d in check_memory_plan(compiled)]
        assert "V-MEM-006" in codes


# ---------------------------------------------------------------------------
# compiled-plan / tiling checker
# ---------------------------------------------------------------------------

class TestPlanChecks:
    def test_clean_plan_passes(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        assert check_compiled_plan(
            compiled, params=soc.params,
            accelerators=list(soc.accelerators)) == []

    def test_off_by_one_tile_grid(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        step = next(s for s in compiled.steps
                    if isinstance(s, AccelStep) and s.spec.kind == "conv2d"
                    and s.spec.strides == (1, 1))
        step.spec.iy += 1
        step.spec.oy += 1  # keeps LayerSpec.validate() happy
        codes = [d.code for d in check_compiled_plan(compiled)]
        assert "V-PLAN-004" in codes  # tile grid no longer covers output
        assert "V-PLAN-008" in codes  # buffer geometry disagrees too

    def test_l1_budget_violation(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        codes = [d.code for d in check_compiled_plan(
            compiled, params=soc.params, l1_budget=1)]
        assert "V-PLAN-005" in codes

    def test_unknown_accelerator_target(self):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        codes = [d.code for d in check_compiled_plan(compiled,
                                                     accelerators=[])]
        assert "V-PLAN-009" in codes


# ---------------------------------------------------------------------------
# artifact checker
# ---------------------------------------------------------------------------

def _artifact_dict(model="resnet", config="digital"):
    compiled, soc, cfg = _compile_cell(model, config)
    return artifact_to_dict(compiled, soc, cfg)


class TestArtifactChecks:
    def test_clean_artifact_passes(self, tmp_path):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        path = str(tmp_path / "m.dna")
        save_artifact(path, compiled, soc, cfg)
        assert check_artifact_file(path, deep=True) == []

    def test_truncated_file(self, tmp_path):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        path = str(tmp_path / "m.dna")
        save_artifact(path, compiled, soc, cfg)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:len(raw) // 2])
        codes = [d.code for d in check_artifact_file(path)]
        assert codes == ["V-ART-001"]

    def test_bad_magic(self):
        obj = _artifact_dict()
        obj["format"] = "zip"
        codes = [d.code for d in check_artifact_dict(obj)]
        assert codes == ["V-ART-001"]

    def test_unknown_version(self):
        obj = _artifact_dict()
        obj["version"] = 99
        codes = [d.code for d in check_artifact_dict(obj)]
        assert codes == ["V-ART-002"]

    def test_missing_section(self):
        obj = _artifact_dict()
        del obj["memory_plan"]
        codes = [d.code for d in check_artifact_dict(obj)]
        assert "V-ART-003" in codes

    def test_stale_config_fingerprint(self):
        obj = _artifact_dict()
        obj["config_fingerprint"] = "0" * 64
        codes = [d.code for d in check_artifact_dict(obj, deep=False)]
        assert "V-ART-004" in codes

    def test_stale_model_fingerprint(self):
        obj = _artifact_dict()
        obj["fingerprint"] = "0" * 64
        codes = [d.code for d in check_artifact_dict(obj, deep=True)]
        assert "V-ART-005" in codes

    def test_mapping_decision_inconsistent(self):
        obj = _artifact_dict("resnet", "digital")  # analog disabled
        obj["decisions"][0]["target"] = "soc.analog"
        codes = [d.code for d in check_artifact_dict(obj, deep=False)]
        assert "V-ART-006" in codes

    def test_load_artifact_verify_gates_tampered_plan(self, tmp_path):
        compiled, soc, cfg = _compile_cell("resnet", "digital")
        plan = compiled.memory_plan
        lives = plan.lifetimes
        names = sorted(lives)
        a, b = next(
            (x, y) for i, x in enumerate(names) for y in names[i + 1:]
            if lives[x].start <= lives[y].end
            and lives[y].start <= lives[x].end
            and plan.sizes[x] and plan.sizes[y])
        plan.offsets[b] = plan.offsets[a]
        path = str(tmp_path / "tampered.dna")
        save_artifact(path, compiled, soc, cfg)
        load_artifact(path)  # without verify, the overlap loads fine
        with pytest.raises(ArtifactError, match="V-MEM-002"):
            load_artifact(path, verify=True)


# ---------------------------------------------------------------------------
# compiler integration (verify_passes)
# ---------------------------------------------------------------------------

class TestCompilerIntegration:
    def test_verify_passes_clean_compile(self):
        precision, soc_kwargs, cfg = CONFIGS["mixed"]
        checked = dataclasses.replace(cfg, verify_passes=True)
        graph = MLPERF_TINY["resnet"](precision=precision)
        soc = DianaSoC(**soc_kwargs)
        a = compile_model(graph, soc, cfg)
        graph2 = MLPERF_TINY["resnet"](precision=precision)
        b = compile_model(graph2, soc, checked)
        assert a.fingerprint() == b.fingerprint()

    def test_verify_passes_is_non_semantic(self):
        _, _, cfg = CONFIGS["digital"]
        checked = dataclasses.replace(cfg, verify_passes=True)
        assert cfg.fingerprint() == checked.fingerprint()

    def test_broken_graph_names_transform_stage(self):
        precision, soc_kwargs, cfg = CONFIGS["digital"]
        checked = dataclasses.replace(cfg, verify_passes=True)
        graph = MLPERF_TINY["resnet"](precision=precision)
        shift = next(n for n in graph.topo_order()
                     if isinstance(n, Call) and n.op == "right_shift")
        shift.inputs[1].value.data[...] = 40
        with pytest.raises(VerificationError, match="transform:"):
            compile_model(graph, DianaSoC(**soc_kwargs), checked)


# ---------------------------------------------------------------------------
# clean-pass grid + JSON report
# ---------------------------------------------------------------------------

class TestCleanGrid:
    def test_full_zoo_table1_grid(self):
        results = verify_grid()
        assert results, "grid produced no targets"
        assert all(r.ok for r in results)
        # the paper's MobileNet-on-plain-TVM cell OoMs: recorded as an
        # INFO skip, not silently dropped and not a failure
        oom = [r for r in results if "V-RUN-001" in r.codes()]
        assert [r.target for r in oom] == ["mobilenet/cpu-tvm"]
        # every non-OoM cell is verified twice: fresh and packed .dna
        fresh = [r for r in results if not r.target.endswith(".dna")]
        packed = [r for r in results if r.target.endswith(".dna")]
        assert len(packed) == len(fresh) - len(oom)

    def test_grid_report_schema(self):
        results = verify_grid(models=["dscnn"], configs=["digital"],
                              artifacts=False)
        report = grid_report(results)
        assert report["schema"] == CHECK_SCHEMA == "repro-check/1"
        assert report["ok"] is True
        assert [t["target"] for t in report["targets"]] == ["dscnn/digital"]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCheckCli:
    def run_cli(self, *args):
        return subprocess.run([sys.executable, "-m", "repro.cli", *args],
                              capture_output=True, text=True, timeout=600)

    def test_single_target_pass(self):
        proc = self.run_cli("check", "resnet", "--config", "digital")
        assert proc.returncode == 0, proc.stderr
        assert "PASS" in proc.stdout

    def test_missing_target_is_usage_error(self):
        proc = self.run_cli("check")
        assert proc.returncode == 2

    def test_json_round_trip(self):
        proc = self.run_cli("check", "--grid", "--models", "resnet",
                            "--json")
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["schema"] == "repro-check/1"
        assert report["ok"] is True
        assert len(report["targets"]) == 2 * len(CONFIGS)  # fresh + .dna
        for t in report["targets"]:
            assert set(t) >= {"target", "ok", "diagnostics"}

    def test_artifact_target(self, tmp_path):
        compiled, soc, cfg = _compile_cell("dscnn", "digital")
        path = str(tmp_path / "dscnn.dna")
        save_artifact(path, compiled, soc, cfg)
        proc = self.run_cli("check", path)
        assert proc.returncode == 0, proc.stderr
        assert "PASS" in proc.stdout


# ---------------------------------------------------------------------------
# documentation stays in sync with the code catalog
# ---------------------------------------------------------------------------

class TestDocs:
    def test_every_code_documented(self):
        import pathlib
        doc = (pathlib.Path(__file__).resolve().parent.parent
               / "docs" / "CHECKS.md").read_text()
        missing = [code for code in CODES if code not in doc]
        assert not missing, f"docs/CHECKS.md missing codes: {missing}"
