"""Transform pass tests: folding, DCE, canonicalize, fusion, legalize."""

import numpy as np
import pytest

from repro.ir import Call, Composite, Constant, GraphBuilder
from repro.runtime import random_inputs, run_reference
from repro.transforms import (
    CPU_FUSED, Pass, PassManager, canonicalize, dense_to_conv2d,
    eliminate_dead_code, fold_constants, fuse_cpu_ops,
)
from helpers import build_small_cnn


class TestConstantFolding:
    def test_folds_constant_expression(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        c1 = b.const(np.array([1, 2, 3, 4], np.int8).reshape(1, 4))
        c2 = b.const(np.array([10, 20, 30, 40], np.int8).reshape(1, 4))
        folded = b.call("add", [c1, c2], out_dtype="int32")
        casted = b.call("cast", [folded], dtype="int8")
        out = b.call("add", [x, casted])
        g = fold_constants(b.finish(out))
        # the constant add/cast chain collapses to one constant
        assert len(g.calls()) == 1
        consts = g.constants()
        assert any(np.array_equal(c.value.data, [[11, 22, 33, 44]])
                   for c in consts)

    def test_fold_preserves_semantics(self, small_cnn):
        g2 = fold_constants(small_cnn)
        feeds = random_inputs(small_cnn, seed=1)
        np.testing.assert_array_equal(
            run_reference(small_cnn, feeds), run_reference(g2, feeds))

    def test_nothing_to_fold_is_noop(self, small_cnn):
        g2 = fold_constants(small_cnn)
        assert len(g2.calls()) == len(small_cnn.calls())


class TestDeadCode:
    def test_unreachable_dropped(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        live = b.call("nn.relu", [x])
        b.call("cast", [x], dtype="int32")  # dead
        g = eliminate_dead_code(b.finish(live))
        assert [c.op for c in g.calls()] == ["nn.relu"]


class TestCanonicalize:
    def test_merge_nested_clips(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int32")
        c1 = b.call("clip", [x], a_min=-100, a_max=100)
        c2 = b.call("clip", [c1], a_min=0, a_max=127)
        g = canonicalize(b.finish(c2))
        clips = [c for c in g.calls() if c.op == "clip"]
        assert len(clips) == 1
        assert clips[0].attrs == {"a_min": 0, "a_max": 100}

    def test_identity_cast_removed(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        g = canonicalize(b.finish(b.call("cast", [x], dtype="int8")))
        assert not any(c.op == "cast" for c in g.calls())

    def test_identity_reshape_removed(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        y = b.call("reshape", [x], newshape=(1, 4))
        z = b.call("nn.relu", [y])
        g = canonicalize(b.finish(z))
        assert [c.op for c in g.calls()] == ["nn.relu"]

    def test_requant_chain_untouched(self, small_cnn):
        g2 = canonicalize(small_cnn)
        feeds = random_inputs(small_cnn, seed=2)
        np.testing.assert_array_equal(
            run_reference(small_cnn, feeds), run_reference(g2, feeds))
        # conv + relu clips are separated by a cast: both must remain
        assert sum(1 for c in g2.calls() if c.op == "clip") == \
               sum(1 for c in small_cnn.calls() if c.op == "clip")


class TestFusion:
    def test_everything_becomes_composites(self, small_cnn):
        fused = fuse_cpu_ops(small_cnn)
        assert not fused.calls()  # only composites remain at top level
        assert all(c.pattern_name == CPU_FUSED for c in fused.composites())

    def test_conv_chain_fused_into_one_kernel(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int8")
        g = b.finish(b.conv2d_requant(x, 8, kernel=3, padding=(1, 1)))
        fused = fuse_cpu_ops(g)
        comps = fused.composites()
        assert len(comps) == 1
        assert len(comps[0].body.calls()) == 6

    def test_fusion_preserves_semantics(self, small_cnn):
        fused = fuse_cpu_ops(small_cnn)
        feeds = random_inputs(small_cnn, seed=7)
        np.testing.assert_array_equal(
            run_reference(small_cnn, feeds), run_reference(fused, feeds))

    def test_multi_consumer_breaks_chain(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        r = b.call("nn.relu", [x])
        a = b.call("cast", [r], dtype="int32")
        bb = b.call("cast", [r], dtype="int16")
        g = b.finish(b.call("add", [a, b.call("cast", [bb], dtype="int32")]))
        fused = fuse_cpu_ops(g)
        # relu has two consumers: it must be its own group
        groups = [c.body.calls() for c in fused.composites()]
        assert any(len(g_) == 1 and g_[0].op == "nn.relu" for g_ in groups)

    def test_binary_with_activation_operand_not_fused(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        y = b.input("y", (1, 4), "int8")
        rx = b.call("nn.relu", [x])
        g = b.finish(b.call("add", [rx, y]))
        fused = fuse_cpu_ops(g)
        # add takes a second activation input -> separate kernel
        assert len(fused.composites()) == 2


class TestLegalize:
    def test_dense_to_conv_semantics(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 16), "int8")
        g = b.finish(b.dense_requant(x, 8))
        g2 = dense_to_conv2d(g)
        assert not any(c.op == "nn.dense" for c in g2.calls())
        assert any(c.op == "nn.conv2d" for c in g2.calls())
        feeds = random_inputs(g, seed=0)
        np.testing.assert_array_equal(
            run_reference(g, feeds), run_reference(g2, feeds))


class TestPassManager:
    def test_trace_recorded(self, small_cnn):
        pm = PassManager([Pass("fold", fold_constants),
                          Pass("dce", eliminate_dead_code)])
        pm.run(small_cnn)
        assert [t[0] for t in pm.trace] == ["fold", "dce"]

    def test_bad_pass_rejected(self, small_cnn):
        pm = PassManager([Pass("broken", lambda g: None)])
        with pytest.raises(TypeError):
            pm.run(small_cnn)
