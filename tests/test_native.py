"""Native compiled-kernel backend: build cache, loader, executor,
serving, and verifier integration.

The contract under test is the one docs/NATIVE.md states: ``native``
is an *exact* execution mode — byte-identical outputs and identical
modeled performance counters versus ``fast`` and ``tiled`` — that
degrades to ``fast`` (never to wrong answers) whenever the toolchain
or a cached library is missing, stale, or corrupt.
"""

import os
import subprocess
import sys
import threading
import warnings

import numpy as np
import pytest

from repro.codegen.build import (
    build_native_library, build_stats, find_c_compiler, library_name,
    library_path, load_native_module, native_cache_dir, reset_build_stats,
)
from repro.codegen.native import (
    emit_native_sources, full_run_eligible, native_step_indices,
)
from repro.core import CompilerConfig, compile_model
from repro.errors import OutOfMemoryError
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.runtime import Executor, random_inputs
from repro.serve import FleetConfig, ServingFleet, pack_model
from repro.soc import DianaSoC

from helpers import build_small_cnn

HAVE_CC = find_c_compiler() is not None
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no C compiler on PATH")

#: Table I configurations that target the accelerators (cpu-tvm has no
#: AccelSteps, so the native backend has nothing to compile there).
ACCEL_CONFIGS = [c for c in CONFIGS if c != "cpu-tvm"]


def _compile_cell(model, config):
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    try:
        compiled = compile_model(graph, soc, cfg)
    except OutOfMemoryError:
        pytest.skip(f"{model}/{config} does not fit L2 (Table I OoM)")
    return graph, soc, compiled


@pytest.fixture(scope="module")
def shared_cache(tmp_path_factory):
    """One library cache for the whole module: later cells of the same
    fingerprint reuse earlier builds, like real serving hosts do."""
    return str(tmp_path_factory.mktemp("native-cache"))


# ---------------------------------------------------------------------------
# bit-exactness: the property the whole backend hangs on
# ---------------------------------------------------------------------------

@needs_cc
class TestNativeBitExact:
    """zoo x Table I: native == fast == tiled, outputs and counters."""

    @pytest.mark.parametrize("model", sorted(MLPERF_TINY))
    @pytest.mark.parametrize("config", ACCEL_CONFIGS)
    def test_zoo_grid(self, model, config, shared_cache):
        graph, soc, compiled = _compile_cell(model, config)
        feeds = random_inputs(graph, seed=11)
        res = {mode: Executor(soc, exec_mode=mode,
                              native_cache_dir=shared_cache)
               .run(compiled, feeds)
               for mode in ("fast", "tiled", "native")}
        np.testing.assert_array_equal(res["native"].output,
                                      res["fast"].output)
        np.testing.assert_array_equal(res["native"].output,
                                      res["tiled"].output)
        assert res["native"].total_cycles == res["fast"].total_cycles
        assert res["native"].total_cycles == res["tiled"].total_cycles
        assert res["native"].l2_peak_bytes == res["fast"].l2_peak_bytes

    def test_batched_equivalence(self, shared_cache):
        graph, soc, compiled = _compile_cell("toyadmos", "digital")
        rng = np.random.default_rng(5)
        single = random_inputs(graph, seed=5)
        feeds = {name: rng.integers(-128, 128,
                                    size=(4,) + arr.shape[1:],
                                    dtype=np.int8)
                 for name, arr in single.items()}
        nat = Executor(soc, exec_mode="native",
                       native_cache_dir=shared_cache)
        fast = Executor(soc, exec_mode="fast")
        np.testing.assert_array_equal(
            nat.run_batch(compiled, feeds).outputs,
            fast.run_batch(compiled, feeds).outputs)

    def test_full_run_path_used_where_eligible(self, shared_cache):
        # toyadmos/digital is all-dense, fully planned: the whole
        # network runs inside one native call
        _, soc, compiled = _compile_cell("toyadmos", "digital")
        idx = native_step_indices(compiled)
        assert full_run_eligible(compiled, frozenset(idx))
        mod = load_native_module(compiled, cache_dir=shared_cache)
        assert mod is not None and mod.has_full_run


# ---------------------------------------------------------------------------
# toolchain fallback
# ---------------------------------------------------------------------------

class TestNoCompilerFallback:
    def test_executor_falls_back_to_fast(self, monkeypatch, tmp_path,
                                         digital_soc, small_cnn):
        compiled = compile_model(small_cnn, digital_soc, CompilerConfig())
        feeds = random_inputs(small_cnn, seed=2)
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # one-time no-compiler warning
            nat = Executor(digital_soc, exec_mode="native",
                           native_cache_dir=str(tmp_path)).run(compiled,
                                                               feeds)
        fast = Executor(digital_soc, exec_mode="fast").run(compiled, feeds)
        np.testing.assert_array_equal(nat.output, fast.output)
        assert nat.total_cycles == fast.total_cycles
        assert not list(tmp_path.glob("*.so"))  # nothing was built

    def test_find_c_compiler_none_without_toolchain(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        assert find_c_compiler() is None

    def test_build_returns_none_without_compiler(self, monkeypatch,
                                                 tmp_path, digital_soc,
                                                 small_cnn):
        compiled = compile_model(small_cnn, digital_soc, CompilerConfig())
        monkeypatch.setattr("repro.codegen.build.find_c_compiler",
                            lambda: None)
        assert build_native_library(compiled,
                                    cache_dir=str(tmp_path)) is None


# ---------------------------------------------------------------------------
# the on-disk build cache
# ---------------------------------------------------------------------------

@needs_cc
class TestBuildCache:
    def _compiled(self, digital_soc, small_cnn):
        return compile_model(small_cnn, digital_soc, CompilerConfig())

    def test_fingerprint_keyed_reuse(self, tmp_path, digital_soc,
                                     small_cnn):
        compiled = self._compiled(digital_soc, small_cnn)
        reset_build_stats()
        first = build_native_library(compiled, cache_dir=str(tmp_path))
        again = build_native_library(compiled, cache_dir=str(tmp_path))
        assert first == again == library_path(compiled, str(tmp_path))
        stats = build_stats()
        assert stats["builds"] == 1 and stats["hits"] == 1

    def test_reuse_across_processes(self, tmp_path, digital_soc,
                                    small_cnn):
        compiled = self._compiled(digital_soc, small_cnn)
        lib = build_native_library(compiled, cache_dir=str(tmp_path))
        mtime = os.path.getmtime(lib)
        # a second process must load the cached library without
        # rebuilding: its stats see one hit, zero builds
        code = (
            "import sys\n"
            "from repro.codegen.build import build_stats, "
            "load_native_module\n"
            "from repro.core import CompilerConfig, compile_model\n"
            "from repro.soc import DianaSoC\n"
            "from helpers import build_small_cnn\n"
            "soc = DianaSoC(enable_analog=False)\n"
            "m = compile_model(build_small_cnn(), soc, CompilerConfig())\n"
            f"mod = load_native_module(m, cache_dir={str(tmp_path)!r})\n"
            "assert mod is not None, 'load failed'\n"
            "s = build_stats()\n"
            "assert s['hits'] == 1 and s['builds'] == 0, s\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(__file__)]
            + env.get("PYTHONPATH", "").split(os.pathsep))
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        assert os.path.getmtime(lib) == mtime  # untouched

    def test_stale_library_rebuilt(self, tmp_path, digital_soc, small_cnn):
        compiled = self._compiled(digital_soc, small_cnn)
        fp = compiled.fingerprint()
        lib = library_path(compiled, str(tmp_path))
        # a library whose embedded key is some other model's: proven
        # stale on load, deleted, rebuilt in place
        bad = build_native_library(compiled, cache_dir=str(tmp_path),
                                   fingerprint="f00d" * 16, force=True)
        os.replace(bad, lib)
        with pytest.warns(RuntimeWarning, match="stale native library"):
            mod = load_native_module(compiled, cache_dir=str(tmp_path))
        assert mod is not None
        assert mod.build_key == fp

    def test_corrupt_library_rebuilt(self, tmp_path, digital_soc,
                                     small_cnn):
        compiled = self._compiled(digital_soc, small_cnn)
        lib = library_path(compiled, str(tmp_path))
        garbage = tmp_path / "garbage"
        garbage.write_bytes(b"\x7fNOPE not a shared object")
        os.replace(garbage, lib)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            mod = load_native_module(compiled, cache_dir=str(tmp_path))
        assert mod is not None
        assert mod.build_key == compiled.fingerprint()

    def test_concurrent_builds_race_benignly(self, tmp_path, digital_soc,
                                             small_cnn):
        compiled = self._compiled(digital_soc, small_cnn)
        results, errors = [], []

        def build():
            try:
                results.append(build_native_library(
                    compiled, cache_dir=str(tmp_path), force=True))
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        threads = [threading.Thread(target=build) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert results[0] == results[1] and results[0] is not None
        assert load_native_module(compiled,
                                  cache_dir=str(tmp_path)) is not None

    def test_cache_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        assert native_cache_dir("/elsewhere/model.dna") == str(tmp_path)
        monkeypatch.delenv("REPRO_NATIVE_CACHE")
        assert (native_cache_dir("/elsewhere/model.dna")
                == os.path.realpath("/elsewhere")
                or native_cache_dir("/elsewhere/model.dna") == "/elsewhere")


# ---------------------------------------------------------------------------
# per-artifact isolation
# ---------------------------------------------------------------------------

@needs_cc
class TestSymbolIsolation:
    def test_two_artifacts_one_process(self, tmp_path, digital_soc):
        """Two libraries with identical exported names load side by
        side: every kernel is ``static`` and binding is RTLD_LOCAL."""
        cnn = build_small_cnn(seed=1)
        toy = MLPERF_TINY["toyadmos"](precision="int8")
        a = compile_model(cnn, digital_soc, CompilerConfig())
        b = compile_model(toy, digital_soc, CompilerConfig())
        mod_a = load_native_module(a, cache_dir=str(tmp_path))
        mod_b = load_native_module(b, cache_dir=str(tmp_path))
        assert mod_a is not None and mod_b is not None
        assert mod_a.build_key == a.fingerprint()
        assert mod_b.build_key == b.fingerprint()
        # running through one must not perturb the other
        feeds_a = random_inputs(cnn, seed=1)
        feeds_b = random_inputs(toy, seed=2)

        def run_native(model, feeds):
            return Executor(digital_soc, exec_mode="native",
                            native_cache_dir=str(tmp_path)).run(model, feeds)

        for _ in range(2):  # interleave to catch shared-state bleed
            out_a = run_native(a, feeds_a).output
            out_b = run_native(b, feeds_b).output
        np.testing.assert_array_equal(
            out_a, Executor(digital_soc,
                            exec_mode="fast").run(a, feeds_a).output)
        np.testing.assert_array_equal(
            out_b, Executor(digital_soc,
                            exec_mode="fast").run(b, feeds_b).output)


# ---------------------------------------------------------------------------
# emission properties (no toolchain needed)
# ---------------------------------------------------------------------------

class TestEmission:
    def test_build_key_baked_in(self, digital_soc, small_cnn):
        compiled = compile_model(small_cnn, digital_soc, CompilerConfig())
        src = emit_native_sources(compiled)
        assert compiled.fingerprint() in src
        assert "repro_native_build_key" in src

    def test_all_symbols_static_except_abi(self, digital_soc, small_cnn):
        compiled = compile_model(small_cnn, digital_soc, CompilerConfig())
        src = emit_native_sources(compiled)
        for line in src.splitlines():
            if (line.startswith(("void ", "int32_t ", "const char* "))
                    and "(" in line):
                assert "repro_native_" in line, (
                    f"non-ABI symbol with external linkage: {line}")

    def test_library_name_is_fingerprint_keyed(self, digital_soc,
                                               small_cnn):
        compiled = compile_model(small_cnn, digital_soc, CompilerConfig())
        fp = compiled.fingerprint()
        assert library_name(fp).startswith(f"native-{fp[:16]}-abi")


# ---------------------------------------------------------------------------
# verifier: the sidecar next to a .dna
# ---------------------------------------------------------------------------

@needs_cc
class TestVerifierSidecar:
    def _pack(self, tmp_path):
        graph = build_small_cnn(hw=8, channels=8)
        soc = DianaSoC(enable_analog=False)
        path = str(tmp_path / "m.dna")
        art = pack_model(graph, soc, CompilerConfig(), path)
        return path, art

    def test_matching_sidecar_is_clean(self, tmp_path):
        from repro.verify import check_artifact_file

        path, art = self._pack(tmp_path)
        build_native_library(art.model, cache_dir=str(tmp_path),
                             fingerprint=art.fingerprint)
        assert check_artifact_file(path) == []

    def test_mismatched_build_key_is_an_error(self, tmp_path):
        from repro.verify import check_artifact_file

        path, art = self._pack(tmp_path)
        bad = build_native_library(art.model, cache_dir=str(tmp_path),
                                   fingerprint="dead" * 16, force=True)
        os.replace(bad, os.path.join(str(tmp_path),
                                     library_name(art.fingerprint)))
        codes = [d.code for d in check_artifact_file(path)]
        assert codes == ["V-ART-010"]

    def test_unloadable_sidecar_is_a_warning(self, tmp_path):
        from repro.verify import check_artifact_file

        path, art = self._pack(tmp_path)
        garbage = tmp_path / "garbage"
        garbage.write_bytes(b"not an elf")
        os.replace(str(garbage),
                   os.path.join(str(tmp_path),
                                library_name(art.fingerprint)))
        diags = check_artifact_file(path)
        assert [d.code for d in diags] == ["V-ART-011"]
        assert diags[0].severity.value == "warning"


# ---------------------------------------------------------------------------
# serving: fleet workers degrade, never lose requests
# ---------------------------------------------------------------------------

class TestFleetNativeServing:
    def _artifact(self, tmp_path):
        graph = build_small_cnn(hw=8, channels=8)
        soc = DianaSoC(enable_analog=False)
        path = str(tmp_path / "m.dna")
        pack_model(graph, soc, CompilerConfig(), path)
        feeds = random_inputs(graph, seed=0)
        golden = Executor(soc, exec_mode="fast").run(
            compile_model(graph, soc, CompilerConfig()), feeds).output
        return path, feeds, golden

    def _config(self, **kw):
        kw.setdefault("workers", 1)
        kw.setdefault("tick_s", 0.005)
        kw.setdefault("worker_start_timeout_s", 120.0)
        return FleetConfig(**kw)

    @needs_cc
    def test_native_worker_serves_and_prebuilds(self, tmp_path):
        path, feeds, golden = self._artifact(tmp_path)
        with ServingFleet(self._config(exec_mode="native")) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60.0)
            outs = [fleet.infer(key, feeds, timeout=60.0)
                    for _ in range(3)]
        for out in outs:
            np.testing.assert_array_equal(out, golden)
        # the worker built (or found) the library next to the artifact
        assert any(n.startswith("native-") and n.endswith(".so")
                   for n in os.listdir(tmp_path))

    def test_chaos_worker_without_toolchain_degrades(self, tmp_path,
                                                     monkeypatch):
        """A fleet asked for native on a box with the toolchain
        disabled serves every request correctly via fast — the S-NATIVE
        degradation is reported, nothing is lost."""
        path, feeds, golden = self._artifact(tmp_path)
        # fork-inherited by the worker process: its find_c_compiler()
        # sees a compiler-less host
        monkeypatch.setenv("REPRO_NATIVE_DISABLE", "1")
        with ServingFleet(self._config(exec_mode="native")) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60.0)
            futs = [fleet.submit(key, feeds) for _ in range(8)]
            outs = [f.result(timeout=60.0) for f in futs]
            stats = fleet.stats()[key]
        for out in outs:
            np.testing.assert_array_equal(out, golden)
        assert stats["degraded"] >= 1
        assert stats["completed"] == 8
        assert all(w["exec_mode"] == "fast" for w in stats["workers"]
                   if w["exec_mode"] is not None)
        assert not any(n.endswith(".so") for n in os.listdir(tmp_path))
