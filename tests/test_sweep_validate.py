"""Design-space sweep + deployment-validation utility tests."""

import pytest

from repro.core import HTVM, compile_model
from repro.errors import ReproError
from repro.eval.sweep import (
    format_sweep, l1_size_sweep, sweep_param, weight_memory_sweep,
)
from repro.frontend.modelzoo import resnet8
from repro.runtime import validate_deployment
from repro.soc import DianaSoC
from helpers import build_small_cnn


class TestSweep:
    def test_l1_sweep_monotone(self):
        points = l1_size_sweep("resnet", sizes_kb=(256, 16, 4))
        lats = [p.latency_ms for p in points if p.latency_ms is not None]
        assert len(lats) == 3
        assert lats == sorted(lats)  # smaller L1 never helps

    def test_weight_memory_sweep(self):
        points = weight_memory_sweep("toyadmos", sizes_kb=(64, 8))
        assert points[0].latency_ms < points[1].latency_ms

    def test_infeasible_values_reported(self):
        points = sweep_param("l1_bytes", [256 * 1024, 64],
                             model="resnet", config="digital")
        assert points[0].latency_ms is not None
        assert points[1].oom or points[1].latency_ms is None

    def test_unknown_param_rejected(self):
        with pytest.raises(ReproError, match="unknown platform parameter"):
            sweep_param("pe_count", [1], model="resnet")

    def test_format(self):
        points = l1_size_sweep("resnet", sizes_kb=(256,))
        text = format_sweep(points)
        assert "l1_bytes" in text and "resnet" in text

    def test_format_empty(self):
        assert "empty" in format_sweep([])


class TestValidateDeployment:
    def test_pass_report(self):
        graph = build_small_cnn()
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, HTVM)
        report = validate_deployment(model, soc, runs=3)
        assert report.passed
        assert report.runs == 3 and report.exact_runs == 3
        assert "PASS" in str(report)
        assert report.cycles > 0

    def test_detects_broken_executor(self, monkeypatch):
        graph = build_small_cnn()
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, HTVM)

        from repro.runtime import validate as v
        real = v.run_reference

        def corrupted(g, feeds):
            out = real(g, feeds)
            return out + 1.0  # poison the golden output

        monkeypatch.setattr(v, "run_reference", corrupted)
        report = validate_deployment(model, soc, runs=2)
        assert not report.passed
        assert report.mismatched_seeds == [0, 1]
        assert report.max_abs_error >= 1.0
        assert "FAIL" in str(report)
