"""Fast-vs-tiled execution equivalence — the engine's core contract.

Fast mode must be byte-identical to tiled mode (the verification path)
and must charge exactly the same cycles, across layer geometries,
precision variants and random whole-network topologies; batched runs
must match per-sample loops sample by sample.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_model
from repro.core.config import HTVM
from repro.errors import SimulationError, TilingError
from repro.frontend.modelzoo.random_net import RandomNetConfig, random_cnn
from repro.ir import GraphBuilder
from repro.runtime import (
    Executor, random_inputs, random_inputs_batched, run_reference,
    run_reference_batched,
)
from repro.runtime.reference import compile_plan
from repro.soc import DianaSoC


def _records_equal(a, b):
    """Per-kernel cycle breakdowns are exactly equal (not approximately)."""
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.name == rb.name and ra.target == rb.target
        assert ra.cycles == rb.cycles
        assert ra.num_tiles == rb.num_tiles
        assert ra.macs == rb.macs


def _assert_modes_equal(graph, soc, cfg, seed=0):
    model = compile_model(graph, soc, cfg)
    feeds = random_inputs(graph, seed=seed)
    tiled = Executor(soc, exec_mode="tiled").run(model, feeds)
    fast = Executor(soc, exec_mode="fast").run(model, feeds)
    np.testing.assert_array_equal(tiled.output, fast.output)
    assert tiled.total_cycles == fast.total_cycles
    assert tiled.peak_cycles == fast.peak_cycles
    assert tiled.l2_peak_bytes == fast.l2_peak_bytes
    _records_equal(tiled.perf, fast.perf)
    return model, feeds, fast


class TestSingleLayerEquivalence:
    """Strides / pads / groups / precision sweeps on one conv layer."""

    @pytest.mark.parametrize("stride", [1, 2])
    @pytest.mark.parametrize("pad", [0, 1])
    @pytest.mark.parametrize("depthwise", [False, True])
    def test_conv_variants(self, stride, pad, depthwise):
        b = GraphBuilder(seed=stride * 4 + pad * 2 + depthwise)
        x = b.input("x", (1, 12, 15, 15), "int8")
        if depthwise:
            y = b.dwconv2d_requant(x, kernel=3, strides=stride, padding=pad)
        else:
            y = b.conv2d_requant(x, 20, kernel=3, strides=stride, padding=pad)
        graph = b.finish(y)
        soc = DianaSoC(enable_analog=False)
        cfg = HTVM.with_overrides(l1_budget=2048, check_l2=False)
        _assert_modes_equal(graph, soc, cfg)

    def test_analog_precision_variant(self):
        # ternary weights / int7 activations on the AiMC core
        b = GraphBuilder(seed=5)
        x = b.input("x", (1, 24, 12, 12), "int7")
        y = b.conv2d_requant(x, 16, kernel=3, padding=(1, 1),
                             weight_dtype="ternary", shift=4,
                             out_dtype="int7")
        graph = b.finish(y)
        soc = DianaSoC(enable_digital=False)
        cfg = HTVM.with_overrides(l1_budget=4096, check_l2=False)
        _assert_modes_equal(graph, soc, cfg)

    def test_dense_and_add(self):
        b = GraphBuilder(seed=7)
        x = b.input("x", (1, 8, 6, 6), "int8")
        y = b.conv2d_requant(x, 8, kernel=3, padding=(1, 1), relu=False)
        z = b.add_requant(x, y, shift=1)
        z = b.flatten(z)
        z = b.dense_requant(z, 10)
        graph = b.finish(z)
        soc = DianaSoC(enable_analog=False)
        cfg = HTVM.with_overrides(l1_budget=1024, check_l2=False)
        _assert_modes_equal(graph, soc, cfg)


conv_cases = st.tuples(
    st.integers(1, 24),                  # C
    st.integers(1, 24),                  # K
    st.sampled_from([5, 8, 11, 16]),     # spatial
    st.sampled_from([1, 3]),             # filter
    st.sampled_from([1, 2]),             # stride
    st.booleans(),                       # depthwise
    st.integers(0, 2 ** 30),             # seed
)


class TestPropertyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(conv_cases, st.sampled_from([1536, 4096, 16384]))
    def test_random_conv_fast_equals_tiled(self, case, budget):
        c, k, hw, f, stride, depthwise, seed = case
        b = GraphBuilder(seed=seed)
        x = b.input("x", (1, c, hw, hw), "int8")
        pad = 1 if f == 3 else 0
        if depthwise:
            y = b.dwconv2d_requant(x, kernel=f, strides=stride, padding=pad)
        else:
            y = b.conv2d_requant(x, k, kernel=f, strides=stride, padding=pad,
                                 relu=bool(seed % 2))
        graph = b.finish(y)
        soc = DianaSoC(enable_analog=False)
        cfg = HTVM.with_overrides(l1_budget=budget, check_l2=False)
        try:
            _assert_modes_equal(graph, soc, cfg, seed=seed + 1)
        except TilingError:
            pass

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2 ** 30))
    def test_random_network_fast_equals_tiled(self, seed):
        graph = random_cnn(seed, RandomNetConfig(max_stages=4))
        soc = DianaSoC(enable_analog=False)
        cfg = HTVM.with_overrides(l1_budget=8 * 1024, check_l2=False)
        try:
            model, feeds, fast = _assert_modes_equal(graph, soc, cfg,
                                                     seed=seed + 1)
        except TilingError:
            return
        # and both equal the golden interpreter
        np.testing.assert_array_equal(
            fast.output, run_reference(model.graph, feeds))


class TestBatchedExecution:
    @pytest.fixture
    def deployment(self):
        graph = random_cnn(3, RandomNetConfig(max_stages=4))
        soc = DianaSoC(enable_analog=False)
        model = compile_model(
            graph, soc, HTVM.with_overrides(l1_budget=8 * 1024,
                                            check_l2=False))
        return graph, soc, model

    @pytest.mark.parametrize("exec_mode", ["tiled", "fast"])
    def test_batch_equals_per_sample_loop(self, deployment, exec_mode):
        graph, soc, model = deployment
        batch = 5
        feeds = random_inputs_batched(graph, batch, seed=11)
        ex = Executor(soc, exec_mode=exec_mode)
        res = ex.run_batch(model, feeds)
        assert res.batch == batch
        assert res.outputs.shape[0] == batch
        for i in range(batch):
            sample = {k: v[i:i + 1] for k, v in feeds.items()}
            single = ex.run(model, sample)
            np.testing.assert_array_equal(res.outputs[i:i + 1], single.output)
            # cycle cost is input-independent: per-inference counters match
            assert res.perf.total_cycles == single.total_cycles
        assert res.total_cycles == batch * res.perf.total_cycles

    def test_batch_modes_agree(self, deployment):
        graph, soc, model = deployment
        feeds = random_inputs_batched(graph, 3, seed=2)
        fast = Executor(soc, exec_mode="fast").run_batch(model, feeds)
        tiled = Executor(soc, exec_mode="tiled").run_batch(model, feeds)
        np.testing.assert_array_equal(fast.outputs, tiled.outputs)
        assert fast.total_cycles == tiled.total_cycles

    def test_reference_batched_equals_loop(self, deployment):
        graph, _, _ = deployment
        feeds = random_inputs_batched(graph, 4, seed=9)
        batched = run_reference_batched(graph, feeds)
        for i in range(4):
            sample = {k: v[i:i + 1] for k, v in feeds.items()}
            np.testing.assert_array_equal(
                batched[i:i + 1], run_reference(graph, sample))

    def test_inconsistent_batch_raises(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 6, 6), "int8")
        y = b.input("y", (1, 4, 6, 6), "int8")
        graph = b.finish(b.add_requant(x, y, shift=1))
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, HTVM.with_overrides(check_l2=False))
        feeds = random_inputs_batched(graph, 3, seed=0)
        feeds["y"] = feeds["y"][:1]  # mismatched batch dims
        with pytest.raises(SimulationError, match="batch"):
            Executor(soc, exec_mode="fast").run_batch(model, feeds)


class TestPlanCompiler:
    def test_plan_cached_on_graph(self):
        graph = random_cnn(1, RandomNetConfig(max_stages=3))
        plan = compile_plan(graph)
        assert compile_plan(graph) is plan  # memoized per instance

    def test_rewritten_graph_gets_fresh_plan(self):
        graph = random_cnn(1, RandomNetConfig(max_stages=3))
        plan = compile_plan(graph)
        rewritten = graph.rewrite(lambda node, new_inputs: None)
        assert compile_plan(rewritten) is not plan

    def test_constant_shift_prebound(self):
        # right_shift against a Constant must drop to a 1-input instr
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int8")
        graph = b.finish(b.conv2d_requant(x, 4, kernel=3, padding=(1, 1)))
        plan = compile_plan(graph)

        def shift_instrs(p):
            out = []
            for fn, arg_slots, _ in p.instrs:
                closure = getattr(fn, "__self__", None)
                if closure is not None:  # composite body: recurse
                    out.extend(shift_instrs(closure))
                    continue
                vars_ = getattr(fn, "__code__", None)
                if vars_ is not None and "shift" in fn.__code__.co_freevars:
                    out.append((fn, arg_slots))
            return out

        assert any(len(slots) == 1 for _, slots in shift_instrs(plan))

    def test_run_args_binds_declared_input_order(self):
        # output consumes y before x; positional binding must still
        # follow the declared input order [x, y]
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 2, 4, 4), "int8")
        y = b.input("y", (1, 2, 4, 4), "int8")
        graph = b.finish(b.call("concatenate", [y, x], axis=1))
        plan = compile_plan(graph)
        xa = np.zeros((1, 2, 4, 4), np.int8)
        ya = np.ones((1, 2, 4, 4), np.int8)
        np.testing.assert_array_equal(
            plan.run_args(xa, ya), plan.run({"x": xa, "y": ya}))

    def test_unknown_exec_mode_raises(self):
        with pytest.raises(SimulationError, match="exec_mode"):
            Executor(DianaSoC(), exec_mode="warp")
