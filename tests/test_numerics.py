"""Tests for the shared integer numpy kernels, incl. property tests
against straightforward loop-nest oracles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import numerics as K
from repro.errors import SimulationError


def naive_conv2d(x, w, strides, padding, groups):
    """O(n^7) oracle implementation."""
    n, c, ih, iw = x.shape
    k, cg, fh, fw = w.shape
    sh, sw = strides
    xp = np.pad(x.astype(np.int64),
                ((0, 0), (0, 0), (padding[0],) * 2, (padding[1],) * 2))
    oh = (xp.shape[2] - fh) // sh + 1
    ow = (xp.shape[3] - fw) // sw + 1
    out = np.zeros((n, k, oh, ow), dtype=np.int64)
    kg = k // groups
    for b in range(n):
        for kk in range(k):
            g = kk // kg
            for oy in range(oh):
                for ox in range(ow):
                    acc = 0
                    for cc in range(cg):
                        for fy in range(fh):
                            for fx in range(fw):
                                acc += (int(xp[b, g * cg + cc,
                                               oy * sh + fy, ox * sw + fx])
                                        * int(w[kk, cc, fy, fx]))
                    out[b, kk, oy, ox] = acc
    return out.astype(np.int32)


small_conv = st.tuples(
    st.integers(1, 3),   # C per group
    st.integers(1, 3),   # K per group
    st.integers(1, 2),   # groups
    st.integers(3, 7),   # spatial
    st.integers(1, 3),   # filter
    st.integers(1, 2),   # stride
    st.integers(0, 1),   # padding
)


class TestConv2dProperty:
    @settings(max_examples=40, deadline=None)
    @given(small_conv, st.integers(0, 2 ** 31 - 1))
    def test_matches_naive(self, dims, seed):
        cg, kg, groups, hw, f, s, p = dims
        if f > hw + 2 * p:
            return
        rng = np.random.default_rng(seed)
        c, k = cg * groups, kg * groups
        x = rng.integers(-128, 128, (1, c, hw, hw), dtype=np.int64).astype(np.int8)
        w = rng.integers(-128, 128, (k, cg, f, f), dtype=np.int64).astype(np.int8)
        got = K.conv2d(x, w, (s, s), (p, p), groups)
        want = naive_conv2d(x, w, (s, s), (p, p), groups)
        np.testing.assert_array_equal(got, want)

    def test_depthwise_equals_grouped(self):
        rng = np.random.default_rng(0)
        x = rng.integers(-128, 128, (1, 4, 6, 6)).astype(np.int8)
        w = rng.integers(-128, 128, (4, 1, 3, 3)).astype(np.int8)
        got = K.conv2d(x, w, (1, 1), (1, 1), groups=4)
        want = naive_conv2d(x, w, (1, 1), (1, 1), 4)
        np.testing.assert_array_equal(got, want)

    def test_group_mismatch_raises(self):
        with pytest.raises(SimulationError):
            K.conv2d(np.zeros((1, 3, 4, 4), np.int8),
                     np.zeros((4, 3, 1, 1), np.int8), groups=2)


class TestDense:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 32), st.integers(1, 32), st.integers(0, 2 ** 31 - 1))
    def test_matches_matmul(self, c, k, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-128, 128, (1, c)).astype(np.int8)
        w = rng.integers(-128, 128, (k, c)).astype(np.int8)
        got = K.dense(x, w)
        want = x.astype(np.int64) @ w.astype(np.int64).T
        np.testing.assert_array_equal(got, want.astype(np.int32))


class TestRightShift:
    def test_round_half_up(self):
        x = np.array([3, -3, 2, -2, 1, -1], dtype=np.int32)
        got = K.right_shift(x, 1)
        # (x + 1) >> 1
        np.testing.assert_array_equal(got, [2, -1, 1, -1, 1, 0])

    def test_zero_shift_identity(self):
        x = np.array([5, -7], dtype=np.int32)
        np.testing.assert_array_equal(K.right_shift(x, 0), x)

    def test_no_rounding_mode(self):
        x = np.array([3, -3], dtype=np.int32)
        np.testing.assert_array_equal(K.right_shift(x, 1, rounding=False),
                                      [1, -2])

    def test_negative_shift_raises(self):
        with pytest.raises(SimulationError):
            K.right_shift(np.array([1]), -1)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-(1 << 20), 1 << 20), st.integers(1, 16))
    def test_matches_float_rounding(self, value, shift):
        got = int(K.right_shift(np.array([value], np.int32), shift)[0])
        want = int(np.floor((value + (1 << (shift - 1))) / (1 << shift)))
        assert got == want


class TestPooling:
    def test_avg_pool_rounding(self):
        x = np.array([[[[1, 2], [3, 5]]]], dtype=np.int8)
        out = K.avg_pool2d(x, (2, 2), (2, 2), (0, 0))
        # (1+2+3+5+2)//4 = 3 (round-half-up)
        assert out[0, 0, 0, 0] == 3

    def test_max_pool_padding_never_wins(self):
        x = np.full((1, 1, 2, 2), -5, dtype=np.int8)
        out = K.max_pool2d(x, (2, 2), (2, 2), (1, 1))
        assert out.max() == -5

    def test_global_avg_pool(self):
        x = np.arange(16, dtype=np.int8).reshape(1, 1, 4, 4)
        out = K.global_avg_pool2d(x)
        assert out.shape == (1, 1, 1, 1)
        assert out[0, 0, 0, 0] == 8  # (120 + 8) // 16

    def test_avg_pool_negative_round(self):
        x = np.full((1, 1, 2, 2), -1, dtype=np.int8)
        out = K.avg_pool2d(x, (2, 2), (2, 2), (0, 0))
        assert out[0, 0, 0, 0] == -1  # (-4 + 2) // 4 = -1 (floor)


class TestSoftmaxRequant:
    def test_softmax_sums_to_one(self):
        x = np.array([[1, 2, 3, 4]], dtype=np.int8)
        out = K.softmax(x)
        assert out.dtype == np.float32
        assert abs(out.sum() - 1.0) < 1e-5

    def test_softmax_overflow_safe(self):
        x = np.array([[127, -128]], dtype=np.int8)
        out = K.softmax(x)
        assert np.isfinite(out).all()

    def test_requantize_clip_and_relu(self):
        acc = np.array([10000, -10000, 64], dtype=np.int32)
        out = K.requantize(acc, 2, relu_after=True)
        assert out.dtype == np.int8
        np.testing.assert_array_equal(out, [127, 0, 16])

    def test_requantize_int7_range(self):
        acc = np.array([10000, -10000], dtype=np.int32)
        out = K.requantize(acc, 0, False, a_min=-64, a_max=63)
        np.testing.assert_array_equal(out, [63, -64])


class TestPad:
    def test_pad_nchw_identity(self):
        x = np.ones((1, 2, 3, 3), np.int8)
        assert K.pad_nchw(x, (0, 0)) is x

    def test_pad_values(self):
        x = np.ones((1, 1, 2, 2), np.int8)
        out = K.pad_nchw(x, (1, 1), value=7)
        assert out.shape == (1, 1, 4, 4)
        assert out[0, 0, 0, 0] == 7


class TestPoolingProperty:
    """Sliding-window pooling vs. straightforward per-tap loop oracles."""

    @staticmethod
    def _naive_avg(x, pool, strides, padding):
        fh, fw = pool
        sh, sw = strides
        xp = K.pad_nchw(x.astype(np.int32), padding)
        oh = (xp.shape[2] - fh) // sh + 1
        ow = (xp.shape[3] - fw) // sw + 1
        acc = np.zeros((x.shape[0], x.shape[1], oh, ow), dtype=np.int32)
        for dy in range(fh):
            for dx in range(fw):
                acc += xp[:, :, dy:dy + sh * oh:sh, dx:dx + sw * ow:sw]
        count = fh * fw
        return np.floor_divide(acc + count // 2, count).astype(x.dtype)

    @staticmethod
    def _naive_max(x, pool, strides, padding):
        fh, fw = pool
        sh, sw = strides
        lo = np.iinfo(x.dtype).min
        xp = K.pad_nchw(x, padding, value=lo)
        oh = (xp.shape[2] - fh) // sh + 1
        ow = (xp.shape[3] - fw) // sw + 1
        out = np.full((x.shape[0], x.shape[1], oh, ow), lo, dtype=x.dtype)
        for dy in range(fh):
            for dx in range(fw):
                np.maximum(out, xp[:, :, dy:dy + sh * oh:sh,
                                   dx:dx + sw * ow:sw], out=out)
        return out

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 4), st.integers(4, 9), st.integers(2, 3),
           st.integers(1, 2), st.integers(0, 1), st.integers(0, 2 ** 31 - 1))
    def test_pools_match_naive(self, c, hw, f, s, p, seed):
        rng = np.random.default_rng(seed)
        x = rng.integers(-128, 128, (2, c, hw, hw), dtype=np.int64)
        x = x.astype(np.int8)
        np.testing.assert_array_equal(
            K.avg_pool2d(x, (f, f), (s, s), (p, p)),
            self._naive_avg(x, (f, f), (s, s), (p, p)))
        np.testing.assert_array_equal(
            K.max_pool2d(x, (f, f), (s, s), (p, p)),
            self._naive_max(x, (f, f), (s, s), (p, p)))


class TestAsymmetricPad:
    def test_pad_nchw_asymmetric(self):
        x = np.arange(4, dtype=np.int8).reshape(1, 1, 2, 2)
        out = K.pad_nchw(x, ((1, 0), (0, 2)), value=9)
        assert out.shape == (1, 1, 3, 4)
        np.testing.assert_array_equal(out[0, 0, 0], [9, 9, 9, 9])
        np.testing.assert_array_equal(out[0, 0, 1], [0, 1, 9, 9])

    def test_asymmetric_matches_np_pad(self):
        x = np.arange(12, dtype=np.int8).reshape(1, 2, 2, 3)
        want = np.pad(x, ((0, 0), (0, 0), (2, 1), (1, 0)),
                      constant_values=5)
        np.testing.assert_array_equal(
            K.pad_nchw(x, ((2, 1), (1, 0)), value=5), want)

    def test_symmetric_form_unchanged(self):
        x = np.ones((1, 1, 2, 2), np.int8)
        np.testing.assert_array_equal(
            K.pad_nchw(x, (1, 2)), K.pad_nchw(x, ((1, 1), (2, 2))))


class TestBiasRequantize:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 12), st.booleans(), st.booleans(),
           st.integers(0, 2 ** 31 - 1))
    def test_matches_unfused_sequence(self, shift, relu, with_bias, seed):
        rng = np.random.default_rng(seed)
        acc = rng.integers(-(1 << 20), 1 << 20, (1, 5, 4, 4),
                           dtype=np.int64).astype(np.int32)
        bias = (rng.integers(-(1 << 10), 1 << 10, 5,
                             dtype=np.int64).astype(np.int32)
                if with_bias else None)
        want = K.bias_add(acc, bias) if bias is not None else acc
        want = K.clip(K.right_shift(want, shift), -128, 127).astype(np.int8)
        if relu:
            want = np.maximum(want, 0)
        got = K.bias_requantize(acc, bias, shift, relu)
        np.testing.assert_array_equal(got, want)
