"""Shape/dtype inference tests for every registered operator."""

import numpy as np
import pytest

from repro.errors import IRError, ShapeError
from repro.ir import (
    Call, Constant, ConstantTensor, GraphBuilder, TensorType, Var, all_ops,
    conv2d_output_hw, get_op,
)


def var(shape, dt="int8", name="x"):
    return Var(name, TensorType(shape, dt))


def const(arr, dt="int8"):
    return Constant(ConstantTensor(np.asarray(arr), dt))


class TestConv2d:
    def test_basic_shape(self):
        c = Call("nn.conv2d", [var((1, 3, 32, 32)),
                               const(np.zeros((16, 3, 3, 3), np.int8))],
                 {"padding": (1, 1)})
        assert c.shape == (1, 16, 32, 32)
        assert c.dtype.name == "int32"

    def test_stride(self):
        c = Call("nn.conv2d", [var((1, 8, 32, 32)),
                               const(np.zeros((8, 8, 3, 3), np.int8))],
                 {"strides": (2, 2), "padding": (1, 1)})
        assert c.shape == (1, 8, 16, 16)

    def test_depthwise(self):
        c = Call("nn.conv2d", [var((1, 8, 16, 16)),
                               const(np.zeros((8, 1, 3, 3), np.int8))],
                 {"groups": 8, "padding": (1, 1)})
        assert c.shape == (1, 8, 16, 16)

    def test_macs(self):
        c = Call("nn.conv2d", [var((1, 16, 32, 32)),
                               const(np.zeros((16, 16, 3, 3), np.int8))],
                 {"padding": (1, 1)})
        assert c.macs() == 16 * 16 * 9 * 32 * 32

    def test_channel_mismatch(self):
        with pytest.raises(ShapeError):
            Call("nn.conv2d", [var((1, 4, 8, 8)),
                               const(np.zeros((8, 3, 3, 3), np.int8))])

    def test_too_large_kernel(self):
        with pytest.raises(ShapeError, match="non-positive"):
            Call("nn.conv2d", [var((1, 3, 4, 4)),
                               const(np.zeros((8, 3, 5, 5), np.int8))])

    def test_bad_groups(self):
        with pytest.raises(ShapeError):
            Call("nn.conv2d", [var((1, 6, 8, 8)),
                               const(np.zeros((6, 2, 3, 3), np.int8))],
                 {"groups": 4})


class TestConvOutputHw:
    @pytest.mark.parametrize("ih,fh,s,p,expect", [
        (32, 3, 1, 1, 32), (32, 3, 2, 1, 16), (49, 7, 2, 3, 25),
        (10, 5, 2, 2, 5), (8, 1, 1, 0, 8),
    ])
    def test_cases(self, ih, fh, s, p, expect):
        oh, _ = conv2d_output_hw(ih, ih, fh, fh, (s, s), (p, p))
        assert oh == expect


class TestDense:
    def test_shape(self):
        c = Call("nn.dense", [var((1, 64)), const(np.zeros((10, 64), np.int8))])
        assert c.shape == (1, 10)
        assert c.macs() == 640

    def test_feature_mismatch(self):
        with pytest.raises(ShapeError):
            Call("nn.dense", [var((1, 64)), const(np.zeros((10, 32), np.int8))])


class TestElementwise:
    def test_bias_add(self):
        c = Call("nn.bias_add", [var((1, 8, 4, 4), "int32"),
                                 const(np.zeros(8, np.int32), "int32")])
        assert c.shape == (1, 8, 4, 4)

    def test_bias_add_mismatch(self):
        with pytest.raises(ShapeError):
            Call("nn.bias_add", [var((1, 8, 4, 4), "int32"),
                                 const(np.zeros(4, np.int32), "int32")])

    def test_bias_add_is_elementwise(self):
        assert get_op("nn.bias_add").is_elementwise

    def test_clip_requires_bounds(self):
        with pytest.raises(IRError, match="missing required"):
            Call("clip", [var((4,))])

    def test_cast_changes_dtype(self):
        c = Call("cast", [var((4,), "int32")], {"dtype": "int8"})
        assert c.dtype.name == "int8"

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            Call("add", [var((1, 4)), var((1, 5), name="y")])

    def test_add_out_dtype(self):
        c = Call("add", [var((1, 4)), var((1, 4), name="y")],
                 {"out_dtype": "int32"})
        assert c.dtype.name == "int32"


class TestPoolReshape:
    def test_max_pool(self):
        c = Call("nn.max_pool2d", [var((1, 8, 16, 16))],
                 {"pool_size": (2, 2), "strides": (2, 2)})
        assert c.shape == (1, 8, 8, 8)

    def test_global_avg_pool(self):
        c = Call("nn.global_avg_pool2d", [var((1, 8, 7, 7))])
        assert c.shape == (1, 8, 1, 1)

    def test_softmax_float_out(self):
        c = Call("nn.softmax", [var((1, 10))])
        assert c.dtype.name == "float32"

    def test_reshape(self):
        c = Call("reshape", [var((1, 8, 2, 2))], {"newshape": (1, 32)})
        assert c.shape == (1, 32)

    def test_reshape_bad_count(self):
        with pytest.raises(ShapeError):
            Call("reshape", [var((1, 8))], {"newshape": (1, 9)})

    def test_batch_flatten(self):
        c = Call("nn.batch_flatten", [var((1, 4, 3, 3))])
        assert c.shape == (1, 36)

    def test_pad(self):
        c = Call("nn.pad", [var((1, 2, 4, 4))],
                 {"pad_width": ((0, 0), (0, 0), (1, 1), (2, 2))})
        assert c.shape == (1, 2, 6, 8)


class TestRegistry:
    def test_unknown_op(self):
        with pytest.raises(IRError, match="unknown op"):
            Call("nn.transposed_conv9d", [var((1, 1))])

    def test_unknown_attr_rejected(self):
        with pytest.raises(IRError, match="unknown attrs"):
            Call("nn.relu", [var((4,))], {"bogus": 1})

    def test_arity_checked(self):
        with pytest.raises(IRError, match="expected 2 inputs"):
            Call("nn.conv2d", [var((1, 3, 8, 8))])

    def test_all_ops_contains_core_set(self):
        ops = set(all_ops())
        assert {"nn.conv2d", "nn.dense", "nn.bias_add", "right_shift",
                "clip", "cast", "add", "nn.softmax"} <= ops
