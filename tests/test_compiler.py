"""Compiler driver tests: configs, OoM, artifacts, memory plans."""

import numpy as np
import pytest

from repro.core import (
    AccelStep, CompilerConfig, CpuKernelStep, HTVM, TVM_CPU, compile_model,
)
from repro.errors import CodegenError, OutOfMemoryError
from repro.frontend.modelzoo import mobilenet_v1, resnet8, toyadmos_dae
from repro.runtime import Executor, random_inputs
from repro.soc import DianaSoC
from helpers import build_small_cnn


class TestConfigs:
    def test_htvm_offloads(self, digital_soc, small_cnn):
        model = compile_model(small_cnn, digital_soc, HTVM)
        kinds = model.steps_by_target()
        assert kinds.get("soc.digital", 0) == 4
        assert kinds.get("cpu", 0) >= 2

    def test_tvm_cpu_never_offloads(self, cpu_soc, small_cnn):
        model = compile_model(small_cnn, cpu_soc, TVM_CPU)
        assert set(model.steps_by_target()) == {"cpu"}

    def test_offload_false_even_with_accelerators(self, soc, small_cnn):
        model = compile_model(small_cnn, soc, TVM_CPU)
        assert set(model.steps_by_target()) == {"cpu"}

    def test_config_overrides(self):
        cfg = HTVM.with_overrides(l1_budget=1024)
        assert cfg.l1_budget == 1024
        assert HTVM.l1_budget is None

    def test_unknown_heuristics_rejected(self, digital_soc, small_cnn):
        with pytest.raises(CodegenError, match="heuristic"):
            compile_model(small_cnn, digital_soc,
                          HTVM.with_overrides(heuristics="bogus"))


class TestOutOfMemory:
    def test_mobilenet_tvm_oom(self, cpu_soc):
        with pytest.raises(OutOfMemoryError):
            compile_model(mobilenet_v1(), cpu_soc, TVM_CPU)

    def test_mobilenet_htvm_fits(self):
        soc = DianaSoC(enable_analog=False)
        model = compile_model(mobilenet_v1(), soc, HTVM)
        assert model.l2_required_bytes <= soc.params.l2_bytes

    def test_resnet_tvm_fits(self, cpu_soc):
        model = compile_model(resnet8(), cpu_soc, TVM_CPU)
        assert model.l2_required_bytes <= cpu_soc.params.l2_bytes

    def test_check_disabled_compiles_anyway(self, cpu_soc):
        cfg = TVM_CPU.with_overrides(check_l2=False)
        model = compile_model(mobilenet_v1(), cpu_soc, cfg)
        assert model.l2_required_bytes > cpu_soc.params.l2_bytes


class TestArtifact:
    def test_c_sources_emitted(self, digital_soc, small_cnn):
        model = compile_model(small_cnn, digital_soc, HTVM)
        assert "network.c" in model.c_sources
        net = model.c_sources["network.c"]
        assert "l2_arena" in net
        dory = [s for n, s in model.c_sources.items() if "dory" in n]
        assert dory and "diana_digital_run" in dory[0]

    def test_buffer_offsets_planned_for_all(self, digital_soc, small_cnn):
        model = compile_model(small_cnn, digital_soc, HTVM)
        for step in model.steps:
            assert step.output_name in model.memory_plan.offsets
        for name in model.input_names:
            assert name in model.memory_plan.offsets

    def test_size_breakdown_consistent(self, digital_soc, small_cnn):
        model = compile_model(small_cnn, digital_soc, HTVM)
        s = model.size
        assert s.total == (s.runtime + s.cpu_kernels + s.accel_drivers
                           + s.weights)
        assert s.weights > 0 and s.runtime > 0

    def test_summary_readable(self, digital_soc, small_cnn):
        model = compile_model(small_cnn, digital_soc, HTVM)
        assert "small_cnn" in model.summary()

    def test_steps_reference_known_buffers(self, digital_soc, small_cnn):
        model = compile_model(small_cnn, digital_soc, HTVM)
        for step in model.steps:
            for name in step.input_names + [step.output_name]:
                assert name in model.buffers


class TestKernelDedup:
    def test_repeated_fc_shapes_share_cpu_kernels(self, cpu_soc):
        model = compile_model(toyadmos_dae(), cpu_soc, TVM_CPU)
        steps = [s for s in model.steps if isinstance(s, CpuKernelStep)]
        signatures = {s.signature for s in steps}
        # 10 FC layers but few unique shapes
        assert len(steps) == 10
        assert len(signatures) <= 5

    def test_accel_drivers_per_layer(self, digital_soc):
        model = compile_model(toyadmos_dae(), digital_soc, HTVM)
        accel = [s for s in model.steps if isinstance(s, AccelStep)]
        assert len(accel) == 10
        # one driver source per layer, never deduplicated
        dory_files = [n for n in model.c_sources if n.startswith("dory_")]
        assert len(dory_files) == 10


class TestNaiveTilingConfig:
    def test_naive_config_compiles_and_runs(self, digital_soc, small_cnn):
        from repro.core import HTVM_NAIVE_TILING
        model = compile_model(small_cnn, digital_soc, HTVM_NAIVE_TILING)
        feeds = random_inputs(small_cnn, seed=0)
        result = Executor(digital_soc).run(model, feeds)
        from repro.runtime import run_reference
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))
