"""Functional depth-first execution — bit-exactness property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dory import make_conv_spec
from repro.errors import UnsupportedError
from repro.extensions import (
    run_chain_depth_first, run_chain_layer_by_layer,
)


def build_chain(seed, stages, input_hw=16, input_c=3, depthwise_mask=0):
    """A random weighted conv chain."""
    rng = np.random.default_rng(seed)
    chain = []
    c, hw_y, hw_x = input_c, input_hw, input_hw
    for i in range(stages):
        depthwise = bool((depthwise_mask >> i) & 1)
        k = c if depthwise else int(rng.integers(1, 12))
        stride = int(rng.choice([1, 2])) if hw_y >= 6 else 1
        spec = make_conv_spec(
            f"c{i}", c, k, hw_y, hw_x, strides=(stride, stride),
            padding=(1, 1), depthwise=depthwise)
        cg = 1 if depthwise else c
        spec.weight = rng.integers(-128, 128, (k, cg, 3, 3)).astype(np.int8)
        spec.bias = rng.integers(-400, 400, k).astype(np.int32)
        spec.shift = int(rng.integers(4, 9))
        spec.relu = bool(rng.integers(0, 2))
        chain.append(spec)
        c, hw_y, hw_x = k, spec.oy, spec.ox
    return chain


class TestBitExactness:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2 ** 30), st.integers(1, 4),
           st.integers(1, 4), st.integers(1, 4), st.integers(0, 7))
    def test_property_depth_first_equals_layerwise(self, seed, stages,
                                                   py, px, dw_mask):
        chain = build_chain(seed, stages, depthwise_mask=dw_mask)
        final = chain[-1]
        grid = (min(py, final.oy), min(px, final.ox))
        rng = np.random.default_rng(seed + 1)
        x = rng.integers(-128, 128,
                         (1, chain[0].in_channels, 16, 16)).astype(np.int8)
        a = run_chain_layer_by_layer(chain, x)
        b = run_chain_depth_first(chain, x, grid)
        np.testing.assert_array_equal(a, b)

    def test_single_patch_trivially_equal(self):
        chain = build_chain(7, 3)
        rng = np.random.default_rng(0)
        x = rng.integers(-128, 128, (1, 3, 16, 16)).astype(np.int8)
        np.testing.assert_array_equal(
            run_chain_layer_by_layer(chain, x),
            run_chain_depth_first(chain, x, (1, 1)))

    def test_max_patching(self):
        chain = build_chain(11, 2)
        final = chain[-1]
        rng = np.random.default_rng(1)
        x = rng.integers(-128, 128, (1, 3, 16, 16)).astype(np.int8)
        np.testing.assert_array_equal(
            run_chain_layer_by_layer(chain, x),
            run_chain_depth_first(chain, x, (final.oy, final.ox)))


class TestErrors:
    def test_missing_weights(self):
        chain = [make_conv_spec("c", 3, 4, 8, 8, padding=(1, 1))]
        x = np.zeros((1, 3, 8, 8), np.int8)
        with pytest.raises(UnsupportedError, match="weights"):
            run_chain_layer_by_layer(chain, x)

    def test_bad_grid(self):
        chain = build_chain(0, 1)
        x = np.zeros((1, 3, 16, 16), np.int8)
        with pytest.raises(UnsupportedError):
            run_chain_depth_first(chain, x, (0, 1))
