"""Cross-cutting property tests over random model topologies.

Uses the random-CNN generator to fuzz the *whole* stack: partitioning,
fusion, serialization, DOT export and full compile+execute must all
hold for arbitrary valid topologies, not just the MLPerf four.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import HTVM, compile_model
from repro.frontend.modelzoo import RandomNetConfig, random_cnn
from repro.ir import Composite, graph_from_dict, graph_to_dict, graph_to_dot
from repro.patterns import default_specs, partition
from repro.runtime import random_inputs, run_reference
from repro.soc import DianaSoC
from repro.transforms import fuse_cpu_ops


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_partition_preserves_semantics_on_random_nets(seed):
    graph = random_cnn(seed)
    pg = partition(graph, default_specs())
    feeds = random_inputs(graph, seed=seed + 1)
    np.testing.assert_array_equal(
        run_reference(graph, feeds), run_reference(pg, feeds))


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_fusion_covers_every_call_exactly_once(seed):
    graph = random_cnn(seed)
    fused = fuse_cpu_ops(graph)
    assert not fused.calls()  # no top-level calls remain
    total_fused = sum(len(c.body.calls()) for c in fused.composites()
                      if isinstance(c, Composite))
    assert total_fused == len(graph.calls())


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_serialization_roundtrip_on_random_nets(seed):
    graph = random_cnn(seed)
    payload = json.dumps(graph_to_dict(graph))
    restored = graph_from_dict(json.loads(payload))
    feeds = random_inputs(graph, seed=seed)
    np.testing.assert_array_equal(
        run_reference(graph, feeds), run_reference(restored, feeds))


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10_000))
def test_dot_export_well_formed(seed):
    graph = random_cnn(seed)
    dot = graph_to_dot(partition(graph, default_specs()))
    assert dot.startswith("digraph")
    assert dot.rstrip().endswith("}")
    # every declared node id that appears in an edge is defined
    defined = {line.strip().split(" ")[0]
               for line in dot.splitlines()
               if line.strip().startswith("n") and "[" in line}
    for line in dot.splitlines():
        if "->" in line:
            src, dst = line.strip().rstrip(";").split(" -> ")
            assert src in defined and dst in defined


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_compile_execute_bit_exact_on_random_nets(seed):
    graph = random_cnn(seed, RandomNetConfig(max_stages=4))
    soc = DianaSoC(enable_analog=False)
    model = compile_model(graph, soc, HTVM.with_overrides(check_l2=False))
    feeds = random_inputs(graph, seed=seed + 5)
    from repro.runtime import Executor
    result = Executor(soc).run(model, feeds)
    np.testing.assert_array_equal(
        result.output, run_reference(model.graph, feeds))


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_compile_with_tiny_l1_still_bit_exact(seed):
    """Forcing aggressive tiling must never change results."""
    from repro.errors import TilingError
    graph = random_cnn(seed, RandomNetConfig(max_stages=3))
    soc = DianaSoC(enable_analog=False)
    cfg = HTVM.with_overrides(l1_budget=2048, check_l2=False)
    try:
        model = compile_model(graph, soc, cfg)
    except TilingError:
        return
    feeds = random_inputs(graph, seed=seed)
    from repro.runtime import Executor
    result = Executor(soc).run(model, feeds)
    np.testing.assert_array_equal(
        result.output, run_reference(model.graph, feeds))
