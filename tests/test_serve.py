"""Serving subsystem tests: artifact store, batcher, server, CLI.

The artifact round-trip property — a loaded ``.dna`` file produces
byte-identical outputs and exactly equal modeled cycles to the compile
that produced it — is asserted over the full model zoo x Table I
configuration grid.
"""

import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.core import CompilerConfig, compile_model
from repro.errors import ArtifactError, OutOfMemoryError, ServingError
from repro.eval.harness import CONFIGS, deploy, deploy_artifact
from repro.frontend.modelzoo import MLPERF_TINY
from repro.runtime import Executor, random_inputs, run_reference
from repro.serve import (
    InferenceServer, artifact_from_dict, artifact_to_dict, load_artifact,
    pack_model, save_artifact,
)
from repro.serve.batcher import DynamicBatcher
from repro.soc import DianaSoC

from helpers import build_small_cnn


def _compile_cell(model: str, config: str):
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    return graph, soc, cfg


class TestArtifactRoundTrip:
    """Zoo x Table I: loaded artifact == fresh compile, bit for bit."""

    @pytest.mark.parametrize("model", sorted(MLPERF_TINY))
    @pytest.mark.parametrize("config", list(CONFIGS))
    def test_zoo_grid_bit_exact(self, model, config, tmp_path):
        graph, soc, cfg = _compile_cell(model, config)
        try:
            compiled = compile_model(graph, soc, cfg)
        except OutOfMemoryError:
            pytest.skip(f"{model}/{config} does not fit L2 (Table I OoM)")
        path = str(tmp_path / f"{model}-{config}.dna")
        save_artifact(path, compiled, soc, cfg)
        art = load_artifact(path)

        assert art.fingerprint == compiled.fingerprint()
        assert art.config_fingerprint == cfg.fingerprint()
        feeds = random_inputs(graph, seed=3)
        fresh = Executor(soc, exec_mode="fast").run(compiled, feeds)
        loaded = Executor(art.soc, exec_mode="fast").run(art.model, feeds)
        assert np.array_equal(fresh.output, loaded.output)
        assert fresh.total_cycles == loaded.total_cycles

    def test_tiled_execution_of_loaded_artifact(self, tmp_path):
        """Tilings are restored verbatim: the tile-accurate schedule of
        a loaded artifact still matches the reference interpreter."""
        graph, soc, cfg = _compile_cell("resnet", "digital")
        cfg = cfg.with_overrides(l1_budget=16 * 1024)
        art = pack_model(graph, soc, cfg, str(tmp_path / "r.dna"),
                         validate_runs=0)
        feeds = random_inputs(graph, seed=5)
        tiled = Executor(art.soc, exec_mode="tiled").run(art.model, feeds)
        assert np.array_equal(
            np.asarray(tiled.output),
            np.asarray(run_reference(art.model.graph, feeds)))

    def test_pack_model_records_validation(self, tmp_path):
        graph, soc, cfg = _compile_cell("resnet", "digital")
        art = pack_model(graph, soc, cfg, str(tmp_path / "r.dna"),
                         validate_runs=2)
        assert art.validation == {"runs": 2, "exact_runs": 2, "passed": True}

    def test_c_sources_and_decisions_roundtrip(self, tmp_path):
        graph, soc, cfg = _compile_cell("dscnn", "mixed")
        compiled = compile_model(graph, soc, cfg)
        save_artifact(str(tmp_path / "d.dna"), compiled, soc, cfg)
        art = load_artifact(str(tmp_path / "d.dna"))
        assert art.model.c_sources == compiled.c_sources
        got = [(d.layer_name, d.target)
               for d in art.model.dispatch_decisions]
        want = [(d.layer_name, d.target)
                for d in compiled.dispatch_decisions]
        assert got == want

    def test_small_cnn_artifact(self, tmp_path, soc):
        """Artifacts are not zoo-specific: any compiled graph packs."""
        graph = build_small_cnn()
        cfg = CompilerConfig()
        art = pack_model(graph, soc, cfg, str(tmp_path / "s.dna"))
        feeds = random_inputs(graph, seed=1)
        out = Executor(art.soc, exec_mode="fast").run(art.model, feeds)
        assert np.array_equal(
            np.asarray(out.output),
            np.asarray(run_reference(art.model.graph, feeds)))


class TestArtifactIntegrity:
    def _record(self, tmp_path):
        graph, soc, cfg = _compile_cell("resnet", "digital")
        compiled = compile_model(graph, soc, cfg)
        return artifact_to_dict(compiled, soc, cfg)

    def test_bad_magic_rejected(self, tmp_path):
        obj = self._record(tmp_path)
        obj["format"] = "not-dna"
        with pytest.raises(ArtifactError, match="magic"):
            artifact_from_dict(obj)

    def test_bad_version_rejected(self, tmp_path):
        obj = self._record(tmp_path)
        obj["version"] = 999
        with pytest.raises(ArtifactError, match="version"):
            artifact_from_dict(obj)

    def test_tampered_fingerprint_rejected(self, tmp_path):
        obj = self._record(tmp_path)
        obj["fingerprint"] = "0" * 64
        with pytest.raises(ArtifactError, match="fingerprint"):
            artifact_from_dict(obj)

    def test_tampered_geometry_rejected(self, tmp_path):
        obj = self._record(tmp_path)
        accel = next(s for s in obj["steps"] if s["kind"] == "accel")
        accel["spec"]["out_channels"] += 1
        with pytest.raises(ArtifactError, match="geometry"):
            artifact_from_dict(obj)

    def test_unreadable_file(self, tmp_path):
        path = tmp_path / "junk.dna"
        path.write_bytes(b"definitely not gzip")
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(str(path))

    def test_config_fingerprint_semantics(self):
        cfg = CompilerConfig()
        assert cfg.fingerprint() == CompilerConfig().fingerprint()
        # memoization knobs do not change the fingerprint...
        assert cfg.fingerprint() == \
            cfg.with_overrides(tiling_cache=False).fingerprint()
        # ...semantic knobs do
        assert cfg.fingerprint() != \
            cfg.with_overrides(alpha=0.5).fingerprint()
        assert cfg.fingerprint() != \
            cfg.with_overrides(mapping_strategy="dp").fingerprint()


@pytest.fixture(scope="module")
def served_resnet(tmp_path_factory):
    graph, soc, cfg = _compile_cell("resnet", "digital")
    path = tmp_path_factory.mktemp("dna") / "resnet.dna"
    return pack_model(graph, soc, cfg, str(path))


class TestBatcher:
    def test_coalesces_and_matches_reference(self, served_resnet):
        art = served_resnet
        graph = art.model.graph
        batcher = DynamicBatcher(
            art.model, Executor(art.soc, exec_mode="fast"),
            max_batch_size=8, max_wait_ms=20.0)
        try:
            feeds = [random_inputs(graph, seed=s) for s in range(8)]
            futs = [batcher.submit(f) for f in feeds]
            outs = [f.result(60) for f in futs]
            for f, out in zip(feeds, outs):
                assert np.array_equal(
                    out, np.asarray(run_reference(graph, f)))
            stats = batcher.stats()
            assert stats.requests == 8
            assert stats.batches < 8  # something actually coalesced
            assert stats.errors == 0
            assert stats.cycles_per_inference > 0
        finally:
            batcher.stop()

    def test_graceful_stop_drains_queue(self, served_resnet):
        art = served_resnet
        batcher = DynamicBatcher(
            art.model, Executor(art.soc, exec_mode="fast"),
            max_batch_size=4, max_wait_ms=0.0)
        feeds = random_inputs(art.model.graph, seed=1)
        futs = [batcher.submit(feeds) for _ in range(10)]
        batcher.stop(wait=True)
        for f in futs:
            assert f.result(1) is not None  # already resolved
        with pytest.raises(ServingError, match="shut down"):
            batcher.submit(feeds)

    def test_bad_input_rejected(self, served_resnet):
        art = served_resnet
        batcher = DynamicBatcher(
            art.model, Executor(art.soc, exec_mode="fast"))
        try:
            with pytest.raises(ServingError, match="missing input"):
                batcher.submit({})
            with pytest.raises(ServingError, match="expected"):
                batcher.submit({"data": np.zeros((1, 1, 2, 2), np.int8)})
        finally:
            batcher.stop()

    def test_error_propagates_without_killing_worker(self, served_resnet):
        art = served_resnet
        executor = Executor(art.soc, exec_mode="fast")
        batcher = DynamicBatcher(art.model, executor, max_batch_size=2,
                                 max_wait_ms=0.0)
        try:
            good_feeds = random_inputs(art.model.graph, seed=2)
            # an input with the right shape but a poisoned executor run:
            # monkeypatch the compiled model's steps? simpler — feed a
            # wrong dtype that the executor itself rejects at runtime
            bad = {"data": good_feeds["data"].astype(np.int8)}
            batcher.executor = None  # force an AttributeError in-loop
            fut = batcher.submit(bad)
            with pytest.raises(AttributeError):
                fut.result(30)
            batcher.executor = executor  # worker must still be alive
            fut2 = batcher.submit(good_feeds)
            assert fut2.result(30) is not None
            assert batcher.stats().errors == 1
        finally:
            batcher.stop()


class TestInferenceServer:
    def test_multi_model_concurrent_clients(self, served_resnet, tmp_path):
        graph_d, soc_d, cfg_d = _compile_cell("dscnn", "mixed")
        dscnn_model = compile_model(graph_d, soc_d, cfg_d)
        with InferenceServer(max_batch_size=8, max_wait_ms=5.0) as srv:
            k1 = srv.register_artifact(served_resnet)
            k2 = srv.register_model(dscnn_model, soc_d)
            assert sorted(srv.models()) == sorted([k1, k2])
            rg = served_resnet.model.graph
            feeds_r = [random_inputs(rg, seed=s) for s in range(6)]
            feeds_d = [random_inputs(graph_d, seed=s) for s in range(6)]
            results = {}

            def client(key, feeds, tag):
                results[tag] = [srv.submit(key, f) for f in feeds]

            t1 = threading.Thread(target=client, args=(k1, feeds_r, "r"))
            t2 = threading.Thread(target=client, args=("dscnn", feeds_d, "d"))
            t1.start(); t2.start(); t1.join(); t2.join()
            for f, fut in zip(feeds_r, results["r"]):
                assert np.array_equal(
                    fut.result(60)[0], np.asarray(run_reference(rg, f))[0])
            for f, fut in zip(feeds_d, results["d"]):
                assert np.array_equal(
                    fut.result(60)[0],
                    np.asarray(run_reference(graph_d, f))[0])
            stats = srv.stats()
            assert stats[k1]["requests"] == 6
            assert stats[k2]["requests"] == 6
            assert "queue_depth" in stats[k1]
            assert stats[k1]["modeled_ms_per_inference"] > 0
            assert "resnet8" in srv.format_stats()

    def test_bare_name_resolution_and_unknown(self, served_resnet):
        with InferenceServer() as srv:
            key = srv.register_artifact(served_resnet)
            feeds = random_inputs(served_resnet.model.graph, seed=0)
            out = srv.infer("resnet8", feeds, timeout=60)
            assert out is not None
            with pytest.raises(ServingError, match="unknown model"):
                srv.submit("alexnet", feeds)
            # stats accepts bare names too, and rejects unknown ones
            by_name, by_key = srv.stats("resnet8"), srv.stats(key)
            assert list(by_name) == [key]
            assert by_name[key]["requests"] == by_key[key]["requests"]
            with pytest.raises(ServingError, match="unknown model"):
                srv.stats("alexnet")

    def test_lru_eviction(self, served_resnet, tmp_path):
        graph, soc, cfg = _compile_cell("toyadmos", "digital")
        toy = compile_model(graph, soc, cfg)
        with InferenceServer(capacity=1) as srv:
            k1 = srv.register_artifact(served_resnet)
            k2 = srv.register_model(toy, soc)
            assert srv.models() == [k2]  # k1 evicted, batcher drained
            with pytest.raises(ServingError, match="evicted"):
                srv.submit(k1, random_inputs(
                    served_resnet.model.graph, seed=0))
            assert srv.infer(k2, random_inputs(graph, seed=0),
                             timeout=60) is not None

    def test_reregister_is_idempotent(self, served_resnet):
        with InferenceServer() as srv:
            k1 = srv.register_artifact(served_resnet)
            k2 = srv.register_artifact(served_resnet)
            assert k1 == k2
            assert srv.models() == [k1]

    def test_shutdown_rejects_new_work(self, served_resnet):
        srv = InferenceServer()
        srv.register_artifact(served_resnet)
        srv.shutdown()
        with pytest.raises(ServingError, match="shut down"):
            srv.submit("resnet8",
                       random_inputs(served_resnet.model.graph, seed=0))
        srv.shutdown()  # idempotent


class TestRequantizeAccGuards:
    def test_float64_path_preserves_int32_wraparound(self):
        """A provable-in-f64 accumulator beyond int32 must still wrap
        exactly like the tiled int32 reference path."""
        from repro import numerics as K

        acc = np.array([[[[4.26e9]], [[-3.1e9]], [[123456.0]]]],
                       dtype=np.float64)
        bound = 1 << 34  # > 2**31: float fast path must refuse
        got = K.requantize_acc(acc.copy(), None, 4, False, acc_bound=bound)
        want = K.bias_requantize(K._to_int32(acc.copy()), None, 4, False)
        np.testing.assert_array_equal(got, want)

    def test_float_path_matches_int_path_in_range(self):
        from repro import numerics as K

        rng = np.random.default_rng(0)
        vals = rng.integers(-(1 << 21), 1 << 21, size=(2, 8, 5, 5))
        bias = rng.integers(-(1 << 10), 1 << 10, size=8)
        for dt in (np.float32, np.float64):
            acc = vals.astype(dt)
            got = K.requantize_acc(acc.copy(), bias, 7, True,
                                   acc_bound=1 << 21)
            want = K.bias_requantize(K._to_int32(acc.copy()), bias, 7, True)
            np.testing.assert_array_equal(got, want)


class TestHarnessIntegration:
    def test_deploy_validate_knob(self):
        # validate=False skips the reference re-run: verified stays None
        r = deploy("toyadmos", "digital", exec_mode="fast", validate=False)
        assert r.verified is None
        assert r.latency_ms > 0
        # default behavior unchanged: verify implies validation
        r2 = deploy("toyadmos", "digital", exec_mode="fast")
        assert r2.verified is True
        assert r2.latency_ms == r.latency_ms

    def test_deploy_artifact_trusts_pack_validation(self, served_resnet):
        r = deploy_artifact(served_resnet)
        assert r.verified is True          # carried from pack time
        assert r.latency_ms > 0
        fresh = deploy("resnet", "digital", exec_mode="fast")
        assert r.latency_ms == fresh.latency_ms
        # validate=True forces an actual re-check
        r2 = deploy_artifact(served_resnet, validate=True)
        assert r2.verified is True

    def test_deploy_artifact_from_path(self, tmp_path):
        graph, soc, cfg = _compile_cell("toyadmos", "digital")
        path = str(tmp_path / "toy.dna")
        pack_model(graph, soc, cfg, path, validate_runs=0)
        r = deploy_artifact(path)
        assert r.verified is None          # nothing recorded, not re-run
        assert r.model == "toyadmos_dae"


class TestDispatchShimDeprecation:
    def test_warns_once_per_process(self):
        code = (
            "import warnings, sys\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro.dispatch\n"
            "    import repro.dispatch as d2\n"
            "dep = [w for w in caught\n"
            "       if issubclass(w.category, DeprecationWarning)\n"
            "       and 'repro.dispatch' in str(w.message)]\n"
            "assert len(dep) == 1, [str(w.message) for w in caught]\n"
            "assert d2.assign_targets is not None\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, proc.stderr

    def test_plain_repro_import_does_not_warn(self):
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro\n"
            "dep = [w for w in caught\n"
            "       if issubclass(w.category, DeprecationWarning)\n"
            "       and 'dispatch' in str(w.message)]\n"
            "assert not dep, [str(w.message) for w in dep]\n"
            "assert repro.dispatch is not None  # lazy alias still works\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, proc.stderr


class TestServingCli:
    def run_cli(self, *args, stdin=None):
        return subprocess.run([sys.executable, "-m", "repro.cli", *args],
                              capture_output=True, text=True, timeout=600,
                              input=stdin)

    def test_models_columns(self):
        proc = self.run_cli("models")
        assert proc.returncode == 0
        assert "params" in proc.stdout
        assert "default-rule targets" in proc.stdout
        # mixed resnet offloads to both cores under the default rules
        resnet_row = next(l for l in proc.stdout.splitlines()
                          if l.startswith("resnet"))
        assert "soc.analog" in resnet_row and "soc.digital" in resnet_row

    def test_pack_load_check_serve(self, tmp_path):
        dna = str(tmp_path / "resnet.dna")
        proc = self.run_cli("pack", "resnet", "--config", "digital",
                            "--out", dna)
        assert proc.returncode == 0, proc.stderr
        assert "packed" in proc.stdout

        proc = self.run_cli("load", dna, "--check")
        assert proc.returncode == 0, proc.stderr
        assert "bit-exact vs fresh compile: True" in proc.stdout
        assert "cycles equal: True" in proc.stdout

        proc = self.run_cli("serve", dna, "--requests", "16",
                            "--clients", "2", "--verify")
        assert proc.returncode == 0, proc.stderr
        assert "OK: 16 requests" in proc.stdout

    def test_serve_interactive_loop(self, tmp_path):
        dna = str(tmp_path / "toy.dna")
        proc = self.run_cli("pack", "toyadmos", "--config", "digital",
                            "--out", dna)
        assert proc.returncode == 0, proc.stderr
        proc = self.run_cli("serve", dna,
                            stdin="toyadmos_dae 1\ntoyadmos_dae 2\n")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.count("output_sum=") == 2
