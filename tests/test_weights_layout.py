"""Weight layout / packing tests, incl. round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dory import (
    layout_analog_weights, layout_digital_weights, make_conv_spec,
    make_dense_spec, pack_ternary, restore_analog_weights,
    restore_digital_weights, unpack_ternary, weight_image_for,
)
from repro.errors import CodegenError
from repro.soc import DEFAULT_PARAMS


class TestTernaryPacking:
    def test_basic_roundtrip(self):
        values = np.array([-1, 0, 1, 1, 0, -1, -1], dtype=np.int8)
        packed = pack_ternary(values)
        assert packed.nbytes == 2  # 7 values -> 2 bytes
        np.testing.assert_array_equal(unpack_ternary(packed, 7), values)

    def test_rejects_out_of_range(self):
        with pytest.raises(CodegenError):
            pack_ternary(np.array([2], dtype=np.int8))

    def test_density(self):
        packed = pack_ternary(np.zeros(1000, dtype=np.int8))
        assert packed.nbytes == 250

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1), st.integers(1, 500))
    def test_property_roundtrip(self, seed, count):
        rng = np.random.default_rng(seed)
        values = rng.integers(-1, 2, count).astype(np.int8)
        np.testing.assert_array_equal(
            unpack_ternary(pack_ternary(values), count), values)

    def test_insufficient_data_raises(self):
        with pytest.raises(CodegenError):
            unpack_ternary(np.zeros(1, np.uint8), 10)


class TestDigitalLayout:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 40), st.integers(1, 40),
           st.sampled_from([1, 3, 5]), st.integers(0, 2 ** 31 - 1))
    def test_property_roundtrip(self, k, c, f, seed):
        rng = np.random.default_rng(seed)
        w = rng.integers(-128, 128, (k, c, f, f)).astype(np.int8)
        image = layout_digital_weights(w, DEFAULT_PARAMS)
        np.testing.assert_array_equal(restore_digital_weights(image), w)

    def test_padding_to_pe_blocks(self):
        w = np.ones((10, 10, 3, 3), dtype=np.int8)
        image = layout_digital_weights(w, DEFAULT_PARAMS)
        # padded to 16x16 blocks
        assert image.nbytes == 16 * 16 * 9

    def test_aligned_no_padding(self):
        w = np.ones((16, 32, 1, 1), dtype=np.int8)
        image = layout_digital_weights(w, DEFAULT_PARAMS)
        assert image.nbytes == 16 * 32

    def test_dense_as_1x1(self):
        w = np.arange(64, dtype=np.int8).reshape(8, 8)
        image = layout_digital_weights(w, DEFAULT_PARAMS)
        restored = restore_digital_weights(image)
        np.testing.assert_array_equal(restored[:, :, 0, 0], w)

    def test_blocked_burst_is_contiguous(self):
        # block (0, 0) of an aligned layout is the first 16x16 bytes
        w = np.zeros((32, 32, 1, 1), dtype=np.int8)
        w[:16, :16, 0, 0] = 7
        image = layout_digital_weights(w, DEFAULT_PARAMS)
        first_block = image.data[:16 * 16].view(np.int8)
        assert (first_block == 7).all()


class TestAnalogLayout:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 30), st.integers(1, 40),
           st.sampled_from([1, 3]), st.integers(0, 2 ** 31 - 1))
    def test_property_roundtrip(self, k, c, f, seed):
        rng = np.random.default_rng(seed)
        w = rng.integers(-1, 2, (k, c, f, f)).astype(np.int8)
        spec = make_conv_spec("t", c, k, 8, 8,
                              fy=f, fx=f, padding=(1, 1) if f == 3 else (0, 0),
                              weight_dtype="ternary")
        image = layout_analog_weights(w, spec, DEFAULT_PARAMS)
        np.testing.assert_array_equal(restore_analog_weights(image), w)

    def test_conv_pads_to_full_macro(self):
        w = np.zeros((16, 16, 3, 3), dtype=np.int8)
        spec = make_conv_spec("t", 16, 16, 8, 8, padding=(1, 1),
                              weight_dtype="ternary")
        image = layout_analog_weights(w, spec, DEFAULT_PARAMS)
        assert image.padded_rows == DEFAULT_PARAMS.ana_row_pad_conv
        assert image.nbytes == 1152 * 16 * 2 // 8

    def test_pw_pads_to_quadrant(self):
        w = np.zeros((16, 16, 1, 1), dtype=np.int8)
        spec = make_conv_spec("t", 16, 16, 8, 8, fy=1, fx=1,
                              weight_dtype="ternary")
        image = layout_analog_weights(w, spec, DEFAULT_PARAMS)
        assert image.padded_rows == DEFAULT_PARAMS.ana_row_pad_pw

    def test_matches_size_model(self):
        """The byte stream must equal the binary-size model's account."""
        from repro.soc import AnalogAccelerator
        accel = AnalogAccelerator(DEFAULT_PARAMS)
        for c, k, f in ((16, 16, 3), (64, 32, 1), (7, 5, 3)):
            pad = (1, 1) if f == 3 else (0, 0)
            spec = make_conv_spec("t", c, k, 8, 8, fy=f, fx=f, padding=pad,
                                  weight_dtype="ternary")
            w = np.zeros((k, c, f, f), dtype=np.int8)
            image = layout_analog_weights(w, spec, DEFAULT_PARAMS)
            assert image.nbytes == accel.weight_storage_bytes(spec)


class TestWeightImageFor:
    def test_dispatch_by_target(self):
        rng = np.random.default_rng(0)
        spec = make_conv_spec("t", 64, 64, 8, 8, padding=(1, 1),
                              weight_dtype="ternary")
        spec.weight = rng.integers(-1, 2, (64, 64, 3, 3)).astype(np.int8)
        ana = weight_image_for(spec, "soc.analog", DEFAULT_PARAMS)
        dig_spec = make_conv_spec("t", 64, 64, 8, 8, padding=(1, 1))
        dig_spec.weight = rng.integers(-128, 128,
                                       (64, 64, 3, 3)).astype(np.int8)
        dig = weight_image_for(dig_spec, "soc.digital", DEFAULT_PARAMS)
        assert ana.nbytes < dig.nbytes  # 2-bit vs 8-bit (plus padding rules)

    def test_missing_weights_raise(self):
        spec = make_dense_spec("fc", 8, 8)
        with pytest.raises(CodegenError):
            weight_image_for(spec, "soc.digital", DEFAULT_PARAMS)
