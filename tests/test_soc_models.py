"""Accelerator / CPU / DMA / memory cost-model tests."""

import numpy as np
import pytest

from repro import numerics as K
from repro.dory import make_conv_spec, make_dense_spec
from repro.errors import OutOfMemoryError, SimulationError
from repro.ir import GraphBuilder
from repro.soc import (
    AnalogAccelerator, DEFAULT_PARAMS, DianaParams, DianaSoC,
    DigitalAccelerator, MemoryRegion, contiguous_chunks, latency_ms,
    tile_transfer_cycles, transfer_cycles,
)


@pytest.fixture
def digital():
    return DigitalAccelerator(DEFAULT_PARAMS)


@pytest.fixture
def analog():
    return AnalogAccelerator(DEFAULT_PARAMS)


class TestDigitalCycles:
    def test_conv_peak_256_macs_per_cycle(self, digital):
        # pointwise conv, C and ox multiples of 16 -> full PE array
        spec = make_conv_spec("pw", 32, 32, 16, 16, fy=1, fx=1)
        cycles = digital.compute_cycles(spec, 32, 32, 16, 16)
        assert spec.macs() / cycles == pytest.approx(256.0)

    def test_conv_partial_channels_waste_rows(self, digital):
        spec = make_conv_spec("c", 3, 16, 16, 16, fy=1, fx=1)
        cycles = digital.compute_cycles(spec, 3, 16, 16, 16)
        assert spec.macs() / cycles == pytest.approx(256.0 * 3 / 16)

    def test_dw_peak_throughput(self, digital):
        # paper Sec. IV-B: depthwise peak 3.75 MACs/cycle
        spec = make_conv_spec("dw", 64, 64, 16, 16, padding=(1, 1),
                              depthwise=True)
        cycles = digital.compute_cycles(spec, 64, 64, 16, 16)
        assert spec.macs() / cycles == pytest.approx(3.75)

    def test_fc_cycles(self, digital):
        spec = make_dense_spec("fc", 64, 32)
        assert digital.compute_cycles(spec, 64, 32, 1, 1) == 4 * 2

    def test_supports_rules(self, digital):
        ok, _ = digital.supports(make_conv_spec("c", 8, 8, 8, 8, padding=(1, 1)))
        assert ok
        bad, reason = digital.supports(
            make_conv_spec("c", 8, 8, 8, 8, padding=(1, 1),
                           weight_dtype="ternary"))
        assert not bad and "ternary" in reason
        big_kernel = make_conv_spec("c", 4, 4, 40, 40, fy=3, fx=3)
        big_kernel.fy = 32
        bad2, reason2 = digital.supports(big_kernel)
        assert not bad2 and "kernel" in reason2

    def test_weight_tile_bytes(self, digital):
        spec = make_conv_spec("c", 16, 32, 8, 8, padding=(1, 1))
        assert digital.weight_tile_bytes(spec, 16, 32) == 32 * 16 * 9
        dw = make_conv_spec("dw", 16, 16, 8, 8, padding=(1, 1), depthwise=True)
        assert digital.weight_tile_bytes(dw, 16, 16) == 16 * 9


class TestDigitalFunctional:
    def test_execute_matches_numerics(self, digital):
        rng = np.random.default_rng(0)
        spec = make_conv_spec("c", 4, 8, 8, 8, padding=(1, 1), shift=6,
                              relu=True)
        x = rng.integers(-128, 128, (1, 4, 8, 8)).astype(np.int8)
        w = rng.integers(-128, 128, (8, 4, 3, 3)).astype(np.int8)
        bias = rng.integers(-1000, 1000, 8).astype(np.int32)
        got = digital.execute(spec, x, w, bias)
        acc = K.bias_add(K.conv2d(x, w, (1, 1), (1, 1)), bias)
        want = K.requantize(acc, 6, True)
        np.testing.assert_array_equal(got, want)

    def test_partial_accumulation_equals_full(self, digital):
        rng = np.random.default_rng(1)
        spec = make_conv_spec("c", 8, 4, 6, 6, padding=(1, 1), shift=5)
        x = rng.integers(-128, 128, (1, 8, 6, 6)).astype(np.int8)
        w = rng.integers(-128, 128, (4, 8, 3, 3)).astype(np.int8)
        bias = rng.integers(-100, 100, 4).astype(np.int32)
        full = digital.execute(spec, x, w, bias)
        acc = (digital.accumulate(spec, x[:, :4], w[:, :4])
               + digital.accumulate(spec, x[:, 4:], w[:, 4:]))
        split = digital.finalize(spec, acc, bias)
        np.testing.assert_array_equal(full, split)


class TestAnalog:
    def test_mapping(self, analog):
        spec = make_conv_spec("c", 64, 64, 16, 16, padding=(1, 1),
                              weight_dtype="ternary")
        assert analog.mapped_rows(spec, 64) == 64 * 9
        assert analog.row_blocks(spec, 64) == 1
        assert analog.col_blocks(600) == 2

    def test_row_overflow_needs_blocks(self, analog):
        spec = make_conv_spec("c", 256, 64, 8, 8, padding=(1, 1),
                              weight_dtype="ternary")
        assert analog.row_blocks(spec, 256) == 2

    def test_supports_rejects_dw_and_int8(self, analog):
        dw = make_conv_spec("dw", 8, 8, 8, 8, padding=(1, 1), depthwise=True)
        ok, reason = analog.supports(dw)
        assert not ok and "dwconv2d" in reason
        int8conv = make_conv_spec("c", 8, 8, 8, 8, padding=(1, 1))
        ok2, reason2 = analog.supports(int8conv)
        assert not ok2

    def test_execute_checks_7bit_inputs(self, analog):
        spec = make_conv_spec("c", 2, 2, 4, 4, fy=1, fx=1,
                              weight_dtype="ternary")
        x = np.full((1, 2, 4, 4), 100, dtype=np.int8)
        w = np.ones((2, 2, 1, 1), dtype=np.int8)
        with pytest.raises(SimulationError, match="7-bit"):
            analog.execute(spec, x, w, None)

    def test_execute_checks_ternary_weights(self, analog):
        spec = make_conv_spec("c", 2, 2, 4, 4, fy=1, fx=1,
                              weight_dtype="ternary")
        x = np.zeros((1, 2, 4, 4), dtype=np.int8)
        w = np.full((2, 2, 1, 1), 3, dtype=np.int8)
        with pytest.raises(SimulationError, match="ternary"):
            analog.execute(spec, x, w, None)

    def test_weight_storage_padding(self, analog):
        # 3x3 conv rows pad to the full macro height
        spec = make_conv_spec("c", 16, 16, 8, 8, padding=(1, 1),
                              weight_dtype="ternary")
        assert analog.weight_storage_bytes(spec) == 1152 * 16 * 2 // 8
        # pointwise pads to 288 rows
        pw = make_conv_spec("pw", 16, 16, 8, 8, fy=1, fx=1,
                            weight_dtype="ternary")
        assert analog.weight_storage_bytes(pw) == 288 * 16 * 2 // 8

    def test_noise_injection_changes_results(self, analog):
        rng = np.random.default_rng(0)
        spec = make_conv_spec("c", 16, 16, 8, 8, padding=(1, 1),
                              weight_dtype="ternary", shift=2)
        x = rng.integers(-64, 64, (1, 16, 8, 8)).astype(np.int8)
        w = rng.integers(-1, 2, (16, 16, 3, 3)).astype(np.int8)
        clean = analog.execute(spec, x, w, None)
        noisy = analog.execute_noisy(spec, x, w, None, noise_sigma=5.0,
                                     rng=np.random.default_rng(1))
        assert clean.shape == noisy.shape
        assert not np.array_equal(clean, noisy)

    def test_zero_noise_matches_clean(self, analog):
        rng = np.random.default_rng(0)
        spec = make_conv_spec("c", 4, 4, 6, 6, padding=(1, 1),
                              weight_dtype="ternary", shift=2)
        x = rng.integers(-64, 64, (1, 4, 6, 6)).astype(np.int8)
        w = rng.integers(-1, 2, (4, 4, 3, 3)).astype(np.int8)
        clean = analog.execute(spec, x, w, None)
        noisy = analog.execute_noisy(spec, x, w, None, 0.0,
                                     np.random.default_rng(2))
        np.testing.assert_array_equal(clean, noisy)


class TestDma:
    def test_contiguous_chunks_full_tensor(self):
        assert contiguous_chunks((16, 32, 32), (16, 32, 32)) == 1

    def test_channel_slice_contiguous(self):
        assert contiguous_chunks((16, 32, 32), (8, 32, 32)) == 1

    def test_row_slice_per_channel(self):
        assert contiguous_chunks((16, 32, 32), (16, 8, 32)) == 16

    def test_column_slice_per_row(self):
        assert contiguous_chunks((16, 32, 32), (16, 32, 8)) == 16 * 32

    def test_tile_too_big_rejected(self):
        with pytest.raises(ValueError):
            contiguous_chunks((4, 4), (8, 4))

    def test_transfer_cycles_scale_with_bytes(self):
        a = transfer_cycles(1024, 1, DEFAULT_PARAMS)
        b = transfer_cycles(2048, 1, DEFAULT_PARAMS)
        assert b > a

    def test_zero_bytes_free(self):
        assert transfer_cycles(0, 1, DEFAULT_PARAMS) == 0.0

    def test_activation_bandwidth_faster_than_weight(self):
        act = tile_transfer_cycles((16, 16, 16), (16, 16, 16), 1.0,
                                   DEFAULT_PARAMS)
        w = transfer_cycles(16 * 16 * 16, 1, DEFAULT_PARAMS)
        assert act < w


class TestMemoryRegion:
    def test_alloc_and_free(self):
        m = MemoryRegion("L2", 1024)
        m.alloc("a", 512)
        m.alloc("b", 512)
        assert m.used == 1024
        m.free("a")
        assert m.used == 512

    def test_no_reuse_high_water(self):
        # the naive allocator never reuses freed space
        m = MemoryRegion("L2", 1024)
        m.alloc("a", 512)
        m.free("a")
        m.alloc("b", 400)  # lands at 512: the bump pointer never rewinds
        assert m.allocations["b"].offset == 512
        with pytest.raises(OutOfMemoryError):
            m.alloc("c", 200)

    def test_place_out_of_bounds(self):
        m = MemoryRegion("L2", 100)
        with pytest.raises(OutOfMemoryError):
            m.place("x", 90, 20)

    def test_reset(self):
        m = MemoryRegion("L2", 100)
        m.alloc("x", 50)
        m.reset()
        assert m.used == 0


class TestCpuModel:
    def test_conv_rate(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 16, 16, 16), "int8")
        g = b.finish(b.conv2d_requant(x, 16, kernel=3, padding=(1, 1)))
        soc = DianaSoC()
        cycles = soc.cpu.kernel_cycles(g)
        macs = g.total_macs()
        assert cycles > macs * DEFAULT_PARAMS.cpu_cycles_per_mac_conv

    def test_dwconv_slower_per_mac(self):
        soc = DianaSoC()
        b1 = GraphBuilder(seed=0)
        x = b1.input("x", (1, 32, 16, 16), "int8")
        conv = b1.finish(b1.conv2d_requant(x, 32, kernel=3, padding=(1, 1)))
        b2 = GraphBuilder(seed=0)
        x2 = b2.input("x", (1, 32, 16, 16), "int8")
        dw = b2.finish(b2.dwconv2d_requant(x2, kernel=3, padding=(1, 1)))
        conv_rate = conv.total_macs() / soc.cpu.kernel_cycles(conv)
        dw_rate = dw.total_macs() / soc.cpu.kernel_cycles(dw)
        assert dw_rate < conv_rate


class TestPlatform:
    def test_latency_conversion(self):
        assert latency_ms(260000.0) == pytest.approx(1.0)

    def test_accelerator_lookup(self):
        soc = DianaSoC()
        assert soc.accelerator("soc.digital").name == "soc.digital"
        from repro.errors import DispatchError
        with pytest.raises(DispatchError):
            soc.accelerator("soc.npu")

    def test_param_overrides(self):
        p = DEFAULT_PARAMS.with_overrides(l1_bytes=1024)
        assert p.l1_bytes == 1024
        assert DEFAULT_PARAMS.l1_bytes == 256 * 1024
