"""Unit tests for TensorType and ConstantTensor."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import ConstantTensor, TensorType, dtype, random_constant


class TestTensorType:
    def test_basic(self):
        t = TensorType((1, 3, 32, 32), dtype("int8"))
        assert t.num_elements == 3 * 32 * 32
        assert t.storage_bytes == 3 * 32 * 32
        assert t.rank == 4

    def test_dtype_by_name(self):
        t = TensorType((4,), "int32")
        assert t.dtype.name == "int32"
        assert t.storage_bytes == 16

    def test_ternary_packed_bytes(self):
        t = TensorType((16, 16), "ternary")
        assert t.storage_bytes == 16 * 16 * 2 // 8

    def test_invalid_shape(self):
        with pytest.raises(IRError):
            TensorType((0, 3), "int8")
        with pytest.raises(IRError):
            TensorType((-1,), "int8")

    def test_with_dtype_and_shape(self):
        t = TensorType((2, 3), "int8")
        assert t.with_dtype("int32").dtype.name == "int32"
        assert t.with_shape((6,)).shape == (6,)

    def test_str(self):
        assert str(TensorType((1, 2), "int8")) == "1x2:int8"

    def test_equality(self):
        assert TensorType((1, 2), "int8") == TensorType((1, 2), "int8")
        assert TensorType((1, 2), "int8") != TensorType((1, 2), "int7")


class TestConstantTensor:
    def test_range_check_int8(self):
        ConstantTensor(np.array([127, -128], dtype=np.int8))
        with pytest.raises(IRError, match="out of range"):
            ConstantTensor(np.array([200]), "int7")

    def test_ternary_range_check(self):
        ConstantTensor(np.array([-1, 0, 1]), "ternary")
        with pytest.raises(IRError):
            ConstantTensor(np.array([2]), "ternary")

    def test_scalar_promoted(self):
        c = ConstantTensor(np.int32(5), "int32")
        assert c.shape == (1,)

    def test_storage_bytes(self):
        c = ConstantTensor(np.zeros((8, 8), dtype=np.int8), "ternary")
        assert c.storage_bytes == 16


class TestRandomConstant:
    def test_seeded_determinism(self):
        a = random_constant(np.random.default_rng(0), (4, 4), "int8")
        b = random_constant(np.random.default_rng(0), (4, 4), "int8")
        np.testing.assert_array_equal(a.data, b.data)

    def test_ternary_values(self):
        c = random_constant(np.random.default_rng(1), (100,), "ternary")
        assert set(np.unique(c.data)) <= {-1, 0, 1}

    def test_int7_range(self):
        c = random_constant(np.random.default_rng(2), (1000,), "int7")
        assert c.data.min() >= -64 and c.data.max() <= 63

    def test_float32(self):
        c = random_constant(np.random.default_rng(3), (5,), "float32")
        assert c.data.dtype == np.float32
