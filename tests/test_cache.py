"""Tiling-cache + parallel-evaluation tests (see docs/COSTMODEL.md)."""

import pytest

from repro.core import HTVM, TilingCache, compile_model
from repro.core.cache import heuristics_key, spec_key, tiling_key
from repro.dory import (
    DoryTiler, digital_heuristics, make_conv_spec, no_heuristics,
)
from repro.errors import TilingError
from repro.eval import run_table1
from repro.frontend.modelzoo import resnet8
from repro.soc import DEFAULT_PARAMS, DianaSoC


@pytest.fixture
def digital_soc():
    return DianaSoC(enable_analog=False)


class TestCacheCore:
    def test_hit_on_identical_recompile(self, digital_soc):
        cache = TilingCache()
        graph = resnet8(precision="int8")
        m1 = compile_model(graph, digital_soc, HTVM, cache=cache)
        cold = cache.stats()
        assert cold["misses"] > 0

        m2 = compile_model(graph, digital_soc, HTVM, cache=cache)
        warm = cache.stats()
        # a warm compile performs zero DoryTiler.solve searches
        assert warm["misses"] == cold["misses"]
        assert warm["hits"] > cold["hits"]

        # and the compiled programs agree step for step
        for s1, s2 in zip(m1.steps, m2.steps):
            assert s1.name == s2.name
            if hasattr(s1, "tiling"):
                assert s1.tiling.cfg == s2.tiling.cfg
                assert s1.tiling.l1_total_bytes == s2.tiling.l1_total_bytes

    def test_miss_on_changed_l1_budget(self, digital_soc):
        cache = TilingCache()
        graph = resnet8(precision="int8")
        compile_model(graph, digital_soc, HTVM, cache=cache)
        baseline = cache.stats()["misses"]
        compile_model(graph, digital_soc,
                      HTVM.with_overrides(l1_budget=128 * 1024), cache=cache)
        assert cache.stats()["misses"] > baseline

    def test_miss_on_changed_heuristics(self, digital_soc):
        cache = TilingCache()
        graph = resnet8(precision="int8")
        compile_model(graph, digital_soc, HTVM, cache=cache)
        baseline = cache.stats()["misses"]
        compile_model(graph, digital_soc,
                      HTVM.with_overrides(heuristics="none"), cache=cache)
        assert cache.stats()["misses"] > baseline

    def test_solutions_identical_with_and_without_cache(self):
        spec = make_conv_spec("c", 64, 128, 32, 32, padding=(1, 1))
        cache = TilingCache()
        for budget in (256 * 1024, 32 * 1024, 8 * 1024):
            tiler = DoryTiler("soc.digital", DEFAULT_PARAMS,
                              digital_heuristics(), l1_budget=budget)
            direct = tiler.solve(spec)
            miss = cache.solve(tiler, spec)
            hit = cache.solve(tiler, spec)
            assert direct.cfg == miss.cfg == hit.cfg
            assert direct.objective == hit.objective
            assert direct.l1_total_bytes == hit.l1_total_bytes
            assert hit.spec is spec  # caller's spec, payloads intact

    def test_infeasibility_cached(self):
        spec = make_conv_spec("c", 64, 64, 32, 32, padding=(1, 1))
        cache = TilingCache()
        tiler = DoryTiler("soc.digital", DEFAULT_PARAMS,
                          digital_heuristics(), l1_budget=64)
        with pytest.raises(TilingError):
            cache.solve(tiler, spec)
        with pytest.raises(TilingError):
            cache.solve(tiler, spec)
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_key_ignores_payload_and_name(self):
        a = make_conv_spec("a", 16, 32, 16, 16, padding=(1, 1))
        b = make_conv_spec("b", 16, 32, 16, 16, padding=(1, 1))
        assert spec_key(a) == spec_key(b)
        assert heuristics_key(no_heuristics()) == ()
        t1 = DoryTiler("soc.digital", DEFAULT_PARAMS, digital_heuristics())
        t2 = DoryTiler("soc.digital", DEFAULT_PARAMS, digital_heuristics(),
                       l1_budget=8 * 1024)
        assert tiling_key(t1, a) != tiling_key(t2, a)


class TestPersistence:
    def test_roundtrip_through_tmp_dir(self, tmp_path, digital_soc):
        path = str(tmp_path / "tilings.json")
        graph = resnet8(precision="int8")

        first = TilingCache(path=path)
        compile_model(graph, digital_soc, HTVM, cache=first)
        assert first.stats()["misses"] > 0
        first.flush()  # saves batch + atexit normally; be deterministic

        # a fresh process-equivalent cache loads the file and never searches
        second = TilingCache(path=path)
        assert len(second) == len(first)
        compile_model(graph, digital_soc, HTVM, cache=second)
        assert second.stats()["misses"] == 0
        assert second.stats()["hits"] > 0

    def test_infeasible_roundtrip(self, tmp_path):
        path = str(tmp_path / "tilings.json")
        spec = make_conv_spec("c", 64, 64, 32, 32, padding=(1, 1))
        tiler = DoryTiler("soc.digital", DEFAULT_PARAMS,
                          digital_heuristics(), l1_budget=64)
        first = TilingCache(path=path, autosave_batch=1)
        with pytest.raises(TilingError):
            first.solve(tiler, spec)
        second = TilingCache(path=path)
        with pytest.raises(TilingError):
            second.solve(tiler, spec)
        assert second.stats()["misses"] == 0


class TestCrashAndParallelSafety:
    """Regressions for the batched-persistence bug sweep: concurrent
    flushes must never interleave bytes in the backing file, and a
    corrupt/truncated file must mean a cold start, not a crash."""

    def _solve_some(self, cache, n, offset=0):
        tiler = DoryTiler("soc.digital", DEFAULT_PARAMS,
                          digital_heuristics())
        for i in range(n):
            cache.solve(tiler, make_conv_spec(
                f"c{i}", 8 + offset + i, 16, 16, 16, padding=(1, 1)))

    def test_concurrent_flush_from_two_instances(self, tmp_path):
        """Two cache instances (stand-ins for two processes) hammering
        save() on the same file: every intermediate file state must be
        a complete, loadable snapshot."""
        import threading

        path = str(tmp_path / "tilings.json")
        a = TilingCache(path=path, autosave=False)
        b = TilingCache(path=path, autosave=False)
        self._solve_some(a, 6)
        self._solve_some(b, 6, offset=40)

        stop = threading.Event()
        failures = []

        def hammer(cache):
            while not stop.is_set():
                cache.save()

        def read_back():
            while not stop.is_set():
                probe = TilingCache(autosave=False)
                probe.load(path)  # would warn+cold on a torn file
                if len(probe) not in (0, 6):
                    failures.append(len(probe))

        threads = [threading.Thread(target=hammer, args=(c,))
                   for c in (a, b)] + [threading.Thread(target=read_back)]
        for t in threads:
            t.start()
        import time
        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join(10)
        assert not failures, f"torn snapshots observed: {failures}"
        final = TilingCache(path=path)
        assert len(final) == 6  # last complete snapshot, never a mix

    def test_corrupt_file_starts_cold(self, tmp_path, capsys):
        path = tmp_path / "tilings.json"
        path.write_text("{ definitely not json")
        cache = TilingCache(path=str(path))
        assert len(cache) == 0
        assert "ignoring unreadable" in capsys.readouterr().err
        # and the cache still works end to end, overwriting the junk
        self._solve_some(cache, 2)
        cache.flush()
        assert len(TilingCache(path=str(path))) == 2

    def test_truncated_file_starts_cold(self, tmp_path):
        path = tmp_path / "tilings.json"
        good = TilingCache(path=str(path), autosave=False)
        self._solve_some(good, 3)
        good.save()
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])  # simulate a crash
        cache = TilingCache(path=str(path))
        assert len(cache) == 0

    def test_alien_json_starts_cold(self, tmp_path):
        path = tmp_path / "tilings.json"
        path.write_text("[1, 2, 3]")
        assert len(TilingCache(path=str(path))) == 0

    def test_atexit_flushes_unsaved_entries(self, tmp_path):
        """A process that exits without an explicit flush still
        persists its entries (the atexit hook)."""
        import subprocess
        import sys

        path = str(tmp_path / "tilings.json")
        code = (
            "from repro.core.cache import TilingCache\n"
            "from repro.dory import DoryTiler, digital_heuristics, "
            "make_conv_spec\n"
            "from repro.soc import DEFAULT_PARAMS\n"
            f"cache = TilingCache(path={path!r}, autosave_batch=1000)\n"
            "tiler = DoryTiler('soc.digital', DEFAULT_PARAMS, "
            "digital_heuristics())\n"
            "cache.solve(tiler, make_conv_spec('c', 8, 16, 16, 16, "
            "padding=(1, 1)))\n"
        )
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert len(TilingCache(path=path)) == 1


class TestParallelEvaluation:
    MODELS = ["dscnn", "resnet"]
    CONFIGS = ["digital", "mixed"]

    def test_run_table1_jobs_matches_serial(self):
        serial = run_table1(self.MODELS, self.CONFIGS, verify=False)
        parallel = run_table1(self.MODELS, self.CONFIGS, verify=False,
                              jobs=4)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert (a.model, a.config) == (b.model, b.config)
            assert a.oom == b.oom
            assert a.latency_ms == b.latency_ms
            assert a.peak_ms == b.peak_ms
            assert a.size_kb == b.size_kb

    def test_fig4_sweep_jobs_matches_serial(self):
        from repro.eval import fig4
        from repro.frontend.modelzoo import fig4_layers
        layers = fig4_layers()[:2]
        budgets = [64 * 1024, 16 * 1024]
        serial = fig4.sweep(layers=layers, budgets=budgets)
        parallel = fig4.sweep(layers=layers, budgets=budgets, jobs=4)
        assert [(p.layer, p.strategy, p.budget_bytes, p.cycles, p.tile)
                for p in serial] == \
               [(p.layer, p.strategy, p.budget_bytes, p.cycles, p.tile)
                for p in parallel]

    def test_sweep_param_jobs_matches_serial(self):
        from repro.eval.sweep import sweep_param
        values = [256 * 1024, 64 * 1024]
        serial = sweep_param("l1_bytes", values, model="dscnn")
        parallel = sweep_param("l1_bytes", values, model="dscnn", jobs=2)
        assert [(p.value, p.latency_ms, p.size_kb, p.oom) for p in serial] \
            == [(p.value, p.latency_ms, p.size_kb, p.oom) for p in parallel]
