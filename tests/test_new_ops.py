"""Tests for the extended operator set: concatenate, LUT activations."""

import numpy as np
import pytest

from repro import numerics as K
from repro.core import HTVM, compile_model
from repro.errors import ShapeError
from repro.ir import Call, GraphBuilder, TensorType, Var
from repro.runtime import Executor, random_inputs, run_reference
from repro.soc import DianaSoC


def var(shape, dt="int8", name="x"):
    return Var(name, TensorType(shape, dt))


class TestConcatenate:
    def test_shape_inference(self):
        c = Call("concatenate", [var((1, 4, 8, 8)), var((1, 6, 8, 8), name="y")])
        assert c.shape == (1, 10, 8, 8)

    def test_dim_mismatch(self):
        with pytest.raises(ShapeError):
            Call("concatenate", [var((1, 4, 8, 8)), var((1, 4, 4, 4), name="y")])

    def test_dtype_mismatch(self):
        with pytest.raises(ShapeError):
            Call("concatenate", [var((1, 4)), var((1, 4), "int7", name="y")],
                 {"axis": 1})

    def test_numerics(self):
        a = np.ones((1, 2, 2, 2), np.int8)
        b = np.zeros((1, 3, 2, 2), np.int8)
        out = K.concatenate(a, b)
        assert out.shape == (1, 5, 2, 2)
        assert out[0, 0, 0, 0] == 1 and out[0, 4, 0, 0] == 0

    def test_end_to_end(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int8")
        left = b.conv2d_requant(x, 4, kernel=1)
        right = b.conv2d_requant(x, 4, kernel=3, padding=(1, 1))
        merged = b.concatenate(left, right)
        out = b.conv2d_requant(merged, 4, kernel=1)
        g = b.finish(out)
        soc = DianaSoC(enable_analog=False)
        model = compile_model(g, soc, HTVM)
        feeds = random_inputs(g, seed=1)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))


class TestLutActivations:
    def test_sigmoid_range_and_sign(self):
        x = np.array([-128, -16, 0, 16, 127], dtype=np.int8)
        out = K.sigmoid_lut(x, scale_bits=4)
        assert out.dtype == np.int8
        # sigmoid(0) = 0.5 -> 64; monotone; saturates near 0 / 127
        assert out[2] == 64
        assert (np.diff(out.astype(int)) >= 0).all()
        assert out[0] <= 1 and out[-1] >= 126

    def test_tanh_odd_symmetry(self):
        x = np.arange(-100, 101, dtype=np.int8)
        out = K.tanh_lut(x, scale_bits=4)
        flipped = K.tanh_lut((-x).astype(np.int8), scale_bits=4)
        np.testing.assert_allclose(out.astype(int), -flipped.astype(int),
                                   atol=1)
        assert out[100] == 0  # tanh(0) = 0

    def test_scale_bits_change_curve(self):
        x = np.array([16], dtype=np.int8)
        steep = K.sigmoid_lut(x, scale_bits=2)   # v = 4.0
        shallow = K.sigmoid_lut(x, scale_bits=6)  # v = 0.25
        assert steep[0] > shallow[0]

    def test_fusible(self):
        from repro.transforms import fuse_cpu_ops
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 8, 4, 4), "int8")
        y = b.conv2d_requant(x, 8, kernel=1, relu=False)
        g = b.finish(b.sigmoid(y))
        fused = fuse_cpu_ops(g)
        # sigmoid fuses into the conv's kernel chain
        assert len(fused.composites()) == 1

    def test_int32_input_rejected(self):
        with pytest.raises(ShapeError):
            Call("nn.sigmoid_lut", [var((4,), "int32")])

    def test_end_to_end_gated_model(self):
        """A little gated block: conv -> sigmoid gate -> concat."""
        b = GraphBuilder(seed=3)
        x = b.input("x", (1, 4, 8, 8), "int8")
        features = b.conv2d_requant(x, 8, kernel=3, padding=(1, 1),
                                    relu=False)
        gate = b.sigmoid(features)
        act = b.tanh(features)
        merged = b.concatenate(gate, act)
        out = b.conv2d_requant(merged, 4, kernel=1)
        g = b.finish(out)
        soc = DianaSoC(enable_analog=False)
        model = compile_model(g, soc, HTVM)
        feeds = random_inputs(g, seed=4)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))

    def test_serialization_roundtrip(self):
        import json
        from repro.ir import graph_from_dict, graph_to_dict
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        g = b.finish(b.tanh(b.sigmoid(x)))
        g2 = graph_from_dict(json.loads(json.dumps(graph_to_dict(g))))
        feeds = random_inputs(g, seed=0)
        np.testing.assert_array_equal(
            run_reference(g, feeds), run_reference(g2, feeds))
