"""Public API surface tests: imports, docstrings, quickstart flow."""

import inspect

import numpy as np
import pytest

import repro


class TestSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_importable(self):
        import repro.baselines
        import repro.codegen
        import repro.core
        import repro.dispatch
        import repro.dory
        import repro.eval
        import repro.frontend
        import repro.ir
        import repro.numerics
        import repro.patterns
        import repro.runtime
        import repro.soc
        import repro.transforms

    def test_public_items_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.ismodule(obj) or not callable(obj):
                continue
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_module_docstrings(self):
        import repro.dory.tiler
        import repro.soc.params
        for mod in (repro, repro.dory.tiler, repro.soc.params):
            assert (mod.__doc__ or "").strip()


class TestQuickstartFlow:
    def test_readme_quickstart_works(self):
        from repro import DianaSoC, Executor, HTVM, compile_model
        from repro.frontend.modelzoo import resnet8
        from repro.runtime import random_inputs

        graph = resnet8(precision="int8")
        soc = DianaSoC()
        model = compile_model(graph, soc, HTVM)
        result = Executor(soc).run(model, random_inputs(graph))
        assert result.total_cycles > 0
        assert result.output.shape == (1, 10)

    def test_error_hierarchy(self):
        from repro import (
            OutOfMemoryError, ReproError, ShapeError, TilingError,
        )
        assert issubclass(OutOfMemoryError, ReproError)
        assert issubclass(ShapeError, ReproError)
        assert issubclass(TilingError, ReproError)

    def test_runtime_numerics_shim(self):
        # backwards-compatible import path
        from repro.runtime import numerics as shim
        import repro.numerics as top
        assert shim.conv2d is top.conv2d
