"""Platform plugin registry: specs, coordinator, identity, guard.

Covers the refactor invariants:

* ``get_platform`` is the single construction path and reproduces the
  legacy ``DianaSoC`` platforms exactly,
* platform identity flows into config/model fingerprints and ``.dna``
  artifacts (V-ART-012 rejects cross-platform loads),
* the stock ``diana`` platform keeps every historical fingerprint
  byte-exact (pinned hashes), and
* no module outside ``soc/`` constructs ``DianaSoC`` directly.
"""

import pathlib
import re
import subprocess
import sys

import numpy as np
import pytest

from repro import Executor, HTVM, compile_model
from repro.core.config import TVM_CPU
from repro.errors import ArtifactError, PlatformError
from repro.frontend.modelzoo import resnet8
from repro.mapping import assign_targets, prepare_graph
from repro.runtime import random_inputs
from repro.serve import load_artifact, pack_model
from repro.soc import (
    DianaSoC, DianaParams, PlatformSpec, get_platform, get_platform_spec,
    platform_names, register_platform, unregister_platform, validate_spec,
)
from repro.soc.digital import DigitalAccelerator

ROOT = pathlib.Path(__file__).resolve().parent.parent

# Historical fingerprints captured on the pre-registry main branch.
# The stock platform predates the platform knob, so these must never
# move — any drift means existing .dna artifacts and native-kernel
# caches silently invalidate.
HTVM_CONFIG_FP = \
    "bdc0dcd2fa39411257ebfc0df89b18150bb484e684e0e4873aa41e7d0569b46e"
TVM_CPU_CONFIG_FP = \
    "4f03ada2465afe4140a298113a1f9534e0445669effb8a78f42337c0c1bfee54"
RESNET_MIXED_HTVM_MODEL_FP = \
    "19e20444ca1e198dc6e5e08861bd238d214387e55ad914486eb04fd1f8fd81f9"


@pytest.fixture
def scratch_platform():
    """Register a throwaway platform; unregister on teardown."""
    names = []

    def make(name="test-npu", **overrides):
        kwargs = dict(accelerators={"soc.digital": DigitalAccelerator},
                      model_precision="int8")
        kwargs.update(overrides)
        spec = PlatformSpec(name=name, **kwargs)
        register_platform(spec, replace=True)
        names.append(name)
        return spec

    yield make
    for name in names:
        unregister_platform(name)


# ---------------------------------------------------------------------------
# registry behavior
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_builtins_registered(self):
        names = platform_names()
        for expected in ("diana", "diana-noanalog", "diana-nodig",
                         "diana-cpu"):
            assert expected in names

    def test_duplicate_name_rejected(self, scratch_platform):
        scratch_platform("test-npu")
        with pytest.raises(PlatformError, match="already registered"):
            register_platform(PlatformSpec(
                name="test-npu",
                accelerators={"soc.digital": DigitalAccelerator}))

    def test_replace_overwrites(self, scratch_platform):
        scratch_platform("test-npu", description="v1")
        scratch_platform("test-npu", description="v2")
        assert get_platform_spec("test-npu").description == "v2"

    def test_decorator_form_registers(self):
        @register_platform
        def _spec() -> PlatformSpec:
            return PlatformSpec(
                name="test-decorated",
                accelerators={"soc.digital": DigitalAccelerator})

        try:
            assert "test-decorated" in platform_names()
        finally:
            unregister_platform("test-decorated")

    def test_unknown_platform_message_lists_registry(self):
        with pytest.raises(PlatformError, match="unknown platform"):
            get_platform_spec("no-such-soc")

    def test_default_platform_cannot_be_unregistered(self):
        with pytest.raises(PlatformError, match="default platform"):
            unregister_platform("diana")

    @pytest.mark.parametrize("bad, match", [
        (dict(name="Bad Name"), "invalid platform name"),
        (dict(name="npu", accelerators={"soc.x": "not-callable"}),
         "not callable"),
        (dict(name="npu", model_precision="fp64"), "model_precision"),
        (dict(name="npu", prefer=42), "prefer hook"),
    ])
    def test_validate_spec_rejects(self, bad, match):
        kwargs = dict(accelerators={"soc.digital": DigitalAccelerator})
        kwargs.update(bad)
        with pytest.raises(PlatformError, match=match):
            validate_spec(PlatformSpec(**kwargs))

    def test_validate_rejects_bad_params(self):
        with pytest.raises(PlatformError, match="clock_hz"):
            validate_spec(PlatformSpec(
                name="npu", params=DianaParams(clock_hz=0)))

    def test_factory_name_cross_checked(self, scratch_platform):
        scratch_platform("test-npu",
                         accelerators={"soc.wrong": DigitalAccelerator})
        with pytest.raises(PlatformError, match="named"):
            get_platform("test-npu")


# ---------------------------------------------------------------------------
# coordinator: get_platform reproduces the legacy platforms
# ---------------------------------------------------------------------------

class TestCoordinator:
    def test_diana_matches_legacy_dianasoc(self):
        via_registry = get_platform("diana")
        legacy = DianaSoC()
        assert via_registry.params == legacy.params
        assert list(via_registry.accelerators) == list(legacy.accelerators)
        assert via_registry.name == "diana"

    @pytest.mark.parametrize("kwargs, names", [
        (dict(), ["soc.digital", "soc.analog"]),
        (dict(enable_analog=False), ["soc.digital"]),
        (dict(enable_digital=False), ["soc.analog"]),
        (dict(enable_digital=False, enable_analog=False), []),
    ])
    def test_enable_gates(self, kwargs, names):
        assert list(get_platform("diana", **kwargs).accelerators) == names

    def test_params_override(self):
        small = DianaParams(l1_bytes=32 * 1024)
        assert get_platform("diana", params=small).params.l1_bytes == \
            32 * 1024

    def test_accelerator_subset(self):
        soc = get_platform("diana", accelerators=["soc.analog"])
        assert list(soc.accelerators) == ["soc.analog"]
        with pytest.raises(PlatformError, match="no accelerator"):
            get_platform("diana", accelerators=["soc.bogus"])

    def test_ablation_platforms(self):
        assert list(get_platform("diana-noanalog").accelerators) == \
            ["soc.digital"]
        assert list(get_platform("diana-nodig").accelerators) == \
            ["soc.analog"]
        assert list(get_platform("diana-cpu").accelerators) == []


# ---------------------------------------------------------------------------
# fingerprint stability + platform identity
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_stock_config_fingerprints_pinned(self):
        assert HTVM.fingerprint() == HTVM_CONFIG_FP
        assert TVM_CPU.fingerprint() == TVM_CPU_CONFIG_FP

    def test_platform_diana_is_fingerprint_neutral(self):
        assert HTVM.with_overrides(platform="diana").fingerprint() == \
            HTVM_CONFIG_FP

    def test_stock_model_fingerprint_pinned(self):
        model = compile_model(resnet8(precision="mixed"),
                              get_platform("diana"), HTVM)
        assert model.fingerprint() == RESNET_MIXED_HTVM_MODEL_FP
        assert model.platform == "diana"

    def test_nondefault_platform_changes_config_fingerprint(self):
        fps = {HTVM.with_overrides(platform=p).fingerprint()
               for p in ("diana", "diana-noanalog", "diana-nodig")}
        assert len(fps) == 3

    def test_two_platforms_different_model_fingerprints(self,
                                                        scratch_platform):
        # same graph + config, two registered platforms with different
        # params -> both fingerprints must diverge (native-cache keys)
        scratch_platform("test-npu")
        scratch_platform("test-npu-fast",
                         params=DianaParams(clock_hz=520_000_000))
        graph = resnet8(precision="int8")
        a = compile_model(graph, get_platform("test-npu"), HTVM)
        b = compile_model(graph, get_platform("test-npu-fast"), HTVM)
        assert a.platform == "test-npu" and b.platform == "test-npu-fast"
        assert a.fingerprint() != b.fingerprint()
        cfg_a = HTVM.with_overrides(platform="test-npu")
        cfg_b = HTVM.with_overrides(platform="test-npu-fast")
        assert cfg_a.fingerprint() != cfg_b.fingerprint()


# ---------------------------------------------------------------------------
# artifacts: platform provenance + V-ART-012
# ---------------------------------------------------------------------------

class TestArtifactPlatform:
    def _pack(self, tmp_path, platform):
        graph = resnet8(precision="int8")
        cfg = HTVM.with_overrides(platform=platform)
        path = str(tmp_path / f"resnet8.{platform}.dna")
        pack_model(graph, get_platform(platform), cfg, path,
                   validate_runs=0)
        return graph, path

    def test_round_trip_keeps_platform(self, tmp_path, scratch_platform):
        scratch_platform("test-npu")
        graph, path = self._pack(tmp_path, "test-npu")
        art = load_artifact(path, expected_platform="test-npu")
        assert art.model.platform == "test-npu"
        assert art.soc.name == "test-npu"
        feeds = random_inputs(graph, seed=0)
        fresh = Executor(get_platform("test-npu")).run(
            compile_model(graph, get_platform("test-npu"), HTVM), feeds)
        replay = Executor(art.soc).run(art.model, feeds)
        assert np.array_equal(replay.output, fresh.output)

    def test_cross_platform_load_rejected(self, tmp_path,
                                          scratch_platform):
        scratch_platform("test-npu")
        _, path = self._pack(tmp_path, "test-npu")
        with pytest.raises(ArtifactError, match=r"V-ART-012"):
            load_artifact(path, expected_platform="diana")

    def test_unregistered_platform_load_rejected(self, tmp_path,
                                                 scratch_platform):
        scratch_platform("test-npu")
        _, path = self._pack(tmp_path, "test-npu")
        unregister_platform("test-npu")
        try:
            with pytest.raises(ArtifactError,
                               match=r"V-ART-012.*not registered"):
                load_artifact(path)
        finally:
            scratch_platform("test-npu")

    def test_diana_artifact_loads_without_pin(self, tmp_path):
        _, path = self._pack(tmp_path, "diana")
        art = load_artifact(path, expected_platform="diana")
        assert art.soc.name == "diana"


# ---------------------------------------------------------------------------
# prefer hook (paper component 2)
# ---------------------------------------------------------------------------

class TestPreferHook:
    def test_spec_prefer_steers_dispatch(self, scratch_platform):
        chosen = []

        def prefer(spec, accepted):
            chosen.append(spec.name)
            return accepted[-1]

        scratch_platform("test-npu", prefer=prefer)
        pg = prepare_graph(resnet8(precision="int8"))
        _, decisions = assign_targets(pg, get_platform("test-npu"))
        assert chosen, "prefer hook never consulted"
        offloaded = [d for d in decisions if d.target != "cpu"]
        assert offloaded

    def test_explicit_prefer_overrides_spec(self, scratch_platform):
        scratch_platform("test-npu",
                         prefer=lambda spec, accepted: accepted[0])
        pg = prepare_graph(resnet8(precision="int8"))
        _, decisions = assign_targets(
            pg, get_platform("test-npu"),
            prefer=lambda spec, accepted: "cpu")
        assert all(d.target == "cpu" for d in decisions)


# ---------------------------------------------------------------------------
# DSE service smoke
# ---------------------------------------------------------------------------

class TestDseService:
    def test_sweep_and_schema(self):
        from repro.eval.dse import (
            artifact_record, sweep_grid, validate_record,
        )
        pts = sweep_grid(platforms=["diana", "diana-nodig"],
                         models=["resnet"], budgets_kb=[64],
                         objectives=["latency"])
        assert len(pts) == 2 and all(p.feasible for p in pts)
        record = artifact_record(pts)
        assert record["schema"] == "repro-dse/1"
        assert validate_record(record) == []

    def test_jobs_deterministic(self):
        from repro.eval.dse import artifact_record, sweep_grid
        kwargs = dict(platforms=["diana", "diana-noanalog"],
                      models=["resnet"], budgets_kb=[64, 256],
                      objectives=["latency", "energy"])
        serial = artifact_record(sweep_grid(jobs=1, **kwargs))
        threaded = artifact_record(sweep_grid(jobs=4, **kwargs))
        assert serial == threaded

    def test_committed_grid_is_valid(self):
        import json
        from repro.eval.dse import validate_record
        record = json.loads((ROOT / "DSE_GRID.json").read_text())
        assert validate_record(record) == []
        assert len(record["platforms"]) >= 2
        assert len(record["models"]) >= 3

    def test_unknown_axis_fails_fast(self):
        from repro.eval.dse import sweep_grid
        with pytest.raises(PlatformError):
            sweep_grid(platforms=["no-such-soc"], models=["resnet"])
        with pytest.raises(PlatformError):
            sweep_grid(models=["no-such-model"])


# ---------------------------------------------------------------------------
# layering guard
# ---------------------------------------------------------------------------

def test_no_direct_dianasoc_construction_outside_soc():
    """get_platform is the single construction path in the library.

    Tests, benchmarks and docs may keep using the public DianaSoC
    class; library modules outside soc/ must go through the registry
    so plugin platforms are first-class everywhere.
    """
    src = ROOT / "src" / "repro"
    offenders = []
    for path in src.rglob("*.py"):
        if (src / "soc") in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if re.search(r"\bDianaSoC\s*\(", line):
                offenders.append(f"{path.relative_to(ROOT)}:{lineno}: "
                                 f"{line.strip()}")
    assert not offenders, (
        "direct DianaSoC construction outside src/repro/soc/ — use "
        "repro.soc.get_platform instead:\n" + "\n".join(offenders))


def test_cli_platforms_lists_builtins():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "platforms"],
        capture_output=True, text=True, timeout=120)
    assert proc.returncode == 0, proc.stderr[-2000:]
    for name in ("diana", "diana-noanalog", "diana-nodig", "diana-cpu"):
        assert name in proc.stdout
