"""End-to-end integration tests across the full MLPerf Tiny suite.

The heavyweight invariant: for every model and every deployment
configuration, the simulated SoC execution is byte-identical to the
reference interpreter, and the relative performance relationships of
the paper hold.
"""

import numpy as np
import pytest

from repro.core import HTVM, TVM_CPU, compile_model
from repro.errors import OutOfMemoryError
from repro.eval.harness import CONFIGS
from repro.frontend.modelzoo import MLPERF_TINY
from repro.runtime import Executor, random_inputs, run_reference
from repro.soc import DianaSoC, latency_ms

CELLS = [(m, c) for m in sorted(MLPERF_TINY) for c in CONFIGS]


@pytest.mark.parametrize("model_name,config", CELLS)
def test_bit_exact_everywhere(model_name, config):
    precision, soc_kwargs, cfg = CONFIGS[config]
    graph = MLPERF_TINY[model_name](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    try:
        model = compile_model(graph, soc, cfg)
    except OutOfMemoryError:
        assert (model_name, config) == ("mobilenet", "cpu-tvm")
        return
    feeds = random_inputs(graph, seed=13)
    result = Executor(soc).run(model, feeds)
    reference = run_reference(model.graph, feeds)
    np.testing.assert_array_equal(np.asarray(result.output),
                                  np.asarray(reference))


class TestRelativePerformance:
    """The paper's qualitative performance relationships."""

    @pytest.fixture(scope="class")
    def latencies(self):
        out = {}
        for model_name, config in CELLS:
            precision, soc_kwargs, cfg = CONFIGS[config]
            graph = MLPERF_TINY[model_name](precision=precision)
            soc = DianaSoC(**soc_kwargs)
            try:
                compiled = compile_model(graph, soc, cfg)
            except OutOfMemoryError:
                out[(model_name, config)] = None
                continue
            res = Executor(soc).run(compiled, random_inputs(graph, seed=1))
            out[(model_name, config)] = latency_ms(res.total_cycles)
        return out

    def test_accelerators_beat_cpu_everywhere(self, latencies):
        for model in MLPERF_TINY:
            cpu = latencies[(model, "cpu-tvm")]
            if cpu is None:
                continue
            assert latencies[(model, "digital")] < cpu
            assert latencies[(model, "analog")] < cpu

    def test_resnet_digital_speedup_order_of_magnitude(self, latencies):
        ratio = (latencies[("resnet", "cpu-tvm")]
                 / latencies[("resnet", "digital")])
        assert ratio > 80  # paper: 112x

    def test_dw_models_suffer_on_analog(self, latencies):
        # DS-CNN / MobileNet fall back to the CPU for DW layers
        assert (latencies[("dscnn", "analog")]
                > 5 * latencies[("dscnn", "digital")])
        assert (latencies[("mobilenet", "analog")]
                > 5 * latencies[("mobilenet", "digital")])

    def test_mixed_close_to_best(self, latencies):
        # the paper has mixed ResNet slightly *better* than digital;
        # our analog cost model keeps it slightly worse (documented in
        # EXPERIMENTS.md), so the bound here is 1.6x of the best
        # single-accelerator configuration.
        for model in MLPERF_TINY:
            best = min(latencies[(model, "digital")],
                       latencies[(model, "analog")])
            assert latencies[(model, "mixed")] <= best * 1.6

    def test_dscnn_mixed_vs_analog_8x(self, latencies):
        ratio = latencies[("dscnn", "analog")] / latencies[("dscnn", "mixed")]
        assert ratio > 5  # paper: 8x

    def test_latencies_against_paper_within_3x(self, latencies):
        from repro.eval import paper
        for (model, config), ours in latencies.items():
            ref = paper.TABLE1[model][{
                "cpu-tvm": "cpu-tvm", "digital": "digital",
                "analog": "analog", "mixed": "mixed"}[config]][1]
            if ours is None or ref is None:
                continue
            assert ref / 3 < ours < ref * 3, (model, config, ours, ref)


class TestMemoryBehaviour:
    def test_htvm_arena_much_smaller_than_tvm(self):
        graph = MLPERF_TINY["mobilenet"]()
        soc = DianaSoC(enable_analog=False)
        htvm = compile_model(graph, soc, HTVM)
        tvm = compile_model(graph, soc, TVM_CPU.with_overrides(check_l2=False))
        assert htvm.memory_plan.arena_bytes < tvm.memory_plan.arena_bytes / 3

    def test_l2_peak_within_capacity(self):
        graph = MLPERF_TINY["resnet"]()
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, HTVM)
        res = Executor(soc).run(model, random_inputs(graph, seed=0))
        assert res.l2_peak_bytes <= soc.params.l2_bytes
