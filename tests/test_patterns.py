"""Pattern language + matcher + partitioner tests (paper Listing 1)."""

import numpy as np
import pytest

from repro.errors import PatternError
from repro.ir import Call, Composite, GraphBuilder
from repro.patterns import (
    PatternSpec, add_pattern, conv2d_pattern, default_specs, dense_pattern,
    find_matches, is_constant, is_op, partition, wildcard,
)
from repro.runtime import random_inputs, run_reference
from helpers import build_small_cnn


def conv_graph(relu=True, out_dtype="int8"):
    b = GraphBuilder(seed=0)
    x = b.input("x", (1, 4, 8, 8), "int8")
    y = b.conv2d_requant(x, 8, kernel=3, padding=(1, 1), relu=relu,
                         out_dtype=out_dtype)
    return b.finish(y)


class TestLanguage:
    def test_wildcard_matches_anything(self):
        g = conv_graph()
        assert wildcard().match(g.output) is not None

    def test_is_op_requires_call(self):
        with pytest.raises(PatternError):
            is_op("nn.conv2d").match(conv_graph().output)

    def test_unknown_op_rejected_eagerly(self):
        from repro.errors import IRError
        with pytest.raises(IRError):
            is_op("nn.bogus")

    def test_is_constant(self):
        g = conv_graph()
        conv = [c for c in g.calls() if c.op == "nn.conv2d"][0]
        assert is_constant().match(conv.inputs[1]) is not None
        assert is_constant().match(conv.inputs[0]) is None

    def test_call_pattern_op_mismatch(self):
        g = conv_graph()
        pat = is_op("nn.dense")(wildcard(), wildcard())
        assert pat.match(g.output) is None

    def test_attr_constraint(self):
        g = conv_graph(relu=False)
        cast = g.output
        assert is_op("cast")(wildcard()).has_attr(
            {"dtype": "int8"}).match(cast) is not None
        assert is_op("cast")(wildcard()).has_attr(
            {"dtype": "int32"}).match(cast) is None

    def test_callable_attr_constraint(self):
        g = conv_graph(relu=False, out_dtype="int7")
        pat = is_op("cast")(wildcard()).has_attr(
            {"dtype": lambda d: d in ("int8", "int7")})
        assert pat.match(g.output) is not None


class TestConvPattern:
    def test_matches_with_relu(self):
        g = conv_graph(relu=True)
        m = conv2d_pattern().match(g.output)
        assert m is not None
        assert len(m.interior) == 6  # conv,bias,shift,clip,cast,relu-clip
        assert len(m.inputs) == 1    # the data input

    def test_matches_without_relu(self):
        g = conv_graph(relu=False)
        m = conv2d_pattern().match(g.output)
        assert m is not None
        assert len(m.interior) == 5

    def test_matches_int7_cast(self):
        g = conv_graph(relu=True, out_dtype="int7")
        assert conv2d_pattern().match(g.output) is not None

    def test_does_not_match_dense(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 16), "int8")
        g = b.finish(b.dense_requant(x, 4))
        assert conv2d_pattern().match(g.output) is None
        assert dense_pattern().match(g.output) is not None

    def test_constants_stay_internal(self):
        g = conv_graph()
        m = conv2d_pattern().match(g.output)
        # weight, bias, shift amount are constants, not composite inputs
        assert len(m.inputs) == 1
        assert len(m.constants) >= 3


class TestPartition:
    def test_small_cnn_partition(self, small_cnn):
        pg = partition(small_cnn, default_specs())
        names = [c.pattern_name for c in pg.composites()]
        assert names.count("htvm.qconv2d") == 2
        assert names.count("htvm.qadd") == 1
        assert names.count("htvm.qdense") == 1

    def test_partition_preserves_semantics(self, small_cnn):
        pg = partition(small_cnn, default_specs())
        feeds = random_inputs(small_cnn, seed=3)
        np.testing.assert_array_equal(
            run_reference(small_cnn, feeds), run_reference(pg, feeds))

    def test_no_overlapping_matches(self, small_cnn):
        matches = find_matches(small_cnn, default_specs())
        seen = set()
        for m in matches:
            assert not (m.interior_ids & seen)
            seen |= m.interior_ids

    def test_escaping_value_prevents_extraction(self):
        # the conv output feeds both the requant chain AND a second
        # consumer, so the full pattern must not be extracted
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int8")
        conv = b.call("nn.conv2d", [x, b.random_weight((4, 4, 3, 3))],
                      padding=(1, 1))
        biased = b.call("nn.bias_add",
                        [conv, b.const(np.zeros(4, np.int32), "int32")])
        req = b.requantize(biased, 8, relu=False)
        # second consumer of the raw conv accumulator
        side = b.call("cast", [conv], dtype="int8")
        both = b.call("add", [req, side])
        g = b.finish(both)
        pg = partition(g, default_specs())
        assert all(c.pattern_name != "htvm.qconv2d"
                   for c in pg.composites())

    def test_priority_order(self):
        # a spec earlier in the list wins
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        g = b.finish(b.call("nn.relu", [x]))
        relu_spec = PatternSpec("custom.relu", is_op("nn.relu")(wildcard()))
        pg = partition(g, [relu_spec])
        assert [c.pattern_name for c in pg.composites()] == ["custom.relu"]

    def test_check_predicate_vetoes(self, small_cnn):
        specs = [PatternSpec("htvm.qconv2d", conv2d_pattern(),
                             check=lambda m: False)]
        pg = partition(small_cnn, specs)
        assert not pg.composites()

    def test_composite_body_is_valid_graph(self, small_cnn):
        pg = partition(small_cnn, default_specs())
        for comp in pg.composites():
            comp.body.validate()
            assert comp.body.output.ttype == comp.ttype

    def test_partition_of_models(self):
        from repro.frontend.modelzoo import resnet8
        g = resnet8()
        pg = partition(g, default_specs())
        names = [c.pattern_name for c in pg.composites()]
        assert names.count("htvm.qconv2d") == 9
        assert names.count("htvm.qadd") == 3
        assert names.count("htvm.qdense") == 1
