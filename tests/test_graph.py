"""Graph construction, traversal, rewriting, builder, printing."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    Call, Composite, Constant, ConstantTensor, Graph, GraphBuilder, Node,
    TensorType, Var, graph_to_text, summarize,
)
from helpers import build_small_cnn


class TestTopoOrder:
    def test_inputs_before_users(self, small_cnn):
        order = small_cnn.topo_order()
        position = {n.node_id: i for i, n in enumerate(order)}
        for node in order:
            for inp in node.inputs:
                assert position[inp.node_id] < position[node.node_id]

    def test_output_last(self, small_cnn):
        assert small_cnn.topo_order()[-1] is small_cnn.output

    def test_no_duplicates(self, small_cnn):
        ids = [n.node_id for n in small_cnn.topo_order()]
        assert len(ids) == len(set(ids))

    def test_deep_graph_no_recursion_error(self):
        b = GraphBuilder()
        x = b.input("data", (1, 8), "int8")
        node = x
        for _ in range(3000):
            node = b.call("nn.relu", [node])
        g = b.finish(node)
        assert len(g.topo_order()) == 3001


class TestValidation:
    def test_free_variable_detected(self):
        x = Var("x", TensorType((1, 4), "int8"))
        y = Var("y", TensorType((1, 4), "int8"))
        out = Call("add", [x, y])
        with pytest.raises(IRError, match="free variables"):
            Graph([x], out)

    def test_non_var_input_rejected(self):
        c = Constant(ConstantTensor(np.zeros(4, np.int8)))
        with pytest.raises(IRError):
            Graph([c], c)


class TestAccounting:
    def test_total_macs(self, small_cnn):
        assert small_cnn.total_macs() > 0

    def test_weight_bytes_counts_composites(self, small_cnn):
        from repro.patterns import default_specs, partition
        pg = partition(small_cnn, default_specs())
        assert pg.weight_bytes() == small_cnn.weight_bytes()

    def test_users_map(self, small_cnn):
        users = small_cnn.users()
        # every non-output node has at least one user
        for node in small_cnn.topo_order():
            if node is small_cnn.output:
                continue
            assert users[node.node_id], f"{node!r} has no users"


class TestRewrite:
    def test_identity_rewrite_preserves_semantics(self, small_cnn):
        from repro.runtime import random_inputs, run_reference
        g2 = small_cnn.rewrite(lambda node, new_inputs: None)
        feeds = random_inputs(small_cnn, seed=0)
        np.testing.assert_array_equal(
            run_reference(small_cnn, feeds), run_reference(g2, feeds))

    def test_replace_op(self):
        b = GraphBuilder()
        x = b.input("x", (1, 4), "int8")
        g = b.finish(b.call("nn.relu", [x]))

        def swap(node, new_inputs):
            if isinstance(node, Call) and node.op == "nn.relu":
                return Call("clip", new_inputs, {"a_min": 0, "a_max": 127})
            return None

        g2 = g.rewrite(swap)
        assert [c.op for c in g2.calls()] == ["clip"]

    def test_rewrite_may_not_replace_inputs(self, small_cnn):
        def bad(node, new_inputs):
            if isinstance(node, Var):
                return Call("nn.relu", [node])
            return None

        with pytest.raises(IRError):
            small_cnn.rewrite(bad)


class TestBuilder:
    def test_requant_chain_structure(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int8")
        y = b.conv2d_requant(x, 4, kernel=3, padding=(1, 1), relu=True)
        ops = [c.op for c in b.finish(y).calls()]
        assert ops == ["nn.conv2d", "nn.bias_add", "right_shift", "clip",
                       "cast", "clip"]

    def test_no_relu_omits_final_clip(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int8")
        y = b.conv2d_requant(x, 4, kernel=3, padding=(1, 1), relu=False)
        ops = [c.op for c in b.finish(y).calls()]
        assert ops[-1] == "cast"

    def test_int7_requant_clips_to_7bit(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int7")
        y = b.conv2d_requant(x, 4, kernel=1, out_dtype="int7")
        clips = [c for c in b.finish(y).calls() if c.op == "clip"]
        assert clips[0].attrs["a_min"] == -64
        assert clips[0].attrs["a_max"] == 63

    def test_dwconv_groups(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 8, 8, 8), "int8")
        y = b.dwconv2d_requant(x, kernel=3, padding=(1, 1))
        conv = [c for c in b.finish(y).calls() if c.op == "nn.conv2d"][0]
        assert conv.attrs["groups"] == 8

    def test_pair_normalization(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 9, 9), "int8")
        y = b.conv2d_requant(x, 4, kernel=3, strides=2, padding=1)
        assert y.shape[2:] == (5, 5) or y.shape[2:] == (5, 5)


class TestPrinter:
    def test_text_contains_ops(self, small_cnn):
        text = graph_to_text(small_cnn)
        assert "nn.conv2d" in text
        assert "fn small_cnn" in text
        assert "return" in text

    def test_summarize(self, small_cnn):
        s = summarize(small_cnn)
        assert "MMAC" in s and "kB weights" in s

    def test_partitioned_graph_prints_bodies(self, small_cnn):
        from repro.patterns import default_specs, partition
        text = graph_to_text(partition(small_cnn, default_specs()))
        assert "composite[htvm.qconv2d" in text
