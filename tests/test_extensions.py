"""Tests for the extension modules: energy, timeline, importer,
random model generator, DOT export, CLI."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.core import HTVM, compile_model
from repro.errors import UnsupportedError
from repro.eval.timeline import build_timeline, render_timeline, utilization_by_target
from repro.frontend import import_model
from repro.frontend.modelzoo import RandomNetConfig, random_cnn
from repro.ir import graph_to_dot, save_dot
from repro.runtime import Executor, random_inputs, run_reference
from repro.soc import (
    DEFAULT_ENERGY, DianaSoC, EnergyParams, energy_by_target_uj,
    execution_energy_uj,
)
from helpers import build_small_cnn


@pytest.fixture(scope="module")
def executed():
    soc = DianaSoC(enable_analog=False)
    graph = build_small_cnn()
    model = compile_model(graph, soc, HTVM)
    result = Executor(soc).run(model, random_inputs(graph, seed=0))
    return soc, model, result


class TestEnergy:
    def test_positive_total(self, executed):
        soc, _, result = executed
        energy = execution_energy_uj(result.perf, soc.params)
        assert energy > 0

    def test_split_sums_close_to_total(self, executed):
        soc, _, result = executed
        split = energy_by_target_uj(result.perf, soc.params)
        total = execution_energy_uj(result.perf, soc.params)
        assert sum(split.values()) <= total  # leakage not in the split
        assert set(split) == {"cpu", "soc.digital"}

    def test_analog_beats_digital_per_mac(self):
        """The motivation of heterogeneous TinyML: analog MACs are
        an order of magnitude cheaper."""
        from repro.eval.harness import deploy
        dig = deploy("resnet", "digital", verify=False)
        ana = deploy("resnet", "analog", verify=False)
        macs = 12.5e6
        e_dig = execution_energy_uj(dig.execution.perf,
                                    DianaSoC().params)
        e_ana = execution_energy_uj(ana.execution.perf,
                                    DianaSoC().params)
        # analog spends MUCH less on MACs, though overheads remain
        assert e_ana < e_dig

    def test_cpu_much_more_expensive(self):
        from repro.eval.harness import deploy
        cpu = deploy("resnet", "cpu-tvm", verify=False)
        dig = deploy("resnet", "digital", verify=False)
        params = DianaSoC().params
        e_cpu = execution_energy_uj(cpu.execution.perf, params)
        e_dig = execution_energy_uj(dig.execution.perf, params)
        assert e_cpu / e_dig > 10  # "more than one order of magnitude"

    def test_custom_params(self, executed):
        soc, _, result = executed
        cheap = EnergyParams(cpu_pj_per_cycle=0.0, host_pj_per_cycle=0.0,
                             leakage_pj_per_cycle=0.0)
        assert (execution_energy_uj(result.perf, soc.params, cheap)
                < execution_energy_uj(result.perf, soc.params, DEFAULT_ENERGY))


class TestTimeline:
    def test_entries_cover_all_kernels(self, executed):
        _, model, result = executed
        entries = build_timeline(result.perf)
        assert len(entries) == len(model.steps)
        # back-to-back, no gaps
        for a, b in zip(entries, entries[1:]):
            assert b.start == pytest.approx(a.end)

    def test_render_contains_lanes(self, executed):
        _, _, result = executed
        text = render_timeline(result.perf)
        assert "soc.digital" in text and "cpu" in text
        assert "phase key" in text

    def test_utilization_sums_to_one(self, executed):
        _, _, result = executed
        util = utilization_by_target(result.perf)
        assert sum(util.values()) == pytest.approx(1.0)

    def test_empty(self):
        from repro.soc import PerfCounters
        assert "empty" in render_timeline(PerfCounters())


class TestImporter:
    DESC = {
        "name": "tiny",
        "input": {"shape": [1, 3, 16, 16], "dtype": "int8"},
        "layers": [
            {"type": "conv2d", "filters": 8, "kernel": 3, "padding": 1},
            {"type": "residual", "layers": [
                {"type": "conv2d", "filters": 8, "kernel": 3,
                 "padding": 1, "relu": False},
            ]},
            {"type": "depthwise_conv2d"},
            {"type": "max_pool", "size": 2},
            {"type": "global_avg_pool"},
            {"type": "flatten"},
            {"type": "dense", "units": 4},
            {"type": "softmax"},
        ],
    }

    def test_import_and_run(self):
        graph = import_model(self.DESC, seed=1)
        out = run_reference(graph, random_inputs(graph, seed=0))
        assert out.shape == (1, 4)

    def test_json_roundtrip_of_description(self):
        graph = import_model(json.loads(json.dumps(self.DESC)), seed=1)
        assert graph.name == "tiny"

    def test_compiles_end_to_end(self):
        graph = import_model(self.DESC, seed=1)
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, HTVM)
        feeds = random_inputs(graph, seed=2)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))

    def test_inline_weights(self):
        desc = {
            "input": {"shape": [1, 2], "dtype": "int8"},
            "layers": [
                {"type": "dense", "units": 2, "shift": 0,
                 "weights": [[1, 0], [0, 1]]},
            ],
        }
        graph = import_model(desc)
        dense = [c for c in graph.calls() if c.op == "nn.dense"][0]
        np.testing.assert_array_equal(dense.inputs[1].value.data,
                                      [[1, 0], [0, 1]])

    def test_unknown_layer_rejected(self):
        desc = {"input": {"shape": [1, 4]},
                "layers": [{"type": "lstm"}]}
        with pytest.raises(UnsupportedError, match="lstm"):
            import_model(desc)

    def test_missing_input_rejected(self):
        with pytest.raises(UnsupportedError, match="input"):
            import_model({"layers": []})


class TestRandomNet:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_nets_compile_and_verify(self, seed):
        graph = random_cnn(seed)
        soc = DianaSoC()
        model = compile_model(graph, soc,
                              HTVM.with_overrides(check_l2=False))
        feeds = random_inputs(graph, seed=seed + 100)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))

    def test_reproducible(self):
        a = random_cnn(3)
        b = random_cnn(3)
        assert [c.op for c in a.calls()] == [c.op for c in b.calls()]

    def test_int7_variant(self):
        cfg = RandomNetConfig(precision="int7")
        graph = random_cnn(1, cfg)
        assert graph.inputs[0].dtype.name == "int7"
        out = run_reference(graph, random_inputs(graph, seed=0))
        assert out.shape == (1, 10)


class TestDot:
    def test_contains_nodes_and_edges(self, small_cnn):
        dot = graph_to_dot(small_cnn)
        assert dot.startswith("digraph")
        assert "nn.conv2d" in dot
        assert "->" in dot

    def test_partitioned_colors(self, small_cnn):
        from repro.dispatch import assign_targets
        from repro.patterns import default_specs, partition
        soc = DianaSoC(enable_analog=False)
        g, _ = assign_targets(partition(small_cnn, default_specs()), soc)
        dot = graph_to_dot(g)
        assert "#d9ead3" in dot  # digital green

    def test_save(self, small_cnn, tmp_path):
        path = tmp_path / "g.dot"
        save_dot(small_cnn, str(path))
        assert path.read_text().startswith("digraph")


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True, text=True, timeout=300)

    def test_models(self):
        proc = self.run_cli("models")
        assert proc.returncode == 0
        assert "resnet" in proc.stdout

    def test_run_resnet(self):
        proc = self.run_cli("run", "resnet", "--config", "digital",
                            "--timeline")
        assert proc.returncode == 0, proc.stderr
        assert "bit-exact vs reference: True" in proc.stdout
        assert "timeline:" in proc.stdout
        assert "uJ" in proc.stdout

    def test_compile_writes_sources(self, tmp_path):
        out = tmp_path / "build"
        proc = self.run_cli("compile", "toyadmos", "--config", "digital",
                            "--out-dir", str(out),
                            "--dot", str(tmp_path / "g.dot"))
        assert proc.returncode == 0, proc.stderr
        assert (out / "network.c").exists()
        assert (tmp_path / "g.dot").exists()

    def test_oom_exit_code(self):
        proc = self.run_cli("compile", "mobilenet", "--config", "cpu-tvm")
        assert proc.returncode == 2
        assert "OUT OF MEMORY" in proc.stdout

    def test_unknown_model(self):
        proc = self.run_cli("run", "alexnet")
        assert proc.returncode != 0
