"""JSON model format round-trip tests."""

import json

import numpy as np
import pytest

from repro.errors import IRError
from repro.frontend.modelzoo import MLPERF_TINY
from repro.ir import (
    Call, Composite, Constant, Var, graph_digest, graph_from_dict,
    graph_to_dict, load_graph, save_graph,
)
from repro.patterns import default_specs, partition
from repro.runtime import random_inputs, run_reference
from helpers import build_small_cnn


def roundtrip(graph):
    payload = json.dumps(graph_to_dict(graph))
    return graph_from_dict(json.loads(payload))


class TestRoundTrip:
    def test_plain_graph_semantics_preserved(self):
        g = build_small_cnn()
        g2 = roundtrip(g)
        feeds = random_inputs(g, seed=11)
        np.testing.assert_array_equal(
            run_reference(g, feeds), run_reference(g2, feeds))

    def test_partitioned_graph_roundtrip(self):
        g = partition(build_small_cnn(), default_specs())
        g2 = roundtrip(g)
        assert [c.pattern_name for c in g2.composites()] == \
               [c.pattern_name for c in g.composites()]
        feeds = random_inputs(g, seed=5)
        np.testing.assert_array_equal(
            run_reference(g, feeds), run_reference(g2, feeds))

    def test_weights_identical(self):
        g = build_small_cnn()
        g2 = roundtrip(g)
        w1 = [c.value.data for c in g.constants()]
        w2 = [c.value.data for c in g2.constants()]
        assert len(w1) == len(w2)
        for a, b in zip(w1, w2):
            np.testing.assert_array_equal(a, b)

    def test_name_and_macs_preserved(self):
        g = build_small_cnn()
        g2 = roundtrip(g)
        assert g2.name == g.name
        assert g2.total_macs() == g.total_macs()

    def test_file_roundtrip(self, tmp_path):
        g = build_small_cnn()
        path = str(tmp_path / "model.json")
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.total_macs() == g.total_macs()

    def test_bad_version_rejected(self):
        g = build_small_cnn()
        obj = graph_to_dict(g)
        obj["format_version"] = 999
        with pytest.raises(IRError, match="format version"):
            graph_from_dict(obj)

    def test_ternary_model_roundtrip(self):
        from repro.frontend.modelzoo import resnet8
        g = resnet8(precision="ternary")
        g2 = roundtrip(g)
        feeds = random_inputs(g, seed=2)
        np.testing.assert_array_equal(
            run_reference(g, feeds), run_reference(g2, feeds))


def assert_graphs_structurally_equal(a, b):
    """Node-by-node equality: kinds, ops, attrs, types and weights."""
    na, nb = a.topo_order(), b.topo_order()
    assert len(na) == len(nb)
    for x, y in zip(na, nb):
        assert type(x) is type(y)
        assert x.ttype.shape == y.ttype.shape
        assert x.dtype.name == y.dtype.name
        if isinstance(x, Var):
            assert x.name == y.name
        elif isinstance(x, Constant):
            assert x.value.data.dtype == y.value.data.dtype
            np.testing.assert_array_equal(x.value.data, y.value.data)
        elif isinstance(x, Call):
            assert x.op == y.op
            assert x.attrs == y.attrs
        elif isinstance(x, Composite):
            assert x.pattern_name == y.pattern_name
            assert x.target == y.target
            assert_graphs_structurally_equal(x.body, y.body)


class TestModelZooRoundTrip:
    """Every zoo graph round-trips the on-disk format exactly — the
    foundation the serving artifact store builds on."""

    @pytest.mark.parametrize("name", sorted(MLPERF_TINY))
    @pytest.mark.parametrize("precision", ["int8", "mixed"])
    def test_zoo_graph_roundtrip(self, name, precision):
        g = MLPERF_TINY[name](precision=precision)
        g2 = roundtrip(g)
        assert_graphs_structurally_equal(g, g2)
        assert g2.name == g.name
        assert g2.total_macs() == g.total_macs()
        assert g2.weight_bytes() == g.weight_bytes()

    @pytest.mark.parametrize("name", sorted(MLPERF_TINY))
    def test_zoo_partitioned_roundtrip(self, name):
        g = partition(MLPERF_TINY[name](precision="mixed"), default_specs())
        g2 = roundtrip(g)
        assert_graphs_structurally_equal(g, g2)
        feeds = random_inputs(g, seed=7)
        np.testing.assert_array_equal(
            run_reference(g, feeds), run_reference(g2, feeds))

    @pytest.mark.parametrize("name", sorted(MLPERF_TINY))
    def test_zoo_digest_stable_across_roundtrip(self, name):
        g = MLPERF_TINY[name]()
        assert graph_digest(g) == graph_digest(roundtrip(g))

    def test_digest_distinguishes_models(self):
        digests = {graph_digest(fn()) for fn in MLPERF_TINY.values()}
        assert len(digests) == len(MLPERF_TINY)
