"""Chaos suite for the multi-process serving fleet.

Every recovery path of :class:`~repro.serve.ServingFleet` is driven by
a *deterministic* fault plan (:mod:`repro.serve.faults`) and asserted
exactly: no accepted request is ever lost or resolved twice, the
circuit breaker walks its closed → open → half-open → closed path on
schedule, dead workers restart with backoff, a corrupt artifact fails
terminally inside the worker, and repeated OOM deaths fall back to a
smaller-arena execution mode. The resilience primitives
(:mod:`repro.serve.resilience`) are unit-tested first with injected
clocks — no sleeping, no processes.

See ``docs/RESILIENCE.md`` for the fault-kind → recovery-path matrix
this suite implements.
"""

import asyncio
import random
import threading
import time

import numpy as np
import pytest

from repro.core import CompilerConfig
from repro.errors import (
    ReproError, ServingError, ServingExecutionError, ServingOverloadError,
    ServingTimeoutError, ServingUnavailableError, WorkerCrashError,
)
from repro.runtime import random_inputs, run_reference
from repro.serve import (
    FaultInjector, FaultPlan, FaultRule, FleetConfig, ServingFleet,
    corrupt_artifact, pack_model,
)
from repro.serve.resilience import (
    BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN, CircuitBreaker,
    CrashLoopBackoff, RetryPolicy,
)
from repro.soc import DianaSoC

from helpers import build_small_cnn


# ---------------------------------------------------------------------------
# resilience primitives (no processes, injected clocks)
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_delay_sequence_deterministic(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=1.0,
                             multiplier=2.0, jitter=0.5)
        a = [policy.delay_s(k, random.Random(42)) for k in (1, 2, 3)]
        b = [policy.delay_s(k, random.Random(42)) for k in (1, 2, 3)]
        assert a == b  # same seed, same jittered delays

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=0.35,
                             multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay_s(1, rng) == pytest.approx(0.1)
        assert policy.delay_s(2, rng) == pytest.approx(0.2)
        assert policy.delay_s(3, rng) == pytest.approx(0.35)  # capped
        assert policy.delay_s(9, rng) == pytest.approx(0.35)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.5, multiplier=1.0)
        rng = random.Random(7)
        for _ in range(100):
            d = policy.delay_s(1, rng)
            assert 0.5 <= d <= 1.0  # [raw * (1 - jitter), raw]

    def test_attempt_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(2)
        assert not policy.allows(3)
        assert not RetryPolicy(max_attempts=1).allows(1)  # retries off

    def test_validation(self):
        with pytest.raises(ServingError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServingError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = [0.0]
        kw.setdefault("failure_threshold", 3)
        kw.setdefault("recovery_s", 10.0)
        breaker = CircuitBreaker(clock=lambda: clock[0], **kw)
        return breaker, clock

    def test_trips_open_on_consecutive_failures(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == BREAKER_CLOSED
        breaker.record_success()  # resets the streak
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.blocked()
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_full_recovery_path(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()       # open, recovery not elapsed
        clock[0] = 11.0
        assert not breaker.blocked()     # admission may pass again
        assert breaker.allow()           # dispatch consumes the probe
        assert breaker.state == BREAKER_HALF_OPEN
        assert not breaker.allow()       # probe budget exhausted
        breaker.record_success()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.transitions == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]

    def test_probe_failure_reopens(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()
        breaker.record_failure()         # the probe failed
        assert breaker.state == BREAKER_OPEN
        assert breaker.blocked()         # recovery clock restarted
        assert breaker.retry_after() == pytest.approx(10.0)


class TestCrashLoopBackoff:
    def test_exponential_with_cap_and_reset(self):
        clock = [0.0]
        backoff = CrashLoopBackoff(base_s=0.1, max_s=0.5, multiplier=2.0,
                                   reset_after_s=30.0,
                                   clock=lambda: clock[0])
        assert backoff.next_delay_s() == pytest.approx(0.1)
        assert backoff.next_delay_s() == pytest.approx(0.2)
        assert backoff.next_delay_s() == pytest.approx(0.4)
        assert backoff.next_delay_s() == pytest.approx(0.5)  # capped
        assert backoff.streak == 4
        clock[0] = 100.0  # quiet period forgives the streak
        assert backoff.next_delay_s() == pytest.approx(0.1)
        assert backoff.streak == 1


class TestFaultPlan:
    def test_rule_validation(self):
        with pytest.raises(ServingError):
            FaultRule(kind="nope", nth=(1,))
        with pytest.raises(ServingError):
            FaultRule(kind="crash")  # needs nth or rate
        with pytest.raises(ServingError):
            FaultRule(kind="crash", nth=(1,), rate=0.5)  # not both

    def test_nth_schedule_is_exact(self):
        plan = FaultPlan(rules=(FaultRule(kind="crash", nth=(2, 4)),))
        inj = plan.for_worker("m", 0, 0)
        fired = [inj.fires("crash") is not None for _ in range(5)]
        assert fired == [False, True, False, True, False]

    def test_rate_is_deterministic_per_scope(self):
        plan = FaultPlan(seed=3, rules=(FaultRule(kind="crash", rate=0.5),))
        a = [plan.for_worker("m", 0, 0).fires("crash") is not None
             for _ in range(20)]
        b = [plan.for_worker("m", 0, 0).fires("crash") is not None
             for _ in range(20)]
        assert a == b
        # a different scope draws a different stream
        c = [plan.for_worker("m", 1, 0).fires("crash") is not None
             for _ in range(20)]
        assert a != c

    def test_scope_filtering(self):
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", worker=1, nth=(1,)),
            FaultRule(kind="queue_full", key="m", nth=(1,)),
        ))
        assert plan.for_worker("m", 0, 0).fires("crash") is None
        assert plan.for_worker("m", 1, 0).fires("crash") is not None
        # queue_full never reaches workers; crash never reaches admission
        assert plan.for_worker("m", 1, 0).fires("queue_full") is None
        assert plan.for_admission("m").fires("queue_full") is not None
        assert plan.for_admission("other").fires("queue_full") is None

    def test_none_injector_never_fires(self):
        inj = FaultInjector.none()
        assert all(inj.fires(k) is None for k in ("crash", "hang"))


# ---------------------------------------------------------------------------
# fleet integration (real worker processes)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    """One packed small-CNN deployment shared by the whole module."""
    graph = build_small_cnn(hw=8, channels=8)
    soc = DianaSoC(enable_analog=False)
    path = tmp_path_factory.mktemp("fleet") / "small.dna"
    pack_model(graph, soc, CompilerConfig(), str(path))
    feeds = random_inputs(graph, seed=0)
    golden = np.asarray(run_reference(graph, feeds))
    return str(path), feeds, golden


def _config(**kw) -> FleetConfig:
    """Test tuning: tight ticks and backoffs so recovery is fast."""
    kw.setdefault("workers", 1)
    kw.setdefault("tick_s", 0.005)
    kw.setdefault("restart_base_s", 0.01)
    kw.setdefault("retry", RetryPolicy(max_attempts=3, base_delay_s=0.01,
                                       max_delay_s=0.1))
    kw.setdefault("worker_start_timeout_s", 120.0)
    return FleetConfig(**kw)


def _fleet(artifact_path, **kw):
    fleet = ServingFleet(_config(**kw)).start()
    key = fleet.add_deployment(artifact_path, key="m")
    return fleet, key


class TestFleetServing:
    def test_serves_correct_outputs(self, artifact):
        path, feeds, golden = artifact
        with ServingFleet(_config(workers=2)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            futs = [fleet.submit(key, feeds) for _ in range(8)]
            for fut in futs:
                assert np.array_equal(fut.result(timeout=60), golden)
            stats = fleet.stats()[key]
            assert stats["completed"] == 8
            assert stats["failed"] == 0
            assert stats["breaker_state"] == BREAKER_CLOSED

    def test_async_front_door(self, artifact):
        path, feeds, golden = artifact

        async def drive(fleet, key):
            outs = await asyncio.gather(
                *(fleet.ainfer(key, feeds) for _ in range(4)))
            return outs

        with ServingFleet(_config()) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            for out in asyncio.run(drive(fleet, key)):
                assert np.array_equal(out, golden)

    def test_unknown_deployment_and_double_register(self, artifact):
        path, feeds, _ = artifact
        with ServingFleet(_config(workers=0)) as fleet:
            fleet.add_deployment(path, key="m")
            with pytest.raises(ServingError, match="unknown deployment"):
                fleet.submit("nope", feeds)
            with pytest.raises(ServingError, match="already registered"):
                fleet.add_deployment(path, key="m")


class TestWorkerCrashRecovery:
    def test_crash_is_retried_transparently(self, artifact):
        """Worker dies holding request 2; the fleet restarts it and the
        retried request completes — the caller never sees the crash."""
        path, feeds, golden = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", worker=0, gen=0, nth=(2,)),))
        with ServingFleet(_config(faults=plan)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            for _ in range(4):
                out = fleet.infer(key, feeds, timeout=60)
                assert np.array_equal(out, golden)
            stats = fleet.stats()[key]
            assert stats["restarts"] == 1
            assert stats["retried"] == 1
            assert stats["completed"] == 4
            assert stats["failed"] == 0

    def test_crash_without_retry_budget_fails_typed(self, artifact):
        path, feeds, _ = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="crash", worker=0, nth=(1,)),))  # every gen
        with ServingFleet(_config(
                faults=plan, retry=RetryPolicy(max_attempts=1))) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            fut = fleet.submit(key, feeds)
            with pytest.raises(WorkerCrashError) as info:
                fut.result(timeout=60)
            assert info.value.retryable
            assert info.value.code == "S-CRASH"
            assert fut.attempts == 1

    def test_crash_loop_backs_off_then_recovers(self, artifact):
        """Two consecutive incarnations die on arrival; the third one
        comes up and serves. Restart pacing grows with the streak."""
        path, feeds, golden = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="crash_start", worker=0, gen=0, nth=(1,)),
            FaultRule(kind="crash_start", worker=0, gen=1, nth=(1,)),))
        with ServingFleet(_config(faults=plan)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            out = fleet.infer(key, feeds, timeout=60)
            assert np.array_equal(out, golden)
            workers = fleet.stats()[key]["workers"]
            assert workers[0]["gen"] == 2
            assert workers[0]["restarts"] == 2

    def test_max_restarts_pins_worker_dead(self, artifact):
        path, feeds, _ = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="crash_start", worker=0, nth=(1,)),))
        with ServingFleet(_config(faults=plan, max_restarts=2)) as fleet:
            key = fleet.add_deployment(path, key="m")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                workers = fleet.stats()[key]["workers"]
                if workers[0]["state"] == "dead":
                    break
                time.sleep(0.02)
            assert fleet.stats()[key]["workers"][0]["state"] == "dead"
            assert fleet.stats()[key]["restarts"] == 2


class TestDeadlines:
    def test_hung_worker_is_killed_and_caller_gets_timeout(self, artifact):
        path, feeds, golden = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="hang", worker=0, gen=0, nth=(1,), param=30.0),))
        with ServingFleet(_config(faults=plan,
                                  hang_grace_s=0.05)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            fut = fleet.submit(key, feeds, deadline_s=0.3)
            with pytest.raises(ServingTimeoutError) as info:
                fut.result(timeout=60)
            assert info.value.elapsed_s >= 0.3
            # the replacement worker serves the next request fine
            out = fleet.infer(key, feeds, timeout=60, deadline_s=30.0)
            assert np.array_equal(out, golden)
            stats = fleet.stats()[key]
            assert stats["timeouts"] == 1
            assert stats["restarts"] == 1

    def test_hang_timeout_retries_within_deadline(self, artifact):
        """A hang bounded by hang_timeout_s (deadline still open) is a
        crash-equivalent: kill, restart, retry, succeed."""
        path, feeds, golden = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="hang", worker=0, gen=0, nth=(1,), param=30.0),))
        with ServingFleet(_config(faults=plan,
                                  hang_timeout_s=0.15)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            out = fleet.infer(key, feeds, timeout=60, deadline_s=30.0)
            assert np.array_equal(out, golden)
            stats = fleet.stats()[key]
            assert stats["retried"] == 1
            assert stats["completed"] == 1

    def test_deadline_storm_expires_in_queue(self, artifact):
        """Requests whose deadline passes while queued die cheaply in
        the front door (workers=0: nothing ever dispatches)."""
        path, feeds, _ = artifact
        with ServingFleet(_config(workers=0)) as fleet:
            key = fleet.add_deployment(path, key="m")
            futs = [fleet.submit(key, feeds, deadline_s=0.05)
                    for _ in range(6)]
            for fut in futs:
                with pytest.raises(ServingTimeoutError):
                    fut.result(timeout=30)
            stats = fleet.stats()[key]
            assert stats["expired"] == 6
            assert stats["admitted"] == 0


class TestAdmissionControl:
    def test_queue_limit_fast_fails_with_hint(self, artifact):
        path, feeds, _ = artifact
        with ServingFleet(_config(workers=0, queue_limit=4,
                                  shed_watermark=4)) as fleet:
            key = fleet.add_deployment(path, key="m")
            for _ in range(4):
                fleet.submit(key, feeds)
            with pytest.raises(ServingOverloadError) as info:
                fleet.submit(key, feeds)
            assert info.value.retryable
            assert info.value.retry_after > 0
            assert not info.value.shed
            assert fleet.stats()[key]["rejected"] == 1

    def test_low_priority_shed_first(self, artifact):
        """Above the watermark low-priority requests are shed while
        high-priority ones are still admitted — graceful degradation."""
        path, feeds, _ = artifact
        with ServingFleet(_config(workers=0, queue_limit=8,
                                  shed_watermark=2)) as fleet:
            key = fleet.add_deployment(path, key="m")
            fleet.submit(key, feeds)
            fleet.submit(key, feeds)
            with pytest.raises(ServingOverloadError) as info:
                fleet.submit(key, feeds, priority=-1)
            assert info.value.shed
            fleet.submit(key, feeds, priority=0)  # still admitted
            assert fleet.stats()[key]["shed"] == 1
            assert fleet.stats()[key]["accepted"] == 3

    def test_injected_queue_full(self, artifact):
        path, feeds, _ = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="queue_full", nth=(1,)),))
        with ServingFleet(_config(workers=0, faults=plan)) as fleet:
            key = fleet.add_deployment(path, key="m")
            with pytest.raises(ServingOverloadError, match="injected"):
                fleet.submit(key, feeds)
            fleet.submit(key, feeds)  # second attempt is admitted


class TestCircuitBreakerIntegration:
    def test_breaker_opens_blocks_then_recovers(self, artifact):
        """Three deterministic execution failures trip the breaker;
        admission fast-fails while open; after recovery_s the probe
        succeeds and the breaker closes — the full transition path."""
        path, feeds, golden = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="exec_error", worker=0, gen=0, nth=(1, 2, 3)),))
        with ServingFleet(_config(faults=plan, breaker_failures=3,
                                  breaker_recovery_s=0.3)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            for _ in range(3):
                with pytest.raises(ServingExecutionError):
                    fleet.infer(key, feeds, timeout=60)
            assert fleet.stats()[key]["breaker_state"] == BREAKER_OPEN
            with pytest.raises(ServingUnavailableError) as info:
                fleet.submit(key, feeds)
            assert info.value.retry_after is not None
            time.sleep(0.4)  # recovery window elapses
            out = fleet.infer(key, feeds, timeout=60)  # the probe
            assert np.array_equal(out, golden)
            stats = fleet.stats()[key]
            assert stats["breaker_state"] == BREAKER_CLOSED
            assert stats["breaker_transitions"] == [
                (BREAKER_CLOSED, BREAKER_OPEN),
                (BREAKER_OPEN, BREAKER_HALF_OPEN),
                (BREAKER_HALF_OPEN, BREAKER_CLOSED),
            ]


class TestArtifactCorruption:
    def test_corrupt_artifact_fails_terminally(self, artifact, tmp_path):
        """Workers hit the load_artifact(verify=True) gate on a corrupt
        .dna; the deployment is marked terminally failed and admission
        reports a non-retryable unavailability."""
        path, feeds, _ = artifact
        bad = tmp_path / "corrupt.dna"
        bad.write_bytes(open(path, "rb").read())
        corrupt_artifact(str(bad), seed=1)
        with ServingFleet(_config(workers=2)) as fleet:
            key = fleet.add_deployment(str(bad), key="bad")
            assert not fleet.wait_ready(key, timeout=60)
            with pytest.raises(ServingUnavailableError) as info:
                fleet.submit(key, feeds)
            assert not info.value.retryable
            assert "terminally" in str(info.value)

    def test_corrupt_artifact_fails_queued_requests(self, artifact,
                                                    tmp_path):
        path, feeds, _ = artifact
        bad = tmp_path / "corrupt2.dna"
        bad.write_bytes(open(path, "rb").read())
        corrupt_artifact(str(bad), seed=2)
        with ServingFleet(_config()) as fleet:
            key = fleet.add_deployment(str(bad), key="bad")
            fut = fleet.submit(key, feeds)  # admitted before load fails
            with pytest.raises(ServingUnavailableError):
                fut.result(timeout=60)

    def test_corrupting_actually_breaks_the_load(self, artifact, tmp_path):
        from repro.serve import load_artifact

        path, _, _ = artifact
        bad = tmp_path / "corrupt3.dna"
        bad.write_bytes(open(path, "rb").read())
        corrupt_artifact(str(bad), seed=3)
        with pytest.raises((ReproError, OSError, ValueError, EOFError)):
            load_artifact(str(bad), verify=True)


class TestOomFallback:
    def test_repeated_oom_switches_exec_mode(self, artifact):
        """Two OOM deaths flip the deployment to the fallback exec
        mode; restarted workers serve bit-identical outputs (tiled and
        fast executors agree by construction)."""
        path, feeds, golden = artifact
        plan = FaultPlan(rules=(
            FaultRule(kind="oom_crash", worker=0, gen=0, nth=(1,)),
            FaultRule(kind="oom_crash", worker=0, gen=1, nth=(1,)),))
        with ServingFleet(_config(
                faults=plan, oom_fallback_after=2,
                fallback_exec_mode="tiled",
                retry=RetryPolicy(max_attempts=4, base_delay_s=0.01,
                                  max_delay_s=0.1))) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            out = fleet.infer(key, feeds, timeout=60)
            assert np.array_equal(out, golden)
            stats = fleet.stats()[key]
            assert stats["exec_mode"] == "tiled"
            assert stats["oom_deaths"] == 2
            assert stats["fallbacks"] == 1
            assert stats["completed"] == 1


class TestShutdown:
    def test_shutdown_fails_leftover_futures(self, artifact):
        """shutdown(wait=False) with queued work: every accepted future
        fails with the typed S-SHUTDOWN error — none hangs."""
        path, feeds, _ = artifact
        fleet, key = _fleet(path, workers=0)
        futs = [fleet.submit(key, feeds) for _ in range(5)]
        counters = fleet.shutdown(wait=False, timeout=5.0)
        assert counters[key]["failed"] == 5
        for fut in futs:
            assert fut.done()
            with pytest.raises(ServingError) as info:
                fut.result(timeout=0)
            assert info.value.code == "S-SHUTDOWN"

    def test_shutdown_is_idempotent_and_drains(self, artifact):
        path, feeds, golden = artifact
        fleet, key = _fleet(path, workers=1)
        assert fleet.wait_ready(key, timeout=60)
        futs = [fleet.submit(key, feeds) for _ in range(4)]
        counters = fleet.shutdown(wait=True, timeout=60.0)
        assert counters[key]["completed"] == 4
        assert fleet.shutdown() == {}  # second call is a no-op
        for fut in futs:
            assert np.array_equal(fut.result(timeout=0), golden)
        with pytest.raises(ServingError, match="shut down"):
            fleet.submit(key, feeds)


class TestChaosMix:
    def test_zero_lost_under_chaos(self, artifact):
        """The flagship invariant: under a seeded mix of crashes,
        hangs, OOM deaths, exec faults and queue-full rejections, with
        concurrent closed-loop clients, every accepted request either
        completes or fails with a typed serving error — zero lost,
        zero double-resolved (FleetFuture asserts single settlement)."""
        from repro.eval.loadgen import run_load

        path, feeds, _ = artifact
        plan = FaultPlan(seed=11, rules=(
            FaultRule(kind="crash", rate=0.04),
            FaultRule(kind="oom_crash", rate=0.01),
            FaultRule(kind="hang", rate=0.02, param=0.3),
            FaultRule(kind="exec_error", rate=0.03),
            FaultRule(kind="queue_full", rate=0.03),
        ))
        with ServingFleet(_config(workers=2, faults=plan,
                                  queue_limit=64)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            report = run_load(fleet, key, feeds, clients=4,
                              requests_per_client=20, deadline_s=30.0,
                              result_timeout_s=120.0)
            stats = fleet.stats()[key]
        assert report.lost == 0
        assert report.issued == 80
        assert report.completed + report.failed + report.timeouts \
            == report.accepted
        assert report.completed > 0
        # fleet-side ledger agrees with the client-side one
        assert stats["admitted"] == 0
        assert stats["completed"] == report.completed
        for code in report.errors_by_code:
            assert code.startswith("S-")

    def test_concurrent_submitters_during_worker_kill(self, artifact):
        """Kill a worker (externally, not via the fault plan) while
        multiple threads submit: nothing is lost."""
        path, feeds, golden = artifact
        with ServingFleet(_config(workers=2)) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            results: list = []
            lock = threading.Lock()

            def client():
                for _ in range(10):
                    try:
                        out = fleet.infer(key, feeds, timeout=60,
                                          deadline_s=30.0)
                        with lock:
                            results.append(np.array_equal(out, golden))
                    except ServingError as exc:
                        with lock:
                            results.append(exc.code)

            threads = [threading.Thread(target=client) for _ in range(3)]
            for t in threads:
                t.start()
            time.sleep(0.05)
            with fleet._lock:  # pick a live victim under the lock
                victims = [w.proc for w
                           in fleet._deployments[key].workers
                           if w.proc is not None and w.proc.is_alive()]
            if victims:
                victims[0].kill()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads)
        assert len(results) == 30
        assert all(r is True or (isinstance(r, str) and r.startswith("S-"))
                   for r in results)
        assert sum(1 for r in results if r is True) > 0
