"""Observability suite: tracing, metrics, exporters, and propagation.

Covers the contracts ``docs/OBSERVABILITY.md`` promises:

* tracer unit behavior — nesting, explicit parents, hot-path
  ``record``, drain, the disabled no-op path, and ``collect``'s
  install/restore;
* histogram bucket edge cases (Prometheus ``le`` semantics: a value
  exactly on an edge counts into that edge's bucket) and percentile
  estimation including the +Inf bucket;
* registry thread-safety under a concurrent publish hammer;
* exporter schemas — Chrome trace-event JSON and Prometheus text;
* compile-pipeline and executor instrumentation producing spans;
* **trace-context propagation across the fleet worker pipe**: the
  parent ids assigned in the front door survive pickling, and the
  spans shipped back from the worker process reconstruct one tree per
  request id;
* request ids threaded into serving errors and loadgen's ledger;
* circuit-breaker transitions and restart counts surfacing as metrics
  events and fleet stats.
"""

import json
import threading

import pytest

from repro.core import CompilerConfig, compile_model
from repro.errors import ServingError, ServingOverloadError
from repro.obs import (
    MetricsRegistry, Span, Tracer, collect, disable_tracing,
    enable_tracing, fidelity_from_spans, format_fidelity, get_registry,
    get_tracer, merged_snapshot, now_ns, profile_model, set_registry,
    to_prometheus, trace_span, write_chrome_trace,
)
from repro.obs.metrics import Histogram
from repro.runtime import Executor, random_inputs
from repro.serve import FaultPlan, FaultRule, FleetConfig, ServingFleet
from repro.serve.resilience import CircuitBreaker, RetryPolicy
from repro.soc import DianaSoC

from helpers import build_small_cnn


@pytest.fixture(autouse=True)
def _isolated_obs():
    """Fresh registry + disabled tracer around every test."""
    prev_tracer = disable_tracing()
    prev_registry = get_registry()
    set_registry(MetricsRegistry())
    yield
    disable_tracing()
    set_registry(prev_registry)
    if prev_tracer is not None:
        enable_tracing(prev_tracer)


# ---------------------------------------------------------------------------
# tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_nested_spans_parent_implicitly(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = tracer.drain()
        assert [s.name for s in spans] == ["inner", "outer"]  # finish order
        assert outer.parent_id is None  # trace root

    def test_record_hot_path_form(self):
        tracer = Tracer()
        with tracer.span("run") as run:
            t0 = now_ns()
            tracer.record("step", t0, category="exec", step="s0")
        step = next(s for s in tracer.drain() if s.name == "step")
        assert step.parent_id == run.span_id
        assert step.t_end_ns >= step.t_start_ns == t0
        assert step.attrs["step"] == "s0"

    def test_begin_finish_cross_thread_root(self):
        tracer = Tracer()
        root = tracer.begin("request", request_id="m#1")
        done = threading.Event()

        def finisher():
            tracer.finish(root, status="ok")
            done.set()

        threading.Thread(target=finisher).start()
        assert done.wait(5)
        (span,) = tracer.drain()
        assert span.attrs == {"request_id": "m#1", "status": "ok"}
        assert span.duration_ns >= 0

    def test_span_records_error_attr(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.drain()
        assert span.attrs["error"] == "ValueError: nope"

    def test_trace_span_is_noop_when_disabled(self):
        assert get_tracer() is None
        with trace_span("anything") as sp:
            assert sp is None  # no tracer, no span, no error

    def test_enable_disable_round_trip(self):
        tracer = enable_tracing()
        assert get_tracer() is tracer
        with trace_span("x"):
            pass
        assert disable_tracing() is tracer
        assert get_tracer() is None
        assert [s.name for s in tracer.drain()] == ["x"]

    def test_collect_installs_and_restores(self):
        outer = enable_tracing()
        ctx_parent = None
        with collect(ctx_parent) as inner:
            assert get_tracer() is inner
            with trace_span("inside"):
                pass
        assert get_tracer() is outer
        assert [s.name for s in inner.drain()] == ["inside"]
        assert outer.drain() == []

    def test_collect_parents_under_remote_context(self):
        tracer = Tracer()
        root = tracer.begin("request", request_id="m#7")
        with collect(root.context()) as worker_tracer:
            with worker_tracer.span("work"):
                pass
        (work,) = worker_tracer.drain()
        assert work.trace_id == root.trace_id
        assert work.parent_id == root.span_id


# ---------------------------------------------------------------------------
# histogram edge cases + registry thread safety
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_value_on_edge_counts_into_that_bucket(self):
        h = Histogram(bounds=(1.0, 10.0))
        h.observe(1.0)   # exactly on the first edge -> le="1.0" bucket
        h.observe(10.0)  # exactly on the second edge
        snap = h.snapshot()
        by_le = {b["le"]: b["count"] for b in snap["buckets"]}
        assert by_le[1.0] == 1         # cumulative counts
        assert by_le[10.0] == 2
        assert by_le["+Inf"] == 2

    def test_overflow_lands_in_inf_bucket(self):
        h = Histogram(bounds=(1.0,))
        h.observe(5.0)
        snap = h.snapshot()
        assert snap["buckets"][0]["count"] == 0
        assert snap["buckets"][-1] == {"le": "+Inf", "count": 1}
        assert h.percentile(99) == 5.0  # +Inf bucket reports observed max

    def test_percentile_interpolates_within_bucket(self):
        h = Histogram(bounds=(0.0, 100.0))
        for _ in range(100):
            h.observe(50.0)
        assert 0.0 < h.percentile(50) <= 100.0
        assert h.percentile(0) == 0.0 or h.percentile(0) <= 100.0

    def test_empty_and_invalid(self):
        h = Histogram(bounds=(1.0, 2.0))
        assert h.percentile(50) == 0.0
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))  # not increasing
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))  # not strict
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_counter_rejects_negative(self):
        reg = get_registry()
        with pytest.raises(ValueError):
            reg.counter("x_total").inc(-1)

    def test_registry_thread_safety_hammer(self):
        reg = get_registry()
        threads_n, per_thread = 8, 500

        def worker(i: int):
            for k in range(per_thread):
                reg.counter("hammer_total", shard=str(i % 2)).inc()
                reg.gauge("hammer_gauge").set(k)
                reg.histogram("hammer_ms").observe(float(k % 7))
                if k % 100 == 0:
                    reg.event("hammer_event", thread=i)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        total = sum(v for k, v in snap["counters"].items()
                    if k.startswith("hammer_total"))
        assert total == threads_n * per_thread  # no lost increments
        assert snap["histograms"]["hammer_ms"]["count"] == \
            threads_n * per_thread
        assert len(reg.events("hammer_event")) == threads_n * \
            (per_thread // 100)

    def test_snapshot_survives_broken_collector(self):
        reg = get_registry()
        reg.register_collector("good", lambda: {"a": 1})
        reg.register_collector("bad", lambda: 1 / 0)
        snap = reg.snapshot()
        assert snap["subsystems"]["good"] == {"a": 1}
        assert "ZeroDivisionError" in snap["subsystems"]["bad"]["error"]

    def test_merged_snapshot_federates_subsystems(self):
        snap = merged_snapshot(extra={"custom": {"n": 3}})
        assert snap["schema"] == "repro-stats/1"
        assert "tiling_cache" in snap["subsystems"]
        assert "native_build" in snap["subsystems"]
        assert snap["subsystems"]["custom"] == {"n": 3}


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------

class TestExporters:
    def _spans(self):
        tracer = Tracer()
        with tracer.span("outer", category="test", model="m"):
            with tracer.span("inner", category="test"):
                pass
        return tracer.drain()

    def test_chrome_trace_schema(self, tmp_path):
        spans = self._spans()
        path = str(tmp_path / "trace.json")
        assert write_chrome_trace(path, spans, metadata={"k": "v"}) == 2
        doc = json.loads(open(path).read())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2 and len(meta) >= 1
        for e in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid",
                    "args"} <= set(e)
        inner = next(e for e in complete if e["name"] == "inner")
        outer = next(e for e in complete if e["name"] == "outer")
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert doc["otherData"] == {"k": "v"}

    def test_prometheus_exposition(self):
        reg = get_registry()
        reg.counter("c_total", model="m").inc(3)
        reg.gauge("g").set(1.5)
        h = reg.histogram("h_ms", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(20.0)
        text = to_prometheus(merged_snapshot())
        assert '# TYPE c_total counter' in text
        assert 'c_total{model="m"} 3' in text
        assert "g 1.5" in text
        assert '# TYPE h_ms histogram' in text
        assert 'h_ms_bucket{le="1.0"} 1' in text
        assert 'h_ms_bucket{le="+Inf"} 2' in text
        assert "h_ms_sum 20.5" in text and "h_ms_count 2" in text
        assert "repro_subsystem_native_build_builds" in text
        # every non-comment line is "name{labels} value"
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            float(value)
            assert name


# ---------------------------------------------------------------------------
# compile + executor instrumentation, fidelity
# ---------------------------------------------------------------------------

class TestInstrumentation:
    def test_compile_and_exec_spans(self):
        graph = build_small_cnn(hw=8, channels=8)
        soc = DianaSoC(enable_analog=False)
        tracer = enable_tracing()
        model = compile_model(graph, soc, CompilerConfig())
        Executor(soc, exec_mode="fast").run(
            model, random_inputs(graph, seed=0))
        spans = disable_tracing().drain()
        names = {s.name for s in spans}
        assert "compile.model" in names
        assert "compile.tiler_solve" in names
        assert "compile.mapping" in names
        assert any(n.startswith("transform.") for n in names)
        steps = [s for s in spans if s.name == "exec.step"]
        assert len(steps) == len(model.steps)
        for s in steps:
            assert s.attrs["modeled_cycles"] > 0
            assert s.attrs["exec_mode"] == "fast"
        # everything in the compile belongs to one trace
        compile_root = next(s for s in spans if s.name == "compile.model")
        tiler = [s for s in spans if s.name == "compile.tiler_solve"]
        assert all(s.trace_id == compile_root.trace_id for s in tiler)
        assert tracer.drain() == []  # disable returned the same tracer

    def test_disabled_tracing_still_executes(self):
        graph = build_small_cnn(hw=8, channels=8)
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, CompilerConfig())
        result = Executor(soc, exec_mode="fast").run(
            model, random_inputs(graph, seed=0))
        assert result.output is not None
        assert get_tracer() is None

    def test_fidelity_report(self):
        graph = build_small_cnn(hw=8, channels=8)
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, CompilerConfig())
        report = profile_model(model, soc, exec_mode="fast", runs=2)
        assert report["schema"] == "repro-fidelity/1"
        assert report["steps"] == len(model.steps)
        for row in report["rows"]:
            assert row["samples"] == 2
            assert row["measured_ms"] >= 0.0
            assert row["modeled_ms"] > 0.0
        assert report["total_modeled_ms"] > 0
        table = format_fidelity(report)
        assert "TOTAL" in table and model.name in table
        # profiling restored the disabled state
        assert get_tracer() is None

    def test_fidelity_from_spans_min_aggregation(self):
        mk = dict(trace_id="t", parent_id=None, category="exec")
        spans = [
            Span(name="exec.step", span_id="a", t_start_ns=0,
                 t_end_ns=2_000_000,
                 attrs={"step": "s0", "target": "cpu",
                        "exec_mode": "fast", "modeled_cycles": 26_0000.0},
                 **mk),
            Span(name="exec.step", span_id="b", t_start_ns=0,
                 t_end_ns=1_000_000,
                 attrs={"step": "s0", "target": "cpu",
                        "exec_mode": "fast", "modeled_cycles": 26_0000.0},
                 **mk),
        ]
        report = fidelity_from_spans(spans, model="m", exec_mode="fast")
        (row,) = report["rows"]
        assert row["measured_ms"] == 1.0  # min across samples
        assert row["samples"] == 2


# ---------------------------------------------------------------------------
# fleet propagation (real worker processes)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def obs_artifact(tmp_path_factory):
    from repro.serve import pack_model

    graph = build_small_cnn(hw=8, channels=8)
    soc = DianaSoC(enable_analog=False)
    path = tmp_path_factory.mktemp("obs") / "small.dna"
    pack_model(graph, soc, CompilerConfig(), str(path))
    return str(path), random_inputs(graph, seed=0)


def _fleet_cfg(**kw) -> FleetConfig:
    kw.setdefault("workers", 1)
    kw.setdefault("tick_s", 0.005)
    kw.setdefault("restart_base_s", 0.01)
    return FleetConfig(**kw)


class TestFleetPropagation:
    def test_request_ids_and_span_tree_across_pipe(self, obs_artifact):
        path, feeds = obs_artifact
        tracer = enable_tracing()
        with ServingFleet(_fleet_cfg()) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            futs = [fleet.submit(key, feeds) for _ in range(3)]
            for fut in futs:
                fut.result(30)
        spans = disable_tracing().drain()
        assert [f.request_id for f in futs] == \
            ["m#000001", "m#000002", "m#000003"]
        roots = {s.attrs["request_id"]: s for s in spans
                 if s.name == "fleet.request"}
        assert set(roots) == {f.request_id for f in futs}
        by_id = {s.span_id: s for s in spans}
        parent_pid = roots["m#000001"].pid
        for rid, root in roots.items():
            tree = [s for s in spans
                    if s.trace_id == root.trace_id and s is not root]
            names = {s.name for s in tree}
            assert {"fleet.queue_wait", "worker.execute",
                    "exec.step"} <= names
            # worker spans really crossed a process boundary
            worker_exec = next(s for s in tree
                               if s.name == "worker.execute")
            assert worker_exec.pid != parent_pid
            assert worker_exec.attrs["request_id"] == rid
            # every span walks up to this request's root (parent ids
            # survived the pickle round trip)
            for s in tree:
                node = s
                while node.parent_id is not None:
                    node = by_id[node.parent_id]
                assert node is root
            assert root.attrs["status"] == "ok"

    def test_untraced_fleet_sends_no_spans(self, obs_artifact):
        path, feeds = obs_artifact
        assert get_tracer() is None
        with ServingFleet(_fleet_cfg()) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            out = fleet.infer(key, feeds, timeout=30)
        assert out is not None

    def test_rejection_carries_request_id(self, obs_artifact):
        path, feeds = obs_artifact
        plan = FaultPlan(rules=(FaultRule(kind="queue_full", rate=1.0),))
        with ServingFleet(_fleet_cfg(faults=plan)) as fleet:
            key = fleet.add_deployment(path, key="m")
            with pytest.raises(ServingOverloadError) as exc_info:
                fleet.submit(key, feeds)
        exc = exc_info.value
        assert exc.request_id == "m#000001"
        assert "[request m#000001]" in str(exc)

    def test_worker_error_carries_request_id(self, obs_artifact):
        path, feeds = obs_artifact
        plan = FaultPlan(rules=(FaultRule(kind="exec_error", rate=1.0),))
        cfg = _fleet_cfg(faults=plan, retry=RetryPolicy(max_attempts=1))
        with ServingFleet(cfg) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            fut = fleet.submit(key, feeds)
            with pytest.raises(ServingError) as exc_info:
                fut.result(30)
        exc = exc_info.value
        assert exc.request_id == fut.request_id
        assert f"[request {fut.request_id}]" in str(exc)

    def test_fleet_metrics_published(self, obs_artifact):
        path, feeds = obs_artifact
        with ServingFleet(_fleet_cfg()) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            fleet.infer(key, feeds, timeout=30)
        snap = get_registry().snapshot()
        assert snap["counters"]['fleet_accepted_total{deployment="m"}'] == 1
        assert snap["counters"]['fleet_completed_total{deployment="m"}'] == 1
        hist = snap["histograms"][
            'fleet_request_ms{deployment="m",outcome="ok"}']
        assert hist["count"] == 1 and hist["sum"] > 0

    def test_breaker_transitions_surface_everywhere(self):
        reg = get_registry()
        events_seen = []
        breaker = CircuitBreaker(
            failure_threshold=1, recovery_s=60.0, name="m",
            on_transition=lambda frm, to: events_seen.append((frm, to)))
        breaker.record_failure()
        assert events_seen == [("closed", "open")]
        assert breaker.transitions == [("closed", "open")]
        # and via the fleet's wiring the same callback publishes events
        from repro.serve.fleet import _Deployment
        dep = _Deployment("m", "/nope", FleetConfig(workers=0), 0)
        for _ in range(FleetConfig().breaker_failures):
            dep.breaker.record_failure()
        assert dep.breaker.state == "open"
        evs = reg.events("breaker_transition")
        assert evs and evs[-1]["frm"] == "closed" and \
            evs[-1]["to"] == "open"
        assert reg.counter("fleet_breaker_transitions_total",
                           deployment="m").value == 1

    def test_stats_surface_backoff_and_trips(self, obs_artifact):
        path, feeds = obs_artifact
        with ServingFleet(_fleet_cfg()) as fleet:
            key = fleet.add_deployment(path, key="m")
            assert fleet.wait_ready(key, timeout=60)
            stats = fleet.stats()[key]
            assert stats["breaker_trips"] == 0
            assert all("backoff_streak" in w for w in stats["workers"])
            table = fleet.format_stats()
        assert "trips" in table


# ---------------------------------------------------------------------------
# batcher/server metrics + loadgen ledger
# ---------------------------------------------------------------------------

class TestServingMetrics:
    def test_batcher_publishes_metrics_and_request_ids(self):
        from repro.serve import InferenceServer

        graph = build_small_cnn(hw=8, channels=8)
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, CompilerConfig())
        feeds = random_inputs(graph, seed=0)
        with InferenceServer(max_wait_ms=0.0) as server:
            key = server.register_model(model, soc)
            fut = server.submit(key, feeds)
            fut.result(30)
            assert fut.request_id == f"{key}#000001"
            with pytest.raises(ServingError) as exc_info:
                server.submit(key, {})  # missing input
        assert exc_info.value.code == "S-INPUT"
        assert exc_info.value.request_id == f"{key}#000002"
        assert f"[request {key}#000002]" in str(exc_info.value)
        snap = get_registry().snapshot()
        assert snap["counters"][
            f'batcher_requests_total{{model="{key}"}}'] == 1
        assert snap["counters"]["server_models_registered_total"] == 1
        assert snap["histograms"][
            f'batcher_wall_ms{{model="{key}"}}']["count"] == 1
        assert any(e["name"] == "model_registered"
                   for e in snap["events"])

    def test_loadgen_ledger(self):
        from repro.eval.loadgen import (
            LEDGER_CAP, LoadReport, _count, format_load_report,
        )

        report = LoadReport()
        for i in range(LEDGER_CAP + 3):
            _count(report, ServingError(
                f"boom [request m#{i:06d}]", code="S-EXEC",
                request_id=f"m#{i:06d}"))
        _count(report, ServingError("no id attached", code="S-CRASH"))
        assert report.errors_by_code == {"S-EXEC": LEDGER_CAP + 3,
                                         "S-CRASH": 1}
        assert len(report.request_ids_by_code["S-EXEC"]) == LEDGER_CAP
        assert "S-CRASH" not in report.request_ids_by_code  # no id, no entry
        d = report.to_dict()
        assert d["request_ids_by_code"]["S-EXEC"][0] == "m#000000"
        text = format_load_report(report)
        assert "S-EXEC: m#000000" in text and "more)" in text


class TestCLI:
    def test_trace_and_stats_commands(self, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "t.json")
        assert main(["trace", "dscnn", "--exec-mode", "fast",
                     "-o", out]) == 0
        doc = json.loads(open(out).read())
        names = {e["name"] for e in doc["traceEvents"]}
        assert "compile.model" in names and "exec.step" in names
        assert main(["stats", "--json"]) == 0
        assert main(["stats", "--prom"]) == 0
        assert main(["stats"]) == 0
