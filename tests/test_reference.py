"""Reference interpreter tests."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.ir import GraphBuilder
from repro.runtime import random_inputs, run_reference
from helpers import build_small_cnn


class TestRunReference:
    def test_deterministic(self):
        g = build_small_cnn()
        feeds = random_inputs(g, seed=1)
        a = run_reference(g, feeds)
        b = run_reference(g, feeds)
        np.testing.assert_array_equal(a, b)

    def test_missing_input_raises(self):
        g = build_small_cnn()
        with pytest.raises(SimulationError, match="missing input"):
            run_reference(g, {})

    def test_wrong_shape_raises(self):
        g = build_small_cnn()
        with pytest.raises(SimulationError, match="expected shape"):
            run_reference(g, {"data": np.zeros((1, 3, 8, 8), np.int8)})

    def test_output_dtype_matches_graph(self):
        g = build_small_cnn()
        out = run_reference(g, random_inputs(g))
        assert out.dtype == np.float32  # softmax output

    def test_int8_outputs_in_range(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4, 8, 8), "int8")
        g = b.finish(b.conv2d_requant(x, 8, kernel=3, padding=(1, 1)))
        out = run_reference(g, random_inputs(g, seed=4))
        assert out.dtype == np.int8
        assert out.min() >= 0  # relu applied

    def test_random_inputs_respects_dtype(self):
        b = GraphBuilder()
        x = b.input("x", (1, 100), "int7")
        g = b.finish(b.call("nn.relu", [x]))
        feeds = random_inputs(g, seed=0)
        assert feeds["x"].min() >= -64 and feeds["x"].max() <= 63

    def test_multi_input_graph(self):
        b = GraphBuilder()
        x = b.input("x", (1, 8, 4, 4), "int8")
        y = b.input("y", (1, 8, 4, 4), "int8")
        g = b.finish(b.add_requant(x, y, shift=1))
        feeds = random_inputs(g, seed=0)
        out = run_reference(g, feeds)
        assert out.shape == (1, 8, 4, 4)

    def test_composite_evaluates_like_inline(self):
        from repro.patterns import default_specs, partition
        g = build_small_cnn()
        pg = partition(g, default_specs())
        feeds = random_inputs(g, seed=9)
        np.testing.assert_array_equal(
            run_reference(g, feeds), run_reference(pg, feeds))
