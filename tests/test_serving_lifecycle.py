"""Serving-lifecycle bug sweep: stop/submit races, LRU pinning,
shutdown ordering.

Regression tests for the PR-4 lifecycle edge cases:

* a ``DynamicBatcher.submit`` racing ``stop()`` must either be rejected
  with :class:`ServingError` or execute — never be dropped behind the
  stop sentinel with its future hanging forever;
* LRU eviction must pin deployments with in-flight requests instead of
  draining their batcher against an unregistered model;
* ``InferenceServer.shutdown()`` while a load generator is mid-flight
  must drain: every accepted future resolves exactly once.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import CompilerConfig, compile_model
from repro.errors import ServingError
from repro.runtime import Executor, random_inputs, run_reference
from repro.serve import InferenceServer
from repro.serve.batcher import DynamicBatcher, InferenceFuture
from repro.soc import DianaSoC

from helpers import build_small_cnn


@pytest.fixture(scope="module")
def small_deployment():
    graph = build_small_cnn(hw=8, channels=8)
    soc = DianaSoC(enable_analog=False)
    compiled = compile_model(graph, soc, CompilerConfig())
    feeds = random_inputs(graph, seed=0)
    golden = np.asarray(run_reference(graph, feeds))
    return compiled, soc, feeds, golden


class TestBatcherStopRace:
    def test_post_stop_submit_rejected(self, small_deployment):
        compiled, soc, feeds, _ = small_deployment
        b = DynamicBatcher(compiled, Executor(soc, exec_mode="fast"))
        b.stop(wait=True)
        with pytest.raises(ServingError, match="shut down"):
            b.submit(feeds)

    def test_racing_submitter_never_hangs(self, small_deployment):
        """Hammer submit from several threads while stop() lands in the
        middle: every accepted future must resolve (the old code could
        enqueue a request behind the _STOP sentinel and drop it)."""
        compiled, soc, feeds, golden = small_deployment
        for round_ in range(5):
            b = DynamicBatcher(compiled, Executor(soc, exec_mode="fast"),
                               max_batch_size=4, max_wait_ms=0.5)
            accepted: list = []
            accepted_lock = threading.Lock()
            go = threading.Event()

            def submitter():
                go.wait()
                while True:
                    try:
                        fut = b.submit(feeds)
                    except ServingError:
                        return
                    with accepted_lock:
                        accepted.append(fut)

            threads = [threading.Thread(target=submitter)
                       for _ in range(4)]
            for t in threads:
                t.start()
            go.set()
            time.sleep(0.02 + 0.01 * round_)  # let the race develop
            b.stop(wait=True, timeout=60)
            for t in threads:
                t.join(30)
            assert accepted, "race test submitted nothing"
            for fut in accepted:
                # a dropped request would block forever; the bound is
                # generous because the batch may still be executing
                out = fut.result(timeout=30)
                assert np.array_equal(out, golden)
            assert b.pending == 0
            assert b.stats().requests == len(accepted)

    def test_stop_idempotent_and_concurrent(self, small_deployment):
        compiled, soc, feeds, _ = small_deployment
        b = DynamicBatcher(compiled, Executor(soc, exec_mode="fast"))
        fut = b.submit(feeds)
        threads = [threading.Thread(target=b.stop) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        b.stop(wait=True)
        assert fut.result(10) is not None


class TestLruPinning:
    def _server(self, **kw):
        return InferenceServer(capacity=1, max_batch_size=8, **kw)

    def test_busy_deployment_is_pinned(self, small_deployment):
        """Registering past capacity while the LRU model has queued
        requests must NOT evict it: the registry temporarily exceeds
        capacity and reaps once the queue drains."""
        compiled, soc, feeds, golden = small_deployment
        other = compile_model(build_small_cnn(seed=7, hw=8, channels=4),
                              soc, CompilerConfig())
        # a long linger keeps the first request in-flight while we
        # register over capacity
        with self._server(max_wait_ms=400.0) as srv:
            k1 = srv.register_model(compiled, soc)
            fut = srv.submit(k1, feeds)
            assert srv._lookup(k1, touch=False).batcher.pending == 1
            k2 = srv.register_model(other, soc)
            # over capacity, but the busy model survived
            assert set(srv.models()) == {k1, k2}
            assert np.array_equal(fut.result(30), golden)
            # once drained, the next submit reaps the idle overflow
            deadline = time.monotonic() + 10
            while (srv._lookup(k1, touch=False).batcher.pending
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            srv.submit(k2, random_inputs(other.graph, seed=1)).result(30)
            assert srv.models() == [k2]

    def test_idle_lru_still_evicted(self, small_deployment):
        compiled, soc, feeds, _ = small_deployment
        other = compile_model(build_small_cnn(seed=7, hw=8, channels=4),
                              soc, CompilerConfig())
        with self._server(max_wait_ms=0.0) as srv:
            k1 = srv.register_model(compiled, soc)
            fut = srv.submit(k1, feeds)
            fut.result(30)  # drain: k1 now idle
            deadline = time.monotonic() + 10
            while (srv._lookup(k1, touch=False).batcher.pending
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            k2 = srv.register_model(other, soc)
            assert srv.models() == [k2]
            with pytest.raises(ServingError, match="evicted"):
                srv.submit(k1, feeds)


class TestShutdownOrdering:
    def test_shutdown_mid_flight_drains_exactly_once(
            self, small_deployment, monkeypatch):
        """Clients submit in a loop while the server shuts down: every
        accepted future resolves exactly once (no losses, no double
        resolution), and post-shutdown submits raise."""
        compiled, soc, feeds, golden = small_deployment

        resolutions: dict = {}
        res_lock = threading.Lock()
        orig_resolve = InferenceFuture._resolve
        orig_fail = InferenceFuture._fail

        def counting_resolve(self, output):
            with res_lock:
                resolutions[id(self)] = resolutions.get(id(self), 0) + 1
            orig_resolve(self, output)

        def counting_fail(self, error):
            with res_lock:
                resolutions[id(self)] = resolutions.get(id(self), 0) + 1
            orig_fail(self, error)

        monkeypatch.setattr(InferenceFuture, "_resolve", counting_resolve)
        monkeypatch.setattr(InferenceFuture, "_fail", counting_fail)

        srv = InferenceServer(max_batch_size=4, max_wait_ms=1.0)
        key = srv.register_model(compiled, soc)
        accepted: list = []
        accepted_lock = threading.Lock()
        rejected = threading.Event()

        def client():
            while True:
                try:
                    fut = srv.submit(key, feeds)
                except ServingError:
                    rejected.set()
                    return
                with accepted_lock:
                    accepted.append(fut)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.05)
        srv.shutdown(wait=True)
        for t in threads:
            t.join(30)

        assert accepted and rejected.is_set()
        for fut in accepted:
            assert np.array_equal(fut.result(timeout=30), golden)
        counts = [resolutions.get(id(f), 0) for f in accepted]
        assert counts == [1] * len(accepted), "lost/double-resolved future"
        with pytest.raises(ServingError, match="shut down"):
            srv.submit(key, feeds)

    def test_shutdown_races_register_and_submit(self, small_deployment):
        """Shutdown lands while several threads register new models and
        several submit: no deployment leaks past shutdown (the registry
        empties, every batcher stops) and every accepted future
        resolves or fails with a ServingError — none hangs."""
        compiled, soc, feeds, golden = small_deployment
        variants = [compile_model(
            build_small_cnn(seed=10 + i, hw=8, channels=4), soc,
            CompilerConfig()) for i in range(3)]

        for round_ in range(3):
            srv = InferenceServer(capacity=8, max_batch_size=4,
                                  max_wait_ms=1.0)
            key = srv.register_model(compiled, soc)
            accepted: list = []
            lock = threading.Lock()
            batchers: list = []
            go = threading.Event()

            def registrar(idx: int):
                go.wait()
                while True:
                    try:
                        k = srv.register_model(variants[idx], soc,
                                               fingerprint=f"r{round_}")
                        with lock:
                            served = srv._lookup(k, touch=False)
                            batchers.append(served.batcher)
                    except ServingError:
                        return

            def submitter():
                go.wait()
                while True:
                    try:
                        fut = srv.submit(key, feeds)
                    except ServingError:
                        return
                    with lock:
                        accepted.append(fut)

            threads = ([threading.Thread(target=registrar, args=(i,))
                        for i in range(len(variants))]
                       + [threading.Thread(target=submitter)
                          for _ in range(3)])
            for t in threads:
                t.start()
            go.set()
            time.sleep(0.02 + 0.01 * round_)
            reports = srv.shutdown(wait=True)
            for t in threads:
                t.join(30)
            assert not any(t.is_alive() for t in threads)
            # no deployment leaks: registry empty, every batcher the
            # registrars ever created is stopped (drained or evicted)
            assert srv.models() == []
            deadline = time.monotonic() + 30
            with lock:
                snapshot = list(batchers)
            for b in snapshot:
                while not b.stopped and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert b.stopped
                assert b.pending == 0
            # every accepted future resolved: output or serving error
            assert accepted, "race test submitted nothing"
            for fut in accepted:
                try:
                    out = fut.result(timeout=30)
                except ServingError:
                    continue
                assert np.array_equal(out, golden)
            # shutdown accounted its drains exactly
            for report in reports.values():
                assert report.unresolved == 0
                assert (report.drained + report.failed
                        == report.pending_at_stop)


class TestDrainReportAndTimeouts:
    def test_result_wait_timeout_is_typed(self, small_deployment):
        """InferenceFuture.result(timeout=) on a still-pending future
        raises ServingTimeoutError carrying the model key and elapsed
        wall time — not a bare queue.Empty or generic error."""
        from repro.errors import ServingTimeoutError

        compiled, soc, feeds, _ = small_deployment
        # a huge linger guarantees the batch has not executed yet
        b = DynamicBatcher(compiled, Executor(soc, exec_mode="fast"),
                           max_batch_size=64, max_wait_ms=10_000.0,
                           name="slowpoke")
        try:
            fut = b.submit(feeds)
            with pytest.raises(ServingTimeoutError) as info:
                fut.result(timeout=0.05)
            assert info.value.model == "slowpoke"
            assert info.value.elapsed_s >= 0.05
            assert info.value.code == "S-TIMEOUT"
        finally:
            b.stop(wait=True)

    def test_stop_reports_drained_requests(self, small_deployment):
        compiled, soc, feeds, _ = small_deployment
        b = DynamicBatcher(compiled, Executor(soc, exec_mode="fast"),
                           max_batch_size=4, max_wait_ms=50.0)
        futs = [b.submit(feeds) for _ in range(5)]
        report = b.stop(wait=True, timeout=60)
        assert report.pending_at_stop == 5
        assert report.drained == 5
        assert report.failed == 0
        assert report.unresolved == 0
        assert "drained" in str(report)
        for fut in futs:
            assert fut.result(timeout=0) is not None

    def test_server_shutdown_returns_reports(self, small_deployment):
        compiled, soc, feeds, _ = small_deployment
        with InferenceServer(max_batch_size=4, max_wait_ms=50.0) as srv:
            key = srv.register_model(compiled, soc)
            futs = [srv.submit(key, feeds) for _ in range(3)]
            reports = srv.shutdown(wait=True)
            assert set(reports) == {key}
            assert reports[key].pending_at_stop == 3
            assert reports[key].drained == 3
            for fut in futs:
                assert fut.result(timeout=0) is not None
            assert srv.shutdown() == {}  # idempotent, second call empty
