"""Every shipped example must run cleanly as a script."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    proc = subprocess.run([sys.executable, str(path)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"
