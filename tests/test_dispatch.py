"""Dispatcher tests: rules, selection, mixed policy via dtypes."""

import pytest

from repro.dispatch import assign_targets, dispatch_summary, eligible_targets
from repro.dory import make_conv_spec, make_dense_spec
from repro.frontend.modelzoo import dscnn, resnet8
from repro.patterns import default_specs, partition
from repro.soc import DianaSoC


def dispatched(graph, soc):
    pg = partition(graph, default_specs())
    return assign_targets(pg, soc)


class TestEligibility:
    def test_int8_conv_digital_only(self):
        soc = DianaSoC()
        spec = make_conv_spec("c", 8, 8, 8, 8, padding=(1, 1))
        elig = eligible_targets(spec, soc)
        assert elig["soc.digital"] == ""
        assert elig["soc.analog"] != ""

    def test_ternary_conv_analog_only(self):
        soc = DianaSoC()
        spec = make_conv_spec("c", 8, 8, 8, 8, padding=(1, 1),
                              weight_dtype="ternary")
        elig = eligible_targets(spec, soc)
        assert elig["soc.analog"] == ""
        assert elig["soc.digital"] != ""

    def test_add_supported_by_both(self):
        soc = DianaSoC()
        from repro.dory.layer_spec import LayerSpec
        spec = LayerSpec(name="add", kind="add", in_channels=8,
                         out_channels=8, iy=4, ix=4, oy=4, ox=4)
        elig = eligible_targets(spec, soc)
        assert elig["soc.digital"] == "" and elig["soc.analog"] == ""


class TestAssignTargets:
    def test_int8_model_goes_digital(self):
        soc = DianaSoC()
        g, decisions = dispatched(resnet8(precision="int8"), soc)
        targets = {c.target for c in g.composites()}
        assert targets == {"soc.digital"}

    def test_ternary_model_dw_falls_back_to_cpu(self):
        soc = DianaSoC(enable_digital=False)
        g, decisions = dispatched(dscnn(precision="ternary"), soc)
        by_target = {}
        for c in g.composites():
            by_target.setdefault(c.target, 0)
            by_target[c.target] += 1
        assert by_target.get("cpu", 0) == 4      # the 4 DW layers
        assert by_target["soc.analog"] >= 6

    def test_mixed_model_splits(self):
        soc = DianaSoC()
        g, _ = dispatched(resnet8(precision="mixed"), soc)
        targets = [c.target for c in g.composites()
                   if c.pattern_name == "htvm.qconv2d"]
        assert "soc.digital" in targets and "soc.analog" in targets
        # first eligible conv layer is digital (mixed policy)
        assert targets[0] == "soc.digital"

    def test_no_accelerators_all_cpu(self):
        soc = DianaSoC(enable_digital=False, enable_analog=False)
        g, decisions = dispatched(resnet8(), soc)
        assert all(c.target == "cpu" for c in g.composites())

    def test_decisions_record_rejections(self):
        soc = DianaSoC()
        _, decisions = dispatched(dscnn(precision="ternary"), soc)
        dw = [d for d in decisions
              if d.rejections.get("soc.analog", "").startswith("kind dwconv2d")]
        assert len(dw) == 4, "expected 4 DW rejection records"

    def test_summary_format(self):
        soc = DianaSoC()
        _, decisions = dispatched(resnet8(), soc)
        text = dispatch_summary(decisions)
        assert "soc.digital" in text
        assert "layer" in text

    def test_custom_prefer_override(self):
        soc = DianaSoC()
        pg = partition(resnet8(), default_specs())
        g, _ = assign_targets(pg, soc, prefer=lambda spec, ok: "cpu"
                              if spec.kind == "add" else ok[0])
        adds = [c for c in g.composites() if c.pattern_name == "htvm.qadd"]
        assert all(c.target == "cpu" for c in adds)

    def test_dispatch_preserves_semantics(self):
        import numpy as np
        from repro.runtime import random_inputs, run_reference
        soc = DianaSoC()
        g0 = resnet8(precision="mixed")
        g, _ = dispatched(g0, soc)
        feeds = random_inputs(g0, seed=1)
        np.testing.assert_array_equal(
            run_reference(g0, feeds), run_reference(g, feeds))
