"""Executable depth-first schedules: planning, compile, execute, serve.

Covers the promotion of depth-first from analysis to a compilation
product: chain discovery over compiled steps, budget-driven patch-grid
planning, the ``exec_mode="depthfirst"`` runtime path (bit-exact vs.
layer-by-layer on the whole zoo x Table I grid), recompute-priced
cycles, artifact round-trips, and the out-of-memory rescue of
``depthfirst="auto"``. Also holds the brute-force halo oracle — the
regression test for the stride-2 last-row patch sizing bug.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CompilerConfig, compile_model
from repro.core.program import AccelStep
from repro.errors import OutOfMemoryError
from repro.eval.depthfirst import depthfirst_report
from repro.eval.harness import CONFIGS, deploy
from repro.extensions.depthfirst import (
    _backward_ranges, analyze_depth_first, chain_runs_from_steps,
    chain_savings, conv_chains_from_graph, layer_by_layer_span_bytes,
    plan_chain_grid, plan_depthfirst_steps,
)
from repro.frontend.modelzoo import MLPERF_TINY
from repro.mapping import analyze_mapping, chain_candidate, prepare_graph
from repro.runtime import Executor, random_inputs, run_reference
from repro.serve import load_artifact, save_artifact
from repro.soc import DEFAULT_PARAMS, DianaSoC

from helpers import build_small_cnn
from test_depthfirst_exec import build_chain


def _compile_pair(model, config, depthfirst="on", l1_budget=16 * 1024):
    precision, soc_kwargs, cfg = CONFIGS[config]
    cfg = cfg.with_overrides(l1_budget=l1_budget, check_l2=False)
    graph = MLPERF_TINY[model](precision=precision)
    soc = DianaSoC(**soc_kwargs)
    fused = compile_model(graph, soc, cfg.with_overrides(
        depthfirst=depthfirst))
    base = compile_model(graph, soc, cfg)
    return graph, soc, base, fused


class TestHaloOracle:
    """Brute-force oracle for the per-layer patch sizing.

    Regression for the stride-2 last-row bug: the old code sized patch
    rows from the *first* patch (``(0, ceil(oy/p))``), but boundary
    patches of strided layers whose output patch does not divide the
    output height need one more halo row. The oracle derives every
    layer's worst-case rows/cols by walking individual output rows —
    no interval arithmetic shared with the implementation.
    """

    @staticmethod
    def _oracle_rows_cols(chain, grid):
        py, px = grid
        last = chain[-1]
        rows = [0] * len(chain)
        cols = [0] * len(chain)
        for iy in range(py):
            for ix in range(px):
                y = set(range((last.oy * iy) // py,
                              (last.oy * (iy + 1)) // py))
                x = set(range((last.ox * ix) // px,
                              (last.ox * (ix + 1)) // px))
                if not y or not x:
                    continue
                for j in range(len(chain) - 1, -1, -1):
                    spec = chain[j]
                    rows[j] = max(rows[j], len(y))
                    cols[j] = max(cols[j], len(x))
                    if j == 0:
                        break
                    ny, nx = set(), set()
                    for r in y:
                        lo = max(0, r * spec.strides[0] - spec.padding[0])
                        hi = min(spec.iy, r * spec.strides[0]
                                 - spec.padding[0] + spec.fy)
                        ny.update(range(lo, hi))
                    for c in x:
                        lo = max(0, c * spec.strides[1] - spec.padding[1])
                        hi = min(spec.ix, c * spec.strides[1]
                                 - spec.padding[1] + spec.fx)
                        nx.update(range(lo, hi))
                    y, x = ny, nx
        return rows, cols

    def test_stride2_last_row_regression(self):
        """oy=5 split in 2: the second patch needs more input rows than
        the first — the first-patch estimate undersizes the slab."""
        from repro.dory import make_conv_spec
        c0 = make_conv_spec("c0", 4, 8, 11, 11, strides=(2, 2),
                            padding=(1, 1))
        c1 = make_conv_spec("c1", 8, 8, 6, 6, padding=(1, 1))
        assert c1.oy == 6
        plan = analyze_depth_first([c0, c1], (4, 1))
        rows, cols = self._oracle_rows_cols([c0, c1], (4, 1))
        assert plan.per_layer_patch_rows == rows
        assert plan.per_layer_patch_cols == cols
        # the old first-patch estimate is provably short here
        first_patch = _backward_ranges(
            [c0, c1], (0, -(-c1.oy // 4)), (0, c1.ox))
        assert first_patch[0][0][1] - first_patch[0][0][0] < rows[0]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2 ** 30), st.integers(1, 3),
           st.integers(1, 5), st.integers(1, 5), st.integers(0, 7))
    def test_property_oracle_over_random_strided_chains(
            self, seed, stages, py, px, dw_mask):
        chain = build_chain(seed, stages, depthwise_mask=dw_mask)
        final = chain[-1]
        grid = (min(py, final.oy), min(px, final.ox))
        plan = analyze_depth_first(chain, grid)
        rows, cols = self._oracle_rows_cols(chain, grid)
        assert plan.per_layer_patch_rows == rows
        assert plan.per_layer_patch_cols == cols
        assert plan.per_layer_patch_bytes == [
            s.out_channels * r * c
            for s, r, c in zip(chain, rows, cols)]


class TestPlanning:
    def test_chain_runs_respect_consumers_and_geometry(self):
        graph, soc, base, _ = _compile_pair("resnet", "digital")
        runs = chain_runs_from_steps(base.steps, base.output_name)
        for run in runs:
            assert len(run) >= 2
            assert run == list(range(run[0], run[-1] + 1))
            for idx in run:
                assert isinstance(base.steps[idx], AccelStep)
        # resnet's residual blocks close through their adds
        kinds = [[base.steps[i].spec.kind for i in run] for run in runs]
        assert ["conv2d", "conv2d", "add"] in kinds

    def test_grid_planner_respects_budget_and_gate(self):
        chain = build_chain(3, 3, input_hw=32, input_c=8)
        plan = plan_chain_grid(chain, budget_bytes=1 << 30, mode="on")
        assert plan is not None
        assert chain_savings(chain, plan) > 0
        assert plan.peak_bytes < layer_by_layer_span_bytes(chain)
        # an impossible budget: "auto" refuses, "on" degrades gracefully
        assert plan_chain_grid(chain, budget_bytes=1, mode="auto") is None

    def test_auto_only_engages_under_pressure(self):
        graph, soc, base, _ = _compile_pair("mobilenet", "digital")
        chains = plan_depthfirst_steps(
            base.steps, base.output_name, budget_bytes=1 << 30,
            mode="auto", arena_bytes=base.memory_plan.arena_bytes)
        assert chains == []  # plenty of room: no rescue needed
        chains = plan_depthfirst_steps(
            base.steps, base.output_name,
            budget_bytes=base.memory_plan.arena_bytes - 1, mode="auto",
            arena_bytes=base.memory_plan.arena_bytes)
        assert chains  # pressure: chains adopted

    def test_on_mode_shrinks_the_planned_arena(self):
        for model in ("resnet", "mobilenet"):
            _, _, base, fused = _compile_pair(model, "digital")
            assert fused.depthfirst_chains
            assert (fused.memory_plan.arena_bytes
                    < base.memory_plan.arena_bytes)
            for c in fused.depthfirst_chains:
                assert c.length >= 2
                assert c.recompute_factor >= 1.0
                interiors = [s.output_name
                             for s in fused.steps[c.start:c.stop - 1]]
                for name, slab in zip(interiors, c.per_layer_patch_bytes):
                    assert fused.memory_plan.sizes[name] <= slab

    def test_conv_chains_from_graph_finds_mobilenet_stages(self):
        graph = prepare_graph(MLPERF_TINY["mobilenet"](precision="int8"))
        chains = conv_chains_from_graph(graph)
        assert chains and all(len(c) >= 2 for c in chains)


class TestExecution:
    @pytest.mark.parametrize("model", sorted(MLPERF_TINY))
    @pytest.mark.parametrize("config", list(CONFIGS))
    def test_zoo_grid_bit_exact(self, model, config):
        """Acceptance gate: depth-first equals layer-by-layer on every
        zoo model at every Table I configuration."""
        precision, soc_kwargs, cfg = CONFIGS[config]
        graph = MLPERF_TINY[model](precision=precision)
        soc = DianaSoC(**soc_kwargs)
        cfg = cfg.with_overrides(check_l2=False, depthfirst="on")
        fused = compile_model(graph, soc, cfg)
        feeds = random_inputs(graph, seed=7)
        try:
            df = Executor(soc, exec_mode="depthfirst").run(fused, feeds)
            fast = Executor(soc, exec_mode="fast").run(fused, feeds)
        except OutOfMemoryError:
            pytest.skip(f"{model}/{config} does not fit L2 (Table I OoM)")
        assert np.array_equal(df.output, fast.output)
        assert np.array_equal(
            df.output, np.asarray(run_reference(fused.graph, feeds)))

    def test_cycles_price_the_recompute(self):
        _, soc, base, fused = _compile_pair("resnet", "digital")
        feeds = random_inputs(base.graph, seed=2)
        fast = Executor(soc, exec_mode="fast").run(base, feeds)
        df = Executor(soc, exec_mode="depthfirst").run(fused, feeds)
        assert df.total_cycles > fast.total_cycles
        # ...but bounded by the worst chain's recompute factor
        worst = max(c.recompute_factor for c in fused.depthfirst_chains)
        assert df.total_cycles < fast.total_cycles * worst * 1.05

    def test_depthfirst_mode_without_chains_equals_fast(self):
        _, soc, base, _ = _compile_pair("toyadmos", "digital")
        assert not base.depthfirst_chains
        feeds = random_inputs(base.graph, seed=1)
        df = Executor(soc, exec_mode="depthfirst").run(base, feeds)
        fast = Executor(soc, exec_mode="fast").run(base, feeds)
        assert np.array_equal(df.output, fast.output)
        assert df.total_cycles == fast.total_cycles
        assert df.l2_peak_bytes == fast.l2_peak_bytes

    def test_executed_l2_peak_shrinks(self):
        for model in ("resnet", "mobilenet"):
            _, soc, base, fused = _compile_pair(model, "digital")
            feeds = random_inputs(base.graph, seed=3)
            fast = Executor(soc, exec_mode="fast").run(base, feeds)
            df = Executor(soc, exec_mode="depthfirst").run(fused, feeds)
            assert df.l2_peak_bytes < fast.l2_peak_bytes

    def test_batched_depthfirst_matches_per_sample(self):
        _, soc, _, fused = _compile_pair("resnet", "digital")
        ex = Executor(soc, exec_mode="depthfirst")
        feeds1 = random_inputs(fused.graph, seed=4)
        single = ex.run(fused, feeds1)
        batched = ex.run_batch(fused, {
            name: np.concatenate([arr, arr], axis=0)
            for name, arr in feeds1.items()})
        assert batched.batch == 2
        assert np.array_equal(batched.outputs[0:1], single.output)
        assert np.array_equal(batched.outputs[1:2], single.output)
        assert batched.perf.total_cycles == single.total_cycles

    def test_residual_chain_on_small_cnn(self, digital_soc):
        """conv->conv->add fusion on a non-zoo graph, via deploy-level
        compile: the skip operand is read patch-wise."""
        graph = build_small_cnn()
        cfg = CompilerConfig(depthfirst="on", check_l2=False)
        fused = compile_model(graph, digital_soc, cfg)
        feeds = random_inputs(graph, seed=9)
        df = Executor(digital_soc, exec_mode="depthfirst").run(fused, feeds)
        assert np.array_equal(
            df.output, np.asarray(run_reference(fused.graph, feeds)))


class TestOomRescue:
    def test_auto_rescues_mobilenet_at_tight_l2(self):
        params = dataclasses.replace(DEFAULT_PARAMS, l2_bytes=320 * 1024)
        soc = DianaSoC(params=params, enable_analog=False)
        graph = MLPERF_TINY["mobilenet"](precision="int8")
        with pytest.raises(OutOfMemoryError):
            compile_model(graph, soc, CompilerConfig())
        fused = compile_model(graph, soc, CompilerConfig(depthfirst="auto"))
        assert fused.depthfirst_chains
        assert fused.l2_required_bytes <= params.l2_bytes
        feeds = random_inputs(graph, seed=5)
        df = Executor(soc, exec_mode="depthfirst").run(fused, feeds)
        assert np.array_equal(
            df.output, np.asarray(run_reference(fused.graph, feeds)))
        assert df.l2_peak_bytes <= params.l2_bytes

    def test_rescued_model_runs_in_every_exec_mode(self):
        """Chains are part of the program: a rescued deployment must
        execute under its budget in fast and tiled modes too (a served
        artifact defaults to the fast executor)."""
        params = dataclasses.replace(DEFAULT_PARAMS, l2_bytes=320 * 1024)
        soc = DianaSoC(params=params, enable_analog=False)
        graph = MLPERF_TINY["mobilenet"](precision="int8")
        fused = compile_model(graph, soc, CompilerConfig(depthfirst="auto"))
        feeds = random_inputs(graph, seed=8)
        golden = np.asarray(run_reference(fused.graph, feeds))
        runs = {mode: Executor(soc, exec_mode=mode).run(fused, feeds)
                for mode in ("fast", "tiled", "depthfirst")}
        for mode, res in runs.items():
            assert np.array_equal(res.output, golden), mode
            assert res.l2_peak_bytes <= params.l2_bytes, mode
        assert (runs["fast"].total_cycles
                == runs["depthfirst"].total_cycles)

    def test_report_handles_base_oom(self):
        rep = depthfirst_report(
            "mobilenet", "digital", mode="auto",
            params=dataclasses.replace(DEFAULT_PARAMS,
                                       l2_bytes=320 * 1024))
        assert rep.bit_exact is True
        assert rep.chains
        assert rep.l2_peak_df < rep.l2_peak_base


class TestThreading:
    def test_artifact_roundtrip_preserves_chains(self, tmp_path):
        graph, soc, _, fused = _compile_pair("resnet", "digital")
        cfg = CONFIGS["digital"][2].with_overrides(
            l1_budget=16 * 1024, check_l2=False, depthfirst="on")
        path = str(tmp_path / "r.dna")
        save_artifact(path, fused, soc, cfg)
        art = load_artifact(path)
        assert art.fingerprint == fused.fingerprint()
        got = [(c.start, c.length, tuple(c.patch_grid),
                c.per_layer_patch_bytes)
               for c in art.model.depthfirst_chains]
        want = [(c.start, c.length, tuple(c.patch_grid),
                 c.per_layer_patch_bytes)
                for c in fused.depthfirst_chains]
        assert got == want
        feeds = random_inputs(graph, seed=6)
        a = Executor(soc, exec_mode="depthfirst").run(fused, feeds)
        b = Executor(art.soc, exec_mode="depthfirst").run(art.model, feeds)
        assert np.array_equal(a.output, b.output)
        assert a.total_cycles == b.total_cycles
        assert a.l2_peak_bytes == b.l2_peak_bytes

    def test_fingerprint_distinguishes_fused_deployments(self):
        _, _, base, fused = _compile_pair("resnet", "digital")
        assert base.fingerprint() != fused.fingerprint()

    def test_config_fingerprint_covers_depthfirst(self):
        cfg = CompilerConfig()
        assert cfg.fingerprint() != \
            cfg.with_overrides(depthfirst="on").fingerprint()

    def test_deploy_depthfirst_override(self):
        r = deploy("resnet", "digital", exec_mode="depthfirst",
                   depthfirst="on")
        assert r.verified is True
        assert r.compiled.depthfirst_chains
        base = deploy("resnet", "digital", exec_mode="fast")
        assert r.latency_ms > base.latency_ms  # recompute is priced

    def test_mapping_prices_fused_chains(self):
        precision, soc_kwargs, cfg = CONFIGS["digital"]
        soc = DianaSoC(**soc_kwargs)
        graph = prepare_graph(MLPERF_TINY["resnet"](precision=precision))
        plan = analyze_mapping(graph, soc,
                               cfg.with_overrides(depthfirst="on"))
        assert plan.depthfirst
        feasible = [r for r in plan.depthfirst if r["feasible"]]
        assert feasible
        for rec in feasible:
            assert rec["latency_cycles"] >= rec["unfused_cycles"]
        # off by default: no chain records, plan unchanged
        assert analyze_mapping(graph, soc, cfg).depthfirst == []

    def test_chain_candidate_infeasible_reason(self, digital_soc):
        chain = build_chain(1, 2)
        cand = chain_candidate(chain, ["soc.digital", "soc.digital"],
                               digital_soc, CompilerConfig(),
                               budget_bytes=1)
        assert not cand.feasible
        assert "grid" in cand.reason or "residency" in cand.reason
