"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

# Several tests spawn subprocesses (CLI invocations, example scripts).
# pytest's ``pythonpath`` ini option puts src/ on *this* process's
# sys.path but not in the environment, so export it for children too —
# this keeps a bare ``python -m pytest`` equivalent to
# ``PYTHONPATH=src python -m pytest``.
_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
if _SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = os.pathsep.join(
        [_SRC] + ([os.environ["PYTHONPATH"]]
                  if os.environ.get("PYTHONPATH") else []))

from helpers import assert_compiled_matches_reference, build_small_cnn  # noqa: E402,F401 (re-export for stragglers)
from repro.soc import DianaSoC  # noqa: E402


def pytest_configure(config):
    # test_dispatch.py imports the deprecated ``repro.dispatch`` shim on
    # purpose (it tests the alias), which would otherwise leak its
    # one-time DeprecationWarning into the warnings summary of every
    # run. Scope the suppression to exactly that message — the
    # subprocess regression tests in test_serve.py still prove the shim
    # warns exactly once on direct import.
    config.addinivalue_line(
        "filterwarnings",
        "ignore:repro.dispatch is a deprecated alias:DeprecationWarning")


@pytest.fixture
def soc():
    """A full DIANA (digital + analog)."""
    return DianaSoC()


@pytest.fixture
def digital_soc():
    return DianaSoC(enable_analog=False)


@pytest.fixture
def analog_soc():
    return DianaSoC(enable_digital=False)


@pytest.fixture
def cpu_soc():
    return DianaSoC(enable_digital=False, enable_analog=False)


@pytest.fixture
def small_cnn():
    return build_small_cnn()
