"""L2 memory planner tests, incl. the no-overlap property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dory import TensorLife, lifetimes_from_steps, plan_memory


def overlapping_pairs(plan, entries):
    out = []
    for i, a in enumerate(entries):
        for b in entries[i + 1:]:
            live = not (a.end < b.start or b.end < a.start)
            ao, bo = plan.offsets[a.name], plan.offsets[b.name]
            mem = not (ao + a.size <= bo or bo + b.size <= ao)
            if live and mem:
                out.append((a.name, b.name))
    return out


class TestPlanMemory:
    def test_disjoint_lifetimes_share_memory(self):
        entries = [TensorLife("a", 100, 0, 1), TensorLife("b", 100, 2, 3)]
        plan = plan_memory(entries)
        assert plan.arena_bytes == 100
        assert plan.offsets["a"] == plan.offsets["b"] == 0

    def test_overlapping_lifetimes_disjoint_memory(self):
        entries = [TensorLife("a", 100, 0, 2), TensorLife("b", 100, 1, 3)]
        plan = plan_memory(entries)
        assert plan.arena_bytes == 200
        assert not overlapping_pairs(plan, entries)

    def test_no_reuse_stacks_everything(self):
        entries = [TensorLife("a", 100, 0, 1), TensorLife("b", 100, 2, 3)]
        plan = plan_memory(entries, reuse=False)
        assert plan.arena_bytes == 200

    def test_alignment(self):
        entries = [TensorLife("a", 3, 0, 5), TensorLife("b", 3, 0, 5)]
        plan = plan_memory(entries, alignment=4)
        offs = sorted(plan.offsets.values())
        assert offs[1] % 4 == 0

    def test_empty(self):
        plan = plan_memory([])
        assert plan.arena_bytes == 0

    def test_report_mentions_tensors(self):
        plan = plan_memory([TensorLife("act0", 64, 0, 1)])
        assert "act0" in plan.report()

    @settings(max_examples=80, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(1, 4096),  # size
                  st.integers(0, 10),    # start
                  st.integers(0, 10)),   # extra lifetime
        min_size=1, max_size=20))
    def test_property_no_live_overlap(self, raw):
        entries = [
            TensorLife(f"t{i}", size, start, start + extra)
            for i, (size, start, extra) in enumerate(raw)
        ]
        plan = plan_memory(entries)
        assert not overlapping_pairs(plan, entries)
        assert plan.arena_bytes <= sum(
            e.size + 3 for e in entries)  # never worse than stacking

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(1, 1024), st.integers(0, 6), st.integers(0, 6)),
        min_size=1, max_size=12))
    def test_property_reuse_never_bigger_than_no_reuse(self, raw):
        entries = [
            TensorLife(f"t{i}", size, start, start + extra)
            for i, (size, start, extra) in enumerate(raw)
        ]
        reuse = plan_memory(entries).arena_bytes
        stacked = plan_memory(entries, reuse=False).arena_bytes
        assert reuse <= stacked


class TestLifetimesFromSteps:
    def test_basic_chain(self):
        step_io = [(["in"], "a"), (["a"], "b"), (["b"], "out")]
        sizes = {"in": 10, "a": 20, "b": 30, "out": 5}
        entries = lifetimes_from_steps(step_io, sizes, ["in"], "out")
        by_name = {e.name: e for e in entries}
        assert by_name["in"].start == -1
        assert by_name["in"].end == 0
        assert by_name["a"].start == 0 and by_name["a"].end == 1
        assert by_name["out"].end == 3  # output lives past the last step

    def test_residual_extends_lifetime(self):
        step_io = [(["in"], "a"), (["a"], "b"), (["a", "b"], "c")]
        sizes = {"in": 1, "a": 1, "b": 1, "c": 1}
        entries = lifetimes_from_steps(step_io, sizes, ["in"], "c")
        by_name = {e.name: e for e in entries}
        assert by_name["a"].end == 2  # used by the residual add
