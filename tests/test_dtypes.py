"""Unit tests for repro.ir.dtypes."""

import numpy as np
import pytest

from repro.errors import IRError
from repro.ir import (
    FLOAT32, INT7, INT8, INT32, TERNARY, all_dtypes, dtype, is_integer,
)


class TestRanges:
    def test_int8_range(self):
        assert INT8.min_value == -128
        assert INT8.max_value == 127

    def test_int7_range(self):
        assert INT7.min_value == -64
        assert INT7.max_value == 63

    def test_ternary_range(self):
        assert TERNARY.min_value == -1
        assert TERNARY.max_value == 1

    def test_int32_range(self):
        assert INT32.min_value == -(1 << 31)
        assert INT32.max_value == (1 << 31) - 1


class TestStorage:
    def test_int8_storage(self):
        assert INT8.storage_bytes(100) == 100

    def test_ternary_packed_storage(self):
        # 2 bits each, four per byte
        assert TERNARY.storage_bytes(4) == 1
        assert TERNARY.storage_bytes(5) == 2
        assert TERNARY.storage_bytes(1000) == 250

    def test_int7_stored_as_byte(self):
        assert INT7.storage_bytes(10) == 10

    def test_int32_storage(self):
        assert INT32.storage_bytes(3) == 12


class TestLookup:
    def test_lookup_by_name(self):
        assert dtype("int8") is INT8
        assert dtype("ternary") is TERNARY

    def test_lookup_passthrough(self):
        assert dtype(INT8) is INT8

    def test_unknown_dtype_raises(self):
        with pytest.raises(IRError, match="unknown dtype"):
            dtype("int13")

    def test_all_dtypes_stable(self):
        names = [d.name for d in all_dtypes()]
        assert names == sorted(names)
        assert "int8" in names and "ternary" in names


class TestNumpyMapping:
    def test_numpy_dtypes(self):
        assert INT8.to_numpy() == np.int8
        assert INT32.to_numpy() == np.int32
        assert TERNARY.to_numpy() == np.int8
        assert FLOAT32.to_numpy() == np.float32

    def test_is_integer(self):
        assert is_integer(INT8)
        assert is_integer(TERNARY)
        assert not is_integer(FLOAT32)

    def test_str(self):
        assert str(INT8) == "int8"
