"""Evaluation harness tests: Table I cells, Fig. 4/5, Table II, claims."""

import pytest

from repro.eval import deploy, fig4, fig5, paper, run_table1, summarize_claims
from repro.eval.fig4 import Fig4Point, max_heuristic_speedup
from repro.eval.fig5 import loss_stats
from repro.eval.harness import CONFIGS, format_table1
from repro.eval.sota import format_table2, run_table2, speedups


class TestDeploy:
    def test_resnet_digital_cell(self):
        r = deploy("resnet", "digital")
        assert r.verified is True
        assert not r.oom
        assert r.peak_ms <= r.latency_ms
        # paper: 0.66 / 1.19 ms — same order of magnitude
        assert 0.2 < r.latency_ms < 3.0

    def test_mobilenet_tvm_oom_cell(self):
        r = deploy("mobilenet", "cpu-tvm", verify=False)
        assert r.oom
        assert r.latency_ms is None
        assert r.size_kb is not None  # size still reported

    def test_resnet_cpu_matches_paper_closely(self):
        r = deploy("resnet", "cpu-tvm")
        ref = paper.TABLE1["resnet"]["cpu-tvm"][1]
        assert abs(r.latency_ms - ref) / ref < 0.15

    def test_toyadmos_all_configs(self):
        for config in CONFIGS:
            r = deploy("toyadmos", config)
            assert not r.oom
            assert r.verified in (True, None)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            deploy("alexnet", "digital")


class TestTable1:
    @pytest.fixture(scope="class")
    def results(self):
        return run_table1(models=["resnet", "dscnn"])

    def test_all_cells_present(self, results):
        assert len(results) == 2 * 4

    def test_accelerated_faster_than_cpu(self, results):
        by_key = {(r.model, r.config): r for r in results}
        for model in ("resnet", "dscnn"):
            cpu = by_key[(model, "cpu-tvm")].latency_ms
            dig = by_key[(model, "digital")].latency_ms
            assert cpu / dig > 20

    def test_analog_slower_than_digital_on_these(self, results):
        by_key = {(r.model, r.config): r for r in results}
        for model in ("resnet", "dscnn"):
            assert (by_key[(model, "analog")].latency_ms
                    > by_key[(model, "digital")].latency_ms)

    def test_formatting(self, results):
        text = format_table1(results)
        assert "resnet" in text and "paper HTVM" in text

    def test_claims(self, results):
        full = results + run_table1(models=["toyadmos"])
        claims = summarize_claims(full)
        # paper: 112x digital / 120x mixed for ResNet; ours is the same
        # order of magnitude
        assert claims["resnet_digital_speedup_over_tvm"] > 50
        assert claims["dscnn_mixed_speedup_over_analog"] > 4
        assert 0.05 < claims["resnet_binary_reduction"] < 0.3


class TestFig4:
    @pytest.fixture(scope="class")
    def points(self):
        return fig4.sweep(budgets=[256 * 1024, 32 * 1024, 8 * 1024, 4 * 1024])

    def test_point_count(self, points):
        assert len(points) == 4 * 3 * 4

    def test_no_tiling_in_grey_area(self, points):
        for p in points:
            if p.layer == "L0" and p.budget_bytes == 256 * 1024:
                assert p.needs_tiling is False

    def test_heuristics_never_slower(self, points):
        by_key = {}
        for p in points:
            if p.cycles is not None:
                by_key.setdefault((p.layer, p.budget_bytes), {})[p.strategy] = p.cycles
        for cell in by_key.values():
            if "baseline" in cell and "full" in cell:
                assert cell["full"] <= cell["baseline"] * 1.05

    def test_speedup_materializes_somewhere(self, points):
        assert max_heuristic_speedup(points) > 1.2

    def test_latency_grows_as_budget_shrinks(self, points):
        series = sorted(
            (p.budget_bytes, p.cycles) for p in points
            if p.layer == "L3" and p.strategy == "full" and p.cycles)
        assert series[0][1] >= series[-1][1]

    def test_format(self, points):
        text = fig4.format_fig4(points)
        assert "Fig. 4" in text and "L3" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def points(self):
        return fig5.characterize()

    def test_all_series_present(self, points):
        assert {p.series for p in points} == set(fig5.SERIES)

    def test_losses_match_paper_shape(self, points):
        stats = loss_stats(points)
        # digital conv keeps low overhead
        assert stats["digital_conv_spatial"]["min"] < 0.10
        # FC is the worst offender (paper: ~54.5%)
        assert stats["digital_fc_channel"]["max"] > 0.30
        # DW bounded (paper: never more than 20.7%)
        assert stats["digital_dwconv"]["max"] < 0.207
        # analog conv small-on-average (paper: 5.2%)
        assert stats["analog_conv_channel"]["mean"] < 0.15

    def test_peak_throughput_near_array_peak(self, points):
        dig = [p for p in points if p.series == "digital_conv_spatial"]
        best = max(p.peak_throughput for p in dig)
        assert 180 < best <= 256  # paper: avg 15.5% below 256 peak

    def test_dw_peak_bounded_at_375(self, points):
        dw = [p for p in points if p.series == "digital_dwconv"]
        assert all(p.peak_throughput <= 3.75 + 1e-6 for p in dw)

    def test_format(self, points):
        assert "Fig. 5" in fig5.format_fig5(points)


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table2()

    def test_published_columns_intact(self, table):
        assert table["resnet"]["stm32-tvm"] == 180.0
        assert table["toyadmos"]["gap9-gapflow"] == 0.256

    def test_beats_stm32_by_two_orders(self, table):
        sp = speedups(table)
        # paper: 150x vs STM32 TVM on ResNet
        assert sp["resnet"]["stm32-tvm"] > 50

    def test_gap9_remains_faster(self, table):
        sp = speedups(table)
        assert sp["mobilenet"]["gap9-gapflow"] < 1.0

    def test_format(self, table):
        text = format_table2(table)
        assert "Table II" in text and "vs STM-TVM" in text
