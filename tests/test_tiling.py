"""Tiling solver + tile enumeration tests, incl. coverage properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dory import (
    DoryTiler, TileConfig, digital_heuristics, make_conv_spec,
    make_dense_spec, no_heuristics, tiles_of,
)
from repro.errors import TilingError
from repro.soc import DEFAULT_PARAMS, DianaSoC


def tiler(target="soc.digital", heuristics=None, budget=None):
    return DoryTiler(target, DEFAULT_PARAMS,
                     digital_heuristics() if heuristics is None else heuristics,
                     l1_budget=budget)


class TestSolve:
    def test_no_tiling_when_layer_fits(self):
        spec = make_conv_spec("c", 16, 16, 16, 16, padding=(1, 1))
        sol = tiler().solve(spec)
        assert not sol.needs_tiling
        assert sol.num_tiles == 1
        assert sol.cfg.k_t == 16 and sol.cfg.oy_t == 16

    def test_eq2_constraint_always_satisfied(self):
        spec = make_conv_spec("c", 64, 128, 32, 32, padding=(1, 1))
        for budget in (128 * 1024, 32 * 1024, 8 * 1024, 4 * 1024):
            sol = tiler(budget=budget).solve(spec)
            assert sol.l1_total_bytes <= budget

    def test_weight_memory_constraint(self):
        # 640*640 dense weights = 400 kB > 64 kB weight memory
        spec = make_dense_spec("fc", 640, 640)
        sol = tiler().solve(spec)
        assert sol.cfg.k_t * 640 <= DEFAULT_PARAMS.dig_weight_bytes

    def test_infeasible_raises(self):
        spec = make_conv_spec("c", 64, 64, 32, 32, padding=(1, 1))
        with pytest.raises(TilingError):
            tiler(budget=64).solve(spec)

    def test_baseline_vs_heuristics_objective(self):
        spec = make_conv_spec("c", 32, 32, 32, 32, padding=(1, 1))
        base = tiler(heuristics=no_heuristics(), budget=32 * 1024).solve(spec)
        full = tiler(budget=32 * 1024).solve(spec)
        assert base.l1_total_bytes <= 32 * 1024
        assert full.l1_total_bytes <= 32 * 1024

    def test_analog_only_tiles_rows(self):
        spec = make_conv_spec("c", 64, 64, 96, 96, padding=(1, 1),
                              weight_dtype="ternary")
        sol = tiler("soc.analog").solve(spec)
        assert sol.cfg.k_t == 64
        assert sol.cfg.c_t == 64
        assert sol.cfg.ox_t == 96

    def test_analog_weight_not_counted_in_l1(self):
        spec = make_conv_spec("c", 64, 64, 16, 16, padding=(1, 1),
                              weight_dtype="ternary")
        sol = tiler("soc.analog").solve(spec)
        assert sol.l1_weight_bytes == 0

    def test_width_never_tiled(self):
        spec = make_conv_spec("c", 64, 128, 48, 48, padding=(1, 1))
        sol = tiler(budget=16 * 1024).solve(spec)
        assert sol.cfg.ox_t == spec.ox


conv_geom = st.tuples(
    st.integers(1, 32),       # C
    st.integers(1, 32),       # K
    st.sampled_from([4, 7, 8, 12, 16]),  # spatial
    st.sampled_from([1, 3]),  # filter
    st.sampled_from([1, 2]),  # stride
)


class TestTileCoverageProperty:
    @settings(max_examples=60, deadline=None)
    @given(conv_geom, st.sampled_from([2048, 4096, 16384, 262144]))
    def test_tiles_cover_output_exactly_once(self, geom, budget):
        c, k, hw, f, s = geom
        pad = 1 if f == 3 else 0
        if (hw + 2 * pad - f) < 0:
            return
        spec = make_conv_spec("p", c, k, hw, hw, fy=f, fx=f,
                              strides=(s, s), padding=(pad, pad))
        try:
            sol = tiler(budget=budget).solve(spec)
        except TilingError:
            return
        coverage = np.zeros((spec.out_channels, spec.oy, spec.ox), dtype=int)
        for t in sol.tiles():
            if t.last_reduction:
                coverage[t.k0:t.k1, t.oy0:t.oy1, t.ox0:t.ox1] += 1
        assert (coverage == 1).all()

    @settings(max_examples=60, deadline=None)
    @given(conv_geom, st.sampled_from([2048, 16384, 262144]))
    def test_input_slabs_within_bounds(self, geom, budget):
        c, k, hw, f, s = geom
        pad = 1 if f == 3 else 0
        if (hw + 2 * pad - f) < 0:
            return
        spec = make_conv_spec("p", c, k, hw, hw, fy=f, fx=f,
                              strides=(s, s), padding=(pad, pad))
        try:
            sol = tiler(budget=budget).solve(spec)
        except TilingError:
            return
        for t in sol.tiles():
            assert 0 <= t.iy0 <= t.iy1 <= spec.iy
            assert 0 <= t.ix0 <= t.ix1 <= spec.ix
            # padded slab height must match the conv arithmetic
            iy_needed = (t.oy1 - 1 - t.oy0) * s + f
            assert (t.iy1 - t.iy0) + t.pad_top + t.pad_bottom == iy_needed

    @settings(max_examples=30, deadline=None)
    @given(conv_geom)
    def test_reduction_blocks_partition_channels(self, geom):
        c, k, hw, f, s = geom
        pad = 1 if f == 3 else 0
        if (hw + 2 * pad - f) < 0:
            return
        spec = make_conv_spec("p", c, k, hw, hw, fy=f, fx=f,
                              strides=(s, s), padding=(pad, pad))
        cfg = TileConfig(c_t=max(1, c // 2), k_t=k, oy_t=spec.oy,
                         ox_t=spec.ox)
        seen = {}
        for t in tiles_of(spec, cfg):
            key = (t.k0, t.oy0, t.ox0)
            seen.setdefault(key, []).append((t.c0, t.c1, t.last_reduction))
        for blocks in seen.values():
            covered = sorted((c0, c1) for c0, c1, _ in blocks)
            assert covered[0][0] == 0 and covered[-1][1] == c
            for (a0, a1), (b0, b1) in zip(covered, covered[1:]):
                assert a1 == b0
            assert blocks[-1][2] is True  # last block flagged


class TestDenseTiling:
    def test_dense_tiles_k_only(self):
        spec = make_dense_spec("fc", 640, 128)
        sol = tiler().solve(spec)
        assert sol.cfg.c_t == 640
        total_k = sum(t.k1 - t.k0 for t in sol.tiles())
        assert total_k == 128

    def test_num_tiles_matches_enumeration(self):
        spec = make_conv_spec("c", 32, 64, 32, 32, padding=(1, 1))
        sol = tiler(budget=16 * 1024).solve(spec)
        assert sol.num_tiles == len(sol.tiles())
