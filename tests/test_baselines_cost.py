"""Baseline flows, cost accounting, and perf-counter tests."""

import pytest

from repro.baselines import compare_heuristics, compile_tvm_cpu, solve_naive
from repro.dory import DoryTiler, digital_heuristics, make_conv_spec, make_dense_spec
from repro.errors import OutOfMemoryError
from repro.frontend.modelzoo import mobilenet_v1, resnet8
from repro.runtime.cost import cost_layer
from repro.soc import DEFAULT_PARAMS, DianaSoC, PerfCounters
from repro.soc.perf import KernelRecord


class TestTvmCpuBaseline:
    def test_compiles_resnet(self):
        model = compile_tvm_cpu(resnet8())
        assert set(model.steps_by_target()) == {"cpu"}
        assert model.size.runtime == DEFAULT_PARAMS.size_tvm_runtime

    def test_mobilenet_oom(self):
        with pytest.raises(OutOfMemoryError):
            compile_tvm_cpu(mobilenet_v1())

    def test_oom_check_can_be_disabled(self):
        model = compile_tvm_cpu(mobilenet_v1(), check_l2=False)
        assert model.memory_plan.reuse is False


class TestNaiveTiling:
    def test_solve_naive_respects_budget(self):
        spec = make_conv_spec("c", 64, 64, 32, 32, padding=(1, 1))
        sol = solve_naive(spec, 16 * 1024)
        assert sol.l1_total_bytes <= 16 * 1024

    def test_comparison_structure(self):
        spec = make_conv_spec("c", 64, 128, 32, 32, padding=(1, 1))
        cmp = compare_heuristics(spec, 12 * 1024)
        assert cmp.naive_cycles > 0 and cmp.heuristic_cycles > 0
        assert cmp.speedup >= 0.9  # heuristics never notably worse

    def test_speedup_exists_at_awkward_budget(self):
        # sweep budgets; heuristics must win somewhere (Fig. 4 claim)
        spec = make_conv_spec("L3", 64, 128, 32, 32, padding=(1, 1))
        best = max(compare_heuristics(spec, kb * 1024).speedup
                   for kb in (12, 8, 6, 4, 3))
        assert best > 1.2


class TestCostAccounting:
    def _cost(self, spec, budget=None, target="soc.digital"):
        soc = DianaSoC()
        tiler = DoryTiler(target, soc.params, digital_heuristics(),
                          l1_budget=budget)
        sol = tiler.solve(spec)
        return cost_layer(spec, sol, soc.accelerator(target), soc.params), sol

    def test_categories_present(self):
        rec, _ = self._cost(make_conv_spec("c", 32, 32, 32, 32, padding=(1, 1)))
        for cat in ("accel_compute", "weight_dma", "act_dma", "runtime",
                    "tile_loop"):
            assert cat in rec.cycles

    def test_peak_excludes_host_overheads(self):
        rec, _ = self._cost(make_conv_spec("c", 32, 32, 32, 32, padding=(1, 1)))
        assert rec.peak_cycles == (rec.cycles["accel_compute"]
                                   + rec.cycles["weight_dma"])
        assert rec.total_cycles > rec.peak_cycles

    def test_tiled_layer_costs_more_than_untiled(self):
        spec = make_conv_spec("c", 32, 64, 32, 32, padding=(1, 1))
        untiled, _ = self._cost(spec)
        tiled, sol = self._cost(spec, budget=8 * 1024)
        assert sol.needs_tiling
        assert tiled.total_cycles > untiled.total_cycles

    def test_weight_dma_scales_with_k_blocks(self):
        spec = make_dense_spec("fc", 640, 512)  # 320 kB of weights
        rec, sol = self._cost(spec)
        w_cycles = rec.cycles["weight_dma"]
        # the full weight matrix must flow through the 4 B/cy port
        assert w_cycles >= 640 * 512 / DEFAULT_PARAMS.dma_bytes_per_cycle

    def test_dma_hidden_when_compute_bound(self):
        spec = make_conv_spec("c", 64, 64, 32, 32, padding=(1, 1))
        rec, sol = self._cost(spec, budget=32 * 1024)
        # double buffering: visible DMA well below the raw stream
        raw = (spec.input_elements() + spec.output_elements()) * sol.num_tiles
        assert rec.cycles["act_dma"] < raw


class TestPerfCounters:
    def test_aggregation(self):
        perf = PerfCounters()
        a = perf.start_kernel("k0", "soc.digital", macs=100)
        a.add("accel_compute", 50)
        a.add("runtime", 10)
        b = perf.start_kernel("k1", "cpu", macs=0)
        b.add("cpu_compute", 40)
        assert perf.total_cycles == 100
        assert perf.cycles_by_target() == {"soc.digital": 60, "cpu": 40}
        assert perf.cycles_by_category()["runtime"] == 10

    def test_peak_semantics(self):
        rec = KernelRecord("k", "soc.digital")
        rec.add("accel_compute", 100)
        rec.add("weight_dma", 20)
        rec.add("act_dma", 30)
        assert rec.peak_cycles == 120
        cpu = KernelRecord("c", "cpu")
        cpu.add("cpu_compute", 77)
        assert cpu.peak_cycles == 77

    def test_throughput(self):
        rec = KernelRecord("k", "soc.digital", macs=1000)
        rec.add("accel_compute", 500)
        assert rec.throughput_macs_per_cycle == 2.0

    def test_report_format(self):
        perf = PerfCounters()
        perf.start_kernel("layer0", "soc.digital", macs=5).add("accel_compute", 9)
        text = perf.report()
        assert "layer0" in text and "TOTAL" in text
