"""Documentation consistency + miscellaneous coverage tests."""

import pathlib
import re
import subprocess
import sys

import numpy as np
import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestDocs:
    @pytest.mark.parametrize("name", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "docs/COSTMODEL.md",
        "docs/SERVING.md", "docs/DEPTHFIRST.md", "docs/CHECKS.md",
        "docs/PLATFORMS.md"])
    def test_exists_and_nonempty(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1000

    def test_readme_quickstart_block_executes(self):
        """The README's quickstart code block must actually run."""
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
        assert blocks, "README has no python quickstart block"
        exec_globals = {}
        exec(blocks[0], exec_globals)  # raises on failure

    def test_design_references_real_modules(self):
        import importlib
        design = (ROOT / "DESIGN.md").read_text()
        for mod in re.findall(r"`repro[./]([a-z_]+)`", design):
            importlib.import_module(f"repro.{mod}")

    def test_experiments_mentions_every_table1_cell(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for model in ("DS-CNN", "MobileNet", "ResNet", "ToyAdmos"):
            assert model in text

    def test_design_confirms_paper_identity(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "DAC 2023" in design
        assert "verified" in design.lower()


class TestPrinterAndReprs:
    def test_node_reprs(self, small_cnn):
        for node in small_cnn.topo_order():
            assert repr(node)

    def test_match_result_repr(self, small_cnn):
        from repro.patterns import conv2d_pattern, find_matches, default_specs
        matches = find_matches(small_cnn, default_specs())
        assert "MatchResult" in repr(matches[0])

    def test_pattern_reprs(self):
        from repro.patterns import conv2d_pattern, is_constant, wildcard
        assert repr(wildcard()) == "*"
        assert repr(is_constant()) == "const"
        assert "nn.conv2d" in repr(conv2d_pattern())

    def test_graph_repr(self, small_cnn):
        assert "small_cnn" in repr(small_cnn)

    def test_memory_region_repr(self):
        from repro.soc import MemoryRegion
        m = MemoryRegion("L2", 100)
        m.alloc("x", 10)
        assert "L2" in repr(m) and "10/100" in repr(m)

    def test_dot_with_constants(self, small_cnn):
        from repro.ir import graph_to_dot
        with_c = graph_to_dot(small_cnn, include_constants=True)
        without = graph_to_dot(small_cnn, include_constants=False)
        assert with_c.count("const") > without.count("const")


class TestCliFast:
    def run_cli(self, *args):
        return subprocess.run([sys.executable, "-m", "repro.cli", *args],
                              capture_output=True, text=True, timeout=600)

    def test_fig5_command(self):
        proc = self.run_cli("fig5")
        assert proc.returncode == 0
        assert "Fig. 5" in proc.stdout

    def test_table2_command(self):
        proc = self.run_cli("table2")
        assert proc.returncode == 0
        assert "Table II" in proc.stdout

    def test_run_json_model_roundtrip(self, tmp_path):
        from repro.frontend.modelzoo import resnet8
        from repro.ir import save_graph
        path = tmp_path / "model.json"
        save_graph(resnet8(), str(path))
        proc = self.run_cli("run", str(path), "--config", "digital")
        assert proc.returncode == 0, proc.stderr
        assert "bit-exact vs reference: True" in proc.stdout


class TestMiscNumerics:
    def test_softmax_other_axis(self):
        from repro import numerics as K
        x = np.arange(6, dtype=np.int8).reshape(2, 3)
        out = K.softmax(x, axis=0)
        np.testing.assert_allclose(out.sum(axis=0), [1, 1, 1], atol=1e-5)

    def test_right_shift_large(self):
        from repro import numerics as K
        out = K.right_shift(np.array([1 << 30], np.int32), 30)
        assert out[0] == 1

    def test_legalize_skips_dynamic_weights(self):
        from repro.ir import Call, GraphBuilder
        from repro.transforms import dense_to_conv2d
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 4), "int8")
        w = b.input("w", (2, 4), "int8")  # dynamic weight input
        g = b.finish(b.call("nn.dense", [x, w]))
        g2 = dense_to_conv2d(g)
        assert any(c.op == "nn.dense" for c in g2.calls())

    def test_dense_driver_emission(self):
        from repro.dory import (
            DoryTiler, digital_heuristics, emit_accel_layer, make_dense_spec,
        )
        from repro.soc import DEFAULT_PARAMS
        spec = make_dense_spec("fc", 640, 128)
        sol = DoryTiler("soc.digital", DEFAULT_PARAMS,
                        digital_heuristics()).solve(spec)
        src = emit_accel_layer("fc_driver", sol, DEFAULT_PARAMS)
        assert "kind=dense" in src
        assert "diana_dig_load_weights" in src

    def test_timeline_glyph_breakdown(self):
        from repro.eval.timeline import render_timeline
        from repro.soc import PerfCounters
        perf = PerfCounters()
        rec = perf.start_kernel("k", "soc.digital", macs=10)
        rec.add("accel_compute", 100)
        rec.add("weight_dma", 20)
        text = render_timeline(perf)
        assert "#:100" in text and "W:20" in text
