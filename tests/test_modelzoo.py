"""Model zoo tests: topology, MAC counts, precision variants."""

import numpy as np
import pytest

from repro.frontend import INT8, MIXED, PRECISIONS, TERNARY, layer_quant
from repro.frontend.modelzoo import (
    MLPERF_TINY, dscnn, mobilenet_v1, resnet8, toyadmos_dae,
)
from repro.runtime import random_inputs, run_reference


class TestTopologies:
    def test_resnet_macs(self):
        # MLPerf Tiny ResNet-8 is ~12.5 MMACs
        macs = resnet8().total_macs()
        assert 12.0e6 < macs < 13.0e6

    def test_resnet_output(self):
        g = resnet8()
        out = run_reference(g, random_inputs(g, seed=0))
        assert out.shape == (1, 10)
        assert abs(out.sum() - 1.0) < 1e-4

    def test_dscnn_geometry(self):
        g = dscnn()
        out = run_reference(g, random_inputs(g, seed=0))
        assert out.shape == (1, 12)
        convs = [c for c in g.calls() if c.op == "nn.conv2d"]
        # input conv maps 49x10 -> 25x5
        assert convs[0].shape == (1, 64, 25, 5)

    def test_dscnn_has_adapted_input_filter(self):
        g = dscnn()
        conv1 = [c for c in g.calls() if c.op == "nn.conv2d"][0]
        assert conv1.inputs[1].shape[2:] == (7, 5)  # paper footnote

    def test_mobilenet_layer_count(self):
        g = mobilenet_v1()
        convs = [c for c in g.calls() if c.op == "nn.conv2d"]
        assert len(convs) == 27  # conv1 + 13 x (dw + pw)
        dw = [c for c in convs if c.attrs["groups"] > 1]
        assert len(dw) == 13

    def test_mobilenet_output(self):
        g = mobilenet_v1()
        out = run_reference(g, random_inputs(g, seed=0))
        assert out.shape == (1, 2)

    def test_toyadmos_params(self):
        g = toyadmos_dae()
        # ~264k weight parameters (FC weights dominate)
        weights = sum(
            c.value.data.size for c in g.constants()
            if c.value.data.ndim == 2)
        assert 260_000 < weights < 275_000

    def test_toyadmos_output_shape(self):
        g = toyadmos_dae()
        out = run_reference(g, random_inputs(g, seed=0))
        assert out.shape == (1, 640)

    def test_registry_complete(self):
        assert set(MLPERF_TINY) == {"dscnn", "mobilenet", "resnet", "toyadmos"}


class TestPrecisionVariants:
    @pytest.mark.parametrize("model", list(MLPERF_TINY))
    @pytest.mark.parametrize("precision", PRECISIONS)
    def test_all_variants_build_and_run(self, model, precision):
        g = MLPERF_TINY[model](precision=precision)
        out = run_reference(g, random_inputs(g, seed=1))
        assert np.isfinite(np.asarray(out, dtype=np.float64)).all()

    def test_ternary_weights_are_ternary(self):
        g = resnet8(precision=TERNARY)
        convs = [c for c in g.calls() if c.op == "nn.conv2d"]
        for conv in convs:
            w = conv.inputs[1]
            assert w.dtype.name == "ternary"
            assert set(np.unique(w.value.data)) <= {-1, 0, 1}

    def test_mixed_first_and_last_are_int8(self):
        g = resnet8(precision=MIXED)
        mac_weights = [
            c.inputs[1] for c in g.calls()
            if c.op in ("nn.conv2d", "nn.dense")
        ]
        assert mac_weights[0].dtype.name == "int8"
        assert mac_weights[-1].dtype.name == "int8"
        middle = {w.dtype.name for w in mac_weights[1:-1]}
        assert "ternary" in middle

    def test_ternary_dw_stays_int8(self):
        g = mobilenet_v1(precision=TERNARY)
        for c in g.calls():
            if c.op == "nn.conv2d" and c.attrs["groups"] > 1:
                assert c.inputs[1].dtype.name == "int8"

    def test_ternary_activations_are_7bit(self):
        g = resnet8(precision=TERNARY)
        feeds = random_inputs(g, seed=0)
        assert feeds["data"].min() >= -64 and feeds["data"].max() <= 63

    def test_seed_changes_weights(self):
        a = resnet8(seed=0)
        b = resnet8(seed=1)
        wa = a.constants()[0].value.data
        wb = b.constants()[0].value.data
        assert not np.array_equal(wa, wb)

    def test_same_seed_reproducible(self):
        a = resnet8(seed=5).constants()[0].value.data
        b = resnet8(seed=5).constants()[0].value.data
        np.testing.assert_array_equal(a, b)


class TestLayerQuantPolicy:
    def test_int8(self):
        q = layer_quant(INT8, 3, 10)
        assert (q.weight_dtype, q.act_dtype) == ("int8", "int8")

    def test_ternary_dw_exception(self):
        assert layer_quant(TERNARY, 3, 10).weight_dtype == "ternary"
        assert layer_quant(TERNARY, 3, 10, depthwise=True).weight_dtype == "int8"

    def test_mixed_boundaries(self):
        assert layer_quant(MIXED, 0, 10).weight_dtype == "int8"
        assert layer_quant(MIXED, 9, 10).weight_dtype == "int8"
        assert layer_quant(MIXED, 5, 10).weight_dtype == "ternary"
        assert layer_quant(MIXED, 5, 10, depthwise=True).weight_dtype == "int8"

    def test_unknown_precision(self):
        from repro.errors import UnsupportedError
        with pytest.raises(UnsupportedError):
            layer_quant("int4", 0, 1)

    def test_eligible_count_enforced(self):
        from repro.frontend.modelzoo.common import QuantNetBuilder
        nb = QuantNetBuilder("t", INT8, num_eligible=2, seed=0)
        x = nb.input("x", (1, 4, 8, 8))
        y = nb.conv(x, 4, kernel=1)
        with pytest.raises(AssertionError):
            nb.finish(y)
