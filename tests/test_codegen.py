"""C code generation and binary-size model tests."""

import re
import shutil
import subprocess

import pytest

from repro.codegen import classify_body, emit_cpu_kernel, kernel_signature
from repro.codegen.c_writer import CWriter
from repro.core import HTVM, TVM_CPU, compile_model
from repro.dory import DoryTiler, digital_heuristics, emit_accel_layer, make_conv_spec
from repro.frontend.modelzoo import resnet8, toyadmos_dae
from repro.soc import DEFAULT_PARAMS, DianaSoC
from repro.transforms import fuse_cpu_ops
from helpers import build_small_cnn


def fused_bodies(graph):
    return [c for c in fuse_cpu_ops(graph).composites()]


class TestCWriter:
    def test_indentation(self):
        w = CWriter()
        w.open("void f()")
        w.line("int x = 1;")
        w.close()
        src = w.source()
        assert "void f() {" in src
        assert "  int x = 1;" in src
        assert src.rstrip().endswith("}")

    def test_comment(self):
        w = CWriter()
        w.comment("hello")
        assert "/* hello */" in w.source()


class TestCpuKernelEmission:
    def test_conv_kernel_has_loops(self, small_cnn):
        comps = fused_bodies(small_cnn)
        conv_comp = comps[0]
        src = emit_cpu_kernel("fused_conv", conv_comp)
        assert "void fused_conv(" in src
        assert "for (int k = 0" in src
        assert "acc +=" in src

    def test_signature_dedup(self):
        g = toyadmos_dae()
        comps = fused_bodies(g)
        sigs = [kernel_signature(c.body) for c in comps]
        # 4 identical 128x128 FC layers share one signature
        assert len(set(sigs)) < len(sigs)

    def test_signature_distinguishes_shapes(self, small_cnn):
        comps = fused_bodies(small_cnn)
        sigs = {kernel_signature(c.body) for c in comps}
        assert len(sigs) == len(comps)

    def test_classify(self, small_cnn):
        comps = fused_bodies(small_cnn)
        kinds = [classify_body(c.body) for c in comps]
        assert "conv2d" in kinds
        assert "dense" in kinds
        assert "softmax" in kinds


class TestDoryEmission:
    def test_driver_structure(self):
        spec = make_conv_spec("c", 32, 64, 32, 32, padding=(1, 1))
        sol = DoryTiler("soc.digital", DEFAULT_PARAMS, digital_heuristics(),
                        l1_budget=32 * 1024).solve(spec)
        src = emit_accel_layer("dory_layer_0", sol, DEFAULT_PARAMS)
        assert "diana_digital_run" in src
        assert "dma_2d_in" in src
        assert "for (int k0 = 0" in src
        assert str(sol.num_tiles) in src

    def test_analog_driver_loads_macro(self):
        spec = make_conv_spec("c", 32, 64, 16, 16, padding=(1, 1),
                              weight_dtype="ternary")
        sol = DoryTiler("soc.analog", DEFAULT_PARAMS, [],).solve(spec)
        src = emit_accel_layer("dory_layer_1", sol, DEFAULT_PARAMS)
        assert "diana_analog_load_macro" in src
        assert "diana_analog_run" in src


class TestSizeModel:
    def test_tvm_runtime_larger_than_htvm(self, cpu_soc, digital_soc, small_cnn):
        tvm = compile_model(small_cnn, cpu_soc, TVM_CPU)
        htvm = compile_model(small_cnn, digital_soc, HTVM)
        assert tvm.size.runtime > htvm.size.runtime

    def test_resnet_digital_binary_shrinks(self):
        # the paper's headline: ResNet binary shrinks ~12.3% vs plain TVM
        cpu = DianaSoC(enable_digital=False, enable_analog=False)
        dig = DianaSoC(enable_analog=False)
        tvm = compile_model(resnet8(), cpu, TVM_CPU)
        htvm = compile_model(resnet8(), dig, HTVM)
        reduction = 1 - htvm.binary_size_bytes / tvm.binary_size_bytes
        assert 0.05 < reduction < 0.25

    def test_toyadmos_digital_binary_grows(self):
        # per-layer DORY drivers beat TVM's kernel sharing here
        cpu = DianaSoC(enable_digital=False, enable_analog=False)
        dig = DianaSoC(enable_analog=False)
        tvm = compile_model(toyadmos_dae(), cpu, TVM_CPU)
        htvm = compile_model(toyadmos_dae(), dig, HTVM)
        assert htvm.binary_size_bytes > tvm.binary_size_bytes

    def test_ternary_weights_smaller_for_toyadmos(self):
        dig = DianaSoC(enable_analog=False)
        ana = DianaSoC(enable_digital=False)
        int8 = compile_model(toyadmos_dae(), dig, HTVM)
        tern = compile_model(toyadmos_dae(precision="ternary"), ana, HTVM)
        assert tern.size.weights < int8.size.weights

    def test_resnet_analog_padding_inflates_weights(self):
        # ternary is 2-bit, but macro row padding blows ResNet back up
        ana = DianaSoC(enable_digital=False)
        tern = compile_model(resnet8(precision="ternary"), ana, HTVM)
        raw_ternary = resnet8(precision="ternary").weight_bytes()
        assert tern.size.weights > raw_ternary


@pytest.mark.skipif(shutil.which("gcc") is None, reason="gcc not available")
def _compiler():
    for cand in ("cc", "gcc", "clang"):
        if shutil.which(cand):
            return cand
    return None


class TestNetworkEmission:
    """Regressions for the emitted top-level network function."""

    def test_network_defines_every_sizeof_identifier(self, digital_soc,
                                                     small_cnn):
        # the historical bug: memcpy(output, ..., sizeof_<output>) was
        # emitted with no matching enum when the output buffer's size
        # constant was never declared — the network only compiled by
        # accident against sources that happened to define it.
        model = compile_model(small_cnn, digital_soc, HTVM)
        src = model.c_sources["network.c"]
        used = set(re.findall(r"\bsizeof_(\w+)", src))
        defined = set(re.findall(r"enum \{ sizeof_(\w+) =", src))
        assert used, "network.c should reference planned buffer sizes"
        assert used <= defined, f"undefined: {sorted(used - defined)}"

    def test_network_includes_runtime_header(self, digital_soc, small_cnn):
        model = compile_model(small_cnn, digital_soc, HTVM)
        assert "repro_runtime.h" in model.c_sources
        assert '#include "repro_runtime.h"' in model.c_sources["network.c"]

    def test_prototypes_deduplicated(self):
        # toyadmos has 4 identical 128x128 FC layers sharing one kernel;
        # its prototype must appear exactly once in network.c
        g = toyadmos_dae()
        soc = DianaSoC(enable_analog=False)
        model = compile_model(g, soc, HTVM)
        src = model.c_sources["network.c"]
        protos = re.findall(r"^void (\w+)\(.*\);$", src, re.M)
        assert len(protos) == len(set(protos))


class TestCSyntax:
    """Every generated source set compiles standalone, warnings fatal."""

    @pytest.mark.skipif(_compiler() is None, reason="no C compiler")
    @pytest.mark.parametrize("graph_fn", [build_small_cnn, toyadmos_dae,
                                          resnet8])
    def test_sources_compile_standalone(self, digital_soc, graph_fn,
                                        tmp_path):
        model = compile_model(graph_fn(), digital_soc, HTVM)
        for name, src in model.c_sources.items():
            (tmp_path / name).write_text(src)
        cc = _compiler()
        for name in model.c_sources:
            if not name.endswith(".c"):
                continue
            proc = subprocess.run(
                [cc, "-fsyntax-only", "-std=c11", "-Wall", "-Werror",
                 "-I", str(tmp_path), str(tmp_path / name)],
                capture_output=True, text=True)
            assert proc.returncode == 0, f"{name}:\n{proc.stderr}"

    @pytest.mark.skipif(_compiler() is None, reason="no C compiler")
    def test_native_source_compiles_standalone(self, digital_soc,
                                               small_cnn, tmp_path):
        from repro.codegen import emit_native_sources

        model = compile_model(small_cnn, digital_soc, HTVM)
        path = tmp_path / "native.c"
        path.write_text(emit_native_sources(model))
        proc = subprocess.run(
            [_compiler(), "-fsyntax-only", "-std=c11", "-Wall", "-Werror",
             str(path)],
            capture_output=True, text=True)
        assert proc.returncode == 0, f"native.c:\n{proc.stderr}"
