"""Mapping engine tests: strategies, objectives, DP/beam search, CLI.

Covers the acceptance contract of the cost-driven mapping refactor:

* every strategy assigns each composite either ``"cpu"`` or a
  rule-accepted target (property, all strategies x configs),
* ``"rules"`` reproduces the seed weight-dtype selector bit-exactly on
  all four Table I resnet configurations,
* ``"dp"`` achieves modeled total latency <= ``"rules"`` on every
  MLPerf Tiny model,
* cost-driven compiles stay bit-exact against the reference
  interpreter,
* the satellite fixes: recorded spec-extraction failure reasons and
  dynamic decision-table column widths.
"""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro import HTVM, compile_model
from repro.core.cache import TilingCache
from repro.eval.harness import CONFIGS, deploy, format_table1, run_table1
from repro.eval.mapping_dse import pareto_sweep, sweep_model
from repro.frontend.modelzoo import MLPERF_TINY, resnet8
from repro.mapping import (
    DispatchDecision, analyze_mapping, assign_targets, dispatch_summary,
    enumerate_sites, layer_spec_or_reason, make_objective, plan_mapping,
    prepare_graph,
)
from repro.mapping.engine import _is_linear, _site_edges
from repro.runtime import Executor, random_inputs, run_reference
from repro.soc import DianaSoC

STRATEGIES = ("rules", "greedy", "dp")
ACCEL_CONFIGS = ("digital", "analog", "mixed")


def _setup(config):
    precision, soc_kwargs, cfg = CONFIGS[config]
    return precision, DianaSoC(**soc_kwargs), cfg


def _partitioned(model, config):
    precision, soc, cfg = _setup(config)
    return prepare_graph(MLPERF_TINY[model](precision=precision)), soc, cfg


# the seed dispatcher's preference policy, replicated verbatim from the
# pre-refactor repro.dispatch.selector so the equivalence test cannot
# drift with the implementation under test
def _seed_prefer(spec, accepted):
    if spec.kind != "add":
        if spec.weight_dtype == "ternary" and "soc.analog" in accepted:
            return "soc.analog"
        if spec.weight_dtype == "int8" and "soc.digital" in accepted:
            return "soc.digital"
    for name in ("soc.digital", "soc.analog"):
        if name in accepted:
            return name
    return accepted[0]


class TestRulesMatchSeedSelector:
    @pytest.mark.parametrize("config", list(CONFIGS))
    @pytest.mark.parametrize("model", sorted(MLPERF_TINY))
    def test_all_models_all_table1_configs(self, model, config):
        """`"rules"` targets == the seed selector on every zoo model in
        every Table I configuration (resnet covers the 4 required
        configs; the rest guard the drift gate's blind spots)."""
        graph, soc, cfg = _partitioned(model, config)
        mapped, decisions = plan_mapping(graph, soc, cfg)
        sites = enumerate_sites(graph, soc, cfg, cache=TilingCache())
        expected = []
        for site in sites:
            accepted = site.accepted_targets
            if site.spec is None or not accepted:
                expected.append("cpu")
            else:
                expected.append(_seed_prefer(site.spec, accepted))
        got = [c.target for c in mapped.composites()
               if not c.pattern_name.startswith("cpu.")]
        assert got == expected
        assert [d.target for d in decisions] == expected

    @pytest.mark.parametrize("model", sorted(MLPERF_TINY))
    def test_rules_strategy_is_the_default_path(self, model):
        """Explicit `mapping_strategy="rules"` equals the default compile:
        same targets, same modeled cycles, same outputs."""
        precision, soc, cfg = _setup("mixed")
        graph = MLPERF_TINY[model](precision=precision)
        base = compile_model(graph, soc, cfg)
        explicit = compile_model(
            graph, soc, cfg.with_overrides(mapping_strategy="rules"))
        assert ([getattr(s, "accel_target", "cpu") for s in base.steps]
                == [getattr(s, "accel_target", "cpu") for s in explicit.steps])
        feeds = random_inputs(graph, seed=5)
        ex = Executor(soc, exec_mode="fast")
        r0, r1 = ex.run(base, feeds), ex.run(explicit, feeds)
        assert np.array_equal(r0.output, r1.output)
        assert r0.total_cycles == r1.total_cycles


class TestTargetValidityProperty:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("config", ACCEL_CONFIGS)
    def test_assigned_target_is_cpu_or_accepted(self, strategy, config):
        for model in sorted(MLPERF_TINY):
            graph, soc, cfg = _partitioned(model, config)
            plan = analyze_mapping(graph, soc, cfg, strategy=strategy,
                                   cache=TilingCache())
            for site, target in zip(plan.sites, plan.assignment):
                assert target == "cpu" or target in site.accepted_targets, (
                    f"{model}/{config}/{strategy}: {site.layer_name} "
                    f"-> {target} not in {site.accepted_targets}")

    def test_every_site_has_cpu_candidate(self):
        graph, soc, cfg = _partitioned("dscnn", "analog")
        for site in enumerate_sites(graph, soc, cfg, cache=TilingCache()):
            assert "cpu" in site.candidates
            assert site.candidates["cpu"].feasible
            assert site.candidates["cpu"].latency_cycles > 0


class TestDpBeatsRules:
    @pytest.mark.parametrize("model", sorted(MLPERF_TINY))
    def test_dp_latency_not_worse_on_every_model(self, model):
        """Acceptance: dp modeled latency <= rules on every zoo model."""
        for config in ACCEL_CONFIGS:
            graph, soc, cfg = _partitioned(model, config)
            plan = analyze_mapping(graph, soc, cfg, strategy="dp",
                                   objective=make_objective("latency"))
            assert plan.total_cycles <= plan.baseline_cycles, (
                f"{model}/{config}: dp {plan.total_cycles} > "
                f"rules {plan.baseline_cycles}")

    def test_dp_energy_not_worse(self):
        graph, soc, cfg = _partitioned("resnet", "mixed")
        plan = analyze_mapping(graph, soc, cfg, strategy="dp",
                               objective=make_objective("energy"))
        assert plan.total_energy_pj <= plan.baseline_energy_pj

    def test_dp_improves_mixed_resnet(self):
        """The heart of the feature: on the mixed deployment the global
        search finds a strictly better-modeled mapping than the rules."""
        graph, soc, cfg = _partitioned("resnet", "mixed")
        plan = analyze_mapping(graph, soc, cfg, strategy="dp")
        assert plan.total_cycles < plan.baseline_cycles
        assert plan.assignment != plan.baseline_assignment

    def test_resnet_branches_dscnn_chains(self):
        """The search picks exact DP for chains, beam for residual nets."""
        chain, soc, cfg = _partitioned("dscnn", "mixed")
        plan = analyze_mapping(chain, soc, cfg, strategy="dp")
        assert _is_linear(plan.sites, _site_edges(plan.edges))
        branchy, soc, cfg = _partitioned("resnet", "mixed")
        plan = analyze_mapping(branchy, soc, cfg, strategy="dp")
        assert not _is_linear(plan.sites, _site_edges(plan.edges))


class TestCostDrivenCompile:
    @pytest.mark.parametrize("strategy", ("greedy", "dp"))
    def test_compiled_dp_model_is_bit_exact(self, strategy):
        precision, soc, cfg = _setup("mixed")
        graph = resnet8(precision=precision)
        model = compile_model(
            graph, soc, cfg.with_overrides(mapping_strategy=strategy))
        feeds = random_inputs(graph, seed=7)
        result = Executor(soc, exec_mode="fast").run(model, feeds)
        assert np.array_equal(
            np.asarray(run_reference(model.graph, feeds)),
            np.asarray(result.output))

    def test_dp_decisions_carry_costs(self):
        precision, soc, cfg = _setup("mixed")
        model = compile_model(
            resnet8(precision=precision), soc,
            cfg.with_overrides(mapping_strategy="dp"))
        assert model.dispatch_decisions
        for d in model.dispatch_decisions:
            assert d.costs, f"{d.layer_name} has no candidate costs"
            assert d.chosen_cost is not None

    def test_deploy_mapping_override_and_table_column(self):
        r = deploy("dscnn", "mixed", verify=True, exec_mode="fast",
                   mapping="dp")
        assert r.mapping == "dp"
        assert r.verified
        table = format_table1([r])
        assert "mapping" in table and "dp" in table
        # default path keeps the historical rendering
        r0 = deploy("dscnn", "mixed", verify=False, exec_mode="fast")
        assert "mapping" not in format_table1([r0])

    def test_run_table1_mapping_override(self):
        results = run_table1(models=["dscnn"], configs=["mixed"],
                             exec_mode="fast", mapping="dp")
        assert [r.mapping for r in results] == ["dp"]


class TestObjectivesAndPareto:
    def test_objective_validation(self):
        from repro.errors import DispatchError
        with pytest.raises(DispatchError):
            make_objective("throughput")
        with pytest.raises(DispatchError):
            make_objective("weighted", weight=1.5)
        assert make_objective("latency").weight == 0.0
        assert make_objective("energy").weight == 1.0

    def test_unknown_strategy_raises(self):
        from repro.errors import DispatchError
        graph, soc, cfg = _partitioned("dscnn", "mixed")
        with pytest.raises(DispatchError):
            analyze_mapping(graph, soc, cfg, strategy="simulated-annealing")
        with pytest.raises(DispatchError):
            plan_mapping(graph, soc,
                         cfg.with_overrides(mapping_strategy="x"))

    def test_sweep_model_fronts(self):
        points = sweep_model("toyadmos", config="mixed",
                             weights=[0.0, 0.5, 1.0], cache=TilingCache())
        assert any(p.is_rules for p in points)
        assert any(p.pareto for p in points)
        front = [p for p in points if p.pareto]
        # the front is actually non-dominated
        for p in front:
            assert not any(q.cycles < p.cycles and q.energy_pj < p.energy_pj
                           for q in points)

    def test_pareto_sweep_artifact_roundtrip(self, tmp_path):
        from repro.eval.mapping_dse import artifact_record
        points = pareto_sweep(models=["dscnn"], weights=[0.0, 1.0],
                              cache=TilingCache())
        record = artifact_record(points)
        text = json.dumps(record)
        back = json.loads(text)
        assert back["models"]["dscnn"]
        assert any(p["rules"] for p in back["models"]["dscnn"])


class TestSatellites:
    def test_spec_failure_reason_recorded(self):
        """layer_spec_or_reason keeps the UnsupportedError message."""
        from repro.ir.builder import GraphBuilder
        from repro.patterns import default_specs, partition

        b = GraphBuilder("weird")
        x = b.input("x", (1, 4, 8, 8), "int8")
        # a grouped (non-depthwise) conv has no DORY layer spec
        y = b.conv2d_requant(x, out_channels=8, kernel=3, padding=1,
                             groups=2)
        pg = partition(b.finish(y), default_specs())
        comps = [c for c in pg.composites()
                 if not c.pattern_name.startswith("cpu.")]
        if not comps:  # the pattern library may keep it on the CPU
            pytest.skip("grouped conv not pattern-matched")
        spec, reason = layer_spec_or_reason(comps[0], 0)
        assert spec is None
        assert "grouped" in reason

    def test_cpu_fallback_reason_in_decisions(self):
        _, soc, cfg = _setup("analog")
        graph, _, _ = _partitioned("dscnn", "analog")
        _, decisions = assign_targets(graph, soc)
        cpu = [d for d in decisions if d.target == "cpu"]
        assert cpu
        for d in cpu:
            assert d.fallback_reason  # never a silent fallback
        offloaded = [d for d in decisions if d.target != "cpu"]
        assert all(d.fallback_reason == "" for d in offloaded)

    def test_summary_dynamic_widths(self):
        """Long layer names must not break the table alignment."""
        long_name = "a_very_long_layer_name_that_overflows_36_columns_easily"
        decisions = [
            DispatchDecision(layer_name=long_name, pattern="htvm.qconv2d",
                             target="soc.digital"),
            DispatchDecision(layer_name="short", pattern="htvm.qadd",
                             target="cpu", spec_error="no anchor"),
        ]
        text = dispatch_summary(decisions)
        lines = text.splitlines()
        header = lines[0]
        assert header.index("pattern") > len(long_name)
        # every row's columns start at the same offsets
        for line in lines[1:]:
            assert line.startswith(("a_very", "short"))
            assert line[header.index("pattern") - 1] == " "
        assert "no anchor" in text

    def test_summary_cost_column_only_when_costed(self):
        graph, soc, cfg = _partitioned("resnet", "mixed")
        _, rules_decisions = assign_targets(graph, soc)
        assert "cost" not in dispatch_summary(rules_decisions)
        plan = analyze_mapping(graph, soc, cfg, strategy="dp")
        assert "cost" in dispatch_summary(plan.decisions)


class TestCli:
    def run_cli(self, *args):
        return subprocess.run([sys.executable, "-m", "repro.cli", *args],
                              capture_output=True, text=True, timeout=300)

    def test_map_decision_table(self):
        proc = self.run_cli("map", "resnet", "--config", "mixed",
                            "--mapping", "dp")
        assert proc.returncode == 0, proc.stderr
        assert "strategy=dp" in proc.stdout
        assert "rules baseline" in proc.stdout

    def test_map_pareto_writes_artifact(self, tmp_path):
        out = tmp_path / "dse.json"
        proc = self.run_cli("map", "--pareto", "--models", "dscnn",
                            "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        record = json.loads(out.read_text())
        assert record["models"]["dscnn"]

    def test_run_with_mapping(self):
        proc = self.run_cli("run", "dscnn", "--config", "mixed",
                            "--mapping", "dp", "--exec-mode", "fast")
        assert proc.returncode == 0, proc.stderr
        assert "bit-exact vs reference: True" in proc.stdout

    def test_sweep_subcommand(self):
        proc = self.run_cli("sweep", "l1_bytes", "262144", "65536",
                            "--model", "dscnn", "--config", "digital",
                            "--mapping", "dp")
        assert proc.returncode == 0, proc.stderr
        assert "l1_bytes" in proc.stdout
