"""Executor tests — the core bit-exactness guarantee.

The flagship property: for random layer geometries and L1 budgets, the
*tiled* accelerator execution (halos, edge padding, C-blocks with int32
partial sums, K blocks) is byte-identical to the reference interpreter.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compiler import compile_model
from repro.core.config import HTVM, TVM_CPU
from repro.errors import SimulationError
from repro.ir import GraphBuilder
from repro.runtime import Executor, random_inputs, run_reference
from repro.soc import DianaParams, DianaSoC
from helpers import assert_compiled_matches_reference, build_small_cnn


class TestSmallGraphs:
    def test_small_cnn_htvm(self, soc, small_cnn):
        assert_compiled_matches_reference(small_cnn, soc)

    def test_small_cnn_cpu_baseline(self, cpu_soc, small_cnn):
        assert_compiled_matches_reference(small_cnn, cpu_soc, TVM_CPU)

    def test_missing_feed_raises(self, soc, small_cnn):
        model = compile_model(small_cnn, soc, HTVM)
        with pytest.raises(SimulationError, match="missing input"):
            Executor(soc).run(model, {})

    def test_wrong_shape_raises(self, soc, small_cnn):
        model = compile_model(small_cnn, soc, HTVM)
        with pytest.raises(SimulationError, match="expected"):
            Executor(soc).run(model, {"data": np.zeros((1, 3, 4, 4), np.int8)})

    def test_counters_populated(self, soc, small_cnn):
        model, result = assert_compiled_matches_reference(small_cnn, soc)
        assert result.total_cycles > 0
        assert result.peak_cycles <= result.total_cycles
        assert len(result.perf.records) == len(model.steps)

    def test_accel_cycles_dominate_for_cnn(self, digital_soc, small_cnn):
        _, result = assert_compiled_matches_reference(small_cnn, digital_soc)
        by_target = result.perf.cycles_by_target()
        assert "soc.digital" in by_target

    def test_deterministic_cycles(self, soc, small_cnn):
        model = compile_model(small_cnn, soc, HTVM)
        feeds = random_inputs(small_cnn, seed=0)
        ex = Executor(soc)
        a = ex.run(model, feeds).total_cycles
        b = ex.run(model, feeds).total_cycles
        assert a == b


def _single_conv_graph(c, k, hw, f, stride, pad, depthwise, seed):
    b = GraphBuilder(seed=seed)
    x = b.input("x", (1, c, hw, hw), "int8")
    if depthwise:
        y = b.dwconv2d_requant(x, kernel=f, strides=stride, padding=pad)
    else:
        y = b.conv2d_requant(x, k, kernel=f, strides=stride, padding=pad,
                             relu=bool(seed % 2))
    return b.finish(y)


conv_cases = st.tuples(
    st.integers(1, 24),                  # C
    st.integers(1, 24),                  # K
    st.sampled_from([5, 8, 11, 16]),     # spatial
    st.sampled_from([1, 3]),             # filter
    st.sampled_from([1, 2]),             # stride
    st.booleans(),                       # depthwise
    st.integers(0, 2 ** 30),             # seed
)


class TestTiledExecutionProperty:
    @settings(max_examples=50, deadline=None)
    @given(conv_cases, st.sampled_from([1536, 4096, 16384, 256 * 1024]))
    def test_tiled_conv_bit_exact(self, case, budget):
        c, k, hw, f, stride, depthwise, seed = case
        pad = 1 if f == 3 else 0
        graph = _single_conv_graph(c, k, hw, f, stride, pad, depthwise, seed)
        params = DianaParams()
        soc = DianaSoC(params=params, enable_analog=False)
        cfg = HTVM.with_overrides(l1_budget=budget, check_l2=False)
        from repro.errors import TilingError
        try:
            model = compile_model(graph, soc, cfg)
        except TilingError:
            return
        feeds = random_inputs(graph, seed=seed + 1)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 640), st.integers(1, 300), st.integers(0, 2 ** 30))
    def test_tiled_dense_bit_exact(self, c, k, seed):
        b = GraphBuilder(seed=seed)
        x = b.input("x", (1, c), "int8")
        graph = b.finish(b.dense_requant(x, k, relu=bool(seed % 2)))
        soc = DianaSoC(enable_analog=False)
        model = compile_model(graph, soc, HTVM.with_overrides(check_l2=False))
        feeds = random_inputs(graph, seed=seed)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 32), st.sampled_from([4, 8, 12]),
           st.integers(0, 2 ** 30))
    def test_tiled_add_bit_exact(self, c, hw, seed):
        b = GraphBuilder(seed=seed)
        x = b.input("x", (1, c, hw, hw), "int8")
        y = b.input("y", (1, c, hw, hw), "int8")
        graph = b.finish(b.add_requant(x, y, shift=1))
        soc = DianaSoC(enable_analog=False)
        cfg = HTVM.with_overrides(l1_budget=1024, check_l2=False)
        from repro.errors import TilingError
        try:
            model = compile_model(graph, soc, cfg)
        except TilingError:
            return
        feeds = random_inputs(graph, seed=seed)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))


class TestAnalogExecution:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 160), st.integers(1, 48),
           st.sampled_from([4, 8, 12]), st.integers(0, 2 ** 30))
    def test_analog_conv_bit_exact(self, c, k, hw, seed):
        # large C exercises the >1152-row macro block path
        b = GraphBuilder(seed=seed)
        x = b.input("x", (1, c, hw, hw), "int7")
        y = b.conv2d_requant(x, k, kernel=3, padding=(1, 1),
                             weight_dtype="ternary", shift=4,
                             out_dtype="int7")
        graph = b.finish(y)
        soc = DianaSoC(enable_digital=False)
        model = compile_model(graph, soc, HTVM.with_overrides(check_l2=False))
        comp_targets = [s.target for s in model.steps]
        assert "soc.analog" in comp_targets
        feeds = random_inputs(graph, seed=seed + 7)
        result = Executor(soc).run(model, feeds)
        np.testing.assert_array_equal(
            result.output, run_reference(model.graph, feeds))

    def test_analog_weight_load_charged_once(self):
        b = GraphBuilder(seed=0)
        x = b.input("x", (1, 16, 24, 24), "int7")
        graph = b.finish(b.conv2d_requant(
            x, 16, kernel=3, padding=(1, 1), weight_dtype="ternary",
            shift=4, out_dtype="int7"))
        soc = DianaSoC(enable_digital=False)
        # force row tiling with a small L1 budget
        model = compile_model(graph, soc, HTVM.with_overrides(
            l1_budget=8 * 1024, check_l2=False))
        result = Executor(soc).run(model, random_inputs(graph, seed=1))
        rec = [r for r in result.perf.records if r.target == "soc.analog"][0]
        assert rec.num_tiles > 1
        accel = soc.accelerator("soc.analog")
        spec = model.steps[0].spec
        expected = accel.weight_load_cycles(spec, 16, 16)
        assert rec.cycles["weight_dma"] == pytest.approx(expected)
