"""Baselines the paper compares against."""

from .naive_tiling import HeuristicComparison, compare_heuristics, solve_naive
from .tvm_cpu import compile_tvm_cpu, cpu_only_soc

__all__ = [
    "HeuristicComparison", "compare_heuristics", "solve_naive",
    "compile_tvm_cpu", "cpu_only_soc",
]
