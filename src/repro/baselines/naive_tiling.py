"""Hardware-agnostic tiling baseline (Fig. 4 round markers).

The baseline tiler maximizes only the memory-utilization term of Eq. 1
(``alpha * (L1_w + L1_in + L1_out)``) with no platform heuristics — the
"Only tile size" strategy in Fig. 4. Because accelerator utilization is
invisible to its objective, it happily picks tiles that leave PE
rows/columns idle or fragment DMA bursts; the comparison helpers here
quantify that against the heuristic tiler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dory.heuristics import digital_heuristics, no_heuristics
from ..dory.layer_spec import LayerSpec
from ..dory.tiler import DoryTiler
from ..dory.tiling_types import TilingSolution
from ..runtime.cost import cost_layer
from ..soc import DianaParams, get_platform


def solve_naive(spec: LayerSpec, l1_budget: int,
                params: Optional[DianaParams] = None,
                target: str = "soc.digital") -> TilingSolution:
    """Tile with the memory-only objective."""
    soc = get_platform("diana", params=params)
    tiler = DoryTiler(target, soc.params, no_heuristics(),
                      l1_budget=l1_budget)
    return tiler.solve(spec)


@dataclass
class HeuristicComparison:
    """Cycles of naive vs. heuristic tiling for one layer/budget."""

    spec_name: str
    l1_budget: int
    naive_cycles: float
    heuristic_cycles: float

    @property
    def speedup(self) -> float:
        return self.naive_cycles / self.heuristic_cycles


def compare_heuristics(spec: LayerSpec, l1_budget: int,
                       params: Optional[DianaParams] = None
                       ) -> HeuristicComparison:
    """Naive-vs-full-heuristic latency for one layer at one budget."""
    soc = get_platform("diana", params=params)
    accel = soc.accelerator("soc.digital")
    naive = DoryTiler("soc.digital", soc.params, no_heuristics(),
                      l1_budget=l1_budget).solve(spec)
    smart = DoryTiler("soc.digital", soc.params, digital_heuristics(),
                      l1_budget=l1_budget).solve(spec)
    return HeuristicComparison(
        spec_name=spec.name, l1_budget=l1_budget,
        naive_cycles=cost_layer(spec, naive, accel, soc.params).total_cycles,
        heuristic_cycles=cost_layer(spec, smart, accel, soc.params).total_cycles,
    )
