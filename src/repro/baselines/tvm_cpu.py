"""Plain-TVM baseline flow (Table I's "TVM" column).

Deploys everything on the RISC-V CPU: no pattern matching, no DORY, no
L2 buffer reuse, TVM's (larger) graph runtime. The helpers here exist
so benchmarks/ablations can invoke the baseline without assembling the
configuration by hand.
"""

from __future__ import annotations

from typing import Optional

from ..core.compiler import compile_model
from ..core.config import TVM_CPU
from ..core.program import CompiledModel
from ..ir import Graph
from ..soc import DianaParams, Platform, get_platform


def compile_tvm_cpu(graph: Graph, params: Optional[DianaParams] = None,
                    check_l2: bool = True) -> CompiledModel:
    """Compile with the plain-TVM CPU-only baseline flow.

    Raises :class:`~repro.errors.OutOfMemoryError` if the image plus the
    (reuse-free) activation arena exceed L2 — the paper's MobileNet OoM.
    """
    soc = cpu_only_soc(params=params)
    cfg = TVM_CPU if check_l2 else TVM_CPU.with_overrides(check_l2=False)
    return compile_model(graph, soc, cfg)


def cpu_only_soc(params: Optional[DianaParams] = None) -> Platform:
    """A DIANA with both accelerators fused off (CPU-only view).

    Keeps the ``diana`` platform identity (the baseline's historical
    fingerprints must not move); the registered ``diana-cpu`` platform
    is the DSE-facing variant with its own identity.
    """
    return get_platform("diana", params=params,
                        enable_digital=False, enable_analog=False)
