"""Cost model of the RISC-V host CPU executing TVM-generated kernels.

The RV32IMCFXpulpV2 core runs the operator-fused C kernels that TVM's
native lowering produces for everything not dispatched to an
accelerator. Throughput constants (cycles per MAC / per element) are
calibrated against the paper's Table I CPU column — e.g. ResNet-8 at
12.5 MMACs and 134.11 ms @ 260 MHz implies ~2.8 cycles/MAC for 8-bit
convolutions with XpulpV2 SIMD.
"""

from __future__ import annotations

from ..ir import Call, Graph, get_op
from .params import DianaParams


def _call_cycles(call: Call, params: DianaParams) -> float:
    op = call.op
    out_elems = call.ttype.num_elements
    if op == "nn.conv2d":
        macs = call.macs()
        groups = call.attrs["groups"]
        depthwise = groups > 1 and groups == call.inputs[0].shape[1]
        rate = (params.cpu_cycles_per_mac_dwconv if depthwise
                else params.cpu_cycles_per_mac_conv)
        return macs * rate
    if op == "nn.dense":
        return call.macs() * params.cpu_cycles_per_mac_dense
    if op in ("nn.avg_pool2d", "nn.max_pool2d", "nn.global_avg_pool2d"):
        window = 1
        if op != "nn.global_avg_pool2d":
            window = call.attrs["pool_size"][0] * call.attrs["pool_size"][1]
        else:
            window = call.inputs[0].shape[2] * call.inputs[0].shape[3]
        return out_elems * window * params.cpu_cycles_per_elem_pool / 4.0
    if op == "nn.softmax":
        return out_elems * params.cpu_cycles_per_elem_softmax
    if op in ("reshape", "nn.batch_flatten", "nn.pad", "concatenate"):
        return out_elems * params.cpu_cycles_per_elem_copy
    if get_op(op).is_elementwise:
        return out_elems * params.cpu_cycles_per_elem_simple
    return out_elems * params.cpu_cycles_per_elem_simple


class CpuModel:
    """Cycle accounting for fused CPU kernel bodies."""

    name = "cpu"

    def __init__(self, params: DianaParams):
        self.params = params

    def kernel_cycles(self, body: Graph) -> float:
        """Cycles for one fused kernel (sum over the body's calls).

        Fusion means elementwise tails are nearly free in reality; the
        model keeps a small per-op cost since the XpulpV2 core still
        executes the fused inner-loop epilogue per element.
        """
        total = 0.0
        for call in body.calls():
            total += _call_cycles(call, self.params)
        return total
