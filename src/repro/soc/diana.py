"""The assembled DIANA SoC: CPU + two accelerators + memory system.

:class:`DianaSoC` is the stock platform of the paper (Fig. 3), kept as
a thin :class:`~repro.soc.platform.Platform` subclass for backwards
compatibility. New code obtains platforms through the registry —
``get_platform("diana")`` — which is the single construction path for
every compiler/runtime entry point (see :mod:`repro.soc.registry`).
"""

from __future__ import annotations

from typing import Optional

from .analog import AnalogAccelerator
from .digital import DigitalAccelerator
from .params import DianaParams
from .platform import Platform


class DianaSoC(Platform):
    """The heterogeneous DIANA platform model (paper Fig. 3).

    ``enable_digital``/``enable_analog`` gate the two stock
    accelerators — the Table I single-accelerator columns fuse one of
    them off. The accelerator dict stays open so tests can still graft
    extra cores onto an instance, but registered
    :class:`~repro.soc.registry.PlatformSpec` variants are the
    supported way to describe new platforms.
    """

    def __init__(self, params: Optional[DianaParams] = None,
                 enable_digital: bool = True, enable_analog: bool = True):
        super().__init__(params=params, name="diana")
        if enable_digital:
            dig = DigitalAccelerator(self.params)
            self.accelerators[dig.name] = dig
        if enable_analog:
            ana = AnalogAccelerator(self.params)
            self.accelerators[ana.name] = ana

    def __repr__(self):
        return f"DianaSoC(accelerators={sorted(self.accelerators)})"
