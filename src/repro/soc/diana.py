"""The assembled DIANA SoC: CPU + two accelerators + memory system.

:class:`DianaSoC` is the platform object handed to the compiler (for
capability queries and cost-aware tiling) and to the runtime executor
(for functional simulation with cycle accounting).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import DispatchError
from .analog import AnalogAccelerator
from .cpu import CpuModel
from .digital import DigitalAccelerator
from .memory import MemoryRegion
from .params import DEFAULT_PARAMS, DianaParams


class DianaSoC:
    """The heterogeneous platform model (paper Fig. 3).

    Attributes:
        params: all architecture/calibration constants.
        cpu: RISC-V host model.
        accelerators: name -> accelerator model; DIANA has
            ``soc.digital`` and ``soc.analog``, but the dict is open so
            new platforms can register other accelerators (the paper:
            "HTVM is general enough to support a new off-the-shelf
            heterogeneous platform").
    """

    def __init__(self, params: Optional[DianaParams] = None,
                 enable_digital: bool = True, enable_analog: bool = True):
        self.params = params or DEFAULT_PARAMS
        self.cpu = CpuModel(self.params)
        self.accelerators: Dict[str, object] = {}
        if enable_digital:
            dig = DigitalAccelerator(self.params)
            self.accelerators[dig.name] = dig
        if enable_analog:
            ana = AnalogAccelerator(self.params)
            self.accelerators[ana.name] = ana

    def accelerator(self, name: str):
        try:
            return self.accelerators[name]
        except KeyError:
            raise DispatchError(
                f"platform has no accelerator {name!r}; "
                f"available: {sorted(self.accelerators)}"
            ) from None

    def fresh_l2(self) -> MemoryRegion:
        """A new empty L2 region (shared main memory)."""
        return MemoryRegion("L2", self.params.l2_bytes)

    def fresh_l1(self) -> MemoryRegion:
        """A new empty L1 region (shared accelerator activation memory)."""
        return MemoryRegion("L1", self.params.l1_bytes)

    def __repr__(self):
        return f"DianaSoC(accelerators={sorted(self.accelerators)})"
