"""DMA cost model for L2 <-> L1 / weight-memory transfers.

DIANA moves activation tiles and weights with a uDMA engine programmed
by the RISC-V host. A transfer of a sub-tensor is a sequence of 1D
bursts — one per contiguous chunk — so *strided* tiles (inner dimensions
narrower than the full tensor) cost extra per-chunk descriptor cycles.
This is the mechanism behind the paper's Eq. (5) heuristic ("minimize
non-contiguous input data transfers ... maximize the i_y dimension"):
tiles that keep the innermost dimensions whole need fewer chunks.
"""

from __future__ import annotations

from typing import Sequence

from .params import DianaParams


def contiguous_chunks(tensor_shape: Sequence[int],
                      tile_shape: Sequence[int]) -> int:
    """Number of contiguous 1D bursts needed to move a tile.

    The tile is an axis-aligned slice of a row-major tensor. Trailing
    dimensions that are copied whole merge into the burst; the first
    (innermost-to-outermost scan) dimension that is only partially
    covered splits the transfer into one burst per index of all outer
    dimensions.
    """
    if len(tensor_shape) != len(tile_shape):
        raise ValueError("tensor/tile rank mismatch")
    chunks = 1
    merged = True
    for full, tile in zip(reversed(list(tensor_shape)), reversed(list(tile_shape))):
        if tile > full:
            raise ValueError(f"tile dim {tile} exceeds tensor dim {full}")
        if merged:
            if tile == full:
                continue
            merged = False
            continue  # this (partial) dim starts the burst; outer dims multiply
        chunks *= tile
    return chunks


def transfer_cycles(num_bytes: int, chunks: int, params: DianaParams,
                    bandwidth: float = None) -> float:
    """Cycles for one DMA job of ``num_bytes`` in ``chunks`` bursts.

    ``bandwidth`` defaults to the (narrow) weight-path bandwidth;
    activation transfers pass ``params.dma_act_bytes_per_cycle``.
    """
    if num_bytes <= 0:
        return 0.0
    if bandwidth is None:
        bandwidth = params.dma_bytes_per_cycle
    return (params.dma_setup_cycles
            + chunks * params.dma_chunk_cycles
            + num_bytes / bandwidth)


def cross_core_transfer_legs(src: str, dst: str) -> int:
    """DMA legs of one cross-core activation hand-off (0 = free).

    * same core: 0 — the producer already left the tensor where the
      consumer wants it,
    * CPU <-> accelerator: 1 — the CPU reads/writes L2 directly,
    * accelerator <-> accelerator: 2 — drain + refill through L2.
    """
    if src == dst:
        return 0
    return 1 if "cpu" in (src, dst) else 2


def cross_core_transfer_cycles(num_bytes: int, src: str, dst: str,
                               params: DianaParams) -> float:
    """Cycles to hand one activation tensor from ``src`` to ``dst``.

    Used by the mapping engine as the inter-layer penalty of a
    heterogeneous assignment: a layer boundary that crosses cores pays
    a layout conversion (the digital core consumes C-y-x activations,
    the analog macro and the CPU kernels expect their own layouts) plus
    the uDMA traffic of staging the tensor through L2 — one leg per
    :func:`cross_core_transfer_legs`, plus a per-element repacking pass
    on the host.
    """
    legs = cross_core_transfer_legs(src, dst)
    if legs == 0 or num_bytes <= 0:
        return 0.0
    dma = legs * (params.dma_setup_cycles
                  + num_bytes / params.dma_act_bytes_per_cycle)
    repack = num_bytes * params.cpu_cycles_per_elem_copy
    return dma + repack


def tile_transfer_cycles(tensor_shape: Sequence[int],
                         tile_shape: Sequence[int],
                         elem_bytes: float,
                         params: DianaParams) -> float:
    """Cycles to DMA one activation tile between L2 and the shared L1."""
    num = 1
    for d in tile_shape:
        num *= d
    chunks = contiguous_chunks(tensor_shape, tile_shape)
    return transfer_cycles(int(num * elem_bytes), chunks, params,
                           bandwidth=params.dma_act_bytes_per_cycle)
