"""Model of DIANA's digital DNN accelerator.

A 2D SIMD array of 16x16 processing elements delivering up to 256 8-bit
MACs/cycle, with requantization/ReLU at the output and a private 64 kB
weight memory (paper Sec. III-C). Convolutions map input channels and
feature-width positions onto the 16 PE rows/columns, which is why the
tiling heuristics of Eqs. (3)-(4) reward tile sizes that are multiples
of 16 — partial blocks leave PE rows/columns idle.

The model is split into:

* capability checks (:meth:`DigitalAccelerator.supports`),
* a cycle model (:meth:`compute_cycles`, :meth:`weight_load_cycles`),
* a bit-exact functional kernel (:meth:`execute`) built on the shared
  numpy kernels, so tiled accelerator execution can be verified against
  the reference interpreter.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..dory.layer_spec import LayerSpec
from ..errors import SimulationError
from .. import numerics as K
from .params import DianaParams

TARGET = "soc.digital"


class DigitalAccelerator:
    """Cost + functional model of the 16x16 PE digital accelerator."""

    name = TARGET
    #: coarse-grained ops the hardware executes as one instruction.
    supported_kinds = ("conv2d", "dwconv2d", "dense", "add")
    #: weight precisions the datapath accepts.
    supported_weight_dtypes = ("int8",)
    #: activation precisions.
    supported_act_dtypes = ("int8", "int7")

    def __init__(self, params: DianaParams):
        self.params = params

    # -- capability -----------------------------------------------------------

    def supports(self, spec: LayerSpec) -> Tuple[bool, str]:
        """Accelerator-aware rule check (paper Sec. III-A).

        Verifies operator kind, bit precisions, and parameter ranges.
        Returns (ok, reason-if-not).
        """
        if spec.kind not in self.supported_kinds:
            return False, f"kind {spec.kind} not supported"
        if spec.kind != "add" and spec.weight_dtype not in self.supported_weight_dtypes:
            return False, f"weight dtype {spec.weight_dtype} not supported"
        if spec.in_dtype not in self.supported_act_dtypes:
            return False, f"activation dtype {spec.in_dtype} not supported"
        if spec.kind in ("conv2d", "dwconv2d"):
            if max(spec.fy, spec.fx) > 16:
                return False, "kernel size > 16 not supported"
            if max(spec.strides) > 4:
                return False, "stride > 4 not supported"
        if spec.shift < 0 or spec.shift > 31:
            return False, "requant shift out of range"
        return True, ""

    def fits_weight_memory(self, weight_tile_bytes: int) -> bool:
        return weight_tile_bytes <= self.params.dig_weight_bytes

    # -- cycle model ------------------------------------------------------------

    def compute_cycles(self, spec: LayerSpec, c_t: int, k_t: int,
                       oy_t: int, ox_t: int) -> float:
        """PE-array busy cycles for one tile.

        Conv2D: each cycle the array consumes 16 input channels x 16
        feature-width positions, iterating over output channels, rows
        and filter taps:
        ``K_t * oy_t * fy * fx * ceil(C_t/16) * ceil(ix_t/16)``.
        FC: input channels x output channels are unrolled on the array:
        ``ceil(C_t/16) * ceil(K_t/16)``.
        Depthwise: only one PE row is used (paper Sec. IV-B, peak 3.75
        MACs/cycle).
        """
        p = self.params
        if spec.kind == "conv2d":
            ix_t = min((ox_t - 1) * spec.strides[1] + spec.fx, spec.ix)
            return (k_t * oy_t * spec.fy * spec.fx
                    * math.ceil(c_t / p.dig_pe_rows)
                    * math.ceil(ix_t / p.dig_pe_cols))
        if spec.kind == "dwconv2d":
            ix_t = min((ox_t - 1) * spec.strides[1] + spec.fx, spec.ix)
            row_cycles = (c_t * oy_t * spec.fy * spec.fx
                          * math.ceil(ix_t / p.dig_pe_cols))
            # single PE row at reduced effective rate (peak 3.75 MACs/cycle)
            return row_cycles * (p.dig_pe_cols / p.dig_dw_macs_per_cycle)
        if spec.kind == "dense":
            return (math.ceil(c_t / p.dig_pe_rows)
                    * math.ceil(k_t / p.dig_pe_cols))
        if spec.kind == "add":
            return c_t * oy_t * ox_t / p.dig_simd_elems_per_cycle
        raise SimulationError(f"digital: unsupported kind {spec.kind}")

    def weight_tile_bytes(self, spec: LayerSpec, c_t: int, k_t: int) -> int:
        """int8 weight bytes for a (C_t, K_t) tile."""
        if spec.kind == "add":
            return 0
        if spec.kind == "dense":
            return k_t * c_t
        if spec.kind == "dwconv2d":
            return c_t * spec.fy * spec.fx
        return k_t * c_t * spec.fy * spec.fx

    def weight_load_cycles(self, weight_bytes: int) -> float:
        """DMA cycles to fill the weight memory for one tile."""
        if weight_bytes == 0:
            return 0.0
        p = self.params
        return p.dma_setup_cycles + weight_bytes / p.dma_bytes_per_cycle

    @property
    def job_overhead(self) -> int:
        return self.params.dig_job_overhead

    # -- functional model ---------------------------------------------------------

    def accumulate(self, spec: LayerSpec, x: np.ndarray, w: np.ndarray,
                   padding: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """int32 partial sums of one (possibly C-partial) MAC tile.

        When DORY tiles the input channels, the digital core writes raw
        int32 accumulator tiles to L1; requantization happens only on
        the last reduction block (:meth:`finalize`).
        """
        pad = spec.padding if padding is None else padding
        if spec.kind in ("conv2d", "dwconv2d"):
            groups = x.shape[1] if spec.is_depthwise else 1
            return K.conv2d(x, w, spec.strides, pad, groups)
        if spec.kind == "dense":
            return K.dense(x, w)
        raise SimulationError(f"digital: no MAC path for kind {spec.kind}")

    def finalize(self, spec: LayerSpec, acc: np.ndarray,
                 bias: Optional[np.ndarray]) -> np.ndarray:
        """Bias-add + requantization of a completed accumulator tile."""
        lo, hi = (-128, 127) if spec.out_dtype != "int7" else (-64, 63)
        return K.bias_requantize(acc, bias, spec.shift, spec.relu, lo, hi)

    def execute(self, spec: LayerSpec, x: np.ndarray,
                w: Optional[np.ndarray], bias: Optional[np.ndarray],
                y: Optional[np.ndarray] = None,
                padding: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """Bit-exact result of one coarse-grained digital instruction.

        ``x`` is the input tile (NCHW or NC), ``y`` the second operand
        for ``add`` layers. ``padding`` overrides the spec padding (tile
        interiors are not padded).

        MAC layers keep the raw accumulator in its exact MAC dtype and
        requantize through :func:`repro.numerics.requantize_acc` — the
        int32 bounce only happens when exactness is not provable. Tiled
        partial-sum execution (:meth:`accumulate`/:meth:`finalize`)
        still materializes int32 L1 tiles, as the hardware does.
        """
        if spec.kind == "add":
            if y is None:
                raise SimulationError("add layer needs two operands")
            return self.finalize(spec, K.add(x, y), bias)
        pad = spec.padding if padding is None else padding
        if spec.kind in ("conv2d", "dwconv2d"):
            groups = x.shape[1] if spec.is_depthwise else 1
            acc = K.conv2d_acc(x, w, spec.strides, pad, groups)
            reduction = w.shape[1] * w.shape[2] * w.shape[3]
        elif spec.kind == "dense":
            acc = K.dense_acc(x, w)
            reduction = x.shape[-1]
        else:
            raise SimulationError(f"digital: no MAC path for kind {spec.kind}")
        lo, hi = (-128, 127) if spec.out_dtype != "int7" else (-64, 63)
        # |int8 x int8| <= 2**14 per MAC: reduction << 14 bounds |acc|
        return K.requantize_acc(acc, bias, spec.shift, spec.relu, lo, hi,
                                acc_bound=reduction << 14)
