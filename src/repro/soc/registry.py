"""Platform plugin registry: declarative specs behind one coordinator.

The paper's generality claim (Sec. III-C) is that porting the compiler
to a new heterogeneous platform takes only hardware specs, heuristics
and platform instructions. This module is that porting surface:

* :class:`PlatformSpec` — a declarative description of one platform
  (name, calibration params, accelerator factories, energy model,
  selection heuristic), validated at registration time,
* :func:`register_platform` — decorator / function registration API,
* :func:`get_platform` — the coordinator every compiler, runtime,
  serving and eval entry point constructs platforms through. No module
  outside ``soc/`` instantiates :class:`~repro.soc.diana.DianaSoC`
  directly (guard-tested in ``tests/test_platforms.py``).

Plugins register in one of three ways:

1. import-time call / decorator (``examples/custom_accelerator.py``)::

       @register_platform
       def bignpu() -> PlatformSpec: ...

2. the ``REPRO_PLATFORMS`` environment variable — a comma-separated
   list of importable modules, imported lazily on the first unknown
   platform name, so CLI invocations can reach plugin platforms::

       REPRO_PLATFORMS=examples.custom_accelerator repro dse ...

3. Python entry points in the ``repro.platforms`` group (for installed
   plugin packages), also resolved lazily.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import PlatformError
from .analog import AnalogAccelerator
from .digital import DigitalAccelerator
from .energy import DEFAULT_ENERGY, EnergyParams
from .params import DEFAULT_PARAMS, DianaParams
from .platform import Platform

#: the stock platform; its fingerprints and outputs are the historical
#: baseline every refactor must keep bit-exact.
DEFAULT_PLATFORM = "diana"

#: entry-point group scanned for installed plugin platforms.
ENTRY_POINT_GROUP = "repro.platforms"

#: environment variable naming plugin modules to import (comma-sep).
PLATFORMS_ENV = "REPRO_PLATFORMS"

_NAME_RE = re.compile(r"^[a-z0-9][a-z0-9._-]*$")


@dataclass(frozen=True)
class PlatformSpec:
    """Declarative description of one heterogeneous platform.

    Attributes:
        name: registry identity (lowercase ``[a-z0-9._-]``); flows into
            config/model fingerprints and ``.dna`` artifacts.
        params: architecture + calibration constants, including the
            memory geometry (``l1_bytes``/``l2_bytes``/weight
            memories) every accelerator and the tiler read.
        accelerators: accelerator name -> factory. Each factory is
            called with the resolved ``params`` and must return an
            accelerator model exposing ``name``, ``supports(spec)``,
            the cycle-model hooks and (for simulation) ``execute``.
            Insertion order is preserved on the platform object.
        energy: the platform's energy constants.
        prefer: optional selection heuristic ``prefer(spec, accepted)
            -> name`` consulted by the rule-based mapper when several
            accelerators accept a layer (paper component 2).
        model_precision: the model-zoo precision variant this
            platform's accelerator mix is calibrated for — the DSE
            service and examples use it to pick matching quantized
            graphs (``"int8"``, ``"ternary"`` or ``"mixed"``).
        description: one line for ``repro platforms`` listings.
    """

    name: str
    params: DianaParams = DEFAULT_PARAMS
    accelerators: Mapping[str, Callable] = field(default_factory=dict)
    energy: EnergyParams = DEFAULT_ENERGY
    prefer: Optional[Callable] = None
    model_precision: str = "mixed"
    description: str = ""

    def with_overrides(self, **kwargs) -> "PlatformSpec":
        """A copy with selected fields replaced (for variant specs)."""
        return replace(self, **kwargs)


def validate_spec(spec: PlatformSpec) -> None:
    """Raise :class:`~repro.errors.PlatformError` on an invalid spec.

    Validation runs at registration time so a bad plugin fails at
    import, not mid-compile: name syntax, calibration-constant sanity
    (positive clock and memory geometry), callable factories with
    well-formed accelerator names, and a callable ``prefer`` hook.
    """
    if not isinstance(spec, PlatformSpec):
        raise PlatformError(
            f"register_platform needs a PlatformSpec, got {type(spec).__name__}")
    if not isinstance(spec.name, str) or not _NAME_RE.match(spec.name):
        raise PlatformError(
            f"invalid platform name {spec.name!r}: must be lowercase "
            "[a-z0-9._-] and start with a letter or digit")
    params = spec.params
    for attr in ("clock_hz", "l1_bytes", "l2_bytes"):
        value = getattr(params, attr, None)
        if not isinstance(value, (int, float)) or value <= 0:
            raise PlatformError(
                f"platform {spec.name!r}: params.{attr} must be a "
                f"positive number, got {value!r}")
    if not isinstance(spec.accelerators, Mapping):
        raise PlatformError(
            f"platform {spec.name!r}: accelerators must map name -> "
            f"factory, got {type(spec.accelerators).__name__}")
    for accel_name, factory in spec.accelerators.items():
        if not isinstance(accel_name, str) or not accel_name:
            raise PlatformError(
                f"platform {spec.name!r}: accelerator names must be "
                f"non-empty strings, got {accel_name!r}")
        if not callable(factory):
            raise PlatformError(
                f"platform {spec.name!r}: accelerator {accel_name!r} "
                f"factory is not callable ({factory!r})")
    if spec.prefer is not None and not callable(spec.prefer):
        raise PlatformError(
            f"platform {spec.name!r}: prefer hook is not callable")
    if spec.model_precision not in ("int8", "ternary", "mixed"):
        raise PlatformError(
            f"platform {spec.name!r}: model_precision must be "
            f"'int8', 'ternary' or 'mixed', got {spec.model_precision!r}")


_registry: Dict[str, PlatformSpec] = {}
_lock = threading.Lock()
_plugins_loaded = False


def register_platform(spec_or_factory=None, *, replace: bool = False):
    """Register one platform spec; returns the argument unchanged.

    Three forms::

        register_platform(PlatformSpec(name="npu", ...))   # direct

        @register_platform                                  # decorator
        def my_platform() -> PlatformSpec: ...

        register_platform(my_spec, replace=True)            # overwrite

    The decorator form calls the function once at decoration time and
    registers its result, so importing a plugin module is enough to
    make its platforms resolvable. Duplicate names raise
    :class:`~repro.errors.PlatformError` unless ``replace=True``.
    """
    if spec_or_factory is None:
        # @register_platform(replace=True) parameterized-decorator form
        def _decorator(factory):
            return register_platform(factory, replace=replace)
        return _decorator

    spec = spec_or_factory() if callable(spec_or_factory) else spec_or_factory
    validate_spec(spec)
    with _lock:
        if not replace and spec.name in _registry:
            raise PlatformError(
                f"platform {spec.name!r} is already registered; pass "
                "replace=True to overwrite")
        _registry[spec.name] = spec
    return spec_or_factory


def unregister_platform(name: str) -> None:
    """Remove one registered platform (plugin teardown / tests)."""
    if name == DEFAULT_PLATFORM:
        raise PlatformError(f"cannot unregister the default platform "
                            f"{DEFAULT_PLATFORM!r}")
    with _lock:
        _registry.pop(name, None)


def platform_names() -> List[str]:
    """Sorted names of every registered platform (plugins included)."""
    _load_plugins()
    with _lock:
        return sorted(_registry)


def get_platform_spec(name: str = DEFAULT_PLATFORM) -> PlatformSpec:
    """Look up one registered spec; loads plugins on a first miss."""
    with _lock:
        spec = _registry.get(name)
    if spec is None:
        _load_plugins()
        with _lock:
            spec = _registry.get(name)
    if spec is None:
        raise PlatformError(
            f"unknown platform {name!r}; registered: "
            f"{sorted(_registry)} (plugins register via "
            f"repro.soc.register_platform, the {PLATFORMS_ENV} "
            f"environment variable, or {ENTRY_POINT_GROUP!r} entry "
            "points)")
    return spec


def get_platform(name: str = DEFAULT_PLATFORM,
                 params: Optional[DianaParams] = None,
                 *,
                 enable_digital: bool = True,
                 enable_analog: bool = True,
                 accelerators: Optional[Iterable[str]] = None) -> Platform:
    """Construct one platform instance — the single construction path.

    Args:
        name: a registered platform name (``repro platforms`` lists
            them; unknown names trigger lazy plugin loading first).
        params: calibration-constant override (ablations/sweeps); the
            spec's own params otherwise.
        enable_digital / enable_analog: legacy accelerator gates kept
            for the Table I single-accelerator columns — they drop the
            stock ``soc.digital`` / ``soc.analog`` entries from the
            accelerator set when present (no-ops on platforms without
            them).
        accelerators: optional explicit accelerator-name subset (the
            artifact loader uses it to reconstruct exactly the packed
            accelerator set).

    Returns a :class:`~repro.soc.platform.Platform` carrying the
    spec's identity, so compiled-model fingerprints and ``.dna``
    artifacts key on the platform name.
    """
    spec = get_platform_spec(name)
    effective = params if params is not None else spec.params

    selected: List[Tuple[str, Callable]] = list(spec.accelerators.items())
    if accelerators is not None:
        wanted = set(accelerators)
        unknown = wanted - {n for n, _ in selected}
        if unknown:
            raise PlatformError(
                f"platform {name!r} has no accelerator(s) "
                f"{sorted(unknown)}; spec provides "
                f"{sorted(spec.accelerators)}")
        selected = [(n, f) for n, f in selected if n in wanted]
    if not enable_digital:
        selected = [(n, f) for n, f in selected if n != "soc.digital"]
    if not enable_analog:
        selected = [(n, f) for n, f in selected if n != "soc.analog"]

    built = {}
    for accel_name, factory in selected:
        accel = factory(effective)
        if getattr(accel, "name", accel_name) != accel_name:
            raise PlatformError(
                f"platform {name!r}: factory for {accel_name!r} built "
                f"an accelerator named {accel.name!r}")
        built[accel_name] = accel
    return Platform(params=effective, accelerators=built, name=spec.name,
                    energy=spec.energy, prefer=spec.prefer)


def _load_plugins() -> None:
    """Import plugin modules named by env var / entry points, once."""
    global _plugins_loaded
    if _plugins_loaded:
        return
    _plugins_loaded = True

    import importlib

    for mod in os.environ.get(PLATFORMS_ENV, "").split(","):
        mod = mod.strip()
        if not mod:
            continue
        try:
            importlib.import_module(mod)
        except Exception as exc:  # noqa: BLE001 — a broken plugin must
            # not take down the host process; surface it and move on
            import warnings
            warnings.warn(f"{PLATFORMS_ENV}: could not import platform "
                          f"plugin module {mod!r}: {exc}", stacklevel=2)
    try:
        from importlib.metadata import entry_points
        eps = entry_points()
        group = (eps.select(group=ENTRY_POINT_GROUP)
                 if hasattr(eps, "select")
                 else eps.get(ENTRY_POINT_GROUP, ()))
        for ep in group:
            try:
                ep.load()
            except Exception as exc:  # noqa: BLE001
                import warnings
                warnings.warn(f"entry point {ep.name!r} "
                              f"({ENTRY_POINT_GROUP}): {exc}", stacklevel=2)
    except Exception:  # noqa: BLE001 — no metadata backend available
        pass


# ---------------------------------------------------------------------------
# built-in platforms: the stock DIANA plus its single-accelerator
# ablation pair (and the CPU-only view the plain-TVM baseline uses)
# ---------------------------------------------------------------------------

register_platform(PlatformSpec(
    name="diana",
    params=DEFAULT_PARAMS,
    accelerators={"soc.digital": DigitalAccelerator,
                  "soc.analog": AnalogAccelerator},
    model_precision="mixed",
    description="stock DIANA: 16x16 digital PE array + 1152x512 "
                "analog IMC macro (paper Fig. 3)",
))

register_platform(PlatformSpec(
    name="diana-noanalog",
    params=DEFAULT_PARAMS,
    accelerators={"soc.digital": DigitalAccelerator},
    model_precision="int8",
    description="ablation: digital accelerator only (Table I "
                "'digital' column)",
))

register_platform(PlatformSpec(
    name="diana-nodig",
    params=DEFAULT_PARAMS,
    accelerators={"soc.analog": AnalogAccelerator},
    model_precision="ternary",
    description="ablation: analog IMC accelerator only (Table I "
                "'analog' column)",
))

register_platform(PlatformSpec(
    name="diana-cpu",
    params=DEFAULT_PARAMS,
    accelerators={},
    model_precision="int8",
    description="CPU-only view (plain-TVM baseline; both "
                "accelerators fused off)",
))
