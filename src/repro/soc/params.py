"""All cost-model calibration constants for the simulated DIANA SoC.

Every latency / size number the simulator produces is derived from the
constants in this module. Architectural constants (memory sizes, array
dimensions, clock) are taken directly from the paper and the DIANA ISSCC
paper [Ueyoshi et al., 2022]; throughput/overhead constants are
calibrated so the *relative* results of the paper's evaluation (Fig. 4,
Fig. 5, Tables I-II) hold. EXPERIMENTS.md records paper-vs-measured for
each.

Sources for the architectural facts (paper Sec. III-C / Fig. 3):

* RISC-V RV32IMCFXpulpV2 host at 260 MHz,
* digital accelerator: 16x16 PE array, 256 8-bit MACs/cycle peak,
* analog accelerator: 1152x512 in-memory-compute array, 7-bit inputs,
  ternary weights,
* 256 kB shared L1 activation memory, 64 kB digital weight memory,
  144 kB analog weight memory (= 1152*512 ternary cells),
* 512 kB shared L2 memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class DianaParams:
    """Architecture + calibration constants of the simulated platform."""

    # ---- architecture (from the paper) ------------------------------------
    clock_hz: float = 260e6
    l1_bytes: int = 256 * 1024          #: shared accelerator activation L1
    l2_bytes: int = 512 * 1024          #: shared main memory (activations + spill)
    dig_weight_bytes: int = 64 * 1024   #: digital accelerator weight memory
    dig_pe_rows: int = 16               #: PE array rows (input-channel dim)
    dig_pe_cols: int = 16               #: PE array cols (feature-width dim)
    ana_rows: int = 1152                #: IMC macro rows (C*fy*fx dim)
    ana_cols: int = 512                 #: IMC macro cols (K dim)

    # ---- DMA (L2 <-> L1 / weight memories) --------------------------------
    #: weight-path DMA bandwidth (L2 -> accelerator weight memories);
    #: the private weight SRAMs have a narrow write port.
    dma_bytes_per_cycle: float = 4.0
    #: activation-path DMA bandwidth (L2 <-> shared L1, wide TCDM port).
    dma_act_bytes_per_cycle: float = 16.0
    #: fixed cycles per DMA job (programming the uDMA).
    dma_setup_cycles: int = 40
    #: extra cycles per non-contiguous chunk (1D burst descriptor).
    dma_chunk_cycles: int = 12

    # ---- digital accelerator ----------------------------------------------
    #: fixed cycles per offloaded job (trigger + handshake + drain).
    dig_job_overhead: int = 700
    #: effective peak MACs/cycle for depthwise conv (paper Sec. IV-B:
    #: "one row of PEs ... at a maximum peak throughput of 3.75 MACs/cycle").
    dig_dw_macs_per_cycle: float = 3.75
    #: SIMD elementwise throughput (adds, requant) in elements/cycle.
    dig_simd_elems_per_cycle: float = 8.0

    # ---- analog accelerator -----------------------------------------------
    #: fixed cycles per offloaded job (incl. analog bias/settling setup).
    ana_job_overhead: int = 1500
    #: cycles to program one row of the IMC macro with ternary weights.
    ana_row_write_cycles: float = 60.0
    #: cycles per output-pixel macro activation (DAC/ADC + settling).
    ana_pixel_cycles: float = 20.0
    #: L2 storage row padding for spatial convolutions (paper: "some layer
    #: dimensions require padding the L2 memory with zeros to fill a part
    #: of the large IMC macro").
    ana_row_pad_conv: int = 1152
    #: L2 storage row padding for 1x1 convolutions / FC layers.
    ana_row_pad_pw: int = 288

    # ---- RISC-V CPU kernel throughput (TVM-generated, -O3, XpulpV2) -------
    cpu_cycles_per_mac_conv: float = 2.8
    cpu_cycles_per_mac_dwconv: float = 10.0
    cpu_cycles_per_mac_dense: float = 4.6
    cpu_cycles_per_elem_simple: float = 2.0     #: add/clip/shift/cast chains
    cpu_cycles_per_elem_pool: float = 3.0
    cpu_cycles_per_elem_softmax: float = 40.0
    cpu_cycles_per_elem_copy: float = 0.75      #: reshape/layout copies

    # ---- HTVM runtime (paper Sec. IV-B: "full kernel call ... measured
    # between the call and return on the RISC-V host") -----------------------
    #: cycles of runtime dispatch per kernel call (argument marshalling,
    #: L2 allocator bookkeeping).
    runtime_call_overhead: int = 450
    #: CPU cycles per tile iteration for loop management + DMA issue.
    tile_loop_overhead: int = 120

    # ---- binary size model (bytes) -----------------------------------------
    #: base runtime footprint of a plain TVM deployment (graph runtime).
    size_tvm_runtime: int = 16 * 1024
    #: base runtime footprint of HTVM's "low-overhead runtime".
    size_htvm_runtime: int = 10 * 1024
    #: compiled size of one unique TVM CPU kernel, by kind.
    size_cpu_kernel: dict = field(default_factory=lambda: {
        "conv2d": 3500, "dwconv2d": 2000, "dense": 1200,
        "pool": 600, "softmax": 800, "add": 500, "elementwise": 350,
        "copy": 120,
    })
    #: compiled size of one DORY accelerator layer driver, by target.
    #: Analog drivers are bigger: they embed the per-layer macro
    #: configuration (row/column mapping tables, DAC/ADC setup).
    size_accel_driver: dict = field(default_factory=lambda: {
        "soc.digital": 1600, "soc.analog": 3000,
    })

    def with_overrides(self, **kwargs) -> "DianaParams":
        """A copy with selected constants replaced (for ablations)."""
        return replace(self, **kwargs)


#: The default calibrated parameter set used throughout the benchmarks.
DEFAULT_PARAMS = DianaParams()


def latency_ms(cycles: float, params: DianaParams = DEFAULT_PARAMS) -> float:
    """Convert simulated cycles to milliseconds at the platform clock."""
    return cycles / params.clock_hz * 1e3
