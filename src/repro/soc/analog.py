"""Model of DIANA's analog in-memory-compute (AiMC) accelerator.

An array of 1152x512 SRAM-based compute cells executing MACs with 7-bit
inputs and ternary weights (paper Sec. III-C). A convolution maps its
reduction dimension (C * fy * fx) onto the rows and its output channels
(K) onto the columns, so "to maximize analog accelerator utilization, we
spatially unroll C and K as much as possible". One macro activation
produces partial sums for all mapped columns; throughput peaks near
500k MACs/cycle when the array is full.

Weights must be (re)programmed into the macro for every layer — the
paper attributes the analog core's end-to-end losses partly to "the
overhead of filling the analog accelerator weight memory for each
layer" — modelled as a per-row write cost.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ..dory.layer_spec import LayerSpec
from ..errors import SimulationError
from .. import numerics as K
from .params import DianaParams

TARGET = "soc.analog"


class AnalogAccelerator:
    """Cost + functional model of the 1152x512 AiMC accelerator."""

    name = TARGET
    #: the analog core executes Conv2D (and FC-as-Conv2D) plus residual
    #: adds; depthwise conv is NOT supported (paper Sec. IV-C).
    supported_kinds = ("conv2d", "dense", "add")
    supported_weight_dtypes = ("ternary",)
    supported_act_dtypes = ("int7",)

    def __init__(self, params: DianaParams):
        self.params = params

    # -- capability -----------------------------------------------------------

    def supports(self, spec: LayerSpec) -> Tuple[bool, str]:
        """Accelerator-aware rule check for the analog core."""
        if spec.kind not in self.supported_kinds:
            return False, f"kind {spec.kind} not supported"
        if spec.kind != "add":
            if spec.weight_dtype not in self.supported_weight_dtypes:
                return False, f"weight dtype {spec.weight_dtype} not supported"
            if spec.in_dtype not in self.supported_act_dtypes:
                return False, f"activation dtype {spec.in_dtype} not supported (7-bit inputs)"
        if spec.kind == "conv2d" and max(spec.fy, spec.fx) > 16:
            return False, "kernel size > 16 not supported"
        return True, ""

    # -- mapping ----------------------------------------------------------------

    def mapped_rows(self, spec: LayerSpec, c_t: int) -> int:
        """Macro rows consumed by a (partial) reduction of ``c_t`` channels."""
        if spec.kind == "dense":
            return c_t
        return c_t * spec.fy * spec.fx

    def row_blocks(self, spec: LayerSpec, c_t: int) -> int:
        """Macro reloads needed when the reduction exceeds 1152 rows."""
        return math.ceil(self.mapped_rows(spec, c_t) / self.params.ana_rows)

    def col_blocks(self, k_t: int) -> int:
        return math.ceil(k_t / self.params.ana_cols)

    # -- cycle model --------------------------------------------------------------

    def compute_cycles(self, spec: LayerSpec, c_t: int, k_t: int,
                       oy_t: int, ox_t: int) -> float:
        """Macro activation cycles for one tile.

        One activation per output pixel per (row-block, col-block);
        each costs ``ana_pixel_cycles`` (DAC, analog settle, ADC).
        """
        p = self.params
        if spec.kind == "add":
            return c_t * oy_t * ox_t / 16.0  # near-memory SIMD path
        blocks = self.row_blocks(spec, c_t) * self.col_blocks(k_t)
        pixels = oy_t * ox_t if spec.kind == "conv2d" else 1
        return pixels * blocks * p.ana_pixel_cycles

    def weight_load_cycles(self, spec: LayerSpec, c_t: int, k_t: int) -> float:
        """Cycles to program the macro with a tile's ternary weights."""
        if spec.kind == "add":
            return 0.0
        rows = min(self.mapped_rows(spec, c_t),
                   self.params.ana_rows * self.row_blocks(spec, c_t))
        return rows * self.col_blocks(k_t) * self.params.ana_row_write_cycles

    def weight_storage_bytes(self, spec: LayerSpec) -> int:
        """L2 bytes of the layer's ternary weights, with macro padding.

        Spatial convolutions pad the reduction rows to the full macro
        height; 1x1/FC layers use a quadrant-granular layout (see
        DESIGN.md for the calibration discussion).
        """
        p = self.params
        if spec.kind == "add":
            return 0
        rows = self.mapped_rows(spec, spec.in_channels)
        pad = (p.ana_row_pad_conv
               if (spec.kind == "conv2d" and spec.fy * spec.fx > 1)
               else p.ana_row_pad_pw)
        padded = math.ceil(rows / pad) * pad
        # 2-bit packed ternary cells
        return (padded * spec.out_channels * 2 + 7) // 8

    @property
    def job_overhead(self) -> int:
        return self.params.ana_job_overhead

    # -- functional model -----------------------------------------------------------

    def execute(self, spec: LayerSpec, x: np.ndarray,
                w: Optional[np.ndarray], bias: Optional[np.ndarray],
                y: Optional[np.ndarray] = None,
                padding: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """Bit-exact result of one analog layer invocation.

        The simulator computes the ideal (noise-free) integer result;
        see :meth:`execute_noisy` for the optional analog-noise model.
        Inputs are range-checked against the 7-bit datapath.
        """
        if spec.kind == "add":
            if y is None:
                raise SimulationError("add layer needs two operands")
            return self.finalize(spec, K.add(x, y), bias)
        pad = spec.padding if padding is None else padding
        self._check_operands(x, w)
        if spec.kind == "conv2d":
            acc = K.conv2d_acc(x, w, spec.strides, pad, 1)
            reduction = w.shape[1] * w.shape[2] * w.shape[3]
        elif spec.kind == "dense":
            acc = K.dense_acc(x, w)
            reduction = x.shape[-1]
        else:
            raise SimulationError(f"analog: no MAC path for kind {spec.kind}")
        lo, hi = (-64, 63) if spec.out_dtype == "int7" else (-128, 127)
        # |int7 x ternary| <= 2**14 per MAC (loose but safe bound)
        return K.requantize_acc(acc, bias, spec.shift, spec.relu, lo, hi,
                                acc_bound=reduction << 14)

    def _check_operands(self, x: np.ndarray, w: Optional[np.ndarray]):
        """Range-check operands against the 7-bit/ternary datapath."""
        if x.min() < -64 or x.max() > 63:
            raise SimulationError(
                f"analog input exceeds 7-bit range: [{x.min()}, {x.max()}]")
        if w is not None and (w.min() < -1 or w.max() > 1):
            raise SimulationError("analog weights must be ternary")

    def accumulate(self, spec: LayerSpec, x: np.ndarray, w: np.ndarray,
                   padding: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """int32 partial sums of one MAC tile (7-bit inputs, ternary w)."""
        pad = spec.padding if padding is None else padding
        self._check_operands(x, w)
        if spec.kind == "conv2d":
            return K.conv2d(x, w, spec.strides, pad, 1)
        if spec.kind == "dense":
            return K.dense(x, w)
        raise SimulationError(f"analog: no MAC path for kind {spec.kind}")

    def finalize(self, spec: LayerSpec, acc: np.ndarray,
                 bias: Optional[np.ndarray]) -> np.ndarray:
        """Bias-add + requantization of a completed accumulator tile."""
        lo, hi = (-64, 63) if spec.out_dtype == "int7" else (-128, 127)
        return K.bias_requantize(acc, bias, spec.shift, spec.relu, lo, hi)

    def execute_noisy(self, spec: LayerSpec, x: np.ndarray,
                      w: Optional[np.ndarray], bias: Optional[np.ndarray],
                      noise_sigma: float, rng: np.random.Generator,
                      padding: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """Analog execution with additive Gaussian accumulator noise.

        Models AiMC non-idealities (an extension beyond the paper's
        latency study; useful for accuracy-impact experiments). Noise is
        added to the int32 accumulator before requantization, scaled by
        ``noise_sigma`` standard deviations per mapped row.
        """
        pad = spec.padding if padding is None else padding
        if spec.kind == "conv2d":
            acc = K.conv2d(x, w, spec.strides, pad, 1)
        elif spec.kind == "dense":
            acc = K.dense(x, w)
        else:
            raise SimulationError("noisy path models MAC layers only")
        if bias is not None:
            acc = K.bias_add(acc, bias, axis=1)
        rows = self.mapped_rows(spec, spec.in_channels)
        noise = rng.normal(0.0, noise_sigma * math.sqrt(rows), acc.shape)
        acc = acc + np.rint(noise).astype(np.int32)
        lo, hi = (-64, 63) if spec.out_dtype == "int7" else (-128, 127)
        return K.requantize(acc, spec.shift, spec.relu, lo, hi)
