"""The generic heterogeneous platform model.

:class:`Platform` is the object the compiler (capability queries,
cost-aware tiling), the mapping engine (candidate pricing) and the
runtime executor (functional simulation with cycle accounting) all
receive. It is deliberately small: calibration constants live in
:class:`~repro.soc.params.DianaParams`, per-accelerator behavior lives
in the accelerator models, and *which* accelerators a platform carries
is decided by the :mod:`~repro.soc.registry` from a declarative
:class:`~repro.soc.registry.PlatformSpec`.

The paper's generality claim (Sec. III-C) — "to support a specific
heterogeneous platform, the user has to provide to HTVM only three
components: (1) the hardware specifications ..., (2) the heuristics
..., and (3) the platform-specific instructions" — maps onto this
class as: (1) ``params`` + each accelerator's ``supports``/cycle
model, (2) the optional ``prefer`` selection heuristic, and (3) the
accelerator ``execute`` kernels.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import DispatchError
from .cpu import CpuModel
from .energy import DEFAULT_ENERGY, EnergyParams
from .memory import MemoryRegion
from .params import DEFAULT_PARAMS, DianaParams


class Platform:
    """One assembled heterogeneous platform: CPU + accelerators + memories.

    Attributes:
        name: registry identity (``"diana"`` for the stock SoC). Flows
            into compiled-model fingerprints, ``.dna`` artifacts and
            the native build-cache key for non-default platforms.
        params: all architecture/calibration constants (memory
            geometry, clocks, DMA and kernel throughput).
        cpu: the host CPU model (always present).
        accelerators: name -> accelerator model. The dict is open: the
            registry populates it from the platform spec's factories,
            so new platforms can carry any accelerator set.
        energy: the platform's energy constants.
        prefer: optional multi-accelerator selection heuristic with
            signature ``prefer(spec, accepted_names) -> name``; the
            rule-based mapper consults it when set (paper component 2).
    """

    def __init__(self, params: Optional[DianaParams] = None,
                 accelerators: Optional[Dict[str, object]] = None,
                 name: str = "custom",
                 energy: EnergyParams = DEFAULT_ENERGY,
                 prefer: Optional[Callable] = None):
        self.name = name
        self.params = params or DEFAULT_PARAMS
        self.cpu = CpuModel(self.params)
        self.accelerators: Dict[str, object] = dict(accelerators or {})
        self.energy = energy
        self.prefer = prefer

    def accelerator(self, name: str):
        try:
            return self.accelerators[name]
        except KeyError:
            raise DispatchError(
                f"platform has no accelerator {name!r}; "
                f"available: {sorted(self.accelerators)}"
            ) from None

    def fresh_l2(self) -> MemoryRegion:
        """A new empty L2 region (shared main memory)."""
        return MemoryRegion("L2", self.params.l2_bytes)

    def fresh_l1(self) -> MemoryRegion:
        """A new empty L1 region (shared accelerator activation memory)."""
        return MemoryRegion("L1", self.params.l1_bytes)

    def __repr__(self):
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"accelerators={sorted(self.accelerators)})")
