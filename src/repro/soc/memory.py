"""Memory regions of the simulated SoC.

A :class:`MemoryRegion` tracks capacity and current usage; allocation
failures raise :class:`~repro.errors.OutOfMemoryError`, which is how the
simulator reproduces the paper's MobileNet-on-plain-TVM OoM result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import OutOfMemoryError


@dataclass
class Allocation:
    """A live allocation inside a region."""

    name: str
    offset: int
    size: int


class MemoryRegion:
    """A fixed-capacity memory with simple bump allocation + free.

    The runtime executor follows the *compiler's* memory plan (offsets
    are computed ahead of time); this class enforces that the plan never
    exceeds capacity at execution time, and is used directly for
    unplanned (baseline) allocation behaviour.
    """

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = int(capacity)
        self.allocations: Dict[str, Allocation] = {}
        self._cursor = 0  # monotonic bump pointer for unplanned alloc()

    @property
    def used(self) -> int:
        return sum(a.size for a in self.allocations.values())

    @property
    def high_water(self) -> int:
        if not self.allocations:
            return 0
        return max(a.offset + a.size for a in self.allocations.values())

    def place(self, name: str, offset: int, size: int) -> Allocation:
        """Register a planned allocation at a fixed offset."""
        if offset < 0 or offset + size > self.capacity:
            raise OutOfMemoryError(
                f"{self.name}: planned allocation {name!r} "
                f"[{offset}, {offset + size}) exceeds capacity {self.capacity}"
            )
        alloc = Allocation(name, offset, size)
        self.allocations[name] = alloc
        return alloc

    def alloc(self, name: str, size: int) -> Allocation:
        """Unplanned allocation: bump-allocate, never reusing space.

        This models a naive runtime allocator with no buffer reuse (the
        plain-TVM baseline behaviour in Table I): freeing returns the
        bytes to accounting but the bump pointer never rewinds.
        """
        offset = max(self._cursor, self.high_water)
        if offset + size > self.capacity:
            raise OutOfMemoryError(
                f"{self.name}: cannot allocate {size} bytes for {name!r} "
                f"({offset} of {self.capacity} bytes in use)"
            )
        alloc = Allocation(name, offset, size)
        self.allocations[name] = alloc
        self._cursor = offset + size
        return alloc

    def free(self, name: str):
        self.allocations.pop(name, None)

    def reset(self):
        self.allocations.clear()
        self._cursor = 0

    def __repr__(self):
        return (f"MemoryRegion({self.name}, {self.used}/{self.capacity} B, "
                f"{len(self.allocations)} allocs)")
