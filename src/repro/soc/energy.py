"""Energy model for the simulated DIANA SoC (extension experiment).

The HTVM paper evaluates latency and binary size; the underlying DIANA
ISSCC paper [Ueyoshi et al., 2022] motivates the heterogeneous design
with *energy*: the analog in-memory-compute core delivers roughly an
order of magnitude better energy per MAC than the digital core, which
in turn beats the CPU by more than an order of magnitude (the paper's
introduction: accelerators reduce "energy consumption by more than one
order of magnitude compared to general-purpose processors").

This module converts the executor's cycle/MAC accounting into energy
estimates so deployments can also be compared on energy — an extension
that follows directly from the paper's motivation. Constants are
order-of-magnitude figures for a 22 nm-class TinyML SoC and are
documented per term; they are *not* calibrated against silicon
measurements (none are published per-network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .params import DianaParams
from .perf import KernelRecord, PerfCounters


@dataclass(frozen=True)
class EnergyParams:
    """Energy constants (picojoules)."""

    #: CPU core energy per cycle (RISC-V @ 260 MHz, ~40 uW/MHz class).
    cpu_pj_per_cycle: float = 160.0
    #: digital accelerator energy per 8-bit MAC.
    digital_pj_per_mac: float = 0.35
    #: analog IMC energy per MAC (ternary, charge-domain).
    analog_pj_per_mac: float = 0.04
    #: accelerator static/control energy per busy cycle.
    accel_pj_per_cycle: float = 25.0
    #: DMA energy per byte moved between L2 and L1 / weight memories.
    dma_pj_per_byte: float = 1.2
    #: host-side energy per cycle spent in runtime / tile loops.
    host_pj_per_cycle: float = 160.0
    #: L2 leakage per cycle of total execution.
    leakage_pj_per_cycle: float = 12.0


DEFAULT_ENERGY = EnergyParams()


def kernel_energy_pj(rec: KernelRecord, soc_params: DianaParams,
                     energy: EnergyParams = DEFAULT_ENERGY) -> float:
    """Energy estimate of one kernel record, by category."""
    total = 0.0
    if rec.target == "cpu":
        return rec.total_cycles * energy.cpu_pj_per_cycle
    if rec.target == "soc.analog":
        total += rec.macs * energy.analog_pj_per_mac
    else:
        total += rec.macs * energy.digital_pj_per_mac
    compute_cycles = rec.cycles.get("accel_compute", 0.0)
    total += compute_cycles * energy.accel_pj_per_cycle
    dma_cycles = (rec.cycles.get("act_dma", 0.0)
                  + rec.cycles.get("weight_dma", 0.0))
    total += dma_cycles * soc_params.dma_bytes_per_cycle * energy.dma_pj_per_byte
    host_cycles = (rec.cycles.get("runtime", 0.0)
                   + rec.cycles.get("tile_loop", 0.0))
    total += host_cycles * energy.host_pj_per_cycle
    return total


def execution_energy_uj(perf: PerfCounters, soc_params: DianaParams,
                        energy: EnergyParams = DEFAULT_ENERGY) -> float:
    """Total inference energy in microjoules."""
    pj = sum(kernel_energy_pj(r, soc_params, energy) for r in perf.records)
    pj += perf.total_cycles * energy.leakage_pj_per_cycle
    return pj / 1e6


def energy_by_target_uj(perf: PerfCounters, soc_params: DianaParams,
                        energy: EnergyParams = DEFAULT_ENERGY
                        ) -> Dict[str, float]:
    """Energy split per execution target, in microjoules."""
    out: Dict[str, float] = {}
    for rec in perf.records:
        out[rec.target] = out.get(rec.target, 0.0) + kernel_energy_pj(
            rec, soc_params, energy) / 1e6
    return out
