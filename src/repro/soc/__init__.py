"""Simulated DIANA SoC: CPU, digital and analog accelerators, memories."""

from .params import DEFAULT_PARAMS, DianaParams, latency_ms
from .memory import Allocation, MemoryRegion
from .dma import contiguous_chunks, tile_transfer_cycles, transfer_cycles
from .perf import KernelRecord, PerfCounters
from .cpu import CpuModel
from .digital import DigitalAccelerator
from .analog import AnalogAccelerator
from .diana import DianaSoC
from .energy import (
    DEFAULT_ENERGY, EnergyParams, energy_by_target_uj, execution_energy_uj,
    kernel_energy_pj,
)

__all__ = [
    "DEFAULT_PARAMS", "DianaParams", "latency_ms",
    "Allocation", "MemoryRegion",
    "contiguous_chunks", "tile_transfer_cycles", "transfer_cycles",
    "KernelRecord", "PerfCounters",
    "CpuModel", "DigitalAccelerator", "AnalogAccelerator", "DianaSoC",
    "DEFAULT_ENERGY", "EnergyParams", "energy_by_target_uj",
    "execution_energy_uj", "kernel_energy_pj",
]
