"""Simulated heterogeneous platforms: CPU, accelerators, memories.

The stock platform is the DIANA SoC of the paper; additional platforms
register declaratively through :mod:`repro.soc.registry` and are
constructed via :func:`get_platform` — the single construction path
used by the compiler, runtime, serving, and eval layers.
"""

from .params import DEFAULT_PARAMS, DianaParams, latency_ms
from .memory import Allocation, MemoryRegion
from .dma import contiguous_chunks, tile_transfer_cycles, transfer_cycles
from .perf import KernelRecord, PerfCounters
from .cpu import CpuModel
from .digital import DigitalAccelerator
from .analog import AnalogAccelerator
from .platform import Platform
from .diana import DianaSoC
from .registry import (
    DEFAULT_PLATFORM, PlatformSpec, get_platform, get_platform_spec,
    platform_names, register_platform, unregister_platform, validate_spec,
)
from .energy import (
    DEFAULT_ENERGY, EnergyParams, energy_by_target_uj, execution_energy_uj,
    kernel_energy_pj,
)

__all__ = [
    "DEFAULT_PARAMS", "DianaParams", "latency_ms",
    "Allocation", "MemoryRegion",
    "contiguous_chunks", "tile_transfer_cycles", "transfer_cycles",
    "KernelRecord", "PerfCounters",
    "CpuModel", "DigitalAccelerator", "AnalogAccelerator",
    "Platform", "DianaSoC",
    "DEFAULT_PLATFORM", "PlatformSpec", "get_platform", "get_platform_spec",
    "platform_names", "register_platform", "unregister_platform",
    "validate_spec",
    "DEFAULT_ENERGY", "EnergyParams", "energy_by_target_uj",
    "execution_energy_uj", "kernel_energy_pj",
]
