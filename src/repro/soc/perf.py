"""Performance counters, mirroring DIANA's RISC-V hardware counters.

Cycles are accumulated per category so benchmarks can report both the
"Peak" view (accelerator busy time, including the weight transfer that
the paper notes "is orchestrated in the same instruction") and the full
"HTVM" view (everything between kernel call and return on the host).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


#: categories counted towards the accelerator-peak measurement.
PEAK_CATEGORIES = ("accel_compute", "weight_dma")
#: categories additionally counted in the full HTVM kernel call.
CALL_CATEGORIES = PEAK_CATEGORIES + ("act_dma", "runtime", "tile_loop")


@dataclass
class KernelRecord:
    """Cycle breakdown of one executed kernel call."""

    name: str
    target: str
    cycles: Dict[str, float] = field(default_factory=dict)
    macs: int = 0
    num_tiles: int = 1

    def add(self, category: str, cycles: float):
        self.cycles[category] = self.cycles.get(category, 0.0) + cycles

    @property
    def peak_cycles(self) -> float:
        """Accelerator busy time incl. weight transfer (paper Sec. IV-B)."""
        if self.target == "cpu":
            return self.total_cycles
        return sum(self.cycles.get(c, 0.0) for c in PEAK_CATEGORIES)

    @property
    def total_cycles(self) -> float:
        """Full call-to-return time on the RISC-V host."""
        return sum(self.cycles.values())

    @property
    def throughput_macs_per_cycle(self) -> float:
        total = self.total_cycles
        return self.macs / total if total else 0.0


class PerfCounters:
    """Accumulates kernel records for one network execution."""

    def __init__(self):
        self.records: List[KernelRecord] = []

    def start_kernel(self, name: str, target: str, macs: int = 0) -> KernelRecord:
        rec = KernelRecord(name=name, target=target, macs=macs)
        self.records.append(rec)
        return rec

    @property
    def total_cycles(self) -> float:
        return sum(r.total_cycles for r in self.records)

    @property
    def peak_cycles(self) -> float:
        """Sum of per-kernel peak views (CPU kernels count fully)."""
        return sum(r.peak_cycles for r in self.records)

    def cycles_by_target(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for r in self.records:
            out[r.target] = out.get(r.target, 0.0) + r.total_cycles
        return out

    def cycles_by_category(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for r in self.records:
            for cat, cyc in r.cycles.items():
                out[cat] = out.get(cat, 0.0) + cyc
        return out

    def report(self) -> str:
        lines = [f"{'kernel':<40} {'target':<12} {'cycles':>12} {'MAC/cyc':>8}"]
        for r in self.records:
            lines.append(
                f"{r.name:<40} {r.target:<12} {r.total_cycles:>12.0f} "
                f"{r.throughput_macs_per_cycle:>8.2f}"
            )
        lines.append(f"{'TOTAL':<40} {'':<12} {self.total_cycles:>12.0f}")
        return "\n".join(lines)
