"""Extensions beyond the paper's evaluation.

These modules explore directions the paper positions itself against or
defers to future work: depth-first (patch-based) execution as in
MCUNetV2 [11] / DepFiN [12], and the analog-noise study hooks.
"""

from .depthfirst_exec import run_chain_depth_first, run_chain_layer_by_layer
from .depthfirst import (
    DepthFirstPlan, analyze_depth_first, chain_from_graph,
    chain_runs_from_steps, chain_savings, conv_chains_from_graph,
    layer_by_layer_peak_bytes, layer_by_layer_span_bytes, plan_chain_grid,
    plan_depthfirst_steps,
)

__all__ = [
    "DepthFirstPlan", "analyze_depth_first", "chain_from_graph",
    "chain_runs_from_steps", "chain_savings", "conv_chains_from_graph",
    "layer_by_layer_peak_bytes", "layer_by_layer_span_bytes",
    "plan_chain_grid", "plan_depthfirst_steps",
    "run_chain_depth_first", "run_chain_layer_by_layer",
]
