"""Functional depth-first execution of a convolution chain.

Complements the analysis in :mod:`repro.extensions.depthfirst` with an
actual *executor*: the chain is evaluated patch by patch — each final
output patch is traced back through the layers, the required input
window is sliced (with boundary padding), and the whole sub-pyramid is
recomputed with the same integer kernels the accelerators use.

The point is the bit-exactness guarantee: depth-first execution must
produce byte-identical results to layer-by-layer execution, halos and
all, which the property tests assert for random geometries. This is the
invariant a future depth-first HTVM backend would have to maintain.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .. import numerics as K
from ..dory.layer_spec import LayerSpec
from ..errors import UnsupportedError
from .depthfirst import _backward_ranges, _check_chain, _needed_input_range


def _run_layer(spec: LayerSpec, x: np.ndarray, pad) -> np.ndarray:
    groups = spec.groups if spec.is_depthwise else 1
    acc = K.conv2d(x, spec.weight, spec.strides, pad, groups)
    if spec.bias is not None:
        acc = K.bias_add(acc, spec.bias, axis=1)
    lo, hi = (-64, 63) if spec.out_dtype == "int7" else (-128, 127)
    return K.requantize(acc, spec.shift, spec.relu, lo, hi)


def run_chain_layer_by_layer(chain: List[LayerSpec],
                             x: np.ndarray) -> np.ndarray:
    """Standard execution: full feature maps between layers."""
    _check_chain(chain)
    for spec in chain:
        if spec.weight is None:
            raise UnsupportedError(f"{spec.name}: chain layer needs weights")
        x = _run_layer(spec, x, spec.padding)
    return x


def run_chain_depth_first(chain: List[LayerSpec], x: np.ndarray,
                          patch_grid: Tuple[int, int]) -> np.ndarray:
    """Patch-based execution with halo recompute.

    For every output patch of the last layer, slices the (boundary-
    clipped, zero-padded) input window and recomputes the sub-pyramid.
    Bit-exact vs. :func:`run_chain_layer_by_layer` by construction of
    the integer kernels — the tests assert it for random chains.
    """
    _check_chain(chain)
    final = chain[-1]
    py, px = patch_grid
    if py < 1 or px < 1 or py > final.oy or px > final.ox:
        raise UnsupportedError(f"invalid patch grid {patch_grid}")

    out = np.zeros((1, final.out_channels, final.oy, final.ox),
                   dtype=np.int8)
    for iy in range(py):
        y0, y1 = (final.oy * iy) // py, (final.oy * (iy + 1)) // py
        for ix in range(px):
            x0, x1 = (final.ox * ix) // px, (final.ox * (ix + 1)) // px
            if y0 == y1 or x0 == x1:
                continue
            ranges = _backward_ranges(chain, (y0, y1), (x0, x1))
            # slice the chain input window (with residual zero padding)
            first = chain[0]
            in_y = _needed_input_range(
                ranges[0][0][0], ranges[0][0][1], first.strides[0],
                first.fy, first.padding[0], first.iy)
            in_x = _needed_input_range(
                ranges[0][1][0], ranges[0][1][1], first.strides[1],
                first.fx, first.padding[1], first.ix)
            window = x[:, :, in_y[0]:in_y[1], in_x[0]:in_x[1]]

            patch = window
            cur_y, cur_x = in_y, in_x
            for spec, ((ry0, ry1), (rx0, rx1)) in zip(chain, ranges):
                # residual zero padding: output row ry reads input rows
                # [ry*s - p, ry*s - p + f); whatever falls outside the
                # tensor is the conv's own zero border
                pt = max(0, -(ry0 * spec.strides[0] - spec.padding[0]))
                pb = max(0, (ry1 - 1) * spec.strides[0] + spec.fy
                         - spec.padding[0] - spec.iy)
                pl = max(0, -(rx0 * spec.strides[1] - spec.padding[1]))
                pr = max(0, (rx1 - 1) * spec.strides[1] + spec.fx
                         - spec.padding[1] - spec.ix)
                padded = np.pad(patch, ((0, 0), (0, 0), (pt, pb), (pl, pr)))
                patch = _run_layer(spec, padded, (0, 0))
                cur_y, cur_x = (ry0, ry1), (rx0, rx1)
            out[:, :, y0:y1, x0:x1] = patch
    return out
