"""Depth-first (patch-based) execution analysis.

The paper's related work (Sec. II-B) discusses MCUNetV2 [11], which
"executes layers in a depth-first fashion [12] to reduce peak memory
consumption": instead of materializing every intermediate feature map
in L2, a *chain* of convolution layers is evaluated patch by patch, so
only patch-sized intermediates exist at any time — at the price of
recomputing the halo overlap between patches.

HTVM executes layer-by-layer; this module quantifies what depth-first
would buy on the same workloads:

* :func:`layer_by_layer_peak_bytes` — HTVM's L2 activation peak for a
  chain (consecutive input+output residency),
* :func:`analyze_depth_first` — peak memory and recompute overhead of
  patch-based execution with a p x p output patch grid,
* :func:`chain_from_graph` — extract the longest conv chain of a model.

The analysis is exact: patch halos are propagated backwards through
strides/kernels layer by layer, and the recompute factor is the true
ratio of patched MACs over nominal MACs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dory.layer_spec import LayerSpec
from ..errors import UnsupportedError
from ..ir import Composite, Graph


@dataclass
class DepthFirstPlan:
    """Outcome of analyzing one patch grid for a conv chain."""

    num_patches: int
    patch_grid: Tuple[int, int]
    peak_bytes: int                 #: chain input + output + patch buffers
    patch_buffer_bytes: int         #: largest per-patch intermediate pair
    total_macs: int                 #: including halo recompute
    nominal_macs: int
    per_layer_patch_rows: List[int] = field(default_factory=list)

    @property
    def recompute_factor(self) -> float:
        return self.total_macs / self.nominal_macs if self.nominal_macs else 1.0


def _check_chain(chain: List[LayerSpec]):
    if not chain:
        raise UnsupportedError("empty layer chain")
    for a, b in zip(chain, chain[1:]):
        if a.out_channels != b.in_channels:
            raise UnsupportedError(
                f"chain mismatch: {a.name} K={a.out_channels} feeds "
                f"{b.name} C={b.in_channels}")
        if (a.oy, a.ox) != (b.iy, b.ix):
            raise UnsupportedError(
                f"chain mismatch: {a.name} {a.oy}x{a.ox} feeds "
                f"{b.name} {b.iy}x{b.ix}")


def layer_by_layer_peak_bytes(chain: List[LayerSpec]) -> int:
    """Peak L2 activation residency of standard execution.

    While layer i runs, its full input and output coexist.
    """
    _check_chain(chain)
    return max(s.input_elements() + s.output_elements() for s in chain)


def _needed_input_range(lo: int, hi: int, stride: int, f: int, pad: int,
                        in_dim: int) -> Tuple[int, int]:
    """Input interval a layer reads to produce outputs [lo, hi), clipped."""
    ilo = max(0, lo * stride - pad)
    ihi = min(in_dim, (hi - 1) * stride + f - pad)
    return ilo, ihi


def _backward_ranges(chain: List[LayerSpec],
                     oy: Tuple[int, int], ox: Tuple[int, int]):
    """Per-layer *output* ranges needed to produce the final patch.

    Returns a list aligned with ``chain``: entry i is the
    ((y0, y1), (x0, x1)) output region layer i must compute.
    """
    ranges = [None] * len(chain)
    ranges[-1] = (oy, ox)
    cur_y, cur_x = oy, ox
    for i in range(len(chain) - 1, 0, -1):
        spec = chain[i]
        cur_y = _needed_input_range(cur_y[0], cur_y[1], spec.strides[0],
                                    spec.fy, spec.padding[0], spec.iy)
        cur_x = _needed_input_range(cur_x[0], cur_x[1], spec.strides[1],
                                    spec.fx, spec.padding[1], spec.ix)
        ranges[i - 1] = (cur_y, cur_x)
    return ranges


def analyze_depth_first(chain: List[LayerSpec],
                        patch_grid: Tuple[int, int]) -> DepthFirstPlan:
    """Analyze patch-based execution of a conv chain.

    Args:
        chain: shape-compatible convolution layers (conv2d / dwconv2d).
        patch_grid: (rows, cols) of output patches.

    The chain's *input* and *output* tensors live in L2 in full (they
    interface with the rest of the network); every intermediate exists
    only at patch granularity. Halo regions are recomputed per patch
    (MCUNetV2's approach, no line-buffer caching), and the analysis is
    exact: every patch's region is propagated backwards with boundary
    clipping, so both the recompute factor and the peak buffers are
    true values, not estimates.
    """
    _check_chain(chain)
    last = chain[-1]
    py, px = patch_grid
    if py < 1 or px < 1 or py > last.oy or px > last.ox:
        raise UnsupportedError(f"invalid patch grid {patch_grid}")

    nominal = sum(s.macs() for s in chain)
    in_full = chain[0].input_elements()
    out_full = last.output_elements()

    total_macs = 0
    worst_pair = 0
    for iy in range(py):
        y0, y1 = (last.oy * iy) // py, (last.oy * (iy + 1)) // py
        for ix in range(px):
            x0, x1 = (last.ox * ix) // px, (last.ox * (ix + 1)) // px
            if y0 == y1 or x0 == x1:
                continue
            ranges = _backward_ranges(chain, (y0, y1), (x0, x1))
            first = chain[0]
            in_y = _needed_input_range(
                ranges[0][0][0], ranges[0][0][1], first.strides[0],
                first.fy, first.padding[0], first.iy)
            in_x = _needed_input_range(
                ranges[0][1][0], ranges[0][1][1], first.strides[1],
                first.fx, first.padding[1], first.ix)
            prev_elems = (first.in_channels
                          * (in_y[1] - in_y[0]) * (in_x[1] - in_x[0]))
            for spec, ((ry0, ry1), (rx0, rx1)) in zip(chain, ranges):
                out_rows = ry1 - ry0
                out_cols = rx1 - rx0
                out_elems = spec.out_channels * out_rows * out_cols
                cg = spec.in_channels // spec.groups
                total_macs += (spec.out_channels * cg * spec.fy * spec.fx
                               * out_rows * out_cols)
                worst_pair = max(worst_pair, prev_elems + out_elems)
                prev_elems = out_elems

    nominal_rows = [r[0][1] - r[0][0] for r in _backward_ranges(
        chain, (0, math.ceil(last.oy / py)), (0, math.ceil(last.ox / px)))]
    return DepthFirstPlan(
        num_patches=py * px,
        patch_grid=(py, px),
        peak_bytes=in_full + out_full + worst_pair,
        patch_buffer_bytes=worst_pair,
        total_macs=total_macs,
        nominal_macs=nominal,
        per_layer_patch_rows=nominal_rows,
    )


def chain_from_graph(graph: Graph, max_len: Optional[int] = None
                     ) -> List[LayerSpec]:
    """Extract the longest single-consumer conv chain of a model.

    Operates on a partitioned graph (composites present); useful for
    asking "what would depth-first buy on MobileNet's first stages?".
    """
    from ..mapping.rules import layer_spec_of

    comps = [c for c in graph.composites()
             if c.pattern_name == "htvm.qconv2d"]
    users = graph.users()
    chain: List[LayerSpec] = []
    for i, comp in enumerate(comps):
        spec = layer_spec_of(comp, i)
        if spec is None or spec.kind not in ("conv2d", "dwconv2d"):
            break
        if chain:
            prev = chain[-1]
            if (prev.out_channels != spec.in_channels
                    or (prev.oy, prev.ox) != (spec.iy, spec.ix)):
                break
        chain.append(spec)
        if len(users[comp.node_id]) != 1:
            break
        if max_len and len(chain) >= max_len:
            break
    if not chain:
        raise UnsupportedError("graph has no leading conv chain")
    return chain
