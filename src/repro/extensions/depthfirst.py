"""Depth-first (patch-based) execution: analysis and schedule planning.

The paper's related work (Sec. II-B) discusses MCUNetV2 [11], which
"executes layers in a depth-first fashion [12] to reduce peak memory
consumption": instead of materializing every intermediate feature map
in L2, a *chain* of convolution layers is evaluated patch by patch, so
only patch-sized intermediates exist at any time — at the price of
recomputing the halo overlap between patches.

HTVM executes layer-by-layer; this module both quantifies what
depth-first buys on the same workloads and plans *executable* schedules
for the runtime (``exec_mode="depthfirst"``):

* :func:`layer_by_layer_peak_bytes` — HTVM's L2 activation peak for a
  chain (consecutive input+output residency),
* :func:`analyze_depth_first` — peak memory and recompute overhead of
  patch-based execution with a py x px output patch grid,
* :func:`chain_from_graph` / :func:`conv_chains_from_graph` — extract
  fusable conv chains of a model,
* :func:`plan_chain_grid` — size a chain's patch grid against an L2
  activation budget (minimal recompute subject to the budget),
* :func:`plan_depthfirst_steps` — turn a compiled step list into
  :class:`~repro.core.program.DepthFirstChain` schedule records, the
  compilation product ``CompilerConfig.depthfirst`` threads through the
  compiler, executor, artifact store and benchmarks.

The analysis is exact: patch halos are propagated backwards through
strides/kernels layer by layer (with boundary clipping), and the
recompute factor is the true ratio of patched MACs over nominal MACs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dory.layer_spec import LayerSpec
from ..errors import UnsupportedError
from ..ir import Graph

#: layer kinds a depth-first chain may contain (pixel-local MAC ops).
CHAIN_KINDS = ("conv2d", "dwconv2d")
#: ``depthfirst="auto"`` refuses chains costlier than this recompute
#: factor — beyond it the cycle overhead outweighs the memory win.
AUTO_MAX_RECOMPUTE = 1.5
#: ``depthfirst="on"`` still refuses pathological halo blow-ups.
ON_MAX_RECOMPUTE = 2.5
#: patch grids the planner explores (clipped to the output geometry).
GRID_CANDIDATES = ((1, 2), (2, 1), (2, 2), (2, 4), (4, 2), (3, 3),
                   (4, 4), (6, 6), (8, 8), (6, 1), (1, 6), (8, 1), (1, 8))
#: longest fused sub-chain: halos grow with depth, so very long chains
#: recompute almost the whole input per patch.
MAX_CHAIN_LEN = 6


@dataclass
class DepthFirstPlan:
    """Outcome of analyzing one patch grid for a conv chain."""

    num_patches: int
    patch_grid: Tuple[int, int]
    peak_bytes: int                 #: chain input + output + patch buffers
    patch_buffer_bytes: int         #: largest per-patch intermediate pair
    total_macs: int                 #: including halo recompute
    nominal_macs: int
    #: exact per-layer worst-case patch rows/cols over *all* patches
    #: (boundary patches of strided layers need more halo than the
    #: first patch — see the regression oracle in tests).
    per_layer_patch_rows: List[int] = field(default_factory=list)
    per_layer_patch_cols: List[int] = field(default_factory=list)
    #: per-layer output patch-slab bytes (K * rows * cols, int8).
    per_layer_patch_bytes: List[int] = field(default_factory=list)
    #: per-layer patched/nominal MAC ratio (halo recompute share).
    per_layer_recompute: List[float] = field(default_factory=list)

    @property
    def recompute_factor(self) -> float:
        return self.total_macs / self.nominal_macs if self.nominal_macs else 1.0


def _check_chain(chain: List[LayerSpec]):
    if not chain:
        raise UnsupportedError("empty layer chain")
    for a, b in zip(chain, chain[1:]):
        if a.out_channels != b.in_channels:
            raise UnsupportedError(
                f"chain mismatch: {a.name} K={a.out_channels} feeds "
                f"{b.name} C={b.in_channels}")
        if (a.oy, a.ox) != (b.iy, b.ix):
            raise UnsupportedError(
                f"chain mismatch: {a.name} {a.oy}x{a.ox} feeds "
                f"{b.name} {b.iy}x{b.ix}")


def layer_by_layer_peak_bytes(chain: List[LayerSpec]) -> int:
    """Peak L2 activation residency of standard execution.

    While layer i runs, its full input and output coexist.
    """
    _check_chain(chain)
    return max(s.input_elements() + s.output_elements() for s in chain)


def layer_by_layer_span_bytes(chain: List[LayerSpec],
                              input_held: bool = False) -> int:
    """Exact L2 activation residency of running the chain layer by layer.

    ``input_held`` marks a chain input with consumers beyond the chain
    (a residual skip, a branch): it then stays resident for the whole
    span instead of dying after the first layer — which is what makes
    fusing short chains inside residual blocks profitable.
    """
    _check_chain(chain)
    in_full = chain[0].input_elements()
    prev = in_full
    worst = 0
    for j, s in enumerate(chain):
        out = s.output_elements()
        held = in_full if (input_held and j > 0) else 0
        worst = max(worst, held + prev + out)
        prev = out
    return worst


def _needed_input_range(lo: int, hi: int, stride: int, f: int, pad: int,
                        in_dim: int) -> Tuple[int, int]:
    """Input interval a layer reads to produce outputs [lo, hi), clipped."""
    ilo = max(0, lo * stride - pad)
    ihi = min(in_dim, (hi - 1) * stride + f - pad)
    return ilo, ihi


def _backward_ranges(chain: List[LayerSpec],
                     oy: Tuple[int, int], ox: Tuple[int, int]):
    """Per-layer *output* ranges needed to produce the final patch.

    Returns a list aligned with ``chain``: entry i is the
    ((y0, y1), (x0, x1)) output region layer i must compute.
    """
    ranges = [None] * len(chain)
    ranges[-1] = (oy, ox)
    cur_y, cur_x = oy, ox
    for i in range(len(chain) - 1, 0, -1):
        spec = chain[i]
        cur_y = _needed_input_range(cur_y[0], cur_y[1], spec.strides[0],
                                    spec.fy, spec.padding[0], spec.iy)
        cur_x = _needed_input_range(cur_x[0], cur_x[1], spec.strides[1],
                                    spec.fx, spec.padding[1], spec.ix)
        ranges[i - 1] = (cur_y, cur_x)
    return ranges


def analyze_depth_first(chain: List[LayerSpec],
                        patch_grid: Tuple[int, int]) -> DepthFirstPlan:
    """Analyze patch-based execution of a conv chain.

    Args:
        chain: shape-compatible pixel-local layers — conv2d / dwconv2d,
            plus residual ``add`` links (identity geometry: patches
            propagate through them unchanged, and their second operand
            is read from its resident L2 buffer).
        patch_grid: (rows, cols) of output patches.

    The chain's *input* and *output* tensors live in L2 in full (they
    interface with the rest of the network); every intermediate exists
    only at patch granularity. The first layer reads its windows
    directly from the resident input and the last layer writes its
    patches directly into the resident output, so the extra residency
    is the *interior* slabs only — at any instant one produced slab
    plus the one being produced (``patch_buffer_bytes`` is that worst
    pair). Halo regions are recomputed per patch (MCUNetV2's approach,
    no line-buffer caching), and the analysis is exact: every patch's
    region is propagated backwards with boundary clipping, so both the
    recompute factor and the peak buffers are true values, not
    estimates.
    """
    _check_chain(chain)
    last = chain[-1]
    py, px = patch_grid
    if py < 1 or px < 1 or py > last.oy or px > last.ox:
        raise UnsupportedError(f"invalid patch grid {patch_grid}")

    nominal = sum(s.macs() for s in chain)
    in_full = chain[0].input_elements()
    out_full = last.output_elements()

    total_macs = 0
    worst_pair = 0
    layer_macs = [0] * len(chain)
    layer_area = [0] * len(chain)
    layer_rows = [0] * len(chain)
    layer_cols = [0] * len(chain)
    for iy in range(py):
        y0, y1 = (last.oy * iy) // py, (last.oy * (iy + 1)) // py
        for ix in range(px):
            x0, x1 = (last.ox * ix) // px, (last.ox * (ix + 1)) // px
            if y0 == y1 or x0 == x1:
                continue
            ranges = _backward_ranges(chain, (y0, y1), (x0, x1))
            prev_elems = 0  # layer 0 reads the resident input directly
            for j, (spec, ((ry0, ry1), (rx0, rx1))) in enumerate(
                    zip(chain, ranges)):
                out_rows = ry1 - ry0
                out_cols = rx1 - rx0
                # the last layer writes into the resident output; only
                # interior slabs add L2 residency
                out_elems = (spec.out_channels * out_rows * out_cols
                             if j < len(chain) - 1 else 0)
                cg = spec.in_channels // spec.groups
                macs = (0 if spec.kind == "add" else
                        spec.out_channels * cg * spec.fy * spec.fx
                        * out_rows * out_cols)
                total_macs += macs
                layer_macs[j] += macs
                layer_area[j] += out_rows * out_cols
                # the true per-layer worst case is the max over *all*
                # patches: for strided layers whose output patch does
                # not divide the output height, boundary patches need
                # one halo row more than the first patch does.
                layer_rows[j] = max(layer_rows[j], out_rows)
                layer_cols[j] = max(layer_cols[j], out_cols)
                worst_pair = max(worst_pair, prev_elems + out_elems)
                prev_elems = out_elems

    return DepthFirstPlan(
        num_patches=py * px,
        patch_grid=(py, px),
        peak_bytes=in_full + out_full + worst_pair,
        patch_buffer_bytes=worst_pair,
        total_macs=total_macs,
        nominal_macs=nominal,
        per_layer_patch_rows=layer_rows,
        per_layer_patch_cols=layer_cols,
        per_layer_patch_bytes=[
            s.out_channels * r * c
            for s, r, c in zip(chain, layer_rows, layer_cols)],
        per_layer_recompute=[
            # area ratio == MAC ratio for MAC layers, and still prices
            # the DMA/SIMD overlap of MAC-free layers (residual adds)
            a / (s.oy * s.ox) if s.oy * s.ox else 1.0
            for a, s in zip(layer_area, chain)],
    )


def _links(prev: LayerSpec, spec: LayerSpec) -> bool:
    """True when ``prev`` can feed ``spec`` inside one fused chain."""
    return (prev.out_channels == spec.in_channels
            and (prev.oy, prev.ox) == (spec.iy, spec.ix))


def chain_from_graph(graph: Graph, max_len: Optional[int] = None
                     ) -> List[LayerSpec]:
    """Extract the longest single-consumer conv chain of a model.

    Operates on a partitioned graph (composites present); useful for
    asking "what would depth-first buy on MobileNet's first stages?".
    """
    from ..mapping.rules import layer_spec_of

    comps = [c for c in graph.composites()
             if c.pattern_name == "htvm.qconv2d"]
    users = graph.users()
    chain: List[LayerSpec] = []
    for i, comp in enumerate(comps):
        spec = layer_spec_of(comp, i)
        if spec is None or spec.kind not in CHAIN_KINDS:
            break
        if chain and not _links(chain[-1], spec):
            break
        chain.append(spec)
        if len(users[comp.node_id]) != 1:
            break
        if max_len and len(chain) >= max_len:
            break
    if not chain:
        raise UnsupportedError("graph has no leading conv chain")
    return chain


def conv_chains_from_graph(graph: Graph, min_len: int = 2
                           ) -> List[List[LayerSpec]]:
    """All maximal fusable conv chains of a partitioned graph.

    A chain is a run of conv2d/dwconv2d composites where every interior
    output has exactly one consumer (its successor), so patch-wise
    evaluation can elide the full intermediate. Unlike
    :func:`chain_from_graph` this scans the whole model, not just the
    leading stage.
    """
    from ..mapping.rules import layer_spec_of

    users = graph.users()
    chains: List[List[LayerSpec]] = []
    cur: List[LayerSpec] = []
    prev_comp = None
    for i, comp in enumerate(graph.composites()):
        spec = (layer_spec_of(comp, i)
                if comp.pattern_name == "htvm.qconv2d" else None)
        eligible = spec is not None and spec.kind in CHAIN_KINDS
        feeds = (prev_comp is not None
                 and any(inp.node_id == prev_comp.node_id
                         for inp in comp.inputs)
                 and len(users.get(prev_comp.node_id, ())) == 1)
        if eligible and cur and feeds and _links(cur[-1], spec):
            cur.append(spec)
        else:
            if len(cur) >= min_len:
                chains.append(cur)
            cur = [spec] if eligible else []
        prev_comp = comp if eligible else None
    if len(cur) >= min_len:
        chains.append(cur)
    return chains


def chain_savings(chain: List[LayerSpec], plan: DepthFirstPlan) -> int:
    """L2 bytes the plan saves on the chain's *interior* buffers.

    The chain input/output stay resident either way (they interface
    with the rest of the network — e.g. a residual skip keeps the input
    alive regardless), so the genuine win of depth-first is replacing
    each full interior feature map with a patch slab.
    """
    return sum(max(0, s.output_elements() - slab)
               for s, slab in zip(chain[:-1], plan.per_layer_patch_bytes))


def plan_chain_grid(chain: List[LayerSpec], budget_bytes: int,
                    mode: str = "auto",
                    input_held: bool = False) -> Optional[DepthFirstPlan]:
    """Pick the patch grid for one chain against an L2 budget.

    Explores :data:`GRID_CANDIDATES` (clipped to the chain's output
    geometry), keeping only grids that beat the chain's true
    layer-by-layer residency (:func:`layer_by_layer_span_bytes` with
    ``input_held``) and whose recompute factor stays under the mode's
    gate (:data:`AUTO_MAX_RECOMPUTE` / :data:`ON_MAX_RECOMPUTE`).
    Among grids whose :attr:`DepthFirstPlan.peak_bytes` fits
    ``budget_bytes``, the one with minimal recompute wins (fewest
    patches as tie-break); when nothing fits, ``mode="on"`` falls back
    to the minimal-peak grid (best effort) while ``mode="auto"``
    returns ``None`` — auto is an out-of-memory rescue, a chain that
    cannot fit does not help.
    """
    _check_chain(chain)
    last = chain[-1]
    gate = AUTO_MAX_RECOMPUTE if mode == "auto" else ON_MAX_RECOMPUTE
    span = layer_by_layer_span_bytes(chain, input_held=input_held)
    grids = sorted({(min(py, last.oy), min(px, last.ox))
                    for py, px in GRID_CANDIDATES})
    best_fit: Optional[DepthFirstPlan] = None
    best_any: Optional[DepthFirstPlan] = None
    for grid in grids:
        if grid[0] * grid[1] <= 1:
            continue
        plan = analyze_depth_first(chain, grid)
        if (plan.recompute_factor > gate or plan.peak_bytes >= span
                or chain_savings(chain, plan) <= 0):
            continue
        if plan.peak_bytes <= budget_bytes and (
                best_fit is None
                or (plan.recompute_factor, plan.num_patches)
                < (best_fit.recompute_factor, best_fit.num_patches)):
            best_fit = plan
        if best_any is None or (
                (plan.peak_bytes, plan.recompute_factor)
                < (best_any.peak_bytes, best_any.recompute_factor)):
            best_any = plan
    if best_fit is None and mode == "on":
        best_fit = best_any
    return best_fit


def chain_runs_from_steps(steps, output_name: str) -> List[List[int]]:
    """Maximal fusable runs of consecutive accelerator steps.

    A run [i, i+1, ..] qualifies when every step is an
    :class:`~repro.core.program.AccelStep` of a pixel-local kind, each
    interior output feeds *only* the next step (checked against every
    step's inputs and the network output), and geometries link up.
    Besides conv2d/dwconv2d layers a run may flow through residual
    ``add`` steps whose *other* operand was produced before the run
    started (or is a graph input): that operand is resident in L2
    either way and is read patch-wise — which is what lets depth-first
    fuse whole residual blocks instead of stopping at the skip.
    """
    from ..core.program import AccelStep

    consumers: dict = {}
    for step in steps:
        for name in step.input_names:
            consumers[name] = consumers.get(name, 0) + 1
    born = {step.output_name: idx for idx, step in enumerate(steps)}

    def conv_ok(step) -> bool:
        return (isinstance(step, AccelStep)
                and step.spec is not None
                and step.spec.kind in CHAIN_KINDS
                and step.spec.weight is not None)

    def add_extends(step, prev, start_idx: int) -> bool:
        if not (isinstance(step, AccelStep) and step.spec is not None
                and step.spec.kind == "add"):
            return False
        ins = step.input_names
        if len(ins) != 2 or ins.count(prev.output_name) != 1:
            return False
        skip = ins[0] if ins[1] == prev.output_name else ins[1]
        return born.get(skip, -1) < start_idx

    runs: List[List[int]] = []
    cur: List[int] = []
    for idx, step in enumerate(steps):
        if cur:
            prev = steps[cur[-1]]
            chained = (idx == cur[-1] + 1
                       and consumers.get(prev.output_name, 0) == 1
                       and prev.output_name != output_name
                       and isinstance(step, AccelStep)
                       and step.spec is not None
                       and _links(prev.spec, step.spec)
                       and ((conv_ok(step)
                             and step.input_names == [prev.output_name])
                            or add_extends(step, prev, cur[0])))
            if chained:
                cur.append(idx)
                continue
            if len(cur) >= 2:
                runs.append(cur)
            cur = []
        if conv_ok(step):
            cur = [idx]
    if len(cur) >= 2:
        runs.append(cur)
    return runs


def plan_depthfirst_steps(steps, output_name: str, budget_bytes: int,
                          mode: str = "auto",
                          arena_bytes: Optional[int] = None,
                          max_len: int = MAX_CHAIN_LEN) -> list:
    """Plan executable depth-first schedules over a compiled step list.

    Returns :class:`~repro.core.program.DepthFirstChain` records (empty
    when nothing qualifies). ``mode="auto"`` only engages when the
    layer-by-layer activation arena (``arena_bytes``) exceeds the
    budget — depth-first as an out-of-memory rescue; ``mode="on"``
    fuses every eligible chain (benchmark/DSE mode).

    Long fusable runs (MobileNet is one end-to-end run) are split
    greedily into sub-chains of at most ``max_len`` layers: at each
    position the longest admissible sub-chain wins, since halos — and
    with them the recompute factor — grow with chain depth.
    """
    from ..core.program import DepthFirstChain

    if mode not in ("auto", "on"):
        raise UnsupportedError(
            f"depthfirst mode {mode!r}; expected 'auto', 'on' or 'off'")
    if (mode == "auto" and arena_bytes is not None
            and arena_bytes <= budget_bytes):
        return []

    consumers: dict = {}
    for step in steps:
        for name in step.input_names:
            consumers[name] = consumers.get(name, 0) + 1

    chains = []
    for run in chain_runs_from_steps(steps, output_name):
        i = 0
        while i < len(run) - 1:
            if steps[run[i]].spec.kind == "add":
                i += 1  # a sub-chain must start with a conv layer
                continue
            # a chain input with other consumers (residual skip) stays
            # in L2 regardless, which changes the profitability math
            held = consumers.get(steps[run[i]].input_names[0], 0) > 1
            adopted = None
            for length in range(min(len(run) - i, max_len), 1, -1):
                specs = [steps[j].spec for j in run[i:i + length]]
                plan = plan_chain_grid(specs, budget_bytes, mode=mode,
                                       input_held=held)
                if plan is not None:
                    adopted = (length, plan)
                    break
            if adopted is None:
                i += 1
                continue
            length, plan = adopted
            chains.append(DepthFirstChain(
                start=run[i], length=length,
                patch_grid=tuple(plan.patch_grid),
                num_patches=plan.num_patches,
                peak_bytes=plan.peak_bytes,
                patch_buffer_bytes=plan.patch_buffer_bytes,
                per_layer_patch_bytes=list(plan.per_layer_patch_bytes),
                recompute_factor=plan.recompute_factor,
                per_layer_recompute=list(plan.per_layer_recompute),
            ))
            i += length
    return chains
