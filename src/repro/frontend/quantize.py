"""Quantization precision policies for model construction.

The paper deploys each MLPerf Tiny network in several precision
configurations (Table I):

* **int8** — all weights 8-bit: every eligible layer can go to the
  digital accelerator.
* **ternary** — conv/FC weights ternary with 7-bit activations: eligible
  layers go to the analog accelerator; depthwise layers (unsupported by
  the analog core) keep 8-bit weights and fall back to the CPU.
* **mixed** — "The first and last accelerator-eligible layers and all
  DWConv2D layers are executed digitally, remaining Conv2D's are
  executed on the analog core" (Sec. IV-C): realized here as a
  mixed-precision model, since DIANA's dispatch rule keys on weight
  bit-width.

Because the dispatcher selects targets purely from dtypes, the same
compiler flow handles all three variants — exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import UnsupportedError

INT8 = "int8"
TERNARY = "ternary"
MIXED = "mixed"

PRECISIONS = (INT8, TERNARY, MIXED)


@dataclass(frozen=True)
class LayerQuant:
    """Chosen dtypes for one MAC layer."""

    weight_dtype: str
    act_dtype: str    #: output activation dtype ("int8" or "int7")


def layer_quant(precision: str, index: int, num_eligible: int,
                depthwise: bool = False) -> LayerQuant:
    """Decide weight/activation dtypes for eligible layer ``index``.

    Args:
        precision: one of :data:`PRECISIONS`.
        index: position among the network's accelerator-eligible MAC
            layers (0-based).
        num_eligible: total count of eligible MAC layers.
        depthwise: whether this layer is a depthwise convolution.
    """
    if precision == INT8:
        return LayerQuant("int8", "int8")
    if precision == TERNARY:
        # DW unsupported on the analog core -> stays 8-bit on the CPU,
        # but activations remain 7-bit so neighbouring analog layers
        # receive in-range inputs.
        return LayerQuant("int8" if depthwise else "ternary", "int7")
    if precision == MIXED:
        digital = depthwise or index == 0 or index == num_eligible - 1
        return LayerQuant("int8" if digital else "ternary", "int7")
    raise UnsupportedError(f"unknown precision {precision!r}; "
                           f"expected one of {PRECISIONS}")
