"""ResNet-8 — MLPerf Tiny CIFAR-10 image classification.

Three residual stacks (16, 32, 64 channels) of two 3x3 convolutions
each; the 32- and 64-channel stacks downsample with stride 2 and use a
1x1 convolution on the shortcut. Global average pooling feeds a 10-way
classifier. Total ~12.5 MMACs, matching the paper's 112x/120x speed-up
baseline workload.
"""

from __future__ import annotations

from ..quantize import INT8
from .common import QuantNetBuilder

#: eligible MAC layers: conv1 + 3 stacks x (2 conv [+1 downsample]) + fc
NUM_ELIGIBLE = 1 + 2 + 3 + 3 + 1


def resnet8(precision: str = INT8, seed: int = 0):
    """Build ResNet-8; input (1, 3, 32, 32), 10-way softmax."""
    nb = QuantNetBuilder("resnet8", precision, NUM_ELIGIBLE, seed=seed)
    x = nb.input("data", (1, 3, 32, 32))
    x = nb.conv(x, 16, kernel=3, strides=1, padding=1)

    # stack 1: identity shortcut
    y = nb.conv(x, 16, kernel=3, padding=1)
    y = nb.conv(y, 16, kernel=3, padding=1, relu=False)
    x = nb.residual_add(x, y)

    # stacks 2 and 3: strided, 1x1 conv shortcut
    for channels in (32, 64):
        y = nb.conv(x, channels, kernel=3, strides=2, padding=1)
        y = nb.conv(y, channels, kernel=3, padding=1, relu=False)
        shortcut = nb.conv(x, channels, kernel=1, strides=2, relu=False)
        x = nb.residual_add(shortcut, y)

    x = nb.b.global_avg_pool2d(x)
    x = nb.b.flatten(x)
    x = nb.dense(x, 10, last=True)
    x = nb.b.softmax(x)
    return nb.finish(x)
