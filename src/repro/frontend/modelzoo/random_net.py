"""Random quantized CNN generator for stress testing.

Generates structurally valid quantized networks (conv / depthwise /
pooling / residual / dense stages with coherent shapes and precision
chains) from a seed. Used by the property-based integration tests: a
compiler bug that only shows up for unusual layer compositions is far
more likely to be caught by a thousand random topologies than by four
fixed benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...ir import Graph, GraphBuilder, Node


@dataclass
class RandomNetConfig:
    """Knobs bounding the generated topologies."""

    min_stages: int = 2
    max_stages: int = 6
    max_channels: int = 32
    input_hw: int = 16
    input_channels: int = 3
    precision: str = "int8"        #: "int8" or "int7" activation chains
    allow_residual: bool = True
    allow_depthwise: bool = True
    classifier_classes: int = 10


def random_cnn(seed: int, config: Optional[RandomNetConfig] = None) -> Graph:
    """Build a random but valid quantized CNN from ``seed``."""
    cfg = config or RandomNetConfig()
    rng = np.random.default_rng(seed)
    act = cfg.precision
    b = GraphBuilder(name=f"random_cnn_{seed}", seed=seed)
    x: Node = b.input("data", (1, cfg.input_channels, cfg.input_hw,
                               cfg.input_hw), act)

    def qconv(inp, out_ch, kernel, strides, padding, groups=1):
        return b.conv2d_requant(
            inp, out_ch, kernel=kernel, strides=strides, padding=padding,
            groups=groups, shift=int(rng.integers(4, 10)),
            relu=bool(rng.integers(0, 2)), out_dtype=act)

    stages = int(rng.integers(cfg.min_stages, cfg.max_stages + 1))
    for _ in range(stages):
        c = x.shape[1]
        hw = x.shape[2]
        choices = ["conv3", "conv1"]
        if cfg.allow_depthwise:
            choices.append("dw")
        if hw >= 4:
            choices.append("pool")
        if cfg.allow_residual and hw >= 2:
            choices.append("residual")
        kind = rng.choice(choices)

        if kind == "conv3" and hw >= 3:
            out_ch = int(rng.integers(1, cfg.max_channels + 1))
            stride = int(rng.choice([1, 2])) if hw >= 6 else 1
            x = qconv(x, out_ch, 3, stride, 1)
        elif kind == "conv1":
            out_ch = int(rng.integers(1, cfg.max_channels + 1))
            x = qconv(x, out_ch, 1, 1, 0)
        elif kind == "dw" and hw >= 3:
            x = qconv(x, c, 3, 1, 1, groups=c)
        elif kind == "pool":
            if rng.integers(0, 2):
                x = b.max_pool2d(x, 2)
            else:
                x = b.avg_pool2d(x, 2)
        elif kind == "residual":
            y = qconv(x, c, 3, 1, 1) if hw >= 3 else qconv(x, c, 1, 1, 0)
            x = b.add_requant(x, y, shift=1,
                              relu=bool(rng.integers(0, 2)),
                              out_dtype=act)
        else:
            x = qconv(x, c, 1, 1, 0)

    x = b.global_avg_pool2d(x)
    x = b.flatten(x)
    x = b.dense_requant(x, cfg.classifier_classes)
    x = b.softmax(x)
    return b.finish(x)
