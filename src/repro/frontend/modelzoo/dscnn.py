"""DS-CNN — MLPerf Tiny keyword spotting (audio CNN).

Topology per the MLPerf Tiny v1.0 reference: a strided input
convolution over the 49x10 MFCC spectrogram followed by four
depthwise-separable blocks at 64 channels, global average pooling and a
12-way classifier. Per the paper's Table I footnote, the input filter
size is adapted to [7, 5].
"""

from __future__ import annotations

from ..quantize import INT8
from .common import QuantNetBuilder

#: eligible MAC layers: conv1 + 4x(dw + pw) + fc
NUM_ELIGIBLE = 10


def dscnn(precision: str = INT8, seed: int = 0):
    """Build DS-CNN; input (1, 1, 49, 10), output 12-way softmax."""
    nb = QuantNetBuilder("dscnn", precision, NUM_ELIGIBLE, seed=seed)
    x = nb.input("data", (1, 1, 49, 10))
    # input conv: 64 filters [7, 5], stride 2, 'same'-style padding
    x = nb.conv(x, 64, kernel=(7, 5), strides=(2, 2), padding=(3, 2))
    for _ in range(4):
        x = nb.dwconv(x, kernel=3, strides=1, padding=1)
        x = nb.conv(x, 64, kernel=1)
    x = nb.b.global_avg_pool2d(x)
    x = nb.b.flatten(x)
    x = nb.dense(x, 12, last=True)
    x = nb.b.softmax(x)
    return nb.finish(x)
