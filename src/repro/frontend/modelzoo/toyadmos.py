"""ToyAdmos Deep Auto-Encoder — MLPerf Tiny anomaly detection.

The MLPerf Tiny reference DAE: 640 input features (five stacked frames
of 128 log-mel bins), four 128-unit encoder layers, an 8-unit
bottleneck, four 128-unit decoder layers and a 640-unit reconstruction
output. All layers are fully connected (~264 k parameters), making this
the FC-dominated workload of Table I.
"""

from __future__ import annotations

from ..quantize import INT8
from .common import QuantNetBuilder

#: eligible MAC layers: 4 encoder + bottleneck + 4 decoder + output
NUM_ELIGIBLE = 10


def toyadmos_dae(precision: str = INT8, seed: int = 0):
    """Build the ToyAdmos DAE; input (1, 640), output (1, 640)."""
    nb = QuantNetBuilder("toyadmos_dae", precision, NUM_ELIGIBLE, seed=seed)
    x = nb.input("data", (1, 640))
    for _ in range(4):
        x = nb.dense(x, 128, relu=True)
    x = nb.dense(x, 8, relu=True)
    for _ in range(4):
        x = nb.dense(x, 128, relu=True)
    x = nb.dense(x, 640, last=True)
    return nb.finish(x)
