"""Shared machinery for building quantized MLPerf Tiny models."""

from __future__ import annotations


from ...ir import GraphBuilder, Node
from ..quantize import INT8, layer_quant


class QuantNetBuilder:
    """GraphBuilder wrapper that applies a precision policy per layer.

    Tracks the index of each accelerator-eligible MAC layer so the
    mixed policy can pin the first/last layers to 8-bit (digital).
    """

    def __init__(self, name: str, precision: str, num_eligible: int,
                 seed: int = 0):
        self.b = GraphBuilder(name=name, seed=seed)
        self.precision = precision
        self.num_eligible = num_eligible
        self._idx = 0

    @property
    def act_dtype(self) -> str:
        return "int8" if self.precision == INT8 else "int7"

    def input(self, name: str, shape) -> Node:
        return self.b.input(name, shape, self.act_dtype)

    def _next_quant(self, depthwise: bool):
        q = layer_quant(self.precision, self._idx, self.num_eligible,
                        depthwise)
        self._idx += 1
        return q

    def conv(self, x: Node, out_channels: int, kernel=3, strides=1,
             padding=0, relu: bool = True) -> Node:
        q = self._next_quant(depthwise=False)
        shift = 4 if q.weight_dtype == "ternary" else 8
        return self.b.conv2d_requant(
            x, out_channels, kernel=kernel, strides=strides, padding=padding,
            shift=shift, relu=relu, weight_dtype=q.weight_dtype,
            out_dtype=q.act_dtype,
        )

    def dwconv(self, x: Node, kernel=3, strides=1, padding=1,
               relu: bool = True) -> Node:
        q = self._next_quant(depthwise=True)
        c = x.shape[1]
        return self.b.conv2d_requant(
            x, out_channels=c, kernel=kernel, strides=strides,
            padding=padding, groups=c, shift=8, relu=relu,
            weight_dtype=q.weight_dtype, out_dtype=q.act_dtype,
        )

    def dense(self, x: Node, out_features: int, relu: bool = False,
              last: bool = False) -> Node:
        q = self._next_quant(depthwise=False)
        shift = 4 if q.weight_dtype == "ternary" else 8
        return self.b.dense_requant(
            x, out_features, shift=shift, relu=relu,
            weight_dtype=q.weight_dtype,
            out_dtype="int8" if last else q.act_dtype,
        )

    def residual_add(self, lhs: Node, rhs: Node, relu: bool = True) -> Node:
        return self.b.add_requant(lhs, rhs, shift=1, relu=relu,
                                  out_dtype=self.act_dtype)

    def finish(self, out: Node):
        graph = self.b.finish(out)
        if self._idx != self.num_eligible:
            raise AssertionError(
                f"{graph.name}: declared {self.num_eligible} eligible "
                f"layers, built {self._idx}")
        return graph
