"""MobileNetV1 0.25x — MLPerf Tiny visual wake words (person detection).

Standard MobileNetV1 with width multiplier 0.25 on 96x96x3 inputs: a
strided input convolution then 13 depthwise-separable blocks, global
average pooling and a binary classifier.
"""

from __future__ import annotations

from ..quantize import INT8
from .common import QuantNetBuilder

#: (pointwise output channels, depthwise stride) per separable block
_BLOCKS = [
    (16, 1), (32, 2), (32, 1), (64, 2), (64, 1),
    (128, 2), (128, 1), (128, 1), (128, 1), (128, 1), (128, 1),
    (256, 2), (256, 1),
]

#: eligible MAC layers: conv1 + 13x(dw + pw) + fc
NUM_ELIGIBLE = 1 + 2 * len(_BLOCKS) + 1


def mobilenet_v1(precision: str = INT8, seed: int = 0):
    """Build MobileNetV1-0.25; input (1, 3, 96, 96), 2-way softmax."""
    nb = QuantNetBuilder("mobilenet_v1", precision, NUM_ELIGIBLE, seed=seed)
    x = nb.input("data", (1, 3, 96, 96))
    x = nb.conv(x, 8, kernel=3, strides=2, padding=1)
    for out_ch, stride in _BLOCKS:
        x = nb.dwconv(x, kernel=3, strides=stride, padding=1)
        x = nb.conv(x, out_ch, kernel=1)
    x = nb.b.global_avg_pool2d(x)
    x = nb.b.flatten(x)
    x = nb.dense(x, 2, last=True)
    x = nb.b.softmax(x)
    return nb.finish(x)
