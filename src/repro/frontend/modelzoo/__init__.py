"""MLPerf Tiny v1.0 model zoo + single-layer benchmark workloads."""

from .dscnn import dscnn
from .mobilenet import mobilenet_v1
from .resnet import resnet8
from .toyadmos import toyadmos_dae
from .random_net import RandomNetConfig, random_cnn
from .layers import (
    fig4_layers, fig5_analog_conv_channel, fig5_analog_conv_spatial,
    fig5_digital_conv_spatial, fig5_digital_dwconv, fig5_digital_fc_channel,
)

#: the MLPerf Tiny suite, keyed by the names used in Tables I-II.
MLPERF_TINY = {
    "dscnn": dscnn,
    "mobilenet": mobilenet_v1,
    "resnet": resnet8,
    "toyadmos": toyadmos_dae,
}

__all__ = [
    "dscnn", "mobilenet_v1", "resnet8", "toyadmos_dae", "MLPERF_TINY",
    "fig4_layers", "fig5_analog_conv_channel", "fig5_analog_conv_spatial",
    "fig5_digital_conv_spatial", "fig5_digital_dwconv",
    "fig5_digital_fc_channel", "RandomNetConfig", "random_cnn",
]
