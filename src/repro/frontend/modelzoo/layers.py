"""Single-layer workloads for the Fig. 4 and Fig. 5 experiments.

Fig. 4 benchmarks four convolutional layers of increasing size (their
MAC counts and parameter sizes are printed in the figure); Fig. 5
sweeps layer *geometries* — scaling channels or the spatial dimension —
for Conv2D, FC and DWConv2D on both accelerators.
"""

from __future__ import annotations

from typing import List

from ...dory.layer_spec import LayerSpec, make_conv_spec, make_dense_spec


def fig4_layers() -> List[LayerSpec]:
    """The paper's L0..L3: 3x3 convs on 32x32 maps.

    Channel counts reproduce the printed characteristics exactly:
    L0 2.36 MMAC / 2.25 kB, L1 9.44 MMAC / 9 kB, L2 18.9 MMAC / 18 kB,
    L3 75.5 MMAC / 72 kB.
    """
    dims = [("L0", 16, 16), ("L1", 32, 32), ("L2", 32, 64), ("L3", 64, 128)]
    return [
        make_conv_spec(name, c, k, iy=32, ix=32, fy=3, fx=3, padding=(1, 1))
        for name, c, k in dims
    ]


def fig5_digital_conv_spatial() -> List[LayerSpec]:
    """Digital Conv2D, spatial scaling (fixed 32 channels)."""
    return [
        make_conv_spec(f"dig_conv_s{s}", 32, 32, iy=s, ix=s, padding=(1, 1))
        for s in (8, 16, 24, 32, 48, 64)
    ]


def fig5_digital_fc_channel() -> List[LayerSpec]:
    """Digital FC, channel scaling."""
    return [
        make_dense_spec(f"dig_fc_c{c}", c, c)
        for c in (16, 32, 64, 128, 256, 512, 640)
    ]


def fig5_digital_dwconv() -> List[LayerSpec]:
    """Digital DWConv2D, channel scaling (fixed 16x16 maps)."""
    return [
        make_conv_spec(f"dig_dw_c{c}", c, c, iy=16, ix=16, padding=(1, 1),
                       depthwise=True)
        for c in (16, 32, 64, 128, 256)
    ]


def fig5_analog_conv_channel() -> List[LayerSpec]:
    """Analog Conv2D, channel scaling (fixed 16x16 maps, ternary)."""
    return [
        make_conv_spec(f"ana_conv_c{c}", c, c, iy=16, ix=16, padding=(1, 1),
                       weight_dtype="ternary")
        for c in (8, 16, 32, 64, 128)
    ]


def fig5_analog_conv_spatial() -> List[LayerSpec]:
    """Analog Conv2D, spatial scaling (fixed 32 channels, ternary)."""
    return [
        make_conv_spec(f"ana_conv_s{s}", 32, 32, iy=s, ix=s, padding=(1, 1),
                       weight_dtype="ternary")
        for s in (8, 16, 32, 64, 96)
    ]
