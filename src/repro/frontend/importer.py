"""Model-description importer.

HTVM "ingests a quantized DNN graph in common formats like TFLite or
ONNX with TVM's front end" (paper Sec. III). Stand-alone parsers for
those binary formats are out of scope here; instead the library accepts
a compact JSON-able *model description* — a layer list in the style of
a Keras config — and lowers it to the IR, including requantization
chains and (optionally seeded-random) weights.

Example::

    desc = {
        "name": "tiny",
        "input": {"shape": [1, 3, 16, 16], "dtype": "int8"},
        "layers": [
            {"type": "conv2d", "filters": 16, "kernel": 3, "padding": 1},
            {"type": "residual", "layers": [
                {"type": "conv2d", "filters": 16, "kernel": 3,
                 "padding": 1, "relu": False},
            ]},
            {"type": "max_pool", "size": 2},
            {"type": "flatten"},
            {"type": "dense", "units": 10},
            {"type": "softmax"},
        ],
    }
    graph = import_model(desc, seed=0)

The full IR (with trained weights) round-trips through
:mod:`repro.ir.serialization`; this importer is the human-writable
front door.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..errors import UnsupportedError
from ..ir import Constant, ConstantTensor, Graph, GraphBuilder, Node


def _pair(value):
    if isinstance(value, (list, tuple)):
        return tuple(int(v) for v in value)
    return (int(value), int(value))


class _Importer:
    def __init__(self, desc: Dict, seed: int):
        self.desc = desc
        self.builder = GraphBuilder(name=desc.get("name", "imported"),
                                    seed=seed)

    def run(self) -> Graph:
        spec = self.desc.get("input")
        if not spec:
            raise UnsupportedError("model description has no 'input'")
        x = self.builder.input("data", tuple(spec["shape"]),
                               spec.get("dtype", "int8"))
        x = self._lower_layers(x, self.desc.get("layers", []))
        return self.builder.finish(x)

    def _lower_layers(self, x: Node, layers: List[Dict]) -> Node:
        for layer in layers:
            x = self._lower(x, dict(layer))
        return x

    def _weight(self, layer: Dict, shape, dtype: str):
        if "weights" in layer:
            return Constant(ConstantTensor(
                np.asarray(layer["weights"]).reshape(shape), dtype))
        return None

    def _lower(self, x: Node, layer: Dict) -> Node:
        b = self.builder
        kind = layer.pop("type", None)
        if kind == "conv2d":
            filters = int(layer["filters"])
            kernel = _pair(layer.get("kernel", 3))
            c = x.shape[1]
            weight = self._weight(
                layer, (filters, c, *kernel), layer.get("weight_dtype", "int8"))
            return b.conv2d_requant(
                x, filters, kernel=kernel,
                strides=_pair(layer.get("strides", 1)),
                padding=_pair(layer.get("padding", 0)),
                shift=int(layer.get("shift", 8)),
                relu=bool(layer.get("relu", True)),
                weight_dtype=layer.get("weight_dtype", "int8"),
                out_dtype=layer.get("out_dtype", "int8"),
                weight=weight,
            )
        if kind == "depthwise_conv2d":
            c = x.shape[1]
            return b.conv2d_requant(
                x, c, kernel=_pair(layer.get("kernel", 3)),
                strides=_pair(layer.get("strides", 1)),
                padding=_pair(layer.get("padding", 1)),
                groups=c, shift=int(layer.get("shift", 8)),
                relu=bool(layer.get("relu", True)),
                weight_dtype=layer.get("weight_dtype", "int8"),
                out_dtype=layer.get("out_dtype", "int8"),
            )
        if kind == "dense":
            units = int(layer["units"])
            weight = self._weight(layer, (units, x.shape[1]),
                                  layer.get("weight_dtype", "int8"))
            return b.dense_requant(
                x, units, shift=int(layer.get("shift", 8)),
                relu=bool(layer.get("relu", False)),
                weight_dtype=layer.get("weight_dtype", "int8"),
                out_dtype=layer.get("out_dtype", "int8"),
                weight=weight,
            )
        if kind == "residual":
            branch = self._lower_layers(x, layer.get("layers", []))
            return b.add_requant(
                x, branch, shift=int(layer.get("shift", 1)),
                relu=bool(layer.get("relu", True)),
                out_dtype=layer.get("out_dtype", "int8"))
        if kind == "max_pool":
            return b.max_pool2d(x, _pair(layer.get("size", 2)),
                                strides=_pair(layer["strides"])
                                if "strides" in layer else None)
        if kind == "avg_pool":
            return b.avg_pool2d(x, _pair(layer.get("size", 2)),
                                strides=_pair(layer["strides"])
                                if "strides" in layer else None)
        if kind == "global_avg_pool":
            return b.global_avg_pool2d(x)
        if kind == "flatten":
            return b.flatten(x)
        if kind == "reshape":
            return b.reshape(x, tuple(layer["shape"]))
        if kind == "softmax":
            return b.softmax(x)
        raise UnsupportedError(f"importer: unknown layer type {kind!r}")


def import_model(desc: Dict, seed: int = 0) -> Graph:
    """Lower a JSON-able model description to an IR graph.

    Layers without inline ``weights`` get seeded random parameters
    (latency/size do not depend on the values).
    """
    return _Importer(desc, seed).run()
