"""Front-end: quantization policies and the MLPerf Tiny model zoo."""

from .quantize import INT8, LayerQuant, MIXED, PRECISIONS, TERNARY, layer_quant
from . import modelzoo
from .importer import import_model

__all__ = [
    "INT8", "LayerQuant", "MIXED", "PRECISIONS", "TERNARY", "layer_quant",
    "modelzoo", "import_model",
]
