"""Operator registry and per-operator shape/dtype inference.

Operators mirror the subset of TVM Relay that the paper's flow touches:
quantized Conv2D / Dense / depthwise Conv2D with their requantization
chains (``bias_add`` → ``right_shift`` → ``clip`` → ``cast``), elementwise
add for residual connections, pooling, softmax, and shape plumbing.

Each :class:`OpDef` bundles:

* an attribute schema (names with defaults, validated at call sites),
* a type-inference function mapping input types + attrs to output type,
* a MAC-count function used by cost models and roofline accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

from ..errors import IRError, ShapeError
from .dtypes import dtype as _dtype
from .tensor import TensorType


@dataclass
class OpDef:
    """Definition of one IR operator."""

    name: str
    arity: int
    attrs_schema: Dict[str, object] = field(default_factory=dict)
    infer: Optional[Callable] = None
    macs: Optional[Callable] = None
    is_elementwise: bool = False

    def validate_attrs(self, attrs: Dict[str, object]) -> Dict[str, object]:
        """Merge user attrs over defaults; reject unknown keys."""
        unknown = set(attrs) - set(self.attrs_schema)
        if unknown:
            raise IRError(f"{self.name}: unknown attrs {sorted(unknown)}")
        merged = dict(self.attrs_schema)
        merged.update(attrs)
        missing = [k for k, v in merged.items() if v is _REQUIRED]
        if missing:
            raise IRError(f"{self.name}: missing required attrs {missing}")
        return merged


_REQUIRED = object()
_OPS: Dict[str, OpDef] = {}


def register_op(op: OpDef) -> OpDef:
    if op.name in _OPS:
        raise IRError(f"duplicate op registration: {op.name}")
    _OPS[op.name] = op
    return op


def get_op(name: str) -> OpDef:
    try:
        return _OPS[name]
    except KeyError:
        raise IRError(f"unknown op {name!r}; known: {sorted(_OPS)}") from None


def all_ops() -> Sequence[str]:
    return sorted(_OPS)


# ---------------------------------------------------------------------------
# shape helpers
# ---------------------------------------------------------------------------


def conv2d_output_hw(ih, iw, fh, fw, strides, padding):
    """Spatial output dims of a 2D convolution/pool."""
    sh, sw = strides
    ph, pw = padding
    oh = (ih + 2 * ph - fh) // sh + 1
    ow = (iw + 2 * pw - fw) // sw + 1
    if oh <= 0 or ow <= 0:
        raise ShapeError(
            f"non-positive conv output {oh}x{ow} "
            f"(in {ih}x{iw}, filter {fh}x{fw}, strides {strides}, pad {padding})"
        )
    return oh, ow


def _expect_rank(t: TensorType, rank: int, what: str):
    if t.rank != rank:
        raise ShapeError(f"{what}: expected rank {rank}, got {t}")


# ---------------------------------------------------------------------------
# inference functions
# ---------------------------------------------------------------------------


def _infer_conv2d(inputs, attrs):
    data, weight = inputs
    _expect_rank(data, 4, "conv2d data")
    _expect_rank(weight, 4, "conv2d weight")
    n, c, ih, iw = data.shape
    k, cg, fh, fw = weight.shape
    groups = attrs["groups"]
    if c % groups or k % groups:
        raise ShapeError(f"conv2d: channels {c}/{k} not divisible by groups {groups}")
    if cg != c // groups:
        raise ShapeError(
            f"conv2d: weight in-channels {cg} != data channels {c} / groups {groups}"
        )
    oh, ow = conv2d_output_hw(ih, iw, fh, fw, attrs["strides"], attrs["padding"])
    return TensorType((n, k, oh, ow), _dtype(attrs["out_dtype"]))


def _macs_conv2d(inputs, out, attrs):
    k, cg, fh, fw = inputs[1].shape
    _, _, oh, ow = out.shape
    return k * cg * fh * fw * oh * ow


def _infer_dense(inputs, attrs):
    data, weight = inputs
    _expect_rank(data, 2, "dense data")
    _expect_rank(weight, 2, "dense weight")
    n, c = data.shape
    k, c2 = weight.shape
    if c != c2:
        raise ShapeError(f"dense: data features {c} != weight features {c2}")
    return TensorType((n, k), _dtype(attrs["out_dtype"]))


def _macs_dense(inputs, out, attrs):
    k, c = inputs[1].shape
    return k * c * inputs[0].shape[0]


def _infer_bias_add(inputs, attrs):
    data, bias = inputs
    axis = attrs["axis"]
    _expect_rank(bias, 1, "bias")
    if bias.shape[0] != data.shape[axis]:
        raise ShapeError(
            f"bias_add: bias length {bias.shape[0]} != dim {data.shape[axis]}"
        )
    return data


def _infer_elementwise_same(inputs, attrs):
    return inputs[0]

def _infer_binary_broadcastless(inputs, attrs):
    a, b = inputs
    if a.shape != b.shape:
        raise ShapeError(f"elementwise: shape mismatch {a} vs {b}")
    out_dtype = attrs.get("out_dtype")
    if out_dtype is not None:
        return a.with_dtype(out_dtype)
    return a


def _infer_right_shift(inputs, attrs):
    return inputs[0]


def _infer_cast(inputs, attrs):
    return inputs[0].with_dtype(attrs["dtype"])


def _infer_pool2d(inputs, attrs):
    data = inputs[0]
    _expect_rank(data, 4, "pool2d data")
    n, c, ih, iw = data.shape
    fh, fw = attrs["pool_size"]
    oh, ow = conv2d_output_hw(ih, iw, fh, fw, attrs["strides"], attrs["padding"])
    return TensorType((n, c, oh, ow), data.dtype)


def _infer_global_avg_pool2d(inputs, attrs):
    data = inputs[0]
    _expect_rank(data, 4, "global_avg_pool2d data")
    n, c, _, _ = data.shape
    return TensorType((n, c, 1, 1), data.dtype)


def _infer_softmax(inputs, attrs):
    return inputs[0].with_dtype("float32")


def _infer_reshape(inputs, attrs):
    data = inputs[0]
    newshape = tuple(int(d) for d in attrs["newshape"])
    n = 1
    for d in newshape:
        n *= d
    if n != data.num_elements:
        raise ShapeError(f"reshape: {data.shape} -> {newshape} changes element count")
    return data.with_shape(newshape)


def _infer_flatten(inputs, attrs):
    data = inputs[0]
    n = data.shape[0]
    rest = data.num_elements // n
    return data.with_shape((n, rest))


def _infer_pad(inputs, attrs):
    data = inputs[0]
    pads = attrs["pad_width"]
    if len(pads) != data.rank:
        raise ShapeError("pad: pad_width rank mismatch")
    shape = tuple(d + lo + hi for d, (lo, hi) in zip(data.shape, pads))
    return data.with_shape(shape)




def _infer_concatenate(inputs, attrs):
    a, b = inputs
    axis = attrs["axis"]
    if a.rank != b.rank:
        raise ShapeError(f"concatenate: rank mismatch {a} vs {b}")
    for i, (da, db) in enumerate(zip(a.shape, b.shape)):
        if i != axis and da != db:
            raise ShapeError(f"concatenate: dim {i} mismatch {a} vs {b}")
    if a.dtype != b.dtype:
        raise ShapeError(f"concatenate: dtype mismatch {a} vs {b}")
    shape = list(a.shape)
    shape[axis] = a.shape[axis] + b.shape[axis]
    return a.with_shape(tuple(shape))


def _infer_lut_activation(inputs, attrs):
    data = inputs[0]
    if data.dtype.bits > 8:
        raise ShapeError("LUT activations operate on (at most) 8-bit data")
    return data


# ---------------------------------------------------------------------------
# registrations
# ---------------------------------------------------------------------------

register_op(OpDef(
    "nn.conv2d", 2,
    attrs_schema={
        "strides": (1, 1),
        "padding": (0, 0),
        "groups": 1,
        "out_dtype": "int32",
    },
    infer=_infer_conv2d,
    macs=_macs_conv2d,
))

register_op(OpDef(
    "nn.dense", 2,
    attrs_schema={"out_dtype": "int32"},
    infer=_infer_dense,
    macs=_macs_dense,
))

register_op(OpDef(
    "nn.bias_add", 2,
    attrs_schema={"axis": 1},
    infer=_infer_bias_add,
    is_elementwise=True,  # per-channel broadcast add: TVM fuses it
))

register_op(OpDef(
    "right_shift", 2,
    attrs_schema={"rounding": True},
    infer=_infer_right_shift,
    is_elementwise=True,
))

register_op(OpDef(
    "clip", 1,
    attrs_schema={"a_min": _REQUIRED, "a_max": _REQUIRED},
    infer=_infer_elementwise_same,
    is_elementwise=True,
))

register_op(OpDef(
    "cast", 1,
    attrs_schema={"dtype": _REQUIRED},
    infer=_infer_cast,
    is_elementwise=True,
))

register_op(OpDef(
    "nn.relu", 1,
    attrs_schema={},
    infer=_infer_elementwise_same,
    is_elementwise=True,
))

register_op(OpDef(
    "add", 2,
    attrs_schema={"out_dtype": None},
    infer=_infer_binary_broadcastless,
    is_elementwise=True,
))

register_op(OpDef(
    "nn.avg_pool2d", 1,
    attrs_schema={
        "pool_size": _REQUIRED,
        "strides": (1, 1),
        "padding": (0, 0),
    },
    infer=_infer_pool2d,
))

register_op(OpDef(
    "nn.max_pool2d", 1,
    attrs_schema={
        "pool_size": _REQUIRED,
        "strides": (1, 1),
        "padding": (0, 0),
    },
    infer=_infer_pool2d,
))

register_op(OpDef(
    "nn.global_avg_pool2d", 1,
    attrs_schema={},
    infer=_infer_global_avg_pool2d,
))

register_op(OpDef(
    "nn.softmax", 1,
    attrs_schema={"axis": -1},
    infer=_infer_softmax,
))

register_op(OpDef(
    "reshape", 1,
    attrs_schema={"newshape": _REQUIRED},
    infer=_infer_reshape,
))

register_op(OpDef(
    "nn.batch_flatten", 1,
    attrs_schema={},
    infer=_infer_flatten,
))

register_op(OpDef(
    "nn.pad", 1,
    attrs_schema={"pad_width": _REQUIRED, "pad_value": 0},
    infer=_infer_pad,
))

register_op(OpDef(
    "concatenate", 2,
    attrs_schema={"axis": 1},
    infer=_infer_concatenate,
))

register_op(OpDef(
    "nn.sigmoid_lut", 1,
    attrs_schema={"scale_bits": 4},
    infer=_infer_lut_activation,
    is_elementwise=True,
))

register_op(OpDef(
    "nn.tanh_lut", 1,
    attrs_schema={"scale_bits": 4},
    infer=_infer_lut_activation,
    is_elementwise=True,
))
