"""Fluent graph construction API.

The builder mirrors how the paper's quantized TFLite/ONNX graphs look
after TVM ingestion: integer tensors with explicit requantization chains
(``conv2d`` → ``bias_add`` → ``right_shift`` → ``clip`` → ``cast``).

Example::

    b = GraphBuilder()
    x = b.input("data", (1, 3, 32, 32), "int8")
    y = b.conv2d_requant(x, out_channels=16, kernel=3, padding=(1, 1),
                         shift=8, relu=True, rng=rng)
    g = b.finish(y)
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import IRError
from .dtypes import dtype as _dtype
from .graph import Graph
from .node import Call, Constant, Node, Var
from .tensor import ConstantTensor, TensorType, random_constant

IntPair = Union[int, Tuple[int, int]]


def _pair(v: IntPair) -> Tuple[int, int]:
    if isinstance(v, (tuple, list)):
        if len(v) != 2:
            raise IRError(f"expected int or pair, got {v!r}")
        return int(v[0]), int(v[1])
    return int(v), int(v)


class GraphBuilder:
    """Builds a :class:`~repro.ir.graph.Graph` incrementally."""

    def __init__(self, name: str = "main", seed: int = 0):
        self.name = name
        self._inputs = []
        self.rng = np.random.default_rng(seed)

    # -- leaves ---------------------------------------------------------------

    def input(self, name: str, shape: Sequence[int], dt: str = "int8") -> Var:
        var = Var(name, TensorType(tuple(shape), _dtype(dt)))
        self._inputs.append(var)
        return var

    def const(self, data, dt: str = "int8") -> Constant:
        return Constant(ConstantTensor(np.asarray(data), dt))

    def random_weight(self, shape: Sequence[int], dt: str = "int8") -> Constant:
        return Constant(random_constant(self.rng, tuple(shape), dt))

    # -- raw calls ------------------------------------------------------------

    def call(self, op: str, inputs, **attrs) -> Call:
        return Call(op, inputs, attrs)

    # -- quantized layer macros ------------------------------------------------

    def requantize(self, acc: Node, shift: int, relu: bool, out_dt: str = "int8"):
        """The standard requantization tail of a quantized layer.

        Matches the paper's Listing 1: ``right_shift`` → ``clip`` →
        ``cast(int8)`` with an optional extra ``clip`` acting as ReLU.
        """
        dt = _dtype(out_dt)
        shifted = self.call(
            "right_shift", [acc, self.const(np.int32(shift), "int32")]
        )
        clipped = self.call("clip", [shifted], a_min=dt.min_value, a_max=dt.max_value)
        casted = self.call("cast", [clipped], dtype=out_dt)
        if relu:
            casted = self.call("clip", [casted], a_min=0, a_max=dt.max_value)
        return casted

    def conv2d_requant(
        self,
        data: Node,
        out_channels: int,
        kernel: IntPair = 3,
        strides: IntPair = 1,
        padding: IntPair = 0,
        groups: int = 1,
        shift: int = 8,
        relu: bool = True,
        weight_dtype: str = "int8",
        out_dtype: str = "int8",
        weight: Optional[Constant] = None,
        bias: Optional[Constant] = None,
    ) -> Call:
        """Quantized Conv2D with bias and requantization."""
        fh, fw = _pair(kernel)
        c = data.shape[1]
        if weight is None:
            weight = self.random_weight(
                (out_channels, c // groups, fh, fw), weight_dtype
            )
        if bias is None:
            bias = Constant(ConstantTensor(
                self.rng.integers(-(1 << 12), 1 << 12, size=out_channels,
                                  dtype=np.int64).astype(np.int32),
                "int32",
            ))
        conv = self.call(
            "nn.conv2d", [data, weight],
            strides=_pair(strides), padding=_pair(padding),
            groups=groups, out_dtype="int32",
        )
        biased = self.call("nn.bias_add", [conv, bias], axis=1)
        return self.requantize(biased, shift, relu, out_dtype)

    def dwconv2d_requant(self, data: Node, kernel: IntPair = 3,
                         strides: IntPair = 1, padding: IntPair = 0,
                         shift: int = 8, relu: bool = True,
                         weight_dtype: str = "int8") -> Call:
        """Depthwise Conv2D (groups == channels) with requantization."""
        c = data.shape[1]
        return self.conv2d_requant(
            data, out_channels=c, kernel=kernel, strides=strides,
            padding=padding, groups=c, shift=shift, relu=relu,
            weight_dtype=weight_dtype,
        )

    def dense_requant(self, data: Node, out_features: int, shift: int = 8,
                      relu: bool = False, weight_dtype: str = "int8",
                      out_dtype: str = "int8",
                      weight: Optional[Constant] = None,
                      bias: Optional[Constant] = None) -> Call:
        """Quantized fully-connected layer with requantization."""
        c = data.shape[1]
        if weight is None:
            weight = self.random_weight((out_features, c), weight_dtype)
        if bias is None:
            bias = Constant(ConstantTensor(
                self.rng.integers(-(1 << 12), 1 << 12, size=out_features,
                                  dtype=np.int64).astype(np.int32),
                "int32",
            ))
        fc = self.call("nn.dense", [data, weight], out_dtype="int32")
        biased = self.call("nn.bias_add", [fc, bias], axis=1)
        return self.requantize(biased, shift, relu, out_dtype)

    def add_requant(self, lhs: Node, rhs: Node, shift: int = 1,
                    relu: bool = False, out_dtype: str = "int8") -> Call:
        """Residual addition with requantization (int8 + int8 -> int8)."""
        widened = self.call("add", [lhs, rhs], out_dtype="int32")
        return self.requantize(widened, shift, relu, out_dtype)

    # -- plumbing ---------------------------------------------------------------

    def avg_pool2d(self, data: Node, pool: IntPair, strides: IntPair = None,
                   padding: IntPair = 0) -> Call:
        pool = _pair(pool)
        strides = pool if strides is None else _pair(strides)
        return self.call("nn.avg_pool2d", [data],
                         pool_size=pool, strides=strides, padding=_pair(padding))

    def max_pool2d(self, data: Node, pool: IntPair, strides: IntPair = None,
                   padding: IntPair = 0) -> Call:
        pool = _pair(pool)
        strides = pool if strides is None else _pair(strides)
        return self.call("nn.max_pool2d", [data],
                         pool_size=pool, strides=strides, padding=_pair(padding))

    def global_avg_pool2d(self, data: Node) -> Call:
        return self.call("nn.global_avg_pool2d", [data])

    def flatten(self, data: Node) -> Call:
        return self.call("nn.batch_flatten", [data])

    def reshape(self, data: Node, newshape: Sequence[int]) -> Call:
        return self.call("reshape", [data], newshape=tuple(newshape))

    def softmax(self, data: Node) -> Call:
        return self.call("nn.softmax", [data])

    def concatenate(self, lhs: Node, rhs: Node, axis: int = 1) -> Call:
        return self.call("concatenate", [lhs, rhs], axis=axis)

    def sigmoid(self, data: Node, scale_bits: int = 4) -> Call:
        """int8 LUT sigmoid activation."""
        return self.call("nn.sigmoid_lut", [data], scale_bits=scale_bits)

    def tanh(self, data: Node, scale_bits: int = 4) -> Call:
        """int8 LUT tanh activation."""
        return self.call("nn.tanh_lut", [data], scale_bits=scale_bits)

    def finish(self, output: Node) -> Graph:
        """Seal the builder into an immutable graph."""
        return Graph(self._inputs, output, name=self.name)
