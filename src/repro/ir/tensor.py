"""Tensor types and constant tensors.

The IR is statically shaped: every node carries a :class:`TensorType`
(shape + dtype). Constant tensors wrap a numpy array together with its
logical :class:`~repro.ir.dtypes.DataType`, because numpy cannot express
ternary or 7-bit values directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import IRError
from .dtypes import DataType, dtype as _dtype


@dataclass(frozen=True)
class TensorType:
    """Static type of a tensor value: shape and element dtype.

    Activations use NCHW layout with N always 1 (TinyML inference is
    single-sample); weights use OIHW (out-channels, in-channels, fy, fx).
    """

    shape: Tuple[int, ...]
    dtype: DataType

    def __post_init__(self):
        if not all(isinstance(d, (int, np.integer)) and d > 0 for d in self.shape):
            raise IRError(f"shape must be positive ints, got {self.shape}")
        object.__setattr__(self, "shape", tuple(int(d) for d in self.shape))
        if isinstance(self.dtype, str):
            object.__setattr__(self, "dtype", _dtype(self.dtype))

    @property
    def num_elements(self) -> int:
        """Total element count."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def storage_bytes(self) -> int:
        """Bytes used when the tensor is stored packed in device memory."""
        return self.dtype.storage_bytes(self.num_elements)

    @property
    def rank(self) -> int:
        return len(self.shape)

    def with_dtype(self, dt) -> "TensorType":
        """A copy of this type with a different element dtype."""
        return TensorType(self.shape, _dtype(dt))

    def with_shape(self, shape) -> "TensorType":
        """A copy of this type with a different shape."""
        return TensorType(tuple(shape), self.dtype)

    def __str__(self) -> str:
        dims = "x".join(str(d) for d in self.shape)
        return f"{dims}:{self.dtype}"


class ConstantTensor:
    """A constant value (weights, biases, shift amounts) in the graph.

    The payload is stored as a numpy array in the dtype's *storage*
    container; range checking against the logical dtype happens at
    construction so a "ternary" constant can never hold a 5.
    """

    def __init__(self, data: np.ndarray, dtype_name="int8"):
        dt = _dtype(dtype_name)
        raw = np.asarray(data)
        if dt.name != "float32" and raw.size:
            # range-check *before* narrowing, so 200 cannot silently
            # wrap to -56 when stored as int8
            lo, hi = dt.min_value, dt.max_value
            if raw.min() < lo or raw.max() > hi:
                raise IRError(
                    f"constant values out of range for {dt.name}: "
                    f"[{raw.min()}, {raw.max()}] not within [{lo}, {hi}]"
                )
        arr = raw.astype(dt.to_numpy())
        self.data = arr
        self.ttype = TensorType(arr.shape if arr.shape else (1,), dt)
        if not arr.shape:
            self.data = arr.reshape((1,))

    @property
    def dtype(self) -> DataType:
        return self.ttype.dtype

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.ttype.shape

    @property
    def storage_bytes(self) -> int:
        """Packed storage size of this constant."""
        return self.ttype.storage_bytes

    def __repr__(self) -> str:
        return f"ConstantTensor({self.ttype})"


def random_constant(rng: np.random.Generator, shape, dtype_name="int8"):
    """A seeded random constant spanning the dtype's full logical range.

    Used by the model zoo: the paper's latency/size results do not depend
    on trained weight values, only on shapes and dtypes.
    """
    dt = _dtype(dtype_name)
    if dt.name == "float32":
        return ConstantTensor(rng.standard_normal(shape).astype("float32"), dt.name)
    lo, hi = dt.min_value, dt.max_value
    data = rng.integers(lo, hi + 1, size=shape, dtype=np.int64)
    return ConstantTensor(data.astype(dt.to_numpy()), dt.name)
