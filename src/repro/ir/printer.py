"""Human-readable text form of IR graphs, in the spirit of Relay text.

The printer assigns SSA-style names (``%0``, ``%1`` …) in topological
order. Composite bodies are printed indented under their call site so a
partitioned graph reads like the paper's Fig. 1: green (offloaded) blocks
inline within the red (CPU) flow.
"""

from __future__ import annotations

from typing import Dict

from .graph import Graph
from .node import Call, Composite, Constant, Var


def _fmt_attrs(attrs: Dict) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={v!r}" for k, v in sorted(attrs.items()) if v is not None]
    return ", " + ", ".join(parts) if parts else ""


def graph_to_text(graph: Graph, indent: str = "") -> str:
    """Render ``graph`` as SSA-style text."""
    names: Dict[int, str] = {}
    lines = []
    counter = 0

    header = ", ".join(f"%{v.name}: {v.ttype}" for v in graph.inputs)
    lines.append(f"{indent}fn {graph.name}({header}) {{")

    for node in graph.topo_order():
        if isinstance(node, Var):
            names[node.node_id] = f"%{node.name}"
            continue
        if isinstance(node, Constant):
            names[node.node_id] = f"const<{node.ttype}>"
            continue
        name = f"%{counter}"
        counter += 1
        names[node.node_id] = name
        args = ", ".join(names[i.node_id] for i in node.inputs)
        if isinstance(node, Call):
            lines.append(
                f"{indent}  {name} = {node.op}({args}{_fmt_attrs(node.attrs)})"
                f"  /* {node.ttype} */"
            )
        elif isinstance(node, Composite):
            lines.append(
                f"{indent}  {name} = composite[{node.pattern_name} @ {node.target}]"
                f"({args})  /* {node.ttype} */"
            )
            lines.append(graph_to_text(node.body, indent + "    "))
    lines.append(f"{indent}  return {names[graph.output.node_id]}")
    lines.append(f"{indent}}}")
    return "\n".join(lines)


def summarize(graph: Graph) -> str:
    """One-line-per-layer summary with MAC and weight accounting."""
    lines = [f"graph {graph.name}: {graph.total_macs()/1e6:.2f} MMAC, "
             f"{graph.weight_bytes()/1024:.1f} kB weights"]
    for node in graph.topo_order():
        if isinstance(node, Composite):
            lines.append(
                f"  composite {node.pattern_name:<28} target={node.target:<12}"
                f" out={node.ttype} macs={node.macs()}"
            )
        elif isinstance(node, Call) and node.op in ("nn.conv2d", "nn.dense"):
            lines.append(
                f"  {node.op:<38} out={node.ttype} macs={node.macs()}"
            )
    return "\n".join(lines)
