"""Data types used by the quantized IR.

TinyML accelerators care about narrow integer types that numpy does not
natively distinguish (e.g. 7-bit activations and ternary weights on
DIANA's analog in-memory-compute macro). :class:`DataType` therefore
carries both a *logical* bit-width (used for range checking, dispatch
rules and binary-size accounting) and a *storage* numpy dtype (used by
the functional simulator).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IRError


@dataclass(frozen=True)
class DataType:
    """A logical tensor element type.

    Attributes:
        name: canonical type name, e.g. ``"int8"`` or ``"ternary"``.
        bits: logical bit-width used for range checks and dispatch rules.
        storage_bits: bits used when the tensor is stored in device
            memory (may be smaller than the numpy container, e.g. 2 bits
            for ternary weights packed four-per-byte).
        np_dtype: numpy dtype string used for in-simulator computation.
        signed: whether the logical range is signed.
    """

    name: str
    bits: int
    storage_bits: int
    np_dtype: str
    signed: bool = True

    @property
    def min_value(self) -> int:
        """Smallest representable logical value."""
        if self.name == "ternary":
            return -1
        if self.signed:
            return -(1 << (self.bits - 1))
        return 0

    @property
    def max_value(self) -> int:
        """Largest representable logical value."""
        if self.name == "ternary":
            return 1
        if self.signed:
            return (1 << (self.bits - 1)) - 1
        return (1 << self.bits) - 1

    def to_numpy(self) -> np.dtype:
        """The numpy dtype that holds this logical type in simulation."""
        return np.dtype(self.np_dtype)

    def storage_bytes(self, num_elements: int) -> int:
        """Bytes needed to store ``num_elements`` values, packed."""
        return (num_elements * self.storage_bits + 7) // 8

    def __str__(self) -> str:
        return self.name


#: 8-bit signed activations and weights (digital accelerator, CPU).
INT8 = DataType("int8", 8, 8, "int8")
#: 7-bit signed activations (analog accelerator inputs).
INT7 = DataType("int7", 7, 8, "int8")
#: 16-bit signed intermediate.
INT16 = DataType("int16", 16, 16, "int16")
#: 32-bit accumulators and biases.
INT32 = DataType("int32", 32, 32, "int32")
#: Ternary weights {-1, 0, +1}, stored 2 bits each (analog accelerator).
TERNARY = DataType("ternary", 2, 2, "int8")
#: 32-bit float, only used by the final softmax on the CPU.
FLOAT32 = DataType("float32", 32, 32, "float32", signed=True)

_REGISTRY = {
    dt.name: dt for dt in (INT8, INT7, INT16, INT32, TERNARY, FLOAT32)
}


def dtype(name: str) -> DataType:
    """Look up a :class:`DataType` by canonical name.

    Raises:
        IRError: if ``name`` is not a registered data type.
    """
    if isinstance(name, DataType):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise IRError(
            f"unknown dtype {name!r}; known: {sorted(_REGISTRY)}") from None


def all_dtypes() -> tuple:
    """All registered data types, in a stable order."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def is_integer(dt: DataType) -> bool:
    """True for any integer (including ternary) data type."""
    return dt.name != "float32"
