"""JSON (de)serialization of IR graphs.

Serves as the library's stable on-disk model format — the role TFLite /
ONNX files play for the real HTVM. Weight payloads are stored inline as
base64 so a model is a single self-contained JSON document.
"""

from __future__ import annotations

import base64
import hashlib
import json
from typing import Dict

import numpy as np

from ..errors import IRError
from .graph import Graph
from .node import Call, Composite, Constant, Node, Var
from .tensor import ConstantTensor, TensorType
from .dtypes import dtype as _dtype

FORMAT_VERSION = 1


def encode_array(arr: np.ndarray) -> Dict:
    """Encode a numpy array as a JSON-safe dict (shape/dtype/base64)."""
    return {
        "shape": list(arr.shape),
        "np_dtype": str(arr.dtype),
        "b64": base64.b64encode(np.ascontiguousarray(arr).tobytes()).decode("ascii"),
    }


def decode_array(obj: Dict) -> np.ndarray:
    """Invert :func:`encode_array`; the result owns its memory."""
    raw = base64.b64decode(obj["b64"])
    return np.frombuffer(raw, dtype=obj["np_dtype"]).reshape(obj["shape"]).copy()


# historical private names, kept for in-tree callers
_encode_array = encode_array
_decode_array = decode_array


def graph_digest(graph: Graph) -> str:
    """Content digest of a graph: structure, attributes and raw weights.

    Two graphs with equal digests serialize identically, hence compile
    and execute identically. Used by
    :meth:`repro.core.program.CompiledModel.fingerprint` and the
    ``.dna`` artifact integrity check.
    """
    payload = json.dumps(graph_to_dict(graph), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _attrs_to_json(attrs: Dict) -> Dict:
    out = {}
    for k, v in attrs.items():
        if isinstance(v, tuple):
            v = list(v)
        if isinstance(v, np.integer):
            v = int(v)
        out[k] = v
    return out


def graph_to_dict(graph: Graph) -> Dict:
    """Serialize a graph (including composite bodies) to a JSON dict."""
    nodes = []
    ids: Dict[int, int] = {}

    for node in graph.topo_order():
        idx = len(nodes)
        ids[node.node_id] = idx
        if isinstance(node, Var):
            nodes.append({
                "kind": "var",
                "name": node.name,
                "shape": list(node.shape),
                "dtype": node.dtype.name,
            })
        elif isinstance(node, Constant):
            nodes.append({
                "kind": "const",
                "dtype": node.dtype.name,
                "data": _encode_array(node.value.data),
            })
        elif isinstance(node, Call):
            nodes.append({
                "kind": "call",
                "op": node.op,
                "inputs": [ids[i.node_id] for i in node.inputs],
                "attrs": _attrs_to_json(node.attrs),
            })
        elif isinstance(node, Composite):
            nodes.append({
                "kind": "composite",
                "pattern": node.pattern_name,
                "target": node.target,
                "inputs": [ids[i.node_id] for i in node.inputs],
                "body": graph_to_dict(node.body),
            })
        else:
            raise IRError(f"cannot serialize node {node!r}")

    return {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": [ids[v.node_id] for v in graph.inputs],
        "output": ids[graph.output.node_id],
        "nodes": nodes,
    }


def graph_from_dict(obj: Dict) -> Graph:
    """Deserialize a graph produced by :func:`graph_to_dict`."""
    if obj.get("format_version") != FORMAT_VERSION:
        raise IRError(f"unsupported model format version {obj.get('format_version')}")
    built = []
    for spec in obj["nodes"]:
        kind = spec["kind"]
        if kind == "var":
            node: Node = Var(
                spec["name"],
                TensorType(tuple(spec["shape"]), _dtype(spec["dtype"])),
            )
        elif kind == "const":
            node = Constant(ConstantTensor(_decode_array(spec["data"]), spec["dtype"]))
        elif kind == "call":
            attrs = {
                k: tuple(v) if isinstance(v, list) else v
                for k, v in spec["attrs"].items()
            }
            node = Call(spec["op"], [built[i] for i in spec["inputs"]], attrs)
        elif kind == "composite":
            body = graph_from_dict(spec["body"])
            node = Composite(
                spec["pattern"], body,
                [built[i] for i in spec["inputs"]], spec["target"],
            )
        else:
            raise IRError(f"unknown node kind {kind!r}")
        built.append(node)

    inputs = [built[i] for i in obj["inputs"]]
    return Graph(inputs, built[obj["output"]], name=obj["name"])


def save_graph(graph: Graph, path: str):
    """Write a graph to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(graph_to_dict(graph), f)


def load_graph(path: str) -> Graph:
    """Read a graph previously written by :func:`save_graph`."""
    with open(path) as f:
        return graph_from_dict(json.load(f))
