"""Dataflow IR: the reproduction's stand-in for TVM's Relay.

Public surface:

* dtypes — :func:`dtype`, :data:`INT8`, :data:`TERNARY`, …
* tensors — :class:`TensorType`, :class:`ConstantTensor`
* nodes — :class:`Var`, :class:`Constant`, :class:`Call`, :class:`Composite`
* :class:`Graph` with traversal/rewrite, :class:`GraphBuilder`
* text printing and JSON serialization
"""

from .dtypes import (
    DataType, FLOAT32, INT7, INT8, INT16, INT32, TERNARY, all_dtypes, dtype,
    is_integer,
)
from .tensor import ConstantTensor, TensorType, random_constant
from .op import OpDef, all_ops, conv2d_output_hw, get_op, register_op
from .node import Call, Composite, Constant, Node, Var
from .graph import Graph
from .builder import GraphBuilder
from .printer import graph_to_text, summarize
from .serialization import (
    decode_array, encode_array, graph_digest, graph_from_dict, graph_to_dict,
    load_graph, save_graph,
)
from .dot import graph_to_dot, save_dot

__all__ = [
    "DataType", "FLOAT32", "INT7", "INT8", "INT16", "INT32", "TERNARY",
    "all_dtypes", "dtype", "is_integer",
    "ConstantTensor", "TensorType", "random_constant",
    "OpDef", "all_ops", "conv2d_output_hw", "get_op", "register_op",
    "Call", "Composite", "Constant", "Node", "Var",
    "Graph", "GraphBuilder", "graph_to_text", "summarize",
    "decode_array", "encode_array", "graph_digest",
    "graph_from_dict", "graph_to_dict", "load_graph", "save_graph",
    "graph_to_dot", "save_dot",
]
