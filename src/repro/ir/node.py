"""Dataflow graph nodes.

The IR is a DAG of immutable-ish nodes in the style of Relay expressions:

* :class:`Var` — a graph (or composite-body) input,
* :class:`Constant` — embedded weights / biases / shift amounts,
* :class:`Call` — application of a registered operator,
* :class:`Composite` — a pattern-matched region extracted for BYOC
  offload; it carries its own body graph plus the target it was
  dispatched to (``"soc.digital"``, ``"soc.analog"``, …).

Nodes are hashable by identity; structural utilities live on
:class:`~repro.ir.graph.Graph`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import IRError
from .op import get_op
from .tensor import ConstantTensor, TensorType


class Node:
    """Base class for all dataflow nodes."""

    _counter = 0

    def __init__(self, ttype: TensorType):
        if not isinstance(ttype, TensorType):
            raise IRError(f"node type must be TensorType, got {type(ttype)!r}")
        self.ttype = ttype
        Node._counter += 1
        self.node_id = Node._counter

    @property
    def inputs(self) -> List["Node"]:
        """Data dependencies of this node (empty for leaves)."""
        return []

    @property
    def shape(self):
        return self.ttype.shape

    @property
    def dtype(self):
        return self.ttype.dtype


class Var(Node):
    """A named graph input."""

    def __init__(self, name: str, ttype: TensorType):
        super().__init__(ttype)
        self.name = name

    def __repr__(self):
        return f"%{self.name}: {self.ttype}"


class Constant(Node):
    """A constant tensor embedded in the graph."""

    def __init__(self, value: ConstantTensor):
        if not isinstance(value, ConstantTensor):
            value = ConstantTensor(value)
        super().__init__(value.ttype)
        self.value = value

    def __repr__(self):
        return f"const({self.ttype})"


class Call(Node):
    """Application of a registered operator to input nodes."""

    def __init__(self, op_name: str, inputs, attrs: Optional[Dict] = None):
        op = get_op(op_name)
        inputs = list(inputs)
        if len(inputs) != op.arity:
            raise IRError(
                f"{op_name}: expected {op.arity} inputs, got {len(inputs)}"
            )
        for i, inp in enumerate(inputs):
            if not isinstance(inp, Node):
                raise IRError(f"{op_name}: input {i} is not a Node: {inp!r}")
        self.op = op_name
        self.attrs = op.validate_attrs(dict(attrs or {}))
        ttype = op.infer([n.ttype for n in inputs], self.attrs)
        super().__init__(ttype)
        self._inputs = inputs

    @property
    def inputs(self) -> List[Node]:
        return self._inputs

    def macs(self) -> int:
        """Multiply-accumulate count of this call (0 for non-MAC ops)."""
        op = get_op(self.op)
        if op.macs is None:
            return 0
        return op.macs([n.ttype for n in self.inputs], self.ttype, self.attrs)

    def __repr__(self):
        return f"{self.op}(...) -> {self.ttype}"


class Composite(Node):
    """A matched operator pattern extracted into its own body graph.

    Attributes:
        pattern_name: which library pattern matched (e.g.
            ``"diana.conv2d_requant"``).
        target: compilation target chosen by the dispatcher
            (``"cpu"`` until dispatch assigns an accelerator).
        body: a :class:`~repro.ir.graph.Graph` whose Vars correspond
            one-to-one with this node's ``inputs``. Constants consumed by
            the matched region (weights, biases) live inside the body.
    """

    def __init__(self, pattern_name: str, body, inputs, target: str = "cpu"):
        from .graph import Graph  # local import to avoid a cycle

        if not isinstance(body, Graph):
            raise IRError("composite body must be a Graph")
        inputs = list(inputs)
        if len(body.inputs) != len(inputs):
            raise IRError(
                f"composite {pattern_name}: body has {len(body.inputs)} params "
                f"but {len(inputs)} inputs were supplied"
            )
        for param, inp in zip(body.inputs, inputs):
            if param.ttype != inp.ttype:
                raise IRError(
                    f"composite {pattern_name}: param {param.name} type "
                    f"{param.ttype} != input type {inp.ttype}"
                )
        super().__init__(body.output.ttype)
        self.pattern_name = pattern_name
        self.body = body
        self.target = target
        self._inputs = inputs

    @property
    def inputs(self) -> List[Node]:
        return self._inputs

    def macs(self) -> int:
        """Total MAC count of the body."""
        return self.body.total_macs()

    def __repr__(self):
        return f"composite[{self.pattern_name}@{self.target}] -> {self.ttype}"
