"""The dataflow :class:`Graph` plus traversal and rewriting utilities.

A graph is a single-output DAG (MLPerf Tiny models are single-output;
multi-output would be a straightforward extension using a tuple node).
Graphs are *rebuilt*, never mutated in place: transforms map old nodes to
new nodes via :func:`rewrite`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..errors import IRError
from .node import Call, Composite, Constant, Node, Var


class Graph:
    """A single-output dataflow graph."""

    def __init__(self, inputs: Iterable[Var], output: Node, name: str = "main"):
        self.inputs = list(inputs)
        self.output = output
        self.name = name
        for v in self.inputs:
            if not isinstance(v, Var):
                raise IRError(f"graph input must be Var, got {v!r}")
        self.validate()

    # -- traversal ----------------------------------------------------------

    def topo_order(self) -> List[Node]:
        """Nodes in dependency order (inputs before users), output last."""
        order: List[Node] = []
        seen = set()

        def visit(node: Node):
            stack = [(node, False)]
            while stack:
                cur, expanded = stack.pop()
                if cur.node_id in seen and not expanded:
                    continue
                if expanded:
                    order.append(cur)
                    continue
                seen.add(cur.node_id)
                stack.append((cur, True))
                for inp in reversed(cur.inputs):
                    if inp.node_id not in seen:
                        stack.append((inp, False))

        visit(self.output)
        return order

    def nodes(self) -> List[Node]:
        return self.topo_order()

    def calls(self) -> List[Call]:
        """All operator calls, in topological order."""
        return [n for n in self.topo_order() if isinstance(n, Call)]

    def composites(self) -> List[Composite]:
        """All composite (pattern-extracted) nodes, in topological order."""
        return [n for n in self.topo_order() if isinstance(n, Composite)]

    def constants(self) -> List[Constant]:
        return [n for n in self.topo_order() if isinstance(n, Constant)]

    def users(self) -> Dict[int, List[Node]]:
        """Map node_id -> list of nodes that consume it."""
        out: Dict[int, List[Node]] = {n.node_id: [] for n in self.topo_order()}
        for node in self.topo_order():
            for inp in node.inputs:
                out[inp.node_id].append(node)
        return out

    # -- validation & accounting --------------------------------------------

    def validate(self):
        """Check the graph is a well-formed DAG over its declared inputs."""
        reachable_vars = {
            n.node_id for n in self.topo_order() if isinstance(n, Var)
        }
        declared = {v.node_id for v in self.inputs}
        undeclared = reachable_vars - declared
        if undeclared:
            names = [
                n.name for n in self.topo_order()
                if isinstance(n, Var) and n.node_id in undeclared
            ]
            raise IRError(f"graph {self.name}: free variables {names}")

    def total_macs(self) -> int:
        """Total MAC count over all calls and composites."""
        total = 0
        for node in self.topo_order():
            if isinstance(node, (Call, Composite)):
                total += node.macs()
        return total

    def weight_bytes(self) -> int:
        """Packed storage bytes of all constants (incl. composite bodies)."""
        total = 0
        for node in self.topo_order():
            if isinstance(node, Constant):
                total += node.value.storage_bytes
            elif isinstance(node, Composite):
                total += node.body.weight_bytes()
        return total

    # -- rewriting ------------------------------------------------------------

    def rewrite(self, fn: Callable[[Node, List[Node]], Optional[Node]]) -> "Graph":
        """Rebuild the graph bottom-up.

        ``fn(old_node, new_inputs)`` may return a replacement node, or
        ``None`` to rebuild the node unchanged (with remapped inputs).
        """
        memo: Dict[int, Node] = {}

        def remap(node: Node) -> Node:
            if node.node_id in memo:
                return memo[node.node_id]
            new_inputs = [remap(i) for i in node.inputs]
            replacement = fn(node, new_inputs)
            if replacement is None:
                replacement = _reconstruct(node, new_inputs)
            memo[node.node_id] = replacement
            return replacement

        new_output = remap(self.output)
        new_inputs = []
        for v in self.inputs:
            mapped = memo.get(v.node_id, v)
            if not isinstance(mapped, Var):
                raise IRError("rewrite may not replace a graph input Var")
            new_inputs.append(mapped)
        return Graph(new_inputs, new_output, name=self.name)

    def __repr__(self):
        n = len(self.topo_order())
        return f"Graph({self.name}: {len(self.inputs)} inputs, {n} nodes)"


def _reconstruct(node: Node, new_inputs: List[Node]) -> Node:
    """Clone ``node`` with ``new_inputs`` (identity for leaves)."""
    if isinstance(node, (Var, Constant)):
        return node
    if isinstance(node, Call):
        if all(a is b for a, b in zip(node.inputs, new_inputs)):
            return node
        return Call(node.op, new_inputs, node.attrs)
    if isinstance(node, Composite):
        if all(a is b for a, b in zip(node.inputs, new_inputs)):
            return node
        return Composite(node.pattern_name, node.body, new_inputs, node.target)
    raise IRError(f"cannot reconstruct node {node!r}")
