"""Graphviz DOT export of IR graphs.

Renders a (possibly partitioned) graph in the style of the paper's
Fig. 1: CPU-fused kernels in red, digital-accelerator composites in
green, analog composites in blue. The output is plain DOT text —
feed it to ``dot -Tpng`` or any online renderer.
"""

from __future__ import annotations

from typing import Dict

from .graph import Graph
from .node import Call, Composite, Constant, Var

_TARGET_COLORS = {
    "cpu": "#f4cccc",          # red-ish: TVM's native CPU path
    "soc.digital": "#d9ead3",  # green: BYOC DORY digital
    "soc.analog": "#cfe2f3",   # blue: BYOC DORY analog
}


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def graph_to_dot(graph: Graph, include_constants: bool = False) -> str:
    """Render ``graph`` as Graphviz DOT text."""
    lines = [
        f'digraph "{_escape(graph.name)}" {{',
        "  rankdir=TB;",
        '  node [shape=box, fontsize=10, style=filled, fillcolor=white];',
    ]
    names: Dict[int, str] = {}

    for i, node in enumerate(graph.topo_order()):
        nid = f"n{i}"
        names[node.node_id] = nid
        if isinstance(node, Var):
            lines.append(
                f'  {nid} [label="{_escape(node.name)}\\n{node.ttype}", '
                f'shape=ellipse, fillcolor="#fff2cc"];')
        elif isinstance(node, Constant):
            if not include_constants:
                continue
            lines.append(
                f'  {nid} [label="const\\n{node.ttype}", '
                f'shape=note, fillcolor="#eeeeee"];')
        elif isinstance(node, Composite):
            color = _TARGET_COLORS.get(node.target, "#e6e6e6")
            ops = "+".join(c.op.split(".")[-1] for c in node.body.calls())
            lines.append(
                f'  {nid} [label="{_escape(node.pattern_name)}\\n'
                f'[{_escape(ops)}]\\n@{node.target} out {node.ttype}", '
                f'fillcolor="{color}"];')
        elif isinstance(node, Call):
            lines.append(
                f'  {nid} [label="{_escape(node.op)}\\n{node.ttype}"];')

    for node in graph.topo_order():
        if isinstance(node, Constant) and not include_constants:
            continue
        for inp in node.inputs:
            if isinstance(inp, Constant) and not include_constants:
                continue
            lines.append(f"  {names[inp.node_id]} -> {names[node.node_id]};")
    lines.append("}")
    return "\n".join(lines)


def save_dot(graph: Graph, path: str, include_constants: bool = False):
    """Write the DOT rendering to ``path``."""
    with open(path, "w") as f:
        f.write(graph_to_dot(graph, include_constants=include_constants))
