"""Integer numpy kernels shared by every execution path.

The reference executor, the CPU model, and both accelerator models all
call these functions, so "does the tiled accelerator execution equal the
untiled reference?" tests compare genuinely independent *schedules* over
identical arithmetic — exactly the guarantee the real HTVM flow gives
(same kernel semantics, different orchestration).

All kernels follow TFLite-style integer semantics:

* convolutions/dense accumulate in int32,
* ``right_shift`` uses round-half-up requantization
  (``(x + (1 << (s-1))) >> s``), as DORY's generated code does,
* average pooling rounds to nearest.
"""

from __future__ import annotations

import numpy as np

from .errors import SimulationError


def pad_nchw(x: np.ndarray, padding, value: int = 0) -> np.ndarray:
    """Zero-pad the two spatial dims of an NCHW tensor."""
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
        mode="constant", constant_values=value,
    )


def conv2d(x: np.ndarray, w: np.ndarray, strides=(1, 1), padding=(0, 0),
           groups: int = 1) -> np.ndarray:
    """Grouped 2D convolution, int32 accumulation.

    Args:
        x: NCHW input (any integer dtype).
        w: OIHW weights; I is C/groups.
        strides/padding: spatial.
        groups: 1 for dense conv, C for depthwise.

    Returns:
        N x K x OH x OW int32 tensor.
    """
    n, c, ih, iw = x.shape
    k, cg, fh, fw = w.shape
    if c % groups or k % groups:
        raise SimulationError("conv2d: channels not divisible by groups")
    if cg != c // groups:
        raise SimulationError("conv2d: weight/groups mismatch")
    sh, sw = strides
    xp = pad_nchw(x.astype(np.int32), padding)
    oh = (xp.shape[2] - fh) // sh + 1
    ow = (xp.shape[3] - fw) // sw + 1
    out = np.zeros((n, k, oh, ow), dtype=np.int32)
    w32 = w.astype(np.int32)
    kg = k // groups
    for g in range(groups):
        xg = xp[:, g * cg:(g + 1) * cg]
        wg = w32[g * kg:(g + 1) * kg]
        acc = np.zeros((n, kg, oh, ow), dtype=np.int32)
        for dy in range(fh):
            for dx in range(fw):
                patch = xg[:, :, dy:dy + sh * oh:sh, dx:dx + sw * ow:sw]
                # (n, cg, oh, ow) x (kg, cg) -> (n, kg, oh, ow)
                acc += np.einsum("nchw,kc->nkhw", patch, wg[:, :, dy, dx],
                                 dtype=np.int32)
        out[:, g * kg:(g + 1) * kg] = acc
    return out


def dense(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Fully-connected layer: x[N,C] @ w[K,C]^T with int32 accumulation."""
    return x.astype(np.int32) @ w.astype(np.int32).T


def bias_add(x: np.ndarray, bias: np.ndarray, axis: int = 1) -> np.ndarray:
    """Add a per-channel bias along ``axis``."""
    shape = [1] * x.ndim
    shape[axis] = bias.shape[0]
    return x.astype(np.int32) + bias.astype(np.int32).reshape(shape)


def right_shift(x: np.ndarray, shift: int, rounding: bool = True) -> np.ndarray:
    """Arithmetic right shift with optional round-half-up."""
    shift = int(shift)
    if shift < 0:
        raise SimulationError(f"negative shift {shift}")
    x = x.astype(np.int32)
    if shift == 0:
        return x
    if rounding:
        x = x + (np.int32(1) << np.int32(shift - 1))
    return x >> np.int32(shift)


def clip(x: np.ndarray, a_min: int, a_max: int) -> np.ndarray:
    return np.clip(x, a_min, a_max)


def cast(x: np.ndarray, np_dtype) -> np.ndarray:
    return x.astype(np_dtype)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def add(x: np.ndarray, y: np.ndarray, out_dtype=None) -> np.ndarray:
    dt = np.int32 if out_dtype is None else out_dtype
    return x.astype(dt) + y.astype(dt)


def avg_pool2d(x: np.ndarray, pool_size, strides, padding) -> np.ndarray:
    """Integer average pooling with round-to-nearest."""
    fh, fw = pool_size
    sh, sw = strides
    xp = pad_nchw(x.astype(np.int32), padding)
    oh = (xp.shape[2] - fh) // sh + 1
    ow = (xp.shape[3] - fw) // sw + 1
    acc = np.zeros((x.shape[0], x.shape[1], oh, ow), dtype=np.int32)
    for dy in range(fh):
        for dx in range(fw):
            acc += xp[:, :, dy:dy + sh * oh:sh, dx:dx + sw * ow:sw]
    count = fh * fw
    # round-half-up for negatives too (matches DORY's emitted C)
    return np.floor_divide(acc + count // 2, count).astype(x.dtype)


def max_pool2d(x: np.ndarray, pool_size, strides, padding) -> np.ndarray:
    """Max pooling; padding uses the dtype minimum so it never wins."""
    fh, fw = pool_size
    sh, sw = strides
    lo = np.iinfo(x.dtype).min
    xp = pad_nchw(x, padding, value=lo)
    oh = (xp.shape[2] - fh) // sh + 1
    ow = (xp.shape[3] - fw) // sw + 1
    out = np.full((x.shape[0], x.shape[1], oh, ow), lo, dtype=x.dtype)
    for dy in range(fh):
        for dx in range(fw):
            np.maximum(out, xp[:, :, dy:dy + sh * oh:sh, dx:dx + sw * ow:sw],
                       out=out)
    return out


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """Whole-feature-map integer average pool."""
    n, c, h, w = x.shape
    acc = x.astype(np.int32).sum(axis=(2, 3), keepdims=True)
    count = h * w
    return np.floor_divide(acc + count // 2, count).astype(x.dtype)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Float softmax (runs on the CPU in every DIANA configuration)."""
    xf = x.astype(np.float32)
    xf = xf - xf.max(axis=axis, keepdims=True)
    e = np.exp(xf)
    return (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)


def requantize(acc: np.ndarray, shift: int, relu_after: bool,
               a_min: int = -128, a_max: int = 127) -> np.ndarray:
    """The full requantization tail: shift, clip, cast int8, optional ReLU."""
    out = clip(right_shift(acc, shift), a_min, a_max).astype(np.int8)
    if relu_after:
        out = np.maximum(out, 0)
    return out


def concatenate(x: np.ndarray, y: np.ndarray, axis: int = 1) -> np.ndarray:
    """Channel (or other axis) concatenation."""
    return np.concatenate([x, y], axis=axis)


def _lut_activation(x: np.ndarray, scale_bits: int, fn) -> np.ndarray:
    """int8 -> int8 lookup-table activation.

    Inputs are interpreted as fixed-point values ``x / 2**scale_bits``;
    outputs are ``round(127 * fn(v))`` — the scheme TinyML runtimes use
    to evaluate sigmoids/tanh with a 256-entry table.
    """
    table_in = np.arange(-128, 128, dtype=np.int32)
    v = table_in.astype(np.float64) / (1 << scale_bits)
    table = np.clip(np.rint(127.0 * fn(v)), -128, 127).astype(np.int8)
    idx = x.astype(np.int32) + 128
    return table[idx]


def sigmoid_lut(x: np.ndarray, scale_bits: int = 4) -> np.ndarray:
    """int8 LUT sigmoid (see :func:`_lut_activation`)."""
    return _lut_activation(x, scale_bits, lambda v: 1.0 / (1.0 + np.exp(-v)))


def tanh_lut(x: np.ndarray, scale_bits: int = 4) -> np.ndarray:
    """int8 LUT tanh (see :func:`_lut_activation`)."""
    return _lut_activation(x, scale_bits, np.tanh)
