"""Integer numpy kernels shared by every execution path.

The reference executor, the CPU model, and both accelerator models all
call these functions, so "does the tiled accelerator execution equal the
untiled reference?" tests compare genuinely independent *schedules* over
identical arithmetic — exactly the guarantee the real HTVM flow gives
(same kernel semantics, different orchestration).

All kernels follow TFLite-style integer semantics:

* convolutions/dense accumulate in int32,
* ``right_shift`` uses round-half-up requantization
  (``(x + (1 << (s-1))) >> s``), as DORY's generated code does,
* average pooling rounds to nearest.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .errors import SimulationError


def _pad_pairs(padding):
    """Normalize ``((pt, pb), (pl, pr))`` / symmetric ``(ph, pw)`` pads."""
    ph, pw = padding
    pt, pb = (ph, ph) if np.isscalar(ph) else ph
    pl, pr = (pw, pw) if np.isscalar(pw) else pw
    return pt, pb, pl, pr


def pad_nchw(x: np.ndarray, padding, value: int = 0) -> np.ndarray:
    """Zero-pad the two spatial dims of an NCHW tensor.

    ``padding`` is either symmetric ``(ph, pw)`` or asymmetric
    ``((pad_top, pad_bottom), (pad_left, pad_right))`` — the latter is
    what edge tiles of a DORY schedule need.
    """
    pt, pb, pl, pr = _pad_pairs(padding)
    if pt == 0 and pb == 0 and pl == 0 and pr == 0:
        return x
    return np.pad(
        x, ((0, 0), (0, 0), (pt, pb), (pl, pr)),
        mode="constant", constant_values=value,
    )


def _pad_cast(x: np.ndarray, padding, acc_dt) -> np.ndarray:
    """Zero-pad and cast in one pass (conv/pool input preparation)."""
    pt, pb, pl, pr = _pad_pairs(padding)
    if pt == 0 and pb == 0 and pl == 0 and pr == 0:
        return np.asarray(x, dtype=acc_dt)
    n, c, ih, iw = x.shape
    out = np.zeros((n, c, ih + pt + pb, iw + pl + pr), dtype=acc_dt)
    out[:, :, pt:pt + ih, pl:pl + iw] = x
    return out


def _windows(xp: np.ndarray, fh: int, fw: int, sh: int, sw: int) -> np.ndarray:
    """Strided ``(n, c, oh, ow, fh, fw)`` view of all filter windows."""
    win = sliding_window_view(xp, (fh, fw), axis=(2, 3))
    return win[:, :, ::sh, ::sw]


def _acc_dtype(x: np.ndarray, w: np.ndarray, reduction: int):
    """Accumulation dtype for a MAC reduction: BLAS floats when exact.

    int8 products stay below 2**14, so up to 1024 taps the true sum is
    at most 2**24 — every such integer is exactly representable in
    float32 and the contraction runs on sgemm. int16-or-narrower
    operands over at most 2**20 taps bound the sum by 2**50, inside
    float64's 53-bit exact-integer range (dgemm). Casting the exact
    float accumulator through int64 to int32 then reproduces the
    hardware's two's-complement wraparound bit-for-bit. Anything wider
    falls back to modular int32 arithmetic directly.
    """
    if x.dtype.kind != "i" or w.dtype.kind != "i":
        return np.int32
    if (x.dtype.itemsize == 1 and w.dtype.itemsize == 1
            and reduction <= (1 << 10)):
        return np.float32
    if (x.dtype.itemsize <= 2 and w.dtype.itemsize <= 2
            and reduction <= (1 << 20)):
        return np.float64
    return np.int32


#: id -> (weakref to source, dtype, cast copy). Weights are static
#: across inferences, so their float cast is worth memoizing; the
#: weakref guard detects id reuse after garbage collection. The lock
#: covers mutation (lookups are GIL-atomic) — the parallel harness
#: runs kernels from several threads.
_CAST_MEMO: dict = {}
_CAST_LOCK = threading.Lock()


def _memo_cast(w: np.ndarray, dt) -> np.ndarray:
    """Memoized ``w.astype(dt)`` for long-lived (weight) arrays."""
    if w.base is not None:
        # views (per-tile weight slices) are fresh objects every call:
        # memoizing them can never hit, only churn the table
        return w.astype(dt)
    entry = _CAST_MEMO.get(id(w))
    if entry is not None:
        ref, entry_dt, arr = entry
        if ref() is w and entry_dt == dt:
            return arr
    arr = w.astype(dt)
    try:
        ref = weakref.ref(w)
    except TypeError:  # some array subclasses refuse weakrefs
        return arr
    with _CAST_LOCK:
        if len(_CAST_MEMO) > 256:  # prune dead entries (stale slices)
            for key in [k for k, (r, _, _) in list(_CAST_MEMO.items())
                        if r() is None]:
                _CAST_MEMO.pop(key, None)
        _CAST_MEMO[id(w)] = (ref, dt, arr)
    return arr


def _to_int32(acc: np.ndarray) -> np.ndarray:
    """Exact float accumulator -> int32 with wraparound semantics."""
    if acc.dtype == np.int32:
        return acc
    if acc.dtype == np.float32:
        # _acc_dtype bounds float32 sums by 2**24: always in int32 range
        return acc.astype(np.int32)
    return acc.astype(np.int64).astype(np.int32)


#: batch size at which dense convolutions switch from the per-tap GEMM
#: to the explicit im2col GEMM. Per tap, the batched matmul runs N
#: small stacked GEMMs and N strided accumulation passes; from a few
#: samples up, one (K, C*fh*fw) x (C*fh*fw, OH*OW) GEMM per sample over
#: a materialized column buffer is measurably faster (the serving
#: batcher's hot path). Both orders are exact — see ``_acc_dtype``.
_IM2COL_BATCH_THRESHOLD = 4


def _im2col_gemm(xp: np.ndarray, wa: np.ndarray, sh: int,
                 sw: int) -> np.ndarray:
    """Dense conv as one GEMM per sample over an explicit column buffer.

    Each output element is a single dot product over all ``c*fh*fw``
    taps, so the float-exactness bound of ``_acc_dtype`` (which is
    computed from exactly that reduction length) applies unchanged.
    """
    k, c, fh, fw = wa.shape
    win = sliding_window_view(xp, (fh, fw), axis=(2, 3))[:, :, ::sh, ::sw]
    n, _, oh, ow = win.shape[:4]
    col = np.ascontiguousarray(
        win.transpose(0, 1, 4, 5, 2, 3)).reshape(n, c * fh * fw, oh * ow)
    out = wa.reshape(k, c * fh * fw) @ col
    return out.reshape(n, k, oh, ow)


def conv2d(x: np.ndarray, w: np.ndarray, strides=(1, 1), padding=(0, 0),
           groups: int = 1) -> np.ndarray:
    """Grouped 2D convolution, int32 accumulation.

    Dense convolutions (``groups == 1``) run as per-tap GEMMs for small
    batches and as an explicit im2col GEMM for batched inputs or large
    filters; depthwise convolutions (``C_g == 1``) use a dedicated
    einsum path with no Python loop over channels. int32 addition is
    associative and commutative even under wraparound, so all paths are
    byte-identical to the naive loop nest.

    Args:
        x: NCHW input (any integer dtype).
        w: OIHW weights; I is C/groups.
        strides/padding: spatial.
        groups: 1 for dense conv, C for depthwise.

    Returns:
        N x K x OH x OW int32 tensor.
    """
    return _to_int32(conv2d_acc(x, w, strides, padding, groups))


def conv2d_acc(x: np.ndarray, w: np.ndarray, strides=(1, 1), padding=(0, 0),
               groups: int = 1) -> np.ndarray:
    """:func:`conv2d` without the final int32 narrowing.

    Returns the raw exact accumulator in whatever dtype the MAC
    reduction ran in (float32/float64 when BLAS-exact, else int32) —
    a fresh array the caller owns. :func:`requantize_acc` consumes it
    directly, skipping one full-tensor materialization on the serving
    hot path; ``_to_int32`` recovers the public contract.
    """
    n, c, ih, iw = x.shape
    k, cg, fh, fw = w.shape
    if c % groups or k % groups:
        raise SimulationError("conv2d: channels not divisible by groups")
    if cg != c // groups:
        raise SimulationError("conv2d: weight/groups mismatch")
    sh, sw = strides
    acc_dt = _acc_dtype(x, w, cg * fh * fw)
    xp = _pad_cast(x, padding, acc_dt)
    oh = (xp.shape[2] - fh) // sh + 1
    ow = (xp.shape[3] - fw) // sw + 1
    if oh <= 0 or ow <= 0:
        return np.zeros((n, k, max(oh, 0), max(ow, 0)), dtype=np.int32)
    wa = _memo_cast(w, acc_dt)
    kg = k // groups
    if groups == 1:
        if fh == 1 and fw == 1 and sh == 1 and sw == 1:
            # pointwise conv: a batched GEMM over the flattened feature
            # map, no im2col copy
            out = wa[:, :, 0, 0] @ xp.reshape(n, c, oh * ow)
            return out.reshape(n, k, oh, ow)
        if n >= _IM2COL_BATCH_THRESHOLD:
            return _im2col_gemm(xp, wa, sh, sw)
        if fh * fw <= 25:
            # small filters: one GEMM per tap beats materializing the
            # im2col gather
            ihp, iwp = xp.shape[2], xp.shape[3]
            acc = np.empty((n, k, oh, ow), dtype=acc_dt)
            first = True  # tap 0 initializes acc, saving a zeroing pass
            if sh == 1 and sw == 1:
                # stride 1: GEMM the full feature map per tap (operands
                # stay contiguous, no slice copies), accumulate shifted
                # views of the result
                xf = xp.reshape(n, c, ihp * iwp)
                y = np.empty((n, k, ihp * iwp), dtype=acc_dt)
                yv = y.reshape(n, k, ihp, iwp)
                for dy in range(fh):
                    for dx in range(fw):
                        np.matmul(wa[:, :, dy, dx], xf, out=y)
                        tap = yv[:, :, dy:dy + oh, dx:dx + ow]
                        if first:
                            np.copyto(acc, tap)
                            first = False
                        else:
                            acc += tap
                return acc
            for dy in range(fh):
                for dx in range(fw):
                    sl = np.ascontiguousarray(
                        xp[:, :, dy:dy + sh * oh:sh, dx:dx + sw * ow:sw])
                    tap = (wa[:, :, dy, dx]
                           @ sl.reshape(n, c, -1)).reshape(n, k, oh, ow)
                    if first:
                        np.copyto(acc, tap)
                        first = False
                    else:
                        acc += tap
            return acc
        # large filters: materializing the im2col gather beats 25+
        # per-tap passes even single-sample
        return _im2col_gemm(xp, wa, sh, sw)
    if cg == 1 and kg == 1:
        # depthwise: per-tap multiply-accumulate, vectorized over all
        # channels (no Python loop over groups)
        wd = wa[:, 0]
        acc = np.zeros((n, k, oh, ow), dtype=acc_dt)
        for dy in range(fh):
            for dx in range(fw):
                acc += (xp[:, :, dy:dy + sh * oh:sh, dx:dx + sw * ow:sw]
                        * wd[None, :, dy, dx, None, None])
        return _to_int32(acc)
    win = _windows(xp, fh, fw, sh, sw)
    if cg == 1:
        # channel-multiplier depthwise: every group owns one input
        # channel, so the whole layer is one einsum
        wg = wa.reshape(groups, kg, fh, fw)
        out = np.einsum("nghwyx,gkyx->ngkhw", win, wg, dtype=acc_dt)
        return _to_int32(np.ascontiguousarray(out.reshape(n, k, oh, ow)))
    out = np.empty((n, k, oh, ow), dtype=np.int32)
    for g in range(groups):
        res = np.tensordot(win[:, g * cg:(g + 1) * cg],
                           wa[g * kg:(g + 1) * kg],
                           axes=((1, 4, 5), (1, 2, 3)))
        out[:, g * kg:(g + 1) * kg] = _to_int32(res).transpose(0, 3, 1, 2)
    return out


def dense(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Fully-connected layer: x[N,C] @ w[K,C]^T with int32 accumulation."""
    return _to_int32(dense_acc(x, w))


def dense_acc(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """:func:`dense` without the final int32 narrowing (see
    :func:`conv2d_acc`)."""
    acc_dt = _acc_dtype(x, w, x.shape[-1])
    return x.astype(acc_dt) @ _memo_cast(w, acc_dt).T


def bias_add(x: np.ndarray, bias: np.ndarray, axis: int = 1) -> np.ndarray:
    """Add a per-channel bias along ``axis``."""
    shape = [1] * x.ndim
    shape[axis] = bias.shape[0]
    return (np.asarray(x, dtype=np.int32)
            + np.asarray(bias, dtype=np.int32).reshape(shape))


def right_shift(x: np.ndarray, shift: int, rounding: bool = True) -> np.ndarray:
    """Arithmetic right shift with optional round-half-up."""
    shift = int(shift)
    if shift < 0:
        raise SimulationError(f"negative shift {shift}")
    x = np.asarray(x, dtype=np.int32)
    if shift == 0:
        return x
    if rounding:
        x = x + (np.int32(1) << np.int32(shift - 1))
    return x >> np.int32(shift)


def clip(x: np.ndarray, a_min: int, a_max: int) -> np.ndarray:
    return np.clip(x, a_min, a_max)


def cast(x: np.ndarray, np_dtype) -> np.ndarray:
    return np.asarray(x, dtype=np_dtype)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0)


def add(x: np.ndarray, y: np.ndarray, out_dtype=None) -> np.ndarray:
    dt = np.int32 if out_dtype is None else out_dtype
    return np.asarray(x, dtype=dt) + np.asarray(y, dtype=dt)


def avg_pool2d(x: np.ndarray, pool_size, strides, padding) -> np.ndarray:
    """Integer average pooling with round-to-nearest.

    The window sum runs over a sliding-window view; int32 addition is
    order-independent, so this is bit-exact vs. the per-tap loop.
    """
    fh, fw = pool_size
    sh, sw = strides
    xp = pad_nchw(x.astype(np.int32), padding)
    acc = _windows(xp, fh, fw, sh, sw).sum(axis=(4, 5), dtype=np.int32)
    count = fh * fw
    # round-half-up for negatives too (matches DORY's emitted C)
    return np.floor_divide(acc + count // 2, count).astype(x.dtype)


def max_pool2d(x: np.ndarray, pool_size, strides, padding) -> np.ndarray:
    """Max pooling; padding uses the dtype minimum so it never wins."""
    fh, fw = pool_size
    sh, sw = strides
    lo = np.iinfo(x.dtype).min
    xp = pad_nchw(x, padding, value=lo)
    return _windows(xp, fh, fw, sh, sw).max(axis=(4, 5))


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    """Whole-feature-map integer average pool."""
    n, c, h, w = x.shape
    acc = x.astype(np.int32).sum(axis=(2, 3), keepdims=True)
    count = h * w
    return np.floor_divide(acc + count // 2, count).astype(x.dtype)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Float softmax (runs on the CPU in every DIANA configuration)."""
    xf = x.astype(np.float32)
    xf = xf - xf.max(axis=axis, keepdims=True)
    e = np.exp(xf)
    return (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)


def requantize(acc: np.ndarray, shift: int, relu_after: bool,
               a_min: int = -128, a_max: int = 127) -> np.ndarray:
    """The full requantization tail: shift, clip, cast int8, optional ReLU.

    ReLU is folded into the clip lower bound — identical to clipping
    first and maxing after the int8 cast, one array pass cheaper.
    """
    if relu_after:
        a_min = max(a_min, 0)
    return clip(right_shift(acc, shift), a_min, a_max).astype(np.int8)


def bias_requantize(acc: np.ndarray, bias, shift: int, relu_after: bool,
                    a_min: int = -128, a_max: int = 127) -> np.ndarray:
    """Fused ``bias_add`` + :func:`requantize` (one layer's output tail).

    The per-channel bias and the round-half-up term are combined into a
    single broadcast add — int32 addition is associative mod 2**32, so
    the result is byte-identical to the unfused sequence.
    """
    shift = int(shift)
    if shift < 0:
        raise SimulationError(f"negative shift {shift}")
    acc = np.asarray(acc, dtype=np.int32)
    rnd = np.int32(1) << np.int32(shift - 1) if shift > 0 else np.int32(0)
    if bias is not None:
        shape = [1] * acc.ndim
        shape[1] = bias.shape[0]
        acc = acc + (np.asarray(bias, dtype=np.int32) + rnd).reshape(shape)
    elif rnd:
        acc = acc + rnd
    if shift > 0:
        # rnd > 0 forced an add above, so acc is a temporary we own
        np.right_shift(acc, np.int32(shift), out=acc)
    if relu_after:
        a_min = max(a_min, 0)
    out = np.empty(acc.shape, dtype=np.int8)
    # post-clip values fit int8, so the narrowing cast is exact
    np.clip(acc, a_min, a_max, out=out, casting="unsafe")
    return out


def requantize_acc(acc: np.ndarray, bias, shift: int, relu_after: bool,
                   a_min: int = -128, a_max: int = 127,
                   acc_bound: int = 0) -> np.ndarray:
    """Bias-add + requantize a *raw* accumulator from
    :func:`conv2d_acc` / :func:`dense_acc`.

    When the accumulator ran in exact floats and
    ``acc_bound + max|bias| + rounding`` provably stays inside the
    dtype's exact-integer range, the whole tail runs in place on the
    float array — no int32 materialization, no temporaries:
    ``floor((acc + bias + rnd) * 2**-shift)`` equals the hardware's
    arithmetic-shift-with-round-half-up bit-for-bit (``>>`` rounds
    toward -inf, exactly ``floor``). Otherwise it falls back to the
    classic int32 path. ``acc_bound`` is the caller's static bound on
    ``max|acc|`` (e.g. ``reduction_length << 14`` for int8 MACs); 0
    disables the float path.

    The accumulator must be owned by the caller — it is clobbered.
    """
    shift = int(shift)
    if shift < 0:
        raise SimulationError(f"negative shift {shift}")
    exact_bits = {np.dtype(np.float32): 24,
                  np.dtype(np.float64): 53}.get(acc.dtype)
    if exact_bits and acc_bound > 0:
        rnd = (1 << (shift - 1)) if shift > 0 else 0
        bias_max = int(np.abs(bias).max()) if bias is not None and \
            bias.size else 0
        # the fallback path wraps in int32 ("as the hardware does"), so
        # the float path must also prove no int32 overflow could occur
        safe_bits = min(exact_bits, 31)
        if acc_bound + bias_max + rnd < (1 << safe_bits):
            if bias is not None:
                shape = [1] * acc.ndim
                shape[1] = bias.shape[0]
                badd = (np.asarray(bias, dtype=np.int64) + rnd).astype(
                    acc.dtype).reshape(shape)
                np.add(acc, badd, out=acc)
            elif rnd:
                acc += acc.dtype.type(rnd)
            if shift > 0:
                np.multiply(acc, acc.dtype.type(2.0 ** -shift), out=acc)
                np.floor(acc, out=acc)
            if relu_after:
                a_min = max(a_min, 0)
            out = np.empty(acc.shape, dtype=np.int8)
            # post-clip values are exact small integers: the narrowing
            # float -> int8 cast is exact
            np.clip(acc, a_min, a_max, out=out, casting="unsafe")
            return out
    return bias_requantize(_to_int32(acc), bias, shift, relu_after,
                           a_min, a_max)


def concatenate(x: np.ndarray, y: np.ndarray, axis: int = 1) -> np.ndarray:
    """Channel (or other axis) concatenation."""
    return np.concatenate([x, y], axis=axis)


def _lut_activation(x: np.ndarray, scale_bits: int, fn) -> np.ndarray:
    """int8 -> int8 lookup-table activation.

    Inputs are interpreted as fixed-point values ``x / 2**scale_bits``;
    outputs are ``round(127 * fn(v))`` — the scheme TinyML runtimes use
    to evaluate sigmoids/tanh with a 256-entry table.
    """
    table_in = np.arange(-128, 128, dtype=np.int32)
    v = table_in.astype(np.float64) / (1 << scale_bits)
    table = np.clip(np.rint(127.0 * fn(v)), -128, 127).astype(np.int8)
    idx = x.astype(np.int32) + 128
    return table[idx]


def sigmoid_lut(x: np.ndarray, scale_bits: int = 4) -> np.ndarray:
    """int8 LUT sigmoid (see :func:`_lut_activation`)."""
    return _lut_activation(x, scale_bits, lambda v: 1.0 / (1.0 + np.exp(-v)))


def tanh_lut(x: np.ndarray, scale_bits: int = 4) -> np.ndarray:
    """int8 LUT tanh (see :func:`_lut_activation`)."""
    return _lut_activation(x, scale_bits, np.tanh)
