"""repro — reproduction of HTVM (Van Delm et al., DAC 2023).

HTVM merges a TVM-style graph compiler with the DORY memory-planning
backend to deploy quantized DNNs on heterogeneous TinyML SoCs. This
package reproduces the full system in pure Python: the compiler flow
(IR, pattern matching, dispatching, DORY tiling, memory planning,
C code generation) and a cycle-level, bit-exact simulator of the DIANA
SoC it is evaluated on.

Quickstart::

    from repro import compile_model, get_platform, HTVM, Executor
    from repro.frontend.modelzoo import resnet8
    from repro.runtime import random_inputs

    graph = resnet8(precision="int8")
    soc = get_platform("diana")
    model = compile_model(graph, soc, HTVM)
    result = Executor(soc).run(model, random_inputs(graph))
    print(model.summary(), result.total_cycles)

Platforms beyond the stock DIANA register declaratively — see
:mod:`repro.soc.registry` and docs/PLATFORMS.md.
"""

from . import baselines, codegen, core, dory, eval, extensions, frontend
from . import ir, mapping, numerics, patterns, runtime, serve, soc, transforms
from .core import (
    CompilerConfig, CompiledModel, HTVM, HTVM_NAIVE_TILING, TVM_CPU,
    TilingCache, compile_model, get_default_cache, set_default_cache,
)
from .errors import (
    CodegenError, DispatchError, IRError, MemoryPlanError, OutOfMemoryError,
    PatternError, PlatformError, ReproError, ShapeError, SimulationError,
    TilingError, UnsupportedError,
)
from .runtime import (
    BatchExecutionResult, ExecutionResult, Executor, random_inputs,
    random_inputs_batched, run_reference, run_reference_batched,
)
from .soc import (
    DEFAULT_PARAMS, DianaParams, DianaSoC, Platform, PlatformSpec,
    get_platform, latency_ms, platform_names, register_platform,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    # `repro.dispatch` is a deprecated alias of `repro.mapping`; import
    # it lazily so only code that actually reaches for the old name
    # sees the DeprecationWarning the shim emits.
    if name == "dispatch":
        import importlib
        return importlib.import_module(".dispatch", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "baselines", "codegen", "core", "dispatch", "dory", "eval",
    "extensions", "frontend",
    "ir", "mapping", "numerics", "patterns", "runtime", "serve", "soc",
    "transforms",
    "CompilerConfig", "CompiledModel", "HTVM", "HTVM_NAIVE_TILING",
    "TVM_CPU", "TilingCache", "compile_model", "get_default_cache",
    "set_default_cache",
    "CodegenError", "DispatchError", "IRError", "MemoryPlanError",
    "OutOfMemoryError", "PatternError", "PlatformError", "ReproError",
    "ShapeError", "SimulationError", "TilingError", "UnsupportedError",
    "BatchExecutionResult", "ExecutionResult", "Executor",
    "random_inputs", "random_inputs_batched",
    "run_reference", "run_reference_batched",
    "DEFAULT_PARAMS", "DianaParams", "DianaSoC", "Platform",
    "PlatformSpec", "get_platform", "latency_ms", "platform_names",
    "register_platform",
    "__version__",
]
