"""Accelerator-aware dispatching (paper Sec. III-A)."""

from .rules import (
    DispatchDecision, dispatchable_layers, eligible_targets, layer_spec_of,
)
from .selector import assign_targets, dispatch_summary

__all__ = [
    "DispatchDecision", "dispatchable_layers", "eligible_targets",
    "layer_spec_of", "assign_targets", "dispatch_summary",
]
