"""Backwards-compatible alias of :mod:`repro.mapping` (paper Sec. III-A).

The dispatcher was promoted into the ``repro.mapping`` subsystem when
target selection became a cost-driven global search; the historical
import paths (``repro.dispatch``, ``repro.dispatch.rules``,
``repro.dispatch.selector``) keep working and resolve to the very same
modules, so monkeypatching either path patches both. Importing through
this shim emits a one-time :class:`DeprecationWarning` (module init
runs once per process); new code should import :mod:`repro.mapping`.
"""

import sys
import warnings

warnings.warn(
    "repro.dispatch is a deprecated alias; import repro.mapping instead "
    "(same modules, same behavior)",
    DeprecationWarning, stacklevel=2)

from ..mapping import rules, selector
from ..mapping.rules import (
    DispatchDecision, dispatchable_layers, eligible_targets, layer_spec_of,
    layer_spec_or_reason,
)
from ..mapping.selector import assign_targets, dispatch_summary

# alias the submodules: `import repro.dispatch.rules` and
# `import repro.mapping.rules` must be the *same* module object
sys.modules[__name__ + ".rules"] = rules
sys.modules[__name__ + ".selector"] = selector

__all__ = [
    "DispatchDecision", "dispatchable_layers", "eligible_targets",
    "layer_spec_of", "layer_spec_or_reason",
    "assign_targets", "dispatch_summary", "rules", "selector",
]
