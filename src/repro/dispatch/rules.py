"""Accelerator-aware dispatch rules (paper Sec. III-A).

The pattern matcher finds *candidate* coarse-grained operators; the
rules here "describe the constraints of the accelerator in more detail
and make the final decision whether a pattern is sent to an accelerator
or not, checking if all the parameters (e.g., stride, kernel size, data
layout, parameter ranges, and bit-width, etc.) are supported".

Each accelerator model implements ``supports(LayerSpec)``; this module
evaluates those checks over a partitioned graph and records the
decisions for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dory.layer_spec import LayerSpec, spec_from_composite
from ..errors import UnsupportedError
from ..ir import Composite, Graph


@dataclass
class DispatchDecision:
    """Why one composite ended up on its target."""

    layer_name: str
    pattern: str
    target: str
    candidates: List[str] = field(default_factory=list)
    rejections: Dict[str, str] = field(default_factory=dict)


def layer_spec_of(composite: Composite, index: int) -> Optional[LayerSpec]:
    """Extract a LayerSpec, or None for composites DORY cannot describe."""
    try:
        return spec_from_composite(composite, f"layer_{index}_{composite.pattern_name}")
    except UnsupportedError:
        return None


def eligible_targets(spec: LayerSpec, soc) -> Dict[str, str]:
    """Evaluate every accelerator's rules against one layer.

    Returns a map accelerator-name -> "" (accepted) or rejection reason.
    """
    results: Dict[str, str] = {}
    for name, accel in soc.accelerators.items():
        ok, reason = accel.supports(spec)
        results[name] = "" if ok else reason
    return results


def dispatchable_layers(graph: Graph, soc) -> List[tuple]:
    """(composite, spec, eligibility) for every pattern-matched layer."""
    out = []
    for i, comp in enumerate(graph.composites()):
        if comp.pattern_name.startswith("cpu."):
            continue
        spec = layer_spec_of(comp, i)
        if spec is None:
            out.append((comp, None, {}))
            continue
        out.append((comp, spec, eligible_targets(spec, soc)))
    return out
