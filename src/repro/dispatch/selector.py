"""Target selection across multiple accelerators.

"If a pattern satisfies all rules of one of the accelerators, the
operations will be offloaded to it ... When multiple accelerators on
the platform can execute the pattern, the flow selects the one best
optimized for that given operation. This choice is based on factors
like bit widths, layer geometries, or other user-defined parameters."
(paper Sec. III-A)

On DIANA the bit-width of the weights decides: 8-bit goes to the
digital core, ternary to the analog core (Sec. III-C). The *mixed*
deployments of Table I arise from mixed-precision models (first/last
accelerator-eligible layers and depthwise layers in 8-bit, the rest
ternary), so the same weight-dtype rule produces the paper's mixed
mapping — the selector itself stays model-agnostic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..ir import Composite, Graph, Node
from .rules import DispatchDecision, dispatchable_layers


def _prefer_by_bit_width(spec, accepted: List[str]) -> str:
    """DIANA's selection rule: weight precision picks the core."""
    if spec.kind != "add":
        if spec.weight_dtype == "ternary" and "soc.analog" in accepted:
            return "soc.analog"
        if spec.weight_dtype == "int8" and "soc.digital" in accepted:
            return "soc.digital"
    # adds: co-locate with whichever core is present, digital first
    for name in ("soc.digital", "soc.analog"):
        if name in accepted:
            return name
    return accepted[0]


def assign_targets(
    graph: Graph,
    soc,
    prefer: Optional[Callable] = None,
) -> tuple:
    """Assign each pattern-matched composite to an accelerator or the CPU.

    Args:
        graph: a partitioned graph (composites present).
        soc: the platform model (capability rules).
        prefer: optional override of the multi-accelerator choice;
            signature ``prefer(spec, accepted_names) -> name``.

    Returns:
        (new_graph, decisions): the graph with composite targets set and
        the list of :class:`DispatchDecision` records.
    """
    prefer = prefer or _prefer_by_bit_width
    decisions: List[DispatchDecision] = []
    target_of: Dict[int, str] = {}

    for comp, spec, eligibility in dispatchable_layers(graph, soc):
        accepted = [n for n, reason in eligibility.items() if reason == ""]
        rejections = {n: r for n, r in eligibility.items() if r}
        if spec is None or not accepted:
            target = "cpu"
        else:
            target = prefer(spec, accepted)
        target_of[comp.node_id] = target
        decisions.append(DispatchDecision(
            layer_name=spec.name if spec else comp.pattern_name,
            pattern=comp.pattern_name,
            target=target,
            candidates=accepted,
            rejections=rejections,
        ))

    def rewriter(node: Node, new_inputs):
        if isinstance(node, Composite) and node.node_id in target_of:
            return Composite(node.pattern_name, node.body, new_inputs,
                             target=target_of[node.node_id])
        return None

    return graph.rewrite(rewriter), decisions


def dispatch_summary(decisions: List[DispatchDecision]) -> str:
    """A table of layer -> target with rejection reasons."""
    lines = [f"{'layer':<36} {'pattern':<16} {'target':<12} rejections"]
    for d in decisions:
        rej = "; ".join(f"{k}: {v}" for k, v in d.rejections.items())
        lines.append(f"{d.layer_name:<36} {d.pattern:<16} {d.target:<12} {rej}")
    return "\n".join(lines)
