"""Exporters: Chrome trace-event JSON and Prometheus text exposition.

Two output formats, both standard and tool-loadable:

* :func:`to_chrome_trace` — the Trace Event Format (JSON object with a
  ``traceEvents`` array of complete ``ph="X"`` events). Load the file
  in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` to see
  the span tree on a timeline, one track per (pid, thread).
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` plus samples; histograms expand into
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` series). Point a scraper
  at ``repro serve --metrics <port>`` or diff two ``--metrics <file>``
  dumps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .trace import Span

__all__ = ["to_chrome_trace", "write_chrome_trace", "to_prometheus"]


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_chrome_trace(spans: Sequence[Span],
                    metadata: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Spans -> Trace Event Format dict (``json.dump`` it as-is).

    Each span becomes one complete event (``ph="X"``) with
    microsecond ``ts``/``dur`` on the shared monotonic clock; span
    identity and parentage ride in ``args`` so the tree survives the
    round trip even though the timeline view only needs nesting.
    """
    events: List[Dict[str, Any]] = []
    threads = {}  # (pid, thread name) -> tid
    for span in spans:
        tid = threads.setdefault((span.pid, span.thread),
                                 len(threads) + 1)
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
        }
        for k, v in span.attrs.items():
            args[k] = _json_safe(v)
        events.append({
            "name": span.name,
            "cat": span.category or "default",
            "ph": "X",
            "ts": span.t_start_ns / 1e3,   # microseconds
            "dur": span.duration_ns / 1e3,
            "pid": span.pid,
            "tid": tid,
            "args": args,
        })
    for (pid, thread), tid in sorted(threads.items()):
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": f"{thread} (pid {pid})"},
        })
    doc: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = {k: _json_safe(v) for k, v in metadata.items()}
    return doc


def write_chrome_trace(path: str, spans: Sequence[Span],
                       metadata: Optional[Dict[str, Any]] = None) -> int:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the
    number of span events written."""
    doc = to_chrome_trace(spans, metadata=metadata)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return len(spans)


# -- prometheus ---------------------------------------------------------------

def _prom_name(key: str) -> "tuple[str, str]":
    """Split a registry key back into (bare name, label suffix)."""
    if "{" in key:
        name, _, rest = key.partition("{")
        return name, "{" + rest
    return key, ""


def _fmt(value: float) -> str:
    """Prometheus sample value: integral floats print as integers."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _merge_labels(suffix: str, extra: str) -> str:
    """Append ``extra`` (e.g. ``le="5.0"``) into a ``{...}`` suffix."""
    if not suffix:
        return "{" + extra + "}"
    return suffix[:-1] + "," + extra + "}"


def to_prometheus(snapshot: Dict[str, Any]) -> str:
    """A ``repro-stats/1`` snapshot -> Prometheus text exposition.

    Counters keep their registry names (use a ``_total`` suffix at the
    publish site per convention), histograms expand to cumulative
    ``_bucket`` series plus ``_sum``/``_count``. Subsystem dicts
    (tiling cache, native build, server/fleet tables) flatten to
    ``repro_subsystem_<section>_<field>`` gauges so one scrape sees the
    federated state.
    """
    lines: List[str] = []
    typed = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot.get("counters", {}).items():
        name, labels = _prom_name(key)
        header(name, "counter")
        lines.append(f"{name}{labels} {_fmt(value)}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _prom_name(key)
        header(name, "gauge")
        lines.append(f"{name}{labels} {_fmt(value)}")
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = _prom_name(key)
        header(name, "histogram")
        for bucket in hist["buckets"]:
            le = bucket["le"]
            le_s = "+Inf" if le == "+Inf" else repr(float(le))
            le_label = 'le="' + le_s + '"'
            lines.append(f"{name}_bucket{_merge_labels(labels, le_label)} "
                         f"{bucket['count']}")
        lines.append(f"{name}_sum{labels} {_fmt(hist['sum'])}")
        lines.append(f"{name}_count{labels} {hist['count']}")

    for section, stats in (snapshot.get("subsystems") or {}).items():
        if not isinstance(stats, dict):
            continue
        for field, value in _flatten(stats):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            name = _sanitize(f"repro_subsystem_{section}_{field}")
            header(name, "gauge")
            lines.append(f"{name} {_fmt(float(value))}")
    return "\n".join(lines) + "\n"


def _flatten(stats: Dict[str, Any], prefix: str = ""):
    for key, value in stats.items():
        path = f"{prefix}_{key}" if prefix else str(key)
        if isinstance(value, dict):
            yield from _flatten(value, path)
        else:
            yield path, value


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)
