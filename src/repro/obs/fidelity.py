"""Model-fidelity report: measured host wall time vs the analytic model.

The simulator's cycle model is *analytic* — every step's cost is a
closed-form function of (spec, tiling, accelerator params), never of
the data. This module produces the first empirical cross-check: run a
compiled model with per-step tracing enabled, then put each step's
**measured** host wall-clock next to its **modeled** DIANA latency
(:func:`repro.soc.latency_ms` over the step's cycles).

The two columns measure different machines — the host interpreting the
simulation vs the modeled accelerator — so the per-step ``ratio``
(measured / modeled) is **not** expected to be 1.0. What the report
checks is *proportionality*: if the cost model is faithful, steps the
model calls expensive should also dominate host wall time, and the
per-step ratios should cluster for one exec_mode. A step whose ratio
is a far outlier is where model and implementation disagree — exactly
the per-layer signal ROADMAP items 1-2 (native conv speed,
latency-aware shedding) need.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from .trace import Span, Tracer, collect

__all__ = ["fidelity_from_spans", "profile_model", "format_fidelity"]

#: span name the executor's per-step instrumentation uses.
STEP_SPAN = "exec.step"


def fidelity_from_spans(spans: Sequence[Span], params=None,
                        model: str = "", exec_mode: str = "",
                        ) -> Dict[str, Any]:
    """Build a ``repro-fidelity/1`` report from traced executor spans.

    Aggregates every ``exec.step`` span by step name; the measured
    wall time per step is the *minimum* over runs (the least-noise
    estimate of the step's cost on this host). ``params`` converts the
    modeled cycles to milliseconds (defaults to the stock DIANA
    parameters).
    """
    from ..soc import latency_ms

    by_step: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for span in spans:
        if span.name != STEP_SPAN:
            continue
        step = str(span.attrs.get("step", "?"))
        row = by_step.get(step)
        if row is None:
            row = by_step[step] = {
                "step": step,
                "target": span.attrs.get("target", "?"),
                "exec_mode": span.attrs.get("exec_mode", exec_mode),
                "measured_ms": span.duration_ms,
                "modeled_cycles": float(
                    span.attrs.get("modeled_cycles", 0.0)),
                "samples": 1,
            }
            order.append(step)
        else:
            row["measured_ms"] = min(row["measured_ms"], span.duration_ms)
            row["samples"] += 1

    rows: List[Dict[str, Any]] = []
    for step in order:
        row = by_step[step]
        modeled_ms = (latency_ms(row["modeled_cycles"], params)
                      if params is not None
                      else latency_ms(row["modeled_cycles"]))
        rows.append({
            "step": row["step"],
            "target": row["target"],
            "exec_mode": row["exec_mode"],
            "measured_ms": round(row["measured_ms"], 4),
            "modeled_ms": round(modeled_ms, 4),
            "ratio": (round(row["measured_ms"] / modeled_ms, 3)
                      if modeled_ms > 0 else None),
            "samples": row["samples"],
        })
    total_measured = sum(r["measured_ms"] for r in rows)
    total_modeled = sum(r["modeled_ms"] for r in rows)
    return {
        "schema": "repro-fidelity/1",
        "model": model,
        "exec_mode": exec_mode,
        "steps": len(rows),
        "rows": rows,
        "total_measured_ms": round(total_measured, 4),
        "total_modeled_ms": round(total_modeled, 4),
        "ratio": (round(total_measured / total_modeled, 3)
                  if total_modeled > 0 else None),
    }


def profile_model(model, soc, exec_mode: str = "fast", runs: int = 3,
                  seed: int = 0, feeds: Optional[Dict[str, Any]] = None,
                  ) -> Dict[str, Any]:
    """Run ``model`` ``runs`` times under a fresh tracer and return the
    fidelity report (plus the raw spans under ``"spans"``, for callers
    that also want the trace)."""
    from ..runtime import Executor, random_inputs

    if feeds is None:
        feeds = random_inputs(model.graph, seed=seed)
    executor = Executor(soc, exec_mode=exec_mode)
    tracer: Tracer
    with collect() as tracer:
        for _ in range(max(runs, 1)):
            with tracer.span("exec.run", category="exec",
                             model=model.name, exec_mode=exec_mode):
                executor.run(model, feeds)
    spans = tracer.drain()
    report = fidelity_from_spans(spans, params=soc.params,
                                 model=model.name, exec_mode=exec_mode)
    report["runs"] = max(runs, 1)
    report["spans"] = spans
    return report


def format_fidelity(report: Dict[str, Any]) -> str:
    """The per-step measured-vs-modeled table the CLI prints."""
    from ..mapping import format_columns

    headers = ["step", "target", "mode", "measured ms", "modeled ms",
               "ratio"]
    table_rows = []
    for r in report["rows"]:
        table_rows.append([
            r["step"], str(r["target"]), str(r["exec_mode"]),
            f"{r['measured_ms']:.3f}", f"{r['modeled_ms']:.3f}",
            "-" if r["ratio"] is None else f"{r['ratio']:.2f}",
        ])
    table_rows.append([
        "TOTAL", "", report.get("exec_mode", ""),
        f"{report['total_measured_ms']:.3f}",
        f"{report['total_modeled_ms']:.3f}",
        "-" if report["ratio"] is None else f"{report['ratio']:.2f}",
    ])
    head = (f"model fidelity: {report.get('model', '?')} "
            f"(measured host wall vs modeled DIANA latency; "
            f"ratio is a proportionality check, not 1.0)")
    return head + "\n" + format_columns(headers, table_rows)
