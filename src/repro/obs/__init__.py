"""Observability: tracing, metrics, exporters, model-fidelity reports.

One small layer federating what PRs 1-8 left fragmented:

* :mod:`repro.obs.trace` — span tracer with explicit trace/span IDs
  that propagate across the fleet's worker pipes (off by default,
  near-zero cost when off);
* :mod:`repro.obs.metrics` — process-wide registry of counters /
  gauges / latency histograms plus a bounded event ring, federated
  with the tiling-cache and native-build stats behind the
  ``repro-stats/1`` snapshot schema;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto) and
  Prometheus text exposition;
* :mod:`repro.obs.fidelity` — measured-vs-modeled per-step report,
  the first empirical check on the paper's analytic cost model.

CLI surface: ``repro trace``, ``repro stats``, ``repro serve
--metrics``. See ``docs/OBSERVABILITY.md``.
"""

from .export import to_chrome_trace, to_prometheus, write_chrome_trace
from .fidelity import fidelity_from_spans, format_fidelity, profile_model
from .metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, get_registry,
    merged_snapshot, set_registry,
)
from .trace import (
    Span, TraceContext, Tracer, collect, disable_tracing, enable_tracing,
    get_tracer, now_ns, trace_span,
)

__all__ = [
    "Span", "TraceContext", "Tracer",
    "collect", "disable_tracing", "enable_tracing", "get_tracer",
    "now_ns", "trace_span",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "merged_snapshot",
    "to_chrome_trace", "write_chrome_trace", "to_prometheus",
    "fidelity_from_spans", "format_fidelity", "profile_model",
]
