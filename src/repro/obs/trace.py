"""Span-based tracing: follow one request or one compile end to end.

A :class:`Span` is a named interval on the shared monotonic clock with
attributes, an explicit ``span_id``, and a ``parent_id`` — so spans
from *different processes* stitch into one tree as long as they share a
``trace_id``. That is exactly what the serving fleet needs: the front
door opens a ``fleet.request`` root span, sends its
:class:`TraceContext` (three strings — picklable) over the worker pipe,
the worker parents its execution spans under it and ships the finished
spans back in the reply. Timestamps use ``time.monotonic_ns()``, which
on Linux is ``CLOCK_MONOTONIC`` — one clock per boot, shared by parent
and (forked or spawned) children, so cross-process spans are directly
comparable.

Tracing is **off by default** and must cost ~nothing when off. The
contract every instrumented hot path follows::

    tracer = get_tracer()          # one attribute read, usually None
    ...
    if tracer is not None:         # per-step guard: one branch
        t0 = now_ns()
        ...work...
        tracer.record("exec.step", t0, ...)
    else:
        ...work...

``benchmarks/bench_obs.py`` measures the disabled-path guard and gates
it at <= 2% of the fast-mode inference wall-clock (committed in
``BENCH_obs.json``).

Cold paths (the compiler) use the :func:`trace_span` context manager,
which no-ops when tracing is disabled.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, NamedTuple, Optional

__all__ = [
    "Span", "TraceContext", "Tracer",
    "get_tracer", "enable_tracing", "disable_tracing", "trace_span",
    "collect", "now_ns",
]

#: span id source; combined with the pid so ids from forked fleet
#: workers (which inherit the counter state) never collide with the
#: parent's.
_ids = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_ids):x}"


def now_ns() -> int:
    """The tracing clock (``CLOCK_MONOTONIC``, shared across
    processes on one host)."""
    return time.monotonic_ns()


class TraceContext(NamedTuple):
    """What crosses a process/pipe boundary: enough to parent remote
    spans into the originating trace. Plain strings — pickles small."""

    trace_id: str
    span_id: str
    request_id: str = ""


@dataclass
class Span:
    """One named interval of one trace.

    ``parent_id`` is ``None`` only for trace roots; ``attrs`` hold
    small JSON-safe values (numbers / strings) so every exporter can
    serialize them verbatim.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    category: str = ""
    t_start_ns: int = 0
    t_end_ns: int = 0
    pid: int = 0
    thread: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return max(self.t_end_ns - self.t_start_ns, 0)

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def context(self) -> TraceContext:
        """The context a child (possibly in another process) parents
        under."""
        return TraceContext(self.trace_id, self.span_id,
                            str(self.attrs.get("request_id", "")))


class Tracer:
    """Collects finished spans; thread-safe.

    Parenting is implicit within a thread (a stack kept in a
    ``threading.local``) and explicit across threads/processes via
    ``parent=`` (a :class:`Span` or :class:`TraceContext`).
    ``root_context`` seeds the implicit parent — the fleet worker sets
    it to the front door's request context so every span it opens lands
    in the caller's trace.
    """

    def __init__(self, root_context: Optional[TraceContext] = None):
        self._lock = threading.Lock()
        self._local = threading.local()
        self.root_context = root_context
        self.spans: List[Span] = []

    # -- span lifecycle ------------------------------------------------------

    def _parent_of(self, parent) -> tuple:
        """Resolve (trace_id, parent_id) for a new span."""
        if parent is not None:
            if isinstance(parent, Span):
                return parent.trace_id, parent.span_id
            return parent.trace_id, parent.span_id  # TraceContext
        stack = getattr(self._local, "stack", None)
        if stack:
            top = stack[-1]
            return top.trace_id, top.span_id
        if self.root_context is not None:
            return self.root_context.trace_id, self.root_context.span_id
        return _new_id(), None

    def begin(self, name: str, category: str = "", parent=None,
              **attrs) -> Span:
        """Open a span without making it the ambient parent (for spans
        finished on another thread, e.g. a fleet request's root)."""
        trace_id, parent_id = self._parent_of(parent)
        return Span(name=name, trace_id=trace_id, span_id=_new_id(),
                    parent_id=parent_id, category=category,
                    t_start_ns=now_ns(), pid=os.getpid(),
                    thread=threading.current_thread().name, attrs=attrs)

    def finish(self, span: Span, **attrs) -> Span:
        """Close an open span and collect it."""
        if attrs:
            span.attrs.update(attrs)
        span.t_end_ns = now_ns()
        with self._lock:
            self.spans.append(span)
        return span

    def record(self, name: str, t_start_ns: int, category: str = "",
               parent=None, **attrs) -> Span:
        """Collect an already-elapsed interval (hot-path form: one
        clock read before the work, one call after)."""
        trace_id, parent_id = self._parent_of(parent)
        span = Span(name=name, trace_id=trace_id, span_id=_new_id(),
                    parent_id=parent_id, category=category,
                    t_start_ns=t_start_ns, t_end_ns=now_ns(),
                    pid=os.getpid(),
                    thread=threading.current_thread().name, attrs=attrs)
        with self._lock:
            self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, category: str = "", parent=None,
             **attrs) -> Iterator[Span]:
        """Context manager: the span is the ambient parent inside the
        ``with`` block and is collected on exit (exceptions included,
        marked with ``error=...``)."""
        sp = self.begin(name, category=category, parent=parent, **attrs)
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.attrs["error"] = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            stack.pop()
            self.finish(sp)

    # -- aggregation ---------------------------------------------------------

    def current_context(self) -> Optional[TraceContext]:
        """Context of the innermost open span on this thread."""
        stack = getattr(self._local, "stack", None)
        if stack:
            return stack[-1].context()
        return self.root_context

    def adopt(self, spans: List[Span]) -> None:
        """Merge spans finished elsewhere (e.g. shipped back from a
        fleet worker) into this tracer."""
        if not spans:
            return
        with self._lock:
            self.spans.extend(spans)

    def drain(self) -> List[Span]:
        """Return and clear all collected spans."""
        with self._lock:
            out, self.spans = self.spans, []
        return out

    def snapshot(self) -> List[Span]:
        with self._lock:
            return list(self.spans)


# -- process-wide switch ------------------------------------------------------

_tracer: Optional[Tracer] = None


def get_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or ``None`` when tracing is disabled.

    This is *the* hot-path guard: instrumented code reads it once per
    operation and branches on ``is not None``.
    """
    return _tracer


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer."""
    global _tracer
    _tracer = tracer if tracer is not None else Tracer()
    return _tracer


def disable_tracing() -> Optional[Tracer]:
    """Remove the process-wide tracer; returns it (spans intact)."""
    global _tracer
    out, _tracer = _tracer, None
    return out


@contextmanager
def trace_span(name: str, category: str = "",
               **attrs) -> Iterator[Optional[Span]]:
    """Span context manager that no-ops when tracing is disabled.

    For cold paths (compilation, CLI): one global read when disabled,
    a real span when enabled.
    """
    tracer = _tracer
    if tracer is None:
        yield None
        return
    with tracer.span(name, category=category, **attrs) as sp:
        yield sp


@contextmanager
def collect(parent: Optional[TraceContext] = None) -> Iterator[Tracer]:
    """Install a *fresh* tracer for the duration of the block.

    The fleet worker wraps each traced request in this: spans opened by
    anything downstream (the executor's per-step instrumentation
    included) land in an isolated tracer parented under the caller's
    context, ready to ship back over the pipe. The previous tracer —
    including "disabled" — is restored on exit.
    """
    global _tracer
    prev = _tracer
    local = Tracer(root_context=parent)
    _tracer = local
    try:
        yield local
    finally:
        _tracer = prev
