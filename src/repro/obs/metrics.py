"""Metrics registry: counters, gauges, and bucketed latency histograms.

One process-wide default registry (:func:`get_registry`) federates the
runtime counters of every subsystem — the batcher, server, fleet,
circuit breakers, tiling cache, and native build cache — behind a
single snapshot schema (``repro-stats/1``):

* **counters** — monotonic totals, named Prometheus-style
  (``fleet_completed_total{deployment="resnet8"}``);
* **gauges** — last-written values;
* **histograms** — bucketed distributions with cumulative counts, from
  which any percentile (p50/p99/...) is derivable without storing
  samples;
* **events** — a bounded ring of discrete occurrences (circuit-breaker
  transitions, worker restarts, exec-mode fallbacks) with timestamps;
* **subsystems** — stats pulled from components that keep their own
  counters (:func:`merged_snapshot` collects the tiling cache and the
  native build cache so one call sees everything).

All instruments are thread-safe; publishing is a dict update under one
lock per instrument, cheap enough for per-request (not per-sample)
rates. Unlike tracing there is no off switch — the registry is always
on, and the serving paths only touch it at request granularity.
"""

from __future__ import annotations

import bisect
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "get_registry", "set_registry", "merged_snapshot",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: default histogram bucket upper bounds, tuned for request latencies
#: in milliseconds (the +inf bucket is implicit).
DEFAULT_LATENCY_BUCKETS_MS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

_EVENT_RING_CAP = 512


def _metric_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical instrument identity: ``name{k="v",...}`` with sorted
    labels (Prometheus exposition syntax, reused verbatim by the
    exporter)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Bucketed distribution with cumulative-count semantics.

    ``bounds`` are upper bucket edges; an observation lands in the
    first bucket whose bound is ``>= value`` (Prometheus ``le``
    semantics — a value exactly on an edge counts into that edge's
    bucket). Values above the last bound land in the implicit ``+Inf``
    bucket. Percentiles interpolate linearly inside the chosen bucket,
    so p50/p99 are estimates with bucket-width resolution — enough for
    latency SLOs without retaining samples.
    """

    __slots__ = ("bounds", "_lock", "_counts", "_sum", "_count",
                 "_min", "_max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS):
        clean = tuple(float(b) for b in bounds)
        if not clean:
            raise ValueError("histogram needs at least one bucket bound")
        if list(clean) != sorted(clean) or len(set(clean)) != len(clean):
            raise ValueError(f"bucket bounds must be strictly increasing, "
                             f"got {clean}")
        self.bounds = clean
        self._lock = threading.Lock()
        self._counts = [0] * (len(clean) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100]); 0.0 when empty.

        Linear interpolation within the selected bucket; the +Inf
        bucket reports the largest observed value (the honest upper
        bound we know).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q / 100.0 * self._count
            cum = 0
            for i, n in enumerate(self._counts):
                prev_cum = cum
                cum += n
                if cum >= rank and n > 0:
                    if i == len(self.bounds):  # +Inf bucket
                        return float(self._max)
                    lo = self.bounds[i - 1] if i > 0 else min(
                        0.0, self._min if self._min is not None else 0.0)
                    hi = self.bounds[i]
                    frac = (rank - prev_cum) / n if n else 1.0
                    return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            return float(self._max)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            cum = 0
            buckets = []
            for bound, n in zip(self.bounds, self._counts):
                cum += n
                buckets.append({"le": bound, "count": cum})
            buckets.append({"le": "+Inf", "count": self._count})
            snap = {
                "buckets": buckets,
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": self._min,
                "max": self._max,
            }
        snap["p50"] = round(self.percentile(50), 6)
        snap["p95"] = round(self.percentile(95), 6)
        snap["p99"] = round(self.percentile(99), 6)
        return snap


class MetricsRegistry:
    """Get-or-create instrument store + event ring (thread-safe)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._events: List[Dict[str, Any]] = []
        self._event_seq = 0
        self._collectors: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        key = _metric_key(name, labels)
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = _metric_key(name, labels)
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
                  **labels: str) -> Histogram:
        key = _metric_key(name, labels)
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(buckets)
        return inst

    # -- events --------------------------------------------------------------

    def event(self, name: str, **attrs: Any) -> Dict[str, Any]:
        """Record one discrete occurrence (bounded ring, newest kept)."""
        with self._lock:
            self._event_seq += 1
            ev = {"seq": self._event_seq, "t_ns": time.monotonic_ns(),
                  "name": name, **attrs}
            self._events.append(ev)
            if len(self._events) > _EVENT_RING_CAP:
                del self._events[:len(self._events) - _EVENT_RING_CAP]
        return ev

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._lock:
            evs = list(self._events)
        if name is not None:
            evs = [e for e in evs if e["name"] == name]
        return evs

    # -- collectors ----------------------------------------------------------

    def register_collector(self, key: str,
                           fn: Callable[[], Dict[str, Any]]) -> None:
        """Attach a pull-style stats source, sampled at snapshot time
        (for components that keep their own counters)."""
        with self._lock:
            self._collectors[key] = fn

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """One consistent-enough view of everything (``repro-stats/1``).

        Instruments are sampled individually — the snapshot is not a
        cross-instrument atomic cut, which monitoring never needs.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            events = list(self._events)
            collectors = dict(self._collectors)
        subsystems: Dict[str, Any] = {}
        for key, fn in sorted(collectors.items()):
            try:
                subsystems[key] = fn()
            except Exception as exc:  # noqa: BLE001 — a broken stats
                # source must never take the snapshot down with it
                subsystems[key] = {"error": f"{type(exc).__name__}: {exc}"}
        return {
            "schema": "repro-stats/1",
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {k: h.snapshot()
                           for k, h in sorted(histograms.items())},
            "events": events,
            "subsystems": subsystems,
        }


# -- process-wide default -----------------------------------------------------

_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem publishes into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests use this for isolation);
    returns the new one."""
    global _registry
    _registry = registry
    return _registry


def merged_snapshot(
        extra: Optional[Dict[str, Dict[str, Any]]] = None) -> Dict[str, Any]:
    """The federated ``repro-stats/1`` snapshot ``repro stats`` prints.

    On top of the registry's own instruments this pulls the subsystems
    that keep private counters — the process-wide tiling cache and the
    native build cache — and merges any caller-provided ``extra``
    sections (e.g. a live server's or fleet's ``stats()``).
    """
    snap = get_registry().snapshot()
    from ..codegen.build import build_stats
    from ..core.cache import get_default_cache

    cache = get_default_cache()
    snap["subsystems"].setdefault(
        "tiling_cache", cache.stats() if cache is not None else None)
    snap["subsystems"].setdefault("native_build", build_stats())
    if extra:
        snap["subsystems"].update(extra)
    return snap


def observe_many(pairs: List[Tuple[Histogram, float]]) -> None:
    """Convenience for batched publication (keeps call sites terse)."""
    for hist, value in pairs:
        hist.observe(value)
