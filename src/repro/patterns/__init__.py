"""Pattern matching and BYOC partitioning (paper Sec. III-A)."""

from .lang import (
    MatchResult, Pattern, is_constant, is_op, wildcard,
)
from .partition import PatternSpec, find_matches, partition
from .library import (
    QADD, QCONV2D, QDENSE, add_pattern, conv2d_pattern, default_specs,
    dense_pattern,
)

__all__ = [
    "MatchResult", "Pattern", "is_constant", "is_op", "wildcard",
    "PatternSpec", "find_matches", "partition",
    "QADD", "QCONV2D", "QDENSE", "add_pattern", "conv2d_pattern",
    "default_specs", "dense_pattern",
]
