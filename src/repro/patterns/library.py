"""Standard pattern library for quantized TinyML graphs.

:func:`conv2d_pattern` is a direct transcription of the paper's
Listing 1 — a coarse-grained Conv2D followed by bias-add,
re-quantization (right-shift / clip / cast) and an optional ReLU clip.
Analogous patterns cover fully-connected and residual-add chains, which
DIANA's accelerators also execute as single coarse-grained operators.
"""

from __future__ import annotations

from typing import List

from .lang import Pattern, is_constant, is_op, wildcard
from .partition import PatternSpec

#: Composite names used across the dispatcher and the DORY backend.
QCONV2D = "htvm.qconv2d"
QDENSE = "htvm.qdense"
QADD = "htvm.qadd"


def _requant_tail(producer: Pattern) -> Pattern:
    """``right_shift`` → ``clip`` → ``cast(int8)`` with optional ReLU clip.

    The cast also accepts ``int7``: analog-bound layers re-quantize to
    the AiMC core's 7-bit input range.
    """
    right_shift = is_op("right_shift")(producer, is_constant())
    clip = is_op("clip")(right_shift)
    cast = is_op("cast")(clip).has_attr(
        {"dtype": lambda d: d in ("int8", "int7")})
    act_or_cast = cast.optional(lambda x: is_op("clip")(x))
    return act_or_cast


def conv2d_pattern() -> Pattern:
    """Conv2D-BiasAdd-ReQuant-ReLU, as in Listing 1 of the paper."""
    conv2d = is_op("nn.conv2d")(wildcard(), wildcard())
    bias_add = is_op("nn.bias_add")(conv2d, wildcard())
    return _requant_tail(bias_add)


def dense_pattern() -> Pattern:
    """Dense-BiasAdd-ReQuant(-ReLU) for fully-connected layers."""
    dense = is_op("nn.dense")(wildcard(), wildcard())
    bias_add = is_op("nn.bias_add")(dense, wildcard())
    return _requant_tail(bias_add)


def add_pattern() -> Pattern:
    """Residual elementwise Add-ReQuant(-ReLU)."""
    add = is_op("add")(wildcard(), wildcard())
    return _requant_tail(add)


def default_specs() -> List[PatternSpec]:
    """The standard prioritized pattern list used by the HTVM flow."""
    return [
        PatternSpec(QCONV2D, conv2d_pattern()),
        PatternSpec(QDENSE, dense_pattern()),
        PatternSpec(QADD, add_pattern()),
    ]
