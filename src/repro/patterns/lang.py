"""Relay-style pattern language.

Reproduces the pattern constructors the paper uses in Listing 1:
``is_op``, ``wildcard``, ``is_constant``, ``has_attr`` and ``optional``.
A pattern is matched structurally against a dataflow node; a successful
match yields a :class:`MatchResult` recording the interior nodes and the
external (wildcard-bound) inputs, which the partitioner turns into a
:class:`~repro.ir.node.Composite`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import PatternError
from ..ir import Call, Constant, Node


class MatchState:
    """Mutable state accumulated during one match attempt."""

    def __init__(self):
        self.interior: List[Node] = []       # matched Call nodes
        self.leaves: List[Node] = []         # wildcard-bound external nodes
        self.constants: List[Constant] = []  # is_constant()-bound nodes

    def snapshot(self):
        return (len(self.interior), len(self.leaves), len(self.constants))

    def rollback(self, snap):
        i, l, c = snap
        del self.interior[i:]
        del self.leaves[l:]
        del self.constants[c:]


class MatchResult:
    """Outcome of a successful pattern match rooted at ``root``."""

    def __init__(self, root: Node, state: MatchState):
        self.root = root
        self.interior = list(state.interior)
        self.constants = list(state.constants)
        # external inputs: deduplicated, in first-seen order
        seen = set()
        self.inputs: List[Node] = []
        for leaf in state.leaves:
            if isinstance(leaf, Constant):
                # constants stay inside the extracted body (weights/biases)
                self.constants.append(leaf)
                continue
            if leaf.node_id not in seen:
                seen.add(leaf.node_id)
                self.inputs.append(leaf)

    @property
    def interior_ids(self):
        return {n.node_id for n in self.interior}

    def __repr__(self):
        return (f"MatchResult(root={self.root!r}, "
                f"{len(self.interior)} interior, {len(self.inputs)} inputs)")


class Pattern:
    """Base class of all patterns."""

    def match(self, node: Node) -> Optional[MatchResult]:
        """Try to match this pattern rooted at ``node``."""
        state = MatchState()
        if self._match(node, state):
            return MatchResult(node, state)
        return None

    def _match(self, node: Node, state: MatchState) -> bool:
        raise NotImplementedError

    # -- combinators ----------------------------------------------------------

    def optional(self, wrap: Callable[["Pattern"], "Pattern"]) -> "Pattern":
        """Match ``wrap(self)`` if possible, else ``self``.

        Mirrors Listing 1's ``cast.optional(is_op("clip")(x))`` — written
        here as ``cast.optional(lambda x: is_op("clip")(x))``.
        """
        return OptionalPattern(self, wrap(self))

    def has_attr(self, attrs: Dict[str, object]) -> "Pattern":
        """Constrain attributes (or dtype via the pseudo-attr ``"dtype"``)."""
        return AttrPattern(self, dict(attrs))


class WildcardPattern(Pattern):
    """Matches any node; binds it as an external input."""

    def _match(self, node: Node, state: MatchState) -> bool:
        state.leaves.append(node)
        return True

    def __repr__(self):
        return "*"


class ConstantPattern(Pattern):
    """Matches only a :class:`Constant` node."""

    def _match(self, node: Node, state: MatchState) -> bool:
        if isinstance(node, Constant):
            state.constants.append(node)
            return True
        return False

    def __repr__(self):
        return "const"


class OpPattern(Pattern):
    """Matches a specific operator; call it to supply argument patterns."""

    def __init__(self, op_name: str):
        self.op_name = op_name

    def __call__(self, *arg_patterns: Pattern) -> "CallPattern":
        return CallPattern(self.op_name, list(arg_patterns))

    def _match(self, node: Node, state: MatchState) -> bool:
        raise PatternError(
            f"is_op({self.op_name!r}) must be called with argument patterns"
        )

    def __repr__(self):
        return f"is_op({self.op_name!r})"


class CallPattern(Pattern):
    """Matches a Call of a given op whose inputs match sub-patterns."""

    def __init__(self, op_name: str, args: List[Pattern],
                 attrs: Optional[Dict] = None):
        for a in args:
            if not isinstance(a, Pattern):
                raise PatternError(f"argument pattern expected, got {a!r}")
        self.op_name = op_name
        self.args = args
        self.attrs = dict(attrs or {})

    def _match(self, node: Node, state: MatchState) -> bool:
        if not isinstance(node, Call) or node.op != self.op_name:
            return False
        if len(node.inputs) != len(self.args):
            return False
        if not _attrs_ok(node, self.attrs):
            return False
        snap = state.snapshot()
        for pat, inp in zip(self.args, node.inputs):
            if not pat._match(inp, state):
                state.rollback(snap)
                return False
        state.interior.append(node)
        return True

    def __repr__(self):
        return f"{self.op_name}({', '.join(map(repr, self.args))})"


class AttrPattern(Pattern):
    """Wraps a pattern with additional attribute constraints."""

    def __init__(self, inner: Pattern, attrs: Dict):
        self.inner = inner
        self.attrs = attrs

    def _match(self, node: Node, state: MatchState) -> bool:
        if not _attrs_ok(node, self.attrs):
            return False
        return self.inner._match(node, state)

    def __repr__(self):
        return f"{self.inner!r}.has_attr({self.attrs!r})"


class OptionalPattern(Pattern):
    """Prefers the wrapped (longer) pattern; falls back to the base."""

    def __init__(self, base: Pattern, wrapped: Pattern):
        self.base = base
        self.wrapped = wrapped

    def _match(self, node: Node, state: MatchState) -> bool:
        snap = state.snapshot()
        if self.wrapped._match(node, state):
            return True
        state.rollback(snap)
        return self.base._match(node, state)

    def __repr__(self):
        return f"optional({self.wrapped!r} | {self.base!r})"


def _attrs_ok(node: Node, attrs: Dict) -> bool:
    for key, want in attrs.items():
        if key == "dtype":
            name = node.dtype.name
            if callable(want):
                if not want(name):
                    return False
            elif name != want:
                return False
            continue
        if not isinstance(node, Call):
            return False
        have = node.attrs.get(key)
        if isinstance(have, tuple) and isinstance(want, (list, tuple)):
            want = tuple(want)
        if callable(want):
            if not want(have):
                return False
        elif have != want:
            return False
    return True


def wildcard() -> WildcardPattern:
    """A pattern matching anything (bound as an external input)."""
    return WildcardPattern()


def is_op(op_name: str) -> OpPattern:
    """A pattern matching calls of operator ``op_name``."""
    from ..ir import get_op
    get_op(op_name)  # validate the op exists
    return OpPattern(op_name)


def is_constant() -> ConstantPattern:
    """A pattern matching constant nodes (kept inside the composite)."""
    return ConstantPattern()
