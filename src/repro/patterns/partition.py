"""BYOC-style graph partitioning.

Given a prioritized list of :class:`PatternSpec`, the partitioner finds
non-overlapping pattern matches (greedily, from the graph output upward,
so longer variants of a pattern win) and extracts each match into a
:class:`~repro.ir.node.Composite` with its own body graph. This mirrors
TVM's ``MergeComposite`` + ``PartitionGraph`` passes that HTVM's
dispatching builds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import PatternError
from ..ir import Call, Composite, Constant, Graph, Node, Var
from .lang import MatchResult, Pattern


@dataclass
class PatternSpec:
    """A named pattern with an optional structural predicate.

    Attributes:
        name: composite name recorded on extracted nodes, e.g.
            ``"htvm.qconv2d"``.
        pattern: the pattern to match.
        check: optional predicate over the :class:`MatchResult`; a match
            is only extracted if it returns True. This is where simple
            structural vetoes live — full accelerator-aware rules run
            later, in :mod:`repro.dispatch`.
    """

    name: str
    pattern: Pattern
    check: Optional[Callable[[MatchResult], bool]] = None


def _is_extractable(match: MatchResult, users: Dict[int, List[Node]],
                    claimed: set) -> bool:
    """A match is extractable iff no interior value escapes it.

    Every interior node except the root must be consumed only by other
    interior nodes; otherwise extraction would have to duplicate
    computation. Nodes already claimed by an earlier match are off-limits.
    """
    interior_ids = match.interior_ids
    if interior_ids & claimed:
        return False
    root_id = match.root.node_id
    for node in match.interior:
        if node.node_id == root_id:
            continue
        for user in users[node.node_id]:
            if user.node_id not in interior_ids:
                return False
    return True


def _extract_body(match: MatchResult, name: str) -> Graph:
    """Clone the matched region into a standalone body graph."""
    param_of: Dict[int, Var] = {}
    params: List[Var] = []
    for i, ext in enumerate(match.inputs):
        var = Var(f"in{i}", ext.ttype)
        param_of[ext.node_id] = var
        params.append(var)

    interior_ids = match.interior_ids
    memo: Dict[int, Node] = {}

    def clone(node: Node) -> Node:
        if node.node_id in param_of:
            return param_of[node.node_id]
        if node.node_id in memo:
            return memo[node.node_id]
        if isinstance(node, Constant):
            memo[node.node_id] = node  # constants are immutable; share them
            return node
        if not isinstance(node, Call) or node.node_id not in interior_ids:
            raise PatternError(
                f"match for {name!r} references unmatched non-input node {node!r}"
            )
        new = Call(node.op, [clone(i) for i in node.inputs], node.attrs)
        memo[node.node_id] = new
        return new

    return Graph(params, clone(match.root), name=name)


def find_matches(graph: Graph, specs: List[PatternSpec]) -> List[MatchResult]:
    """All non-overlapping extractable matches, output-to-input order."""
    users = graph.users()
    claimed: set = set()
    matches: List[MatchResult] = []
    for node in reversed(graph.topo_order()):
        if node.node_id in claimed or not isinstance(node, Call):
            continue
        for spec in specs:
            m = spec.pattern.match(node)
            if m is None:
                continue
            if spec.check is not None and not spec.check(m):
                continue
            if not _is_extractable(m, users, claimed):
                continue
            m.spec = spec  # annotate for the caller
            claimed |= m.interior_ids
            matches.append(m)
            break
    return matches


def partition(graph: Graph, specs: List[PatternSpec]) -> Graph:
    """Extract every match of ``specs`` into Composite nodes.

    Extracted composites start with ``target="cpu"``; the dispatcher
    (:mod:`repro.dispatch`) later reassigns them to accelerators.
    """
    matches = find_matches(graph, specs)
    by_root: Dict[int, MatchResult] = {m.root.node_id: m for m in matches}

    memo: Dict[int, Node] = {}

    def rebuild(node: Node) -> Node:
        if node.node_id in memo:
            return memo[node.node_id]
        m = by_root.get(node.node_id)
        if m is not None:
            ext = [rebuild(x) for x in m.inputs]
            body = _extract_body(m, m.spec.name)
            new: Node = Composite(m.spec.name, body, ext)
        elif isinstance(node, (Var, Constant)):
            new = node
        elif isinstance(node, Call):
            new = Call(node.op, [rebuild(i) for i in node.inputs], node.attrs)
        elif isinstance(node, Composite):
            new = Composite(node.pattern_name, node.body,
                            [rebuild(i) for i in node.inputs], node.target)
        else:
            raise PatternError(f"cannot rebuild {node!r}")
        memo[node.node_id] = new
        return new

    new_output = rebuild(graph.output)
    new_inputs = [memo.get(v.node_id, v) for v in graph.inputs]
    return Graph(new_inputs, new_output, name=graph.name)
