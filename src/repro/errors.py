"""Exception hierarchy for the HTVM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Sub-classes mirror the stages of the
compilation flow: IR construction, graph transformation, dispatching,
DORY back-end code generation, and simulated execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad operator arity, attribute, or graph structure."""


class ShapeError(IRError):
    """Shape or dtype inference failed for an operator call."""


class PatternError(ReproError):
    """Invalid pattern construction or matching misuse."""


class DispatchError(ReproError):
    """No valid target (CPU or accelerator) could be chosen for a node."""


class TilingError(ReproError):
    """The DORY tiling solver could not find a feasible tiling."""


class MemoryPlanError(ReproError):
    """The L2 activation memory planner failed (e.g. arena exhausted)."""


class OutOfMemoryError(MemoryPlanError):
    """A deployment does not fit the platform's L2 memory.

    This reproduces the paper's Table I entry where MobileNet deployed
    with plain TVM on DIANA "stops running with an error, since more
    than 512kB of memory has to be allocated".
    """


class CodegenError(ReproError):
    """C code generation failed for a layer or kernel."""


class SimulationError(ReproError):
    """The SoC simulator was driven into an invalid state."""


class UnsupportedError(ReproError):
    """A model uses an operator or dtype the flow does not support."""


class ArtifactError(ReproError):
    """A serving artifact is malformed, stale, or fails integrity checks."""


class VerificationError(ReproError):
    """A static checker found an invariant violation (see repro.verify)."""


class ServingError(ReproError):
    """The inference server was misused (unknown model, shut down, ...)."""
