"""Exception hierarchy for the HTVM reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Sub-classes mirror the stages of the
compilation flow: IR construction, graph transformation, dispatching,
DORY back-end code generation, and simulated execution.

Serving errors additionally carry a **stable machine-readable code**
(``S-*``, the runtime-side sibling of the ``V-*`` static-diagnostic
vocabulary in :mod:`repro.verify`) and a ``retryable`` flag telling
clients whether the same request may succeed if resubmitted (see
``docs/RESILIENCE.md`` for the full taxonomy).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: bad operator arity, attribute, or graph structure."""


class ShapeError(IRError):
    """Shape or dtype inference failed for an operator call."""


class PatternError(ReproError):
    """Invalid pattern construction or matching misuse."""


class DispatchError(ReproError):
    """No valid target (CPU or accelerator) could be chosen for a node."""


class TilingError(ReproError):
    """The DORY tiling solver could not find a feasible tiling."""


class MemoryPlanError(ReproError):
    """The L2 activation memory planner failed (e.g. arena exhausted)."""


class OutOfMemoryError(MemoryPlanError):
    """A deployment does not fit the platform's L2 memory.

    This reproduces the paper's Table I entry where MobileNet deployed
    with plain TVM on DIANA "stops running with an error, since more
    than 512kB of memory has to be allocated".
    """


class CodegenError(ReproError):
    """C code generation failed for a layer or kernel."""


class SimulationError(ReproError):
    """The SoC simulator was driven into an invalid state."""


class UnsupportedError(ReproError):
    """A model uses an operator or dtype the flow does not support."""


class ArtifactError(ReproError):
    """A serving artifact is malformed, stale, or fails integrity checks."""


class PlatformError(ReproError):
    """A platform spec is invalid or a platform name is not registered."""


class VerificationError(ReproError):
    """A static checker found an invariant violation (see repro.verify)."""


class ServingError(ReproError):
    """The inference server was misused (unknown model, shut down, ...).

    Base of the serving-error taxonomy. ``code`` is a stable
    machine-readable identifier (``S-*``); ``retryable`` tells clients
    whether resubmitting the identical request can succeed. Both may be
    overridden per instance (e.g. a generic :class:`ServingError`
    raised at shutdown carries ``code="S-SHUTDOWN"``).

    ``request_id`` is the client-visible identifier of the request the
    error is about (``<deployment>#<seq>``), set by the serving fleet
    on every error it raises — including admission rejections — so a
    failure in a chaos run is traceable to one specific request in the
    logs, traces, and :mod:`repro.eval.loadgen`'s per-code ledger.
    """

    code: str = "S-GENERIC"
    retryable: bool = False
    request_id: Optional[str] = None

    def __init__(self, message: str = "", *, code: Optional[str] = None,
                 request_id: Optional[str] = None):
        super().__init__(message)
        if code is not None:
            self.code = code
        if request_id is not None:
            self.request_id = request_id


class ServingTimeoutError(ServingError):
    """A request missed its deadline (queued, executing, or while the
    caller waited on its future). Terminal: the deadline has passed.

    ``model`` is the registry key of the deployment the request was
    bound for and ``elapsed_s`` the wall-clock the request had been
    outstanding when the timeout fired.
    """

    code = "S-TIMEOUT"
    retryable = False

    def __init__(self, message: str, *, model: Optional[str] = None,
                 elapsed_s: Optional[float] = None):
        super().__init__(message)
        self.model = model
        self.elapsed_s = elapsed_s


class ServingOverloadError(ServingError):
    """Admission control rejected the request (queue over its
    watermark, or a low-priority request shed under pressure).

    Fast-fail backpressure: the request was never accepted, nothing is
    lost, and ``retry_after`` hints how long (seconds) the client
    should wait before resubmitting.
    """

    code = "S-OVERLOAD"
    retryable = True

    def __init__(self, message: str, *, retry_after: Optional[float] = None,
                 model: Optional[str] = None, shed: bool = False):
        super().__init__(message)
        self.retry_after = retry_after
        self.model = model
        #: True when the request was dropped by priority shedding
        #: rather than the hard queue limit.
        self.shed = shed


class ServingUnavailableError(ServingError):
    """The deployment cannot currently serve: its circuit breaker is
    open, or it failed terminally (e.g. a corrupt artifact).

    ``retry_after`` is the breaker's remaining recovery window;
    ``None`` means the condition is permanent (``retryable`` is then
    also False on the instance).
    """

    code = "S-UNAVAILABLE"
    retryable = True

    def __init__(self, message: str, *, retry_after: Optional[float] = None,
                 model: Optional[str] = None, terminal: bool = False):
        super().__init__(message)
        self.retry_after = retry_after
        self.model = model
        if terminal:
            self.retryable = False


class WorkerCrashError(ServingError):
    """A fleet worker died (crash, kill, or OOM) while holding the
    request. Retryable: the fleet retries internally with backoff and
    surfaces this only once the retry budget or deadline is exhausted.
    """

    code = "S-CRASH"
    retryable = True

    def __init__(self, message: str, *, model: Optional[str] = None,
                 worker: Optional[int] = None):
        super().__init__(message)
        self.model = model
        self.worker = worker


class ServingExecutionError(ServingError):
    """The deployment executed and failed deterministically (bad input
    shape, simulator fault). Terminal: retrying the same request will
    fail the same way.
    """

    code = "S-EXEC"
    retryable = False

    def __init__(self, message: str, *, model: Optional[str] = None,
                 code: Optional[str] = None):
        super().__init__(message, code=code)
        self.model = model
