"""Legalization utilities.

The paper deploys fully-connected layers on DIANA's analog accelerator
"by implementing FC layers as Conv2Ds". :func:`dense_to_conv2d` performs
that rewrite at graph level: ``nn.dense`` over ``[1, C]`` becomes a 1x1
``nn.conv2d`` over ``[1, C, 1, 1]`` (with the weight reshaped OIHW),
bracketed by reshapes so surrounding shapes are preserved.
"""

from __future__ import annotations

from ..ir import Call, Constant, ConstantTensor, Graph, Node


def dense_to_conv2d(graph: Graph) -> Graph:
    """Rewrite every ``nn.dense`` into an equivalent 1x1 ``nn.conv2d``."""

    def rewriter(node: Node, new_inputs):
        if not isinstance(node, Call) or node.op != "nn.dense":
            return None
        data, weight = new_inputs
        if not isinstance(weight, Constant):
            return None  # dynamic weights are out of scope
        n, c = data.shape
        k = weight.shape[0]
        as_nchw = Call("reshape", [data], {"newshape": (n, c, 1, 1)})
        w4 = Constant(ConstantTensor(
            weight.value.data.reshape(k, c, 1, 1), weight.dtype.name))
        conv = Call("nn.conv2d", [as_nchw, w4],
                    {"out_dtype": node.attrs["out_dtype"]})
        return Call("reshape", [conv], {"newshape": (n, k)})

    return graph.rewrite(rewriter)
