"""Constant folding — one of TVM's "initial optimizations" (Fig. 1).

Any call whose inputs are all constants is evaluated at compile time
with the shared numpy kernels and replaced by a constant node. Float
results (softmax) are foldable too, though they never appear with
constant inputs in practice.
"""

from __future__ import annotations

import numpy as np

from ..ir import Call, Constant, ConstantTensor, Graph, Node
from ..runtime.reference import _eval_call


def _as_constant(node: Call, value: np.ndarray) -> Constant:
    return Constant(ConstantTensor(value.astype(node.dtype.to_numpy()),
                                   node.dtype.name))


def fold_constants(graph: Graph) -> Graph:
    """Replace constant-input calls by their evaluated result."""

    def rewriter(node: Node, new_inputs):
        if not isinstance(node, Call):
            return None
        if not new_inputs or not all(isinstance(i, Constant) for i in new_inputs):
            return None
        args = [i.value.data for i in new_inputs]
        result = _eval_call(node, args)
        return _as_constant(node, np.asarray(result))

    return graph.rewrite(rewriter)
