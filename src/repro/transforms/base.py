"""Pass infrastructure: named graph-to-graph transforms with a manager."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..ir import Graph
from ..obs.trace import trace_span


class Pass:
    """A named graph transform."""

    def __init__(self, name: str, fn: Callable[[Graph], Graph]):
        self.name = name
        self.fn = fn

    def __call__(self, graph: Graph) -> Graph:
        out = self.fn(graph)
        if not isinstance(out, Graph):
            raise TypeError(f"pass {self.name} returned {type(out)!r}")
        return out

    def __repr__(self):
        return f"Pass({self.name})"


class PassManager:
    """Runs a pipeline of passes in order, recording a trace.

    The trace (pass name, node count before/after) is kept for
    debuggability — `PassManager.trace` after a run shows what each
    stage of the Fig. 1 flow did to the graph.
    """

    def __init__(self, passes: List[Pass]):
        self.passes = list(passes)
        self.trace: List[Tuple[str, int, int]] = []

    def run(self, graph: Graph,
            post_hook: Optional[Callable[[str, Graph], None]] = None
            ) -> Graph:
        """Run the pipeline; ``post_hook(pass_name, graph)`` fires after
        each pass — the static verifier uses it to pin a diagnostic to
        the transform that produced the broken graph."""
        self.trace = []
        for p in self.passes:
            before = len(graph.topo_order())
            with trace_span(f"transform.{p.name}", category="compile",
                            nodes_before=before):
                graph = p(graph)
            after = len(graph.topo_order())
            self.trace.append((p.name, before, after))
            if post_hook is not None:
                post_hook(p.name, graph)
        return graph
