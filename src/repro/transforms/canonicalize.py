"""Canonicalization: local simplifications that make patterns match.

* ``clip(clip(x))`` → single clip with intersected bounds,
* ``cast`` to the node's own dtype → dropped,
* ``reshape`` to the input's own shape → dropped.

Quantized model exporters routinely emit such redundancies; removing
them keeps the Listing 1 pattern a faithful single description of a
quantized convolution.
"""

from __future__ import annotations

from ..ir import Call, Graph, Node


def canonicalize(graph: Graph) -> Graph:
    """Apply local clean-up rewrites until none fire."""

    changed = True
    while changed:
        changed = False

        def rewriter(node: Node, new_inputs):
            nonlocal changed
            if not isinstance(node, Call):
                return None
            if node.op == "clip":
                inner = new_inputs[0]
                if isinstance(inner, Call) and inner.op == "clip":
                    changed = True
                    return Call("clip", inner.inputs, {
                        "a_min": max(node.attrs["a_min"], inner.attrs["a_min"]),
                        "a_max": min(node.attrs["a_max"], inner.attrs["a_max"]),
                    })
            if node.op == "cast" and new_inputs[0].dtype.name == node.attrs["dtype"]:
                changed = True
                return new_inputs[0]
            if node.op == "reshape" and new_inputs[0].shape == node.shape:
                changed = True
                return new_inputs[0]
            return None

        graph = graph.rewrite(rewriter)
    return graph
