"""Graph transforms: TVM-style optimization and lowering passes."""

from .base import Pass, PassManager
from .canonicalize import canonicalize
from .constant_fold import fold_constants
from .dead_code import eliminate_dead_code
from .fuse_ops import CPU_FUSED, fuse_cpu_ops
from .legalize import dense_to_conv2d

__all__ = [
    "Pass", "PassManager", "canonicalize", "fold_constants",
    "eliminate_dead_code", "CPU_FUSED", "fuse_cpu_ops", "dense_to_conv2d",
]
