"""Dead-code elimination.

Because :class:`~repro.ir.graph.Graph` traversal starts from the output,
rebuilding a graph drops any node that does not feed the output. This
pass exists so the pipeline trace shows the elimination explicitly.
"""

from __future__ import annotations

from ..ir import Graph


def eliminate_dead_code(graph: Graph) -> Graph:
    """Rebuild the graph, dropping unreachable nodes."""
    return graph.rewrite(lambda node, new_inputs: None)
