"""CPU operator fusion — TVM's native lowering path (red block, Fig. 1).

Operators left unmatched after accelerator partitioning are grouped into
fused CPU kernels: an anchor op (conv/dense/pool/add/…) absorbs the
maximal chain of single-use elementwise consumers that follows it. Each
group becomes a :class:`~repro.ir.node.Composite` with pattern name
``"cpu.fused"`` and ``target="cpu"``, which the CPU code generator turns
into one C function — mirroring how TVM "produces operator-fused CPU
kernels".
"""

from __future__ import annotations

from typing import Dict, List

from ..ir import Call, Composite, Constant, Graph, Node, Var, get_op
from ..patterns.lang import MatchResult, MatchState
from ..patterns.partition import _extract_body

CPU_FUSED = "cpu.fused"


def _is_elementwise(node: Node) -> bool:
    return isinstance(node, Call) and get_op(node.op).is_elementwise


def _chain_from(anchor: Call, users: Dict[int, List[Node]], claimed: set):
    """The maximal elementwise chain starting at ``anchor``."""
    chain = [anchor]
    cur: Node = anchor
    while True:
        consumers = users[cur.node_id]
        if len(consumers) != 1:
            break
        nxt = consumers[0]
        if not _is_elementwise(nxt) or nxt.node_id in claimed:
            break
        # binary elementwise ops only fuse if their second operand is a
        # constant (e.g. the shift amount); a real second activation
        # input makes them an anchor of their own.
        others = [i for i in nxt.inputs if i is not cur]
        if any(not isinstance(o, Constant) for o in others):
            break
        chain.append(nxt)
        cur = nxt
    return chain


def _group_match(chain: List[Call]) -> MatchResult:
    """Build a MatchResult describing a fusion group."""
    state = MatchState()
    state.interior = list(chain)
    interior_ids = {n.node_id for n in chain}
    for node in chain:
        for inp in node.inputs:
            if inp.node_id in interior_ids or isinstance(inp, Constant):
                continue
            state.leaves.append(inp)
    return MatchResult(chain[-1], state)


def fuse_cpu_ops(graph: Graph) -> Graph:
    """Group remaining calls into fused CPU composites."""
    users = graph.users()
    claimed: set = set()
    groups: List[MatchResult] = []

    for node in graph.topo_order():
        if node.node_id in claimed or not isinstance(node, Call):
            continue
        chain = _chain_from(node, users, claimed)
        claimed |= {n.node_id for n in chain}
        groups.append(_group_match(chain))

    by_root = {g.root.node_id: g for g in groups}
    memo: Dict[int, Node] = {}

    def rebuild(node: Node) -> Node:
        if node.node_id in memo:
            return memo[node.node_id]
        g = by_root.get(node.node_id)
        if g is not None:
            ext = [rebuild(x) for x in g.inputs]
            ops = "+".join(n.op for n in g.interior)
            body = _extract_body(g, f"{CPU_FUSED}:{ops}")
            new: Node = Composite(CPU_FUSED, body, ext, target="cpu")
        elif isinstance(node, (Var, Constant)):
            new = node
        elif isinstance(node, Composite):
            new = Composite(node.pattern_name, node.body,
                            [rebuild(i) for i in node.inputs], node.target)
        elif isinstance(node, Call):
            new = Call(node.op, [rebuild(i) for i in node.inputs], node.attrs)
        else:
            raise TypeError(f"cannot rebuild {node!r}")
        memo[node.node_id] = new
        return new

    new_output = rebuild(graph.output)
    new_inputs = [memo.get(v.node_id, v) for v in graph.inputs]
    return Graph(new_inputs, new_output, name=graph.name)
