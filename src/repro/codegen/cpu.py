"""C code generation for fused CPU kernels (TVM's native lowering path).

Each fused composite becomes one self-contained C function with nested
loops per operator — the shape TVM's C backend produces after operator
fusion. Kernels are deduplicated by *signature* (operator sequence +
shapes): like TVM, two layers with identical fused shapes share one
function, which is the mechanism behind the binary-size differences in
Table I (see DESIGN.md).
"""

from __future__ import annotations

from typing import Tuple

from ..ir import Call, Composite, Constant, Graph
from .c_writer import CWriter

#: classification used by the size model; ordered by precedence.
_KERNEL_KINDS = ("conv2d", "dwconv2d", "dense", "pool", "softmax", "add",
                 "elementwise", "copy")


def classify_body(body: Graph) -> str:
    """The dominant-kernel kind of a fused body (for the size model)."""
    kinds = set()
    for call in body.calls():
        if call.op == "nn.conv2d":
            groups = call.attrs["groups"]
            depthwise = groups > 1 and groups == call.inputs[0].shape[1]
            kinds.add("dwconv2d" if depthwise else "conv2d")
        elif call.op == "nn.dense":
            kinds.add("dense")
        elif call.op in ("nn.avg_pool2d", "nn.max_pool2d",
                         "nn.global_avg_pool2d"):
            kinds.add("pool")
        elif call.op == "nn.softmax":
            kinds.add("softmax")
        elif call.op == "add":
            kinds.add("add")
        elif call.op in ("reshape", "nn.batch_flatten", "nn.pad",
                         "concatenate"):
            kinds.add("copy")
        else:
            kinds.add("elementwise")
    for kind in _KERNEL_KINDS:
        if kind in kinds:
            return kind
    return "copy"


def kernel_signature(body: Graph) -> Tuple:
    """Dedup key: op sequence with shapes/attrs, as TVM would share code."""
    sig = []
    for call in body.calls():
        attrs = tuple(sorted(
            (k, tuple(v) if isinstance(v, (list, tuple)) else v)
            for k, v in call.attrs.items()
        ))
        in_shapes = tuple(i.ttype.shape for i in call.inputs)
        sig.append((call.op, in_shapes, attrs))
    return tuple(sig)


def _c_dtype(name: str) -> str:
    return {
        "int8": "int8_t", "int7": "int8_t", "int16": "int16_t",
        "int32": "int32_t", "ternary": "int8_t", "float32": "float",
    }[name]


def _emit_call_loops(w: CWriter, call: Call, idx: int, src: str):
    """Representative loop nest for one fused operator.

    ``src`` is the C identifier holding the previous stage's buffer.
    Returns the identifier holding this call's result.
    """
    out = call.ttype
    dst = f"t{idx}"
    w.comment(f"{call.op} -> {out}")
    w.line(f"static int32_t {dst}[{out.num_elements}];")
    if call.op == "nn.conv2d":
        _, c, _, _ = call.inputs[0].shape
        k, _, fy, fx = call.inputs[1].shape
        _, _, oy, ox = out.shape
        w.line(f"extern const int8_t weights_{idx}[];")
        w.open(f"for (int k = 0; k < {k}; ++k)")
        w.open(f"for (int oy = 0; oy < {oy}; ++oy)")
        w.open(f"for (int ox = 0; ox < {ox}; ++ox)")
        w.line("int32_t acc = 0;")
        w.open(f"for (int c = 0; c < {c // call.attrs['groups']}; ++c)")
        w.open(f"for (int fy = 0; fy < {fy}; ++fy)")
        w.open(f"for (int fx = 0; fx < {fx}; ++fx)")
        w.line(f"acc += (int32_t){src}[IDX_IN(c, oy, ox, fy, fx)]"
               f" * (int32_t)weights_{idx}[IDX_W(k, c, fy, fx)];")
        w.close().close().close()
        w.line(f"{dst}[IDX_OUT(k, oy, ox)] = acc;")
        w.close().close().close()
        return dst
    if call.op == "nn.dense":
        k, c = call.inputs[1].shape
        w.line(f"extern const int8_t weights_{idx}[];")
        w.open(f"for (int k = 0; k < {k}; ++k)")
        w.line("int32_t acc = 0;")
        w.open(f"for (int c = 0; c < {c}; ++c)")
        w.line(f"acc += (int32_t){src}[c]"
               f" * (int32_t)weights_{idx}[k * {c} + c];")
        w.close()
        w.line(f"{dst}[k] = acc;")
        w.close()
        return dst
    n = out.num_elements
    if call.op == "nn.bias_add":
        w.line(f"extern const int32_t bias_{idx}[];")
        channels = call.inputs[1].shape[0]
        w.open(f"for (int i = 0; i < {n}; ++i)")
        w.line(f"{dst}[i] = (int32_t){src}[i]"
               f" + bias_{idx}[(i / {n // channels}) % {channels}];")
        w.close()
        return dst
    w.open(f"for (int i = 0; i < {n}; ++i)")
    if call.op == "right_shift":
        shift = 0
        if isinstance(call.inputs[1], Constant):
            shift = int(call.inputs[1].value.data.reshape(-1)[0])
        w.line(f"{dst}[i] = SRA_ROUND({src}[i], {shift});")
    elif call.op == "clip":
        w.line(f"{dst}[i] = CLIP({src}[i], "
               f"{call.attrs['a_min']}, {call.attrs['a_max']});")
    elif call.op == "cast":
        w.line(f"{dst}[i] = ({_c_dtype(call.attrs['dtype'])}){src}[i];")
    elif call.op == "add":
        w.line(f"{dst}[i] = (int32_t){src}[i] + (int32_t)operand_b[i];")
    elif call.op == "nn.softmax":
        w.line(f"{dst}[i] = (int32_t)softmax_f32({src}, {n}, i);")
    else:
        # pooling / reshape / pad: representative elementwise copy; the
        # real loop nest is irrelevant for size modelling
        w.line(f"{dst}[i] = {src}[i < {n} ? i : 0];")
    w.close()
    return dst


def emit_cpu_kernel(name: str, composite: Composite) -> str:
    """One fused CPU kernel as a C function."""
    body = composite.body
    w = CWriter()
    params = []
    for i, var in enumerate(body.inputs):
        params.append(f"const {_c_dtype(var.dtype.name)}* restrict in_{i}")
    params.append(f"{_c_dtype(body.output.dtype.name)}* restrict out")
    w.comment(f"fused kernel: {body.name}")
    w.line('#include "repro_runtime.h"')
    w.open(f"void {name}({', '.join(params)})")
    n_const = sum(isinstance(n, Constant) for n in body.topo_order())
    w.comment(f"{n_const} constant tensors linked from the weight section")
    w.line("const int8_t* operand_b = (const int8_t*)in_0;")
    if len(body.inputs) > 1:
        w.line("operand_b = (const int8_t*)in_1;")
    w.line("(void)operand_b;")
    src = "in_0"
    last = src
    for i, call in enumerate(body.calls()):
        last = _emit_call_loops(w, call, i, last)
    n_out = body.output.ttype.num_elements
    w.open(f"for (int i = 0; i < {n_out}; ++i)")
    w.line(f"out[i] = ({_c_dtype(body.output.dtype.name)}){last}[i];")
    w.close()
    w.close()
    return w.source()
