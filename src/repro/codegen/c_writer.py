"""Tiny helper for emitting readable C code."""

from __future__ import annotations

from typing import List


class CWriter:
    """Accumulates C source text with indentation management."""

    def __init__(self, indent: str = "  "):
        self._lines: List[str] = []
        self._depth = 0
        self._indent = indent

    def line(self, text: str = ""):
        if text:
            self._lines.append(self._indent * self._depth + text)
        else:
            self._lines.append("")
        return self

    def open(self, text: str):
        """Emit ``text {`` and increase indentation."""
        self.line(text + " {")
        self._depth += 1
        return self

    def close(self, suffix: str = ""):
        self._depth -= 1
        self.line("}" + suffix)
        return self

    def comment(self, text: str):
        self.line(f"/* {text} */")
        return self

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"
