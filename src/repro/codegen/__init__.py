"""C code emission: CPU kernels, DORY drivers, network glue, and the
exact native backend (emission + build cache + loader)."""

from .c_writer import CWriter
from .cpu import classify_body, emit_cpu_kernel, kernel_signature
from .runtime_glue import RUNTIME_HEADER, emit_network, emit_runtime_header
from .native import (
    NATIVE_ABI_VERSION,
    SUPPORTED_KINDS,
    emit_native_sources,
    full_run_eligible,
    native_step_indices,
)
from .build import (
    NativeLibraryError,
    NativeModule,
    build_native_library,
    build_stats,
    find_c_compiler,
    library_name,
    library_path,
    load_native_module,
    native_cache_dir,
    open_native_build_key,
    reset_build_stats,
)

__all__ = [
    "CWriter", "classify_body", "emit_cpu_kernel", "kernel_signature",
    "emit_network", "emit_runtime_header", "RUNTIME_HEADER",
    "NATIVE_ABI_VERSION", "SUPPORTED_KINDS", "emit_native_sources",
    "full_run_eligible", "native_step_indices",
    "NativeLibraryError", "NativeModule", "build_native_library",
    "build_stats", "find_c_compiler", "library_name", "library_path",
    "load_native_module", "native_cache_dir", "open_native_build_key",
    "reset_build_stats",
]
