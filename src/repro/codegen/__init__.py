"""C code emission: CPU kernels, DORY drivers, network glue."""

from .c_writer import CWriter
from .cpu import classify_body, emit_cpu_kernel, kernel_signature
from .runtime_glue import emit_network

__all__ = ["CWriter", "classify_body", "emit_cpu_kernel",
           "kernel_signature", "emit_network"]
