"""Build, cache, and load the native shared library for a model.

The compile-once/serve-many split, taken to machine code: the first
process that needs a model's native backend compiles ``native.c``
(:func:`repro.codegen.native.emit_native_sources`) with the system C
compiler into ``native-<fp16>-abi<N>.so`` next to the ``.dna`` (or in
``$REPRO_NATIVE_CACHE`` / ``~/.cache/repro/native``); every later
process — a fleet worker, a CLI run, a benchmark — just ``dlopen``\\ s
the cached file.

Persistence discipline mirrors :class:`repro.core.cache.TilingCache`:
build into a private ``tempfile.mkdtemp`` inside the cache directory,
then ``os.replace`` the finished library into place. Concurrent
builders race benignly — emission is deterministic in the fingerprint,
so both produce equivalent libraries and the loser's ``os.replace``
is a no-op overwrite. Staleness is proven, not assumed: the artifact
fingerprint is baked into the library (``repro_native_build_key``) and
re-checked after every ``dlopen``; a mismatched or unloadable library
is deleted and rebuilt once, then given up on (``None`` → the caller
falls back to the ``fast`` interpreter).

Binding goes through :mod:`cffi` when importable, :mod:`ctypes`
otherwise — both are stdlib-or-baked-in; no new dependencies.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from .native import (
    NATIVE_ABI_VERSION,
    emit_native_sources,
    native_step_indices,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle: core imports codegen
    from ..core.program import CompiledModel

#: set to ``1`` to disable the native toolchain entirely (kill switch;
#: inherited over fork, which is how the fleet chaos tests simulate a
#: worker box without a compiler).
DISABLE_ENV = "REPRO_NATIVE_DISABLE"

#: overrides the default library cache directory.
CACHE_ENV = "REPRO_NATIVE_CACHE"

#: extra compiler flags appended to the default set (space-separated).
CFLAGS_ENV = "REPRO_NATIVE_CFLAGS"

_CC_TIMEOUT_S = 180.0

_stats_lock = threading.Lock()
_STATS = {"builds": 0, "hits": 0, "misses": 0, "failures": 0}

_warned_no_compiler = False

_find_cache: Dict[tuple, Optional[str]] = {}

_load_lock = threading.Lock()
_LOADED: Dict[str, "NativeModule"] = {}


class NativeLibraryError(RuntimeError):
    """A cached library exists but cannot serve this model (wrong ABI,
    wrong build key, missing symbols, or dlopen failure)."""


def build_stats() -> Dict[str, int]:
    with _stats_lock:
        return dict(_STATS)


def reset_build_stats() -> None:
    with _stats_lock:
        for k in _STATS:
            _STATS[k] = 0


def _bump(key: str) -> None:
    with _stats_lock:
        _STATS[key] += 1


def find_c_compiler() -> Optional[str]:
    """Locate a usable C compiler ($CC, then cc/gcc/clang on PATH).

    Returns the absolute executable path, or ``None`` when the host has
    no toolchain (or ``REPRO_NATIVE_DISABLE=1``). The result is
    memoized per relevant environment, and the no-compiler case warns
    exactly once per process — callers then silently fall back to the
    ``fast`` interpreter.
    """
    global _warned_no_compiler
    key = (os.environ.get(DISABLE_ENV, ""), os.environ.get("CC", ""),
           os.environ.get("PATH", ""))
    if key in _find_cache:
        return _find_cache[key]
    found: Optional[str] = None
    if key[0] != "1":
        candidates: List[str] = []
        if key[1]:
            candidates.append(key[1])
        candidates += ["cc", "gcc", "clang"]
        for cand in candidates:
            path = shutil.which(cand)
            if path:
                found = path
                break
    _find_cache[key] = found
    if found is None and not _warned_no_compiler:
        _warned_no_compiler = True
        why = ("native backend disabled via %s=1" % DISABLE_ENV
               if key[0] == "1" else
               "no C compiler found ($CC, cc, gcc, clang)")
        warnings.warn(
            "%s; exec_mode='native' will fall back to the 'fast' "
            "interpreter" % why, RuntimeWarning, stacklevel=2)
    return found


def native_cache_dir(artifact_path: Optional[str] = None) -> str:
    """Where native libraries live: ``$REPRO_NATIVE_CACHE`` wins, else
    next to the artifact, else ``~/.cache/repro/native``."""
    env = os.environ.get(CACHE_ENV)
    if env:
        return env
    if artifact_path:
        return os.path.dirname(os.path.abspath(artifact_path)) or "."
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "native")


def library_name(fingerprint: str) -> str:
    """Cache file name for a compiled model's native library."""
    return "native-%s-abi%d.so" % (fingerprint[:16], NATIVE_ABI_VERSION)


def library_path(model: CompiledModel, cache_dir: Optional[str] = None,
                 fingerprint: Optional[str] = None) -> str:
    if fingerprint is None:
        fingerprint = model.fingerprint()
    return os.path.join(cache_dir or native_cache_dir(),
                        library_name(fingerprint))


def build_native_library(model: CompiledModel,
                         cache_dir: Optional[str] = None,
                         compiler: Optional[str] = None,
                         force: bool = False,
                         fingerprint: Optional[str] = None) -> Optional[str]:
    """Compile (or reuse) the cached shared library for ``model``.

    Returns the library path, or ``None`` when no compiler is available
    or compilation fails — never raises for toolchain problems.
    """
    if fingerprint is None:
        fingerprint = model.fingerprint()
    lib = library_path(model, cache_dir, fingerprint)
    if not force and os.path.exists(lib):
        _bump("hits")
        return lib
    _bump("misses")
    if compiler is None:
        compiler = find_c_compiler()
    if compiler is None:
        return None
    parent = os.path.dirname(lib) or "."
    os.makedirs(parent, exist_ok=True)
    source = emit_native_sources(model, build_key=fingerprint)
    tmpdir = tempfile.mkdtemp(prefix=".native-build-", dir=parent)
    try:
        src_path = os.path.join(tmpdir, "native.c")
        out_path = os.path.join(tmpdir, "native.so")
        with open(src_path, "w") as fh:
            fh.write(source)
        cmd = [compiler, "-O3", "-fPIC", "-std=c11", "-shared"]
        cmd += os.environ.get(CFLAGS_ENV, "").split()
        cmd += ["-o", out_path, src_path]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=_CC_TIMEOUT_S)
        except (OSError, subprocess.TimeoutExpired) as exc:
            _bump("failures")
            warnings.warn("native build failed to run %r: %s"
                          % (compiler, exc), RuntimeWarning)
            return None
        if proc.returncode != 0:
            _bump("failures")
            warnings.warn(
                "native build failed (%s exit %d):\n%s"
                % (compiler, proc.returncode, proc.stderr.strip()[-2000:]),
                RuntimeWarning)
            return None
        # atomic publish: concurrent builders emit identical semantics
        # for the same fingerprint, so last-writer-wins is safe
        os.replace(out_path, lib)
        _bump("builds")
        return lib
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# bindings
# ---------------------------------------------------------------------------

_CDEF = """
int32_t repro_native_abi(void);
const char* repro_native_build_key(void);
int32_t repro_native_num_steps(void);
int32_t repro_native_step_supported(int32_t idx);
int32_t repro_native_set_weights(int32_t idx, const void* w,
                                 const void* bias);
int32_t repro_native_run_step(int32_t idx, const void* x, const void* y,
                              void* out, int32_t n);
int32_t repro_native_has_full_run(void);
int32_t repro_native_run(const void* const* inputs, void* output,
                         int32_t n);
"""

try:  # pragma: no cover - exercised via whichever binding is present
    import cffi  # type: ignore

    _FFI = cffi.FFI()
    _FFI.cdef(_CDEF)
except Exception:  # pragma: no cover
    cffi = None
    _FFI = None


class _CffiBinding:
    """cffi-backed binding; all pointer arguments are integer addresses."""

    def __init__(self, path: str):
        assert _FFI is not None
        try:
            self._lib = _FFI.dlopen(path)
            self.abi = int(self._lib.repro_native_abi())
        except Exception as exc:
            raise NativeLibraryError("dlopen failed: %s" % exc) from exc
        self.build_key = _FFI.string(
            self._lib.repro_native_build_key()).decode("ascii")
        self.num_steps = int(self._lib.repro_native_num_steps())
        self.has_full_run = bool(self._lib.repro_native_has_full_run())

    def _p(self, addr: int):
        return _FFI.cast("void *", addr)

    def step_supported(self, idx: int) -> bool:
        return bool(self._lib.repro_native_step_supported(idx))

    def set_weights(self, idx: int, waddr: int, baddr: int) -> int:
        return int(self._lib.repro_native_set_weights(
            idx, self._p(waddr), self._p(baddr)))

    def run_step(self, idx: int, xaddr: int, yaddr: int, oaddr: int,
                 n: int) -> int:
        return int(self._lib.repro_native_run_step(
            idx, self._p(xaddr), self._p(yaddr), self._p(oaddr), n))

    def run(self, in_addrs: Sequence[int], oaddr: int, n: int) -> int:
        arr = _FFI.new("const void*[]",
                       [self._p(a) for a in in_addrs])
        return int(self._lib.repro_native_run(arr, self._p(oaddr), n))


class _CtypesBinding:
    """ctypes fallback with the same address-based surface."""

    def __init__(self, path: str):
        import ctypes

        self._ct = ctypes
        try:
            self._lib = ctypes.CDLL(path)
            fn = self._bind("repro_native_abi", [], ctypes.c_int32)
            self.abi = int(fn())
        except (OSError, AttributeError) as exc:
            raise NativeLibraryError("dlopen failed: %s" % exc) from exc
        key_fn = self._bind("repro_native_build_key", [], ctypes.c_char_p)
        raw = key_fn()
        self.build_key = (raw or b"").decode("ascii")
        self.num_steps = int(
            self._bind("repro_native_num_steps", [], ctypes.c_int32)())
        self.has_full_run = bool(
            self._bind("repro_native_has_full_run", [], ctypes.c_int32)())
        self._supported = self._bind(
            "repro_native_step_supported", [ctypes.c_int32], ctypes.c_int32)
        self._set_w = self._bind(
            "repro_native_set_weights",
            [ctypes.c_int32, ctypes.c_void_p, ctypes.c_void_p],
            ctypes.c_int32)
        self._run_step = self._bind(
            "repro_native_run_step",
            [ctypes.c_int32, ctypes.c_void_p, ctypes.c_void_p,
             ctypes.c_void_p, ctypes.c_int32], ctypes.c_int32)
        self._run = self._bind(
            "repro_native_run",
            [ctypes.POINTER(ctypes.c_void_p), ctypes.c_void_p,
             ctypes.c_int32], ctypes.c_int32)

    def _bind(self, name: str, argtypes, restype):
        try:
            fn = getattr(self._lib, name)
        except AttributeError as exc:
            raise NativeLibraryError("missing symbol %s" % name) from exc
        fn.argtypes = argtypes
        fn.restype = restype
        return fn

    def step_supported(self, idx: int) -> bool:
        return bool(self._supported(idx))

    def set_weights(self, idx: int, waddr: int, baddr: int) -> int:
        return int(self._set_w(idx, waddr or None, baddr or None))

    def run_step(self, idx: int, xaddr: int, yaddr: int, oaddr: int,
                 n: int) -> int:
        return int(self._run_step(idx, xaddr or None, yaddr or None,
                                  oaddr or None, n))

    def run(self, in_addrs: Sequence[int], oaddr: int, n: int) -> int:
        ct = self._ct
        arr = (ct.c_void_p * len(in_addrs))(*[a or None for a in in_addrs])
        return int(self._run(arr, oaddr, n))


def _open_binding(path: str):
    """dlopen ``path`` through a unique hard link.

    glibc caches loaded objects by pathname, so dlopening a path whose
    file was just replaced (stale-library rebuild, concurrent builder
    winning the ``os.replace`` race) would silently return the *old*
    mapping. A uniquely named hard link to the current inode defeats
    the name cache while costing nothing; the link is removed as soon
    as the handle is open. Falls back to the plain path where hard
    links are unavailable.
    """
    cls = _CffiBinding if _FFI is not None else _CtypesBinding
    d = os.path.dirname(os.path.abspath(path)) or "."
    try:
        st = os.stat(path)
        link = os.path.join(
            d, ".%s.ino%d-pid%d" % (os.path.basename(path), st.st_ino,
                                    os.getpid()))
        if not os.path.exists(link):
            os.link(path, link)
    except OSError:
        return cls(path)
    try:
        return cls(link)
    finally:
        try:
            os.unlink(link)
        except OSError:
            pass


def open_native_build_key(path: str) -> str:
    """Load a native library just far enough to read its build key.

    Raises :class:`NativeLibraryError` when the library cannot be
    opened or does not export the expected ABI surface (the verifier
    turns that into a warning, not an error — an unloadable sidecar
    only costs the fast-path fallback).
    """
    binding = _open_binding(path)
    if binding.abi != NATIVE_ABI_VERSION:
        raise NativeLibraryError(
            "ABI mismatch: library has %d, runtime expects %d"
            % (binding.abi, NATIVE_ABI_VERSION))
    return binding.build_key


class NativeModule:
    """A loaded per-artifact native library bound to a model's weights.

    Thread-safe: a single lock serializes calls into the library
    because kernels share ``static`` scratch (padding buffers, the
    full-run arena) and the weight-pointer table.
    """

    def __init__(self, path: str, model: CompiledModel,
                 fingerprint: Optional[str] = None):
        if fingerprint is None:
            fingerprint = model.fingerprint()
        self.path = path
        self._lock = threading.Lock()
        self._bind = _open_binding(path)
        if self._bind.abi != NATIVE_ABI_VERSION:
            raise NativeLibraryError(
                "ABI mismatch: library %d, runtime %d"
                % (self._bind.abi, NATIVE_ABI_VERSION))
        if self._bind.build_key != fingerprint:
            raise NativeLibraryError(
                "stale native library: build key %s.. != fingerprint %s.."
                % (self._bind.build_key[:16], fingerprint[:16]))
        if self._bind.num_steps != len(model.steps):
            raise NativeLibraryError("step count mismatch")
        self.build_key = fingerprint
        self.num_steps = self._bind.num_steps
        self.has_full_run = self._bind.has_full_run
        self.native_idx = frozenset(native_step_indices(model))
        self._keepalive: Dict[int, tuple] = {}
        self.register_weights(model)

    def register_weights(self, model: CompiledModel) -> None:
        """(Re)bind weight/bias pointers; keeps the arrays alive for
        the lifetime of this module."""
        keep: Dict[int, tuple] = {}
        with self._lock:
            for i in sorted(self.native_idx):
                spec = model.steps[i].spec
                w = None
                if spec.weight is not None:
                    w = np.ascontiguousarray(spec.weight, dtype=np.int8)
                b = None
                if spec.bias is not None:
                    b = np.ascontiguousarray(spec.bias, dtype=np.int32)
                keep[i] = (w, b)
                rc = self._bind.set_weights(
                    i, w.ctypes.data if w is not None else 0,
                    b.ctypes.data if b is not None else 0)
                if rc != 0:
                    raise NativeLibraryError(
                        "set_weights(%d) returned %d" % (i, rc))
            self._keepalive = keep

    def step_supported(self, idx: int) -> bool:
        return idx in self.native_idx

    def run_step(self, idx: int, spec, x: np.ndarray,
                 y: Optional[np.ndarray] = None) -> Optional[np.ndarray]:
        """Execute one step natively; returns the int8 output, or
        ``None`` when the arguments don't match the compiled geometry
        (caller falls back to the interpreter)."""
        if idx not in self.native_idx:
            return None
        if x.dtype != np.int8 or (y is not None and y.dtype != np.int8):
            return None
        if spec.kind in ("conv2d", "dwconv2d"):
            per_shape = (spec.in_channels, spec.iy, spec.ix)
            out_tail = (spec.out_channels, spec.oy, spec.ox)
        elif spec.kind == "dense":
            per_shape = (spec.in_channels,)
            out_tail = (spec.out_channels,)
        elif spec.kind == "add":
            if y is None or y.shape != x.shape:
                return None
            per = spec.in_channels * spec.oy * spec.ox
            if x.size == 0 or x.size % per:
                return None
            per_shape = None
            out_tail = None
        else:
            return None
        if per_shape is not None:
            nd = len(per_shape)
            if x.ndim == nd:
                n, out_shape = 1, out_tail
            elif x.ndim == nd + 1:
                n, out_shape = x.shape[0], (x.shape[0],) + out_tail
            else:
                return None
            if x.shape[-nd:] != per_shape or n <= 0:
                return None
        else:
            per = spec.in_channels * spec.oy * spec.ox
            n, out_shape = x.size // per, x.shape
        x = np.ascontiguousarray(x)
        yaddr = 0
        if spec.kind == "add":
            y = np.ascontiguousarray(y)
            yaddr = y.ctypes.data
        out = np.empty(out_shape, dtype=np.int8)
        with self._lock:
            rc = self._bind.run_step(idx, x.ctypes.data, yaddr,
                                     out.ctypes.data, int(n))
        return out if rc == 0 else None

    def run_full(self, inputs: List[np.ndarray], out_elems: int,
                 n: int) -> Optional[np.ndarray]:
        """Whole-network execution: ``inputs`` are contiguous int8
        arrays of ``n`` samples each; returns ``(n, out_elems)`` int8
        or ``None`` when the library has no full-run entry point."""
        if not self.has_full_run or n <= 0:
            return None
        ins = [np.ascontiguousarray(a) for a in inputs]
        if any(a.dtype != np.int8 for a in ins):
            return None
        out = np.empty((n, out_elems), dtype=np.int8)
        with self._lock:
            rc = self._bind.run([a.ctypes.data for a in ins],
                                out.ctypes.data, int(n))
        return out if rc == 0 else None


def load_native_module(model: CompiledModel,
                       cache_dir: Optional[str] = None,
                       build: bool = True) -> Optional[NativeModule]:
    """Build-or-load the native module for ``model``.

    Returns ``None`` (never raises) when the host has no toolchain, the
    build fails, or a cached library is stale and cannot be rebuilt —
    callers treat ``None`` as "use the fast interpreter".
    A stale or unloadable cached library is deleted and rebuilt once.
    """
    if not native_step_indices(model):
        return None
    fingerprint = model.fingerprint()
    lib = library_path(model, cache_dir, fingerprint)
    if not os.path.exists(lib):
        if not build:
            return None
        if build_native_library(model, cache_dir,
                                fingerprint=fingerprint) is None:
            return None
    else:
        _bump("hits")
    real = os.path.realpath(lib)
    with _load_lock:
        mod = _LOADED.get(real)
        if mod is not None and mod.build_key == fingerprint:
            mod.register_weights(model)
            return mod
        try:
            mod = NativeModule(lib, model, fingerprint)
        except NativeLibraryError as exc:
            warnings.warn("discarding stale native library %s (%s)"
                          % (lib, exc), RuntimeWarning)
            try:
                os.unlink(lib)
            except OSError:
                pass
            if not build or build_native_library(
                    model, cache_dir, force=True,
                    fingerprint=fingerprint) is None:
                return None
            try:
                mod = NativeModule(lib, model, fingerprint)
            except NativeLibraryError:
                return None
        _LOADED[real] = mod
        return mod
