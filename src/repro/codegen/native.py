"""Exact C kernels for the native compiled execution backend.

The C sources the compiler has always persisted (``cpu.py``,
``dory/codegen.py``) are *size-model* artifacts: representative loop
nests whose byte count feeds Table I, not code whose arithmetic matches
the simulator. This module emits the other half — kernels whose
integer semantics are **bit-exact** against :mod:`repro.numerics` — so
a ``.dna`` artifact can be compiled with the system C compiler and
served natively (``exec_mode="native"``).

One translation unit (``native.c``) per compiled model:

* a ``static`` kernel per accelerator step (``conv2d``, ``dwconv2d``,
  ``dense``, ``add``) replicating the accumulate → bias → round-half-up
  shift → clip → int8 tail of
  :func:`repro.numerics.requantize_acc` / ``bias_requantize``,
* a stable exported ABI (``repro_native_*``; everything else has
  internal linkage, so two artifacts load into one process without
  symbol clashes),
* when *every* step is native-eligible, a whole-network entry point
  (``repro_native_run``) that walks the L2 memory plan's static arena —
  the paper's "single C function that executes all kernels
  sequentially" made executable.

Exactness argument (all paths verified property-style in
``tests/test_native.py``):

* int8×int8 products are bounded by ``2**14``, so a reduction of ``R``
  taps is bounded by ``R << 14``; when that fits int32 the kernel
  accumulates in plain ``int32_t`` (no overflow, hence no UB) and the
  result equals numpy's exact accumulator. Wider reductions accumulate
  in ``int64_t`` and narrow mod ``2**32`` — identical to numpy's
  ``_to_int32``.
* the requant tail adds ``bias + rnd`` with two's-complement wraparound
  (``RQ_WRAP_ADD``, via unsigned arithmetic — defined behaviour),
  arithmetic-shifts, clips to the out-dtype range (int7 → [-64, 63])
  with ReLU folded into the lower bound — exactly
  ``bias_requantize``. Arithmetic ``>>`` on negative values and
  modular unsigned→signed conversion are gcc/clang-defined, which is
  what the build layer invokes.

CPU steps (softmax, pooling, reshape) are *never* emitted: softmax is
float32 and C ``expf`` is not bit-stable against numpy, so those steps
always run through the Python fast path (per-step fallback in the
executor).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..dory.layer_spec import LayerSpec
from .c_writer import CWriter
from .runtime_glue import _c_ident

if TYPE_CHECKING:  # pragma: no cover - import cycle: core imports codegen
    from ..core.program import CompiledModel

#: bumped whenever the exported symbol set or calling convention
#: changes; baked into the library and checked at load time.
NATIVE_ABI_VERSION = 1

#: accelerator step kinds the emitter covers.
SUPPORTED_KINDS = ("conv2d", "dwconv2d", "dense", "add")

#: largest MAC reduction length safe for a plain int32 accumulator:
#: |int8 * int8| <= 2**14 per tap, so R taps are bounded by R << 14,
#: which must stay below 2**31.
INT32_SAFE_REDUCTION = ((1 << 31) - 1) >> 14

#: int8-storage dtypes (what the executor materializes buffers in).
_I8_DTYPES = ("int8", "int7")


def _reduction(spec: LayerSpec) -> int:
    if spec.kind == "dense":
        return spec.in_channels
    cg = 1 if spec.kind == "dwconv2d" else spec.in_channels
    return cg * spec.fy * spec.fx


def _step_native_ok(step) -> bool:
    """Can this step be lowered to an exact native kernel?"""
    from ..core.program import AccelStep

    if not isinstance(step, AccelStep) or step.spec is None:
        return False
    spec = step.spec
    if spec.kind not in SUPPORTED_KINDS:
        return False
    if spec.in_dtype not in _I8_DTYPES or spec.out_dtype not in _I8_DTYPES:
        return False
    if spec.shift < 0 or spec.shift > 31:
        return False
    if spec.kind != "add":
        if spec.weight is None:
            return False
        if spec.kind == "dwconv2d" and spec.groups != spec.in_channels:
            return False
        if spec.kind == "conv2d" and spec.groups != 1:
            return False
    return True


def native_step_indices(model: CompiledModel) -> List[int]:
    """Step indices the native backend executes in C.

    Depth-first chain members are excluded: chains execute patch-wise
    in every mode (they are part of the compiled program), so their
    layers keep the Python patch pipeline.
    """
    in_chain = set()
    for ch in model.depthfirst_chains:
        in_chain.update(range(ch.start, ch.stop))
    return [i for i, step in enumerate(model.steps)
            if i not in in_chain and _step_native_ok(step)]


def _buffer_elems(model: CompiledModel, name: str) -> Optional[int]:
    buf = model.buffers.get(name)
    if buf is None or buf.ttype.dtype.name not in _I8_DTYPES:
        return None
    return buf.ttype.num_elements


def full_run_eligible(model: CompiledModel,
                      native_idx: Optional[List[int]] = None) -> bool:
    """True when the whole network can run as one C call over the
    planned arena: every step native, no fused chains, every step
    output planned inside the arena, and buffer layouts matching the
    kernels' flat NCHW expectations."""
    if native_idx is None:
        native_idx = native_step_indices(model)
    if model.depthfirst_chains or len(native_idx) != len(model.steps):
        return False
    plan = model.memory_plan
    for step in model.steps:
        spec = step.spec
        out_elems = _buffer_elems(model, step.output_name)
        in_elems = [_buffer_elems(model, n) for n in step.input_names]
        if out_elems is None or any(e is None for e in in_elems):
            return False
        if spec.kind in ("conv2d", "dwconv2d"):
            if in_elems[0] != spec.in_channels * spec.iy * spec.ix:
                return False
            if out_elems != spec.out_channels * spec.oy * spec.ox:
                return False
        elif spec.kind == "dense":
            if in_elems[0] != spec.in_channels or out_elems != spec.out_channels:
                return False
        else:  # add
            elems = spec.in_channels * spec.oy * spec.ox
            if out_elems != elems or any(e != elems for e in in_elems):
                return False
        off = plan.offsets.get(step.output_name)
        if off is None or off < 0:
            return False
        if off + model.buffers[step.output_name].size_bytes > plan.arena_bytes:
            return False
    return True


# ---------------------------------------------------------------------------
# kernel emission
# ---------------------------------------------------------------------------

def _requant_consts(spec: LayerSpec):
    lo, hi = (-64, 63) if spec.out_dtype == "int7" else (-128, 127)
    if spec.relu:
        lo = max(lo, 0)
    rnd = (1 << (spec.shift - 1)) if spec.shift > 0 else 0
    return lo, hi, rnd


def _emit_badd(w: CWriter, i: int, spec: LayerSpec, ch_var: str):
    """``badd = bias[ch] + rnd`` with int32 wraparound (bias_requantize
    folds the rounding term into the per-channel bias add)."""
    _, _, rnd = _requant_consts(spec)
    if spec.bias is not None:
        w.line(f"const int32_t badd = RQ_WRAP_ADD(g_bias[{i}][{ch_var}], "
               f"{rnd});")
    else:
        w.line(f"const int32_t badd = {rnd};")


def _emit_tail(w: CWriter, spec: LayerSpec, acc_expr: str, acc64: bool,
               dst: str):
    lo, hi, _ = _requant_consts(spec)
    narrowed = f"RQ_NARROW64({acc_expr})" if acc64 else f"(int32_t)({acc_expr})"
    w.line(f"int32_t v = RQ_WRAP_ADD({narrowed}, badd);")
    if spec.shift > 0:
        w.line(f"v = v >> {spec.shift};")
    w.line(f"if (v < {lo}) v = {lo}; else if (v > {hi}) v = {hi};")
    w.line(f"{dst} = (int8_t)v;")


def _emit_conv_kernel(w: CWriter, i: int, spec: LayerSpec):
    dw = spec.kind == "dwconv2d"
    C, K = spec.in_channels, spec.out_channels
    IY, IX, OY, OX = spec.iy, spec.ix, spec.oy, spec.ox
    FY, FX = spec.fy, spec.fx
    SY, SX = spec.strides
    PY, PX = spec.padding
    IYP, IXP = IY + 2 * PY, IX + 2 * PX
    acc64 = _reduction(spec) > INT32_SAFE_REDUCTION
    acc_t = "int64_t" if acc64 else "int32_t"
    padded = PY > 0 or PX > 0

    w.comment(f"step {i}: {spec.kind} {spec.name} "
              f"C={C} K={K} {IY}x{IX} -> {OY}x{OX} f={FY}x{FX} "
              f"s={SY},{SX} p={PY},{PX} shift={spec.shift}")
    if padded:
        w.line(f"static int8_t s{i}_xpad[{C * IYP * IXP}];")
    w.open(f"static void s{i}(const int8_t* restrict x, const int8_t* y, "
           f"int8_t* restrict out, int32_t n)")
    w.line("(void)y;")
    w.line(f"const int8_t* restrict wgt = g_w[{i}];")
    w.open("for (int32_t b = 0; b < n; ++b)")
    w.line(f"const int8_t* xb = x + (int64_t)b * {C * IY * IX};")
    w.line(f"int8_t* ob = out + (int64_t)b * {K * OY * OX};")
    if padded:
        # zero-padded scratch copy: the hot loops below then need no
        # bounds checks, which is what lets -O3 vectorize the ox loop
        w.line(f"memset(s{i}_xpad, 0, sizeof s{i}_xpad);")
        w.open(f"for (int32_t c = 0; c < {C}; ++c)")
        w.open(f"for (int32_t iy = 0; iy < {IY}; ++iy)")
        w.line(f"memcpy(s{i}_xpad + ((int64_t)c * {IYP} + iy + {PY}) "
               f"* {IXP} + {PX}, xb + ((int64_t)c * {IY} + iy) * {IX}, "
               f"{IX});")
        w.close().close()
        w.line(f"const int8_t* xs = s{i}_xpad;")
    else:
        w.line("const int8_t* xs = xb;")
    w.open(f"for (int32_t k = 0; k < {K}; ++k)")
    _emit_badd(w, i, spec, "k")
    w.open(f"for (int32_t oy = 0; oy < {OY}; ++oy)")
    w.line(f"{acc_t} acc[{OX}] = {{0}};")
    if dw:
        w.open(f"for (int32_t fy = 0; fy < {FY}; ++fy)")
        w.line(f"const int8_t* xr = xs + ((int64_t)k * {IYP} "
               f"+ oy * {SY} + fy) * {IXP};")
        w.line(f"const int8_t* wr = wgt + ((int64_t)k * {FY} + fy) * {FX};")
    else:
        w.open(f"for (int32_t c = 0; c < {C}; ++c)")
        w.open(f"for (int32_t fy = 0; fy < {FY}; ++fy)")
        w.line(f"const int8_t* xr = xs + ((int64_t)c * {IYP} "
               f"+ oy * {SY} + fy) * {IXP};")
        w.line(f"const int8_t* wr = wgt + (((int64_t)k * {C} + c) "
               f"* {FY} + fy) * {FX};")
    w.open(f"for (int32_t fx = 0; fx < {FX}; ++fx)")
    w.line("const int32_t wv = wr[fx];")
    w.line("const int8_t* xc = xr + fx;")
    w.open(f"for (int32_t ox = 0; ox < {OX}; ++ox)")
    w.line(f"acc[ox] += wv * (int32_t)xc[(int64_t)ox * {SX}];")
    w.close().close()
    w.close()
    if not dw:
        w.close()
    w.line(f"int8_t* orow = ob + ((int64_t)k * {OY} + oy) * {OX};")
    w.open(f"for (int32_t ox = 0; ox < {OX}; ++ox)")
    _emit_tail(w, spec, "acc[ox]", acc64, "orow[ox]")
    w.close()
    w.close()  # oy
    w.close()  # k
    w.close()  # b
    w.close()  # fn
    w.line()


def _emit_dense_kernel(w: CWriter, i: int, spec: LayerSpec):
    C, K = spec.in_channels, spec.out_channels
    acc64 = _reduction(spec) > INT32_SAFE_REDUCTION
    acc_t = "int64_t" if acc64 else "int32_t"
    w.comment(f"step {i}: dense {spec.name} C={C} K={K} "
              f"shift={spec.shift}")
    w.open(f"static void s{i}(const int8_t* restrict x, const int8_t* y, "
           f"int8_t* restrict out, int32_t n)")
    w.line("(void)y;")
    w.line(f"const int8_t* restrict wgt = g_w[{i}];")
    w.open("for (int32_t b = 0; b < n; ++b)")
    w.line(f"const int8_t* xb = x + (int64_t)b * {C};")
    w.line(f"int8_t* ob = out + (int64_t)b * {K};")
    w.open(f"for (int32_t k = 0; k < {K}; ++k)")
    _emit_badd(w, i, spec, "k")
    w.line(f"const int8_t* wr = wgt + (int64_t)k * {C};")
    w.line(f"{acc_t} acc = 0;")
    w.open(f"for (int32_t c = 0; c < {C}; ++c)")
    w.line("acc += (int32_t)xb[c] * (int32_t)wr[c];")
    w.close()
    _emit_tail(w, spec, "acc", acc64, "ob[k]")
    w.close()  # k
    w.close()  # b
    w.close()
    w.line()


def _emit_add_kernel(w: CWriter, i: int, spec: LayerSpec):
    C = spec.in_channels
    inner = spec.oy * spec.ox
    elems = C * inner
    w.comment(f"step {i}: add {spec.name} C={C} inner={inner} "
              f"shift={spec.shift}")
    w.open(f"static void s{i}(const int8_t* restrict x, const int8_t* y, "
           f"int8_t* restrict out, int32_t n)")
    w.open("for (int32_t b = 0; b < n; ++b)")
    w.line(f"const int8_t* xb = x + (int64_t)b * {elems};")
    w.line(f"const int8_t* yb = y + (int64_t)b * {elems};")
    w.line(f"int8_t* ob = out + (int64_t)b * {elems};")
    w.open(f"for (int32_t c = 0; c < {C}; ++c)")
    _emit_badd(w, i, spec, "c")
    w.line(f"const int8_t* xr = xb + (int64_t)c * {inner};")
    w.line(f"const int8_t* yr = yb + (int64_t)c * {inner};")
    w.line(f"int8_t* orow = ob + (int64_t)c * {inner};")
    w.open(f"for (int32_t j = 0; j < {inner}; ++j)")
    _emit_tail(w, spec, "(int32_t)xr[j] + (int32_t)yr[j]", False, "orow[j]")
    w.close()
    w.close()  # c
    w.close()  # b
    w.close()
    w.line()


_KERNEL_EMITTERS = {
    "conv2d": _emit_conv_kernel,
    "dwconv2d": _emit_conv_kernel,
    "dense": _emit_dense_kernel,
    "add": _emit_add_kernel,
}


# ---------------------------------------------------------------------------
# translation unit
# ---------------------------------------------------------------------------

def _emit_dispatch(w: CWriter, model: CompiledModel, native_idx: List[int]):
    w.open("int32_t repro_native_step_supported(int32_t idx)")
    if native_idx:
        w.open("switch (idx)")
        w.line(" ".join(f"case {i}:" for i in native_idx) + " return 1;")
        w.line("default: return 0;")
        w.close()
    else:
        w.line("(void)idx;")
        w.line("return 0;")
    w.close()
    w.line()

    w.open("int32_t repro_native_set_weights(int32_t idx, const void* w, "
           "const void* bias)")
    w.line("if (idx < 0 || idx >= REPRO_NATIVE_NUM_STEPS) return -1;")
    w.line("g_w[idx] = (const int8_t*)w;")
    w.line("g_bias[idx] = (const int32_t*)bias;")
    w.line("return 0;")
    w.close()
    w.line()

    w.open("int32_t repro_native_run_step(int32_t idx, const void* x, "
           "const void* y, void* out, int32_t n)")
    w.line("if (n <= 0 || !x || !out) return -1;")
    if native_idx:
        w.open("switch (idx)")
        for i in native_idx:
            spec = model.steps[i].spec
            w.open(f"case {i}:")
            if spec.kind != "add":
                w.line(f"if (!g_w[{i}]) return -2;")
            else:
                w.line("if (!y) return -1;")
            if spec.bias is not None:
                w.line(f"if (!g_bias[{i}]) return -2;")
            w.line(f"s{i}((const int8_t*)x, (const int8_t*)y, "
                   f"(int8_t*)out, n);")
            w.line("return 0;")
            w.close()
        w.line("default: return -1;")
        w.close()
    else:
        w.line("(void)y;")
        w.line("return -1;")
    w.close()
    w.line()


def _emit_full_run(w: CWriter, model: CompiledModel, native_idx: List[int]):
    eligible = full_run_eligible(model, native_idx)
    w.open("int32_t repro_native_has_full_run(void)")
    w.line(f"return {1 if eligible else 0};")
    w.close()
    w.line()
    if not eligible:
        w.open("int32_t repro_native_run(const void* const* inputs, "
               "void* output, int32_t n)")
        w.line("(void)inputs; (void)output; (void)n;")
        w.line("return -3;")
        w.close()
        w.line()
        return

    plan = model.memory_plan
    out_name = model.output_name
    out_bytes = model.buffers[out_name].ttype.num_elements
    w.comment("whole-network execution over the planned L2 arena")
    w.line(f"static uint8_t g_arena[{max(plan.arena_bytes, 1)}];")
    w.open("int32_t repro_native_run(const void* const* inputs, "
           "void* output, int32_t n)")
    w.line("if (n <= 0 || !inputs || !output) return -1;")
    for i in native_idx:
        spec = model.steps[i].spec
        if spec.kind != "add":
            w.line(f"if (!g_w[{i}]) return -2;")
        if spec.bias is not None:
            w.line(f"if (!g_bias[{i}]) return -2;")
    w.open("for (int32_t b = 0; b < n; ++b)")
    names = {}
    for j, name in enumerate(model.input_names):
        ident = f"in_{_c_ident(name)}"
        elems = model.buffers[name].ttype.num_elements
        w.line(f"const int8_t* {ident} = (const int8_t*)inputs[{j}] "
               f"+ (int64_t)b * {elems};")
        names[name] = ident
    for step in model.steps:
        name = step.output_name
        if name in names:
            continue
        ident = f"buf_{_c_ident(name)}"
        w.line(f"int8_t* {ident} = (int8_t*)(g_arena "
               f"+ {plan.offsets[name]});")
        names[name] = ident
    for i, step in enumerate(model.steps):
        x = names[step.input_names[0]]
        y = names[step.input_names[1]] if step.spec.kind == "add" else "0"
        w.line(f"s{i}({x}, {y}, {names[step.output_name]}, 1);")
    w.line(f"memcpy((int8_t*)output + (int64_t)b * {out_bytes}, "
           f"{names[out_name]}, {out_bytes});")
    w.close()  # b
    w.line("return 0;")
    w.close()
    w.line()


def emit_native_sources(model: CompiledModel,
                        build_key: Optional[str] = None) -> str:
    """Emit ``native.c`` for ``model``.

    ``build_key`` (default: ``model.fingerprint()``) is baked into the
    library and re-checked at load time — the build cache's staleness
    proof. The emission is deterministic in the model, so equal
    fingerprints produce byte-identical sources.
    """
    if build_key is None:
        build_key = model.fingerprint()
    native_idx = native_step_indices(model)
    n_steps = len(model.steps)

    w = CWriter()
    w.comment(f"repro native backend: {model.name} [{model.config_name}]")
    w.comment("generated code - do not edit; semantics mirror "
              "repro.numerics bit-for-bit (see codegen/native.py)")
    w.line("#include <stdint.h>")
    w.line("#include <string.h>")
    w.line()
    w.comment("two's-complement wraparound add / int64 -> int32 "
              "narrowing via unsigned arithmetic (defined behaviour; "
              "the final unsigned -> signed conversion is modular on "
              "every compiler the build layer accepts)")
    w.line("#define RQ_WRAP_ADD(a, b) "
           "((int32_t)(uint32_t)((uint32_t)(a) + (uint32_t)(b)))")
    w.line("#define RQ_NARROW64(a) ((int32_t)(uint32_t)(uint64_t)(a))")
    w.line()
    w.line(f"enum {{ REPRO_NATIVE_NUM_STEPS = {n_steps} }};")
    w.line(f"static const char g_build_key[] = \"{build_key}\";")
    w.line("static const int8_t* g_w[REPRO_NATIVE_NUM_STEPS];")
    w.line("static const int32_t* g_bias[REPRO_NATIVE_NUM_STEPS];")
    w.line()

    for i in native_idx:
        spec = model.steps[i].spec
        _KERNEL_EMITTERS[spec.kind](w, i, spec)

    w.comment("---- exported ABI (everything above is static) ----")
    w.open("int32_t repro_native_abi(void)")
    w.line(f"return {NATIVE_ABI_VERSION};")
    w.close()
    w.line()
    w.open("const char* repro_native_build_key(void)")
    w.line("return g_build_key;")
    w.close()
    w.line()
    w.open("int32_t repro_native_num_steps(void)")
    w.line("return REPRO_NATIVE_NUM_STEPS;")
    w.close()
    w.line()
    _emit_dispatch(w, model, native_idx)
    _emit_full_run(w, model, native_idx)
    return w.source()
