"""L2 activation memory planning.

HTVM "yields a memory schedule for allocating and de-allocating
intermediate activation tensors in main memory (L2)" (paper Sec. III).
The planner computes tensor lifetimes over the execution order and
packs them into an arena with first-fit offset assignment, so buffers
whose lifetimes do not overlap share memory.

The plain-TVM baseline of Table I is modelled with ``reuse=False``
(every intermediate gets its own slot): together with the 289 kB
MobileNet binary this exceeds DIANA's 512 kB L2, reproducing the
paper's "MobileNet stops running with an error" entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class TensorLife:
    """A tensor that must live in L2 from step ``start`` to ``end``."""

    name: str
    size: int
    start: int
    end: int


@dataclass
class MemoryPlan:
    """Arena offsets for every planned tensor."""

    offsets: Dict[str, int] = field(default_factory=dict)
    sizes: Dict[str, int] = field(default_factory=dict)
    lifetimes: Dict[str, TensorLife] = field(default_factory=dict)
    arena_bytes: int = 0
    reuse: bool = True

    def report(self) -> str:
        lines = [f"L2 activation arena: {self.arena_bytes} B "
                 f"(reuse={'on' if self.reuse else 'off'})"]
        for name, life in sorted(self.lifetimes.items(),
                                 key=lambda kv: self.offsets[kv[0]]):
            lines.append(
                f"  {name:<36} off={self.offsets[name]:>7} "
                f"size={self.sizes[name]:>7} live=[{life.start},{life.end}]"
            )
        return "\n".join(lines)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


def plan_memory(entries: List[TensorLife], reuse: bool = True,
                alignment: int = 4) -> MemoryPlan:
    """Pack tensor lifetimes into an arena.

    With ``reuse=True``, offsets are assigned first-fit in order of
    decreasing size (a standard greedy that is near-optimal for DNN
    lifetime patterns); tensors with overlapping lifetimes never
    overlap in memory. With ``reuse=False`` every tensor is stacked.
    """
    plan = MemoryPlan(reuse=reuse)
    for e in entries:
        plan.sizes[e.name] = e.size
        plan.lifetimes[e.name] = e

    if not reuse:
        cursor = 0
        for e in entries:
            plan.offsets[e.name] = cursor
            cursor += _align(e.size, alignment)
        plan.arena_bytes = cursor
        return plan

    placed: List[TensorLife] = []
    order = sorted(entries, key=lambda e: (-e.size, e.start, e.name))
    for e in order:
        overlapping = [
            p for p in placed
            if not (e.end < p.start or p.end < e.start)
        ]
        overlapping.sort(key=lambda p: plan.offsets[p.name])
        offset = 0
        for p in overlapping:
            p_off = plan.offsets[p.name]
            if offset + e.size <= p_off:
                break
            offset = max(offset, _align(p_off + p.size, alignment))
        plan.offsets[e.name] = offset
        placed.append(e)
    plan.arena_bytes = max(
        (plan.offsets[e.name] + e.size for e in entries), default=0)
    return plan


def lifetimes_from_steps(step_io: List[tuple], tensor_sizes: Dict[str, int],
                         graph_inputs: List[str],
                         output_name: str) -> List[TensorLife]:
    """Build tensor lifetimes from per-step (inputs, output) name lists.

    A tensor is born at the step that produces it (graph inputs at step
    -1) and dies after its last consuming step; the graph output lives
    until the end.
    """
    num_steps = len(step_io)
    birth: Dict[str, int] = {name: -1 for name in graph_inputs}
    death: Dict[str, int] = {name: -1 for name in graph_inputs}
    for idx, (inputs, output) in enumerate(step_io):
        birth[output] = idx
        death.setdefault(output, idx)
        death[output] = max(death[output], idx)
        for name in inputs:
            death[name] = max(death.get(name, idx), idx)
    death[output_name] = num_steps
    entries = []
    for name, b in birth.items():
        entries.append(TensorLife(
            name=name, size=tensor_sizes[name], start=b, end=death[name]))
    return entries
