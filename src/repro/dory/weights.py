"""Weight storage layouts and packing.

DORY "stores the weights in the SoC's global memory (L2) in the most
optimal data layout (i.e., to avoid CPU data-marshaling overheads)"
(paper Sec. III-B). This module implements those layouts concretely:

* **digital core** — weights blocked for the 16x16 PE array: the
  K / C dimensions are split into 16-wide blocks so each weight-memory
  fill is one contiguous DMA burst per (K-block, C-block) tile,
* **analog core** — ternary weights packed 2 bits each, rows
  (C*fy*fx) zero-padded to the macro granularity, column-major per
  output channel so one macro column programs sequentially,
* ternary pack/unpack primitives (4 weights per byte).

The runtime simulator computes with the unpacked arrays; these
functions define the *bytes that land in L2* — the quantity the binary
size model accounts — and are round-trip tested so the layouts are
genuinely invertible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import CodegenError
from ..soc.params import DianaParams
from .layer_spec import LayerSpec


# ---------------------------------------------------------------------------
# ternary packing: {-1, 0, +1} -> 2 bits each, four per byte
# ---------------------------------------------------------------------------

_TERNARY_CODES = {-1: 0b10, 0: 0b00, 1: 0b01}
_TERNARY_VALUES = np.array([0, 1, -1, 0], dtype=np.int8)  # code -> value


def pack_ternary(values: np.ndarray) -> np.ndarray:
    """Pack a flat array of {-1, 0, +1} into 2-bit codes, 4 per byte.

    The tail byte is zero-padded. Code 0b11 is unused (reads back 0).
    """
    flat = np.asarray(values, dtype=np.int8).reshape(-1)
    if flat.size and (flat.min() < -1 or flat.max() > 1):
        raise CodegenError("pack_ternary: values outside {-1, 0, +1}")
    codes = np.where(flat == -1, 0b10, np.where(flat == 1, 0b01, 0)).astype(np.uint8)
    pad = (-len(codes)) % 4
    if pad:
        codes = np.concatenate([codes, np.zeros(pad, np.uint8)])
    codes = codes.reshape(-1, 4)
    packed = (codes[:, 0] | (codes[:, 1] << 2) | (codes[:, 2] << 4)
              | (codes[:, 3] << 6))
    return packed.astype(np.uint8)


def unpack_ternary(packed: np.ndarray, count: int) -> np.ndarray:
    """Inverse of :func:`pack_ternary`; returns ``count`` int8 values."""
    packed = np.asarray(packed, dtype=np.uint8)
    codes = np.empty((packed.size, 4), dtype=np.uint8)
    codes[:, 0] = packed & 0b11
    codes[:, 1] = (packed >> 2) & 0b11
    codes[:, 2] = (packed >> 4) & 0b11
    codes[:, 3] = (packed >> 6) & 0b11
    values = _TERNARY_VALUES[codes.reshape(-1)]
    if count > values.size:
        raise CodegenError("unpack_ternary: not enough packed data")
    return values[:count]


# ---------------------------------------------------------------------------
# digital layout: (K, C, fy, fx) -> PE-blocked stream
# ---------------------------------------------------------------------------

@dataclass
class DigitalWeightImage:
    """Weights laid out for the digital core's weight memory."""

    data: np.ndarray            #: uint8 byte stream as stored in L2
    shape: Tuple[int, ...]      #: original OIHW shape
    k_block: int
    c_block: int

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


def layout_digital_weights(weight: np.ndarray, params: DianaParams
                           ) -> DigitalWeightImage:
    """Block OIHW weights into (K/16, C/16, fy, fx, 16, 16) order.

    Partial blocks are zero-padded, so every weight-memory fill for a
    16-aligned tile is a single contiguous burst. Dense (2D) weights
    are treated as 1x1 convolutions.
    """
    w = np.asarray(weight, dtype=np.int8)
    if w.ndim == 2:
        w = w[:, :, None, None]
    if w.ndim != 4:
        raise CodegenError(f"unsupported weight rank {w.ndim}")
    k, c, fy, fx = w.shape
    kb, cb = params.dig_pe_cols, params.dig_pe_rows
    kp = math.ceil(k / kb) * kb
    cp = math.ceil(c / cb) * cb
    padded = np.zeros((kp, cp, fy, fx), dtype=np.int8)
    padded[:k, :c] = w
    blocked = (padded
               .reshape(kp // kb, kb, cp // cb, cb, fy, fx)
               .transpose(0, 2, 4, 5, 1, 3))  # (Kb, Cb, fy, fx, 16, 16)
    return DigitalWeightImage(
        data=np.ascontiguousarray(blocked).view(np.uint8).reshape(-1),
        shape=(k, c, fy, fx), k_block=kb, c_block=cb,
    )


def restore_digital_weights(image: DigitalWeightImage) -> np.ndarray:
    """Invert :func:`layout_digital_weights` (drops the zero padding)."""
    k, c, fy, fx = image.shape
    kb, cb = image.k_block, image.c_block
    kp = math.ceil(k / kb) * kb
    cp = math.ceil(c / cb) * cb
    blocked = (image.data.view(np.int8)
               .reshape(kp // kb, cp // cb, fy, fx, kb, cb)
               .transpose(0, 4, 1, 5, 2, 3)
               .reshape(kp, cp, fy, fx))
    return blocked[:k, :c].copy()


# ---------------------------------------------------------------------------
# analog layout: (K, C, fy, fx) ternary -> padded macro column image
# ---------------------------------------------------------------------------

@dataclass
class AnalogWeightImage:
    """Ternary weights laid out for the AiMC macro, as stored in L2."""

    data: np.ndarray            #: packed uint8 stream
    shape: Tuple[int, ...]      #: original OIHW (or KC) shape
    rows: int                   #: used macro rows (C * fy * fx)
    padded_rows: int            #: rows incl. zero padding

    @property
    def nbytes(self) -> int:
        return self.data.nbytes


def layout_analog_weights(weight: np.ndarray, spec: LayerSpec,
                          params: DianaParams) -> AnalogWeightImage:
    """Column-major, row-padded, 2-bit-packed macro image.

    The padding rule matches
    :meth:`repro.soc.analog.AnalogAccelerator.weight_storage_bytes`:
    spatial convolutions pad the reduction rows to the full macro
    height, pointwise/FC layers to the 288-row quadrant granularity —
    "some layer dimensions require padding the L2 memory with zeros to
    fill a part of the large IMC macro" (paper Sec. IV-C).
    """
    w = np.asarray(weight, dtype=np.int8)
    if w.ndim == 2:
        w = w[:, :, None, None]
    k, c, fy, fx = w.shape
    rows = c * fy * fx
    pad_to = (params.ana_row_pad_conv if fy * fx > 1
              else params.ana_row_pad_pw)
    padded_rows = math.ceil(rows / pad_to) * pad_to
    # column-major: all rows of output channel 0, then channel 1, ...
    columns = np.zeros((k, padded_rows), dtype=np.int8)
    columns[:, :rows] = w.reshape(k, rows)
    return AnalogWeightImage(
        data=pack_ternary(columns.reshape(-1)),
        shape=(k, c, fy, fx), rows=rows, padded_rows=padded_rows,
    )


def restore_analog_weights(image: AnalogWeightImage) -> np.ndarray:
    """Invert :func:`layout_analog_weights` (drops the row padding)."""
    k, c, fy, fx = image.shape
    total = k * image.padded_rows
    columns = unpack_ternary(image.data, total).reshape(k, image.padded_rows)
    return columns[:, :image.rows].reshape(k, c, fy, fx).copy()


def weight_image_for(spec: LayerSpec, target: str,
                     params: DianaParams):
    """The L2 weight image of a layer for its dispatch target."""
    if spec.weight is None:
        raise CodegenError(f"{spec.name}: layer has no weights")
    if target == "soc.analog":
        return layout_analog_weights(spec.weight, spec, params)
    return layout_digital_weights(spec.weight, params)
