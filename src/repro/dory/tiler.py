"""DORY's tiling solver (paper Sec. III-B, Eqs. 1-2).

The solver picks tile sizes that maximize

    alpha * (L1_weight + L1_in + L1_out)  +  sum_i beta_i * H_i     (Eq. 1)

subject to

    L1_weight + L1_in + L1_out  <=  L1 budget                      (Eq. 2)

plus the digital accelerator's private weight-memory capacity. The
``H_i`` come from :mod:`repro.dory.heuristics`; with an empty heuristic
list the solver degrades to the hardware-agnostic "only tile size"
baseline of Fig. 4.

DORY formulates this as constraint programming; layer dimensions are
small enough that an exhaustive search over a pruned candidate grid is
exact and fast in Python.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import TilingError
from ..soc.params import DianaParams
from .heuristics import Heuristic
from .layer_spec import LayerSpec
from .tiling_types import TileConfig, TilingSolution


def _candidates(limit: int, include_all_up_to: int = 0) -> List[int]:
    """Candidate tile sizes for a dimension of size ``limit``.

    Divisors (perfectly even tilings), multiples of 8 (PE-friendly
    sizes) and the full size. ``include_all_up_to`` additionally adds
    every value up to ``min(limit, include_all_up_to)`` so the baseline
    objective can find its (possibly hardware-hostile) memory optimum.
    """
    cands = {limit}
    for d in range(1, int(math.sqrt(limit)) + 1):
        if limit % d == 0:
            cands.add(d)
            cands.add(limit // d)
    cands.update(range(8, limit + 1, 8))
    cands.update(range(1, min(limit, include_all_up_to) + 1))
    return sorted(cands)


def _l1_bytes(spec: LayerSpec, cfg: TileConfig, target: str,
              payload_only: bool = False) -> tuple:
    """(in, out, weight) L1 bytes for the nominal tile (Eq. 2 LHS).

    With ``payload_only`` the int32 partial-sum inflation of a C-tiled
    convolution is ignored: the Eq. 1 *objective* rewards memory spent
    on useful payload, while Eq. 2 *feasibility* must account for the
    physical 4-byte accumulator tile.
    """
    iy_t, ix_t = spec.input_tile_hw(cfg.oy_t, cfg.ox_t)
    iy_t, ix_t = min(iy_t, spec.iy), min(ix_t, spec.ix)
    if spec.kind == "dense":
        in_b = cfg.c_t
        out_b = cfg.k_t
        w_b = cfg.k_t * cfg.c_t
    elif spec.kind == "add":
        in_b = 2 * cfg.c_t * cfg.oy_t * cfg.ox_t
        out_b = cfg.c_t * cfg.oy_t * cfg.ox_t
        w_b = 0
    elif spec.kind == "dwconv2d":
        in_b = cfg.c_t * iy_t * ix_t
        out_b = cfg.c_t * cfg.oy_t * cfg.ox_t
        w_b = cfg.c_t * spec.fy * spec.fx
    else:  # conv2d
        in_b = cfg.c_t * iy_t * ix_t
        # a C-tiled conv accumulates int32 partial sums in L1
        out_elem = 1 if payload_only else (
            4 if cfg.c_t < spec.in_channels else 1)
        out_b = cfg.k_t * cfg.oy_t * cfg.ox_t * out_elem
        w_b = cfg.k_t * cfg.c_t * spec.fy * spec.fx
    if target == "soc.analog":
        # ternary weights live inside the IMC macro, not in L1
        w_b = 0
    return in_b, out_b, w_b


def _full_config(spec: LayerSpec) -> TileConfig:
    return TileConfig(c_t=spec.in_channels, k_t=spec.out_channels,
                      oy_t=spec.oy, ox_t=spec.ox)


class DoryTiler:
    """Tiling solver bound to one accelerator target.

    Args:
        target: ``"soc.digital"`` or ``"soc.analog"``.
        params: platform constants.
        heuristics: the ``beta_i * H_i`` terms; empty list = baseline.
        alpha: weight of the memory-utilization term of Eq. 1.
        l1_budget: Eq. 2 right-hand side; defaults to the platform's
            256 kB shared L1 (Fig. 4 sweeps this downward).
    """

    def __init__(self, target: str, params: DianaParams,
                 heuristics: Sequence[Heuristic],
                 alpha: float = 1.0,
                 l1_budget: Optional[int] = None):
        self.target = target
        self.params = params
        self.heuristics = list(heuristics)
        self.alpha = alpha
        self.l1_budget = params.l1_bytes if l1_budget is None else int(l1_budget)

    # -- constraints -------------------------------------------------------

    def _weight_budget_ok(self, spec: LayerSpec, cfg: TileConfig) -> bool:
        if self.target != "soc.digital" or spec.kind == "add":
            return True
        if spec.kind == "dense":
            w = cfg.k_t * cfg.c_t
        elif spec.kind == "dwconv2d":
            w = cfg.c_t * spec.fy * spec.fx
        else:
            w = cfg.k_t * cfg.c_t * spec.fy * spec.fx
        return w <= self.params.dig_weight_bytes

    def _feasible(self, spec: LayerSpec, cfg: TileConfig) -> bool:
        in_b, out_b, w_b = _l1_bytes(spec, cfg, self.target)
        if in_b + out_b + w_b > self.l1_budget:
            return False
        return self._weight_budget_ok(spec, cfg)

    # -- objective -----------------------------------------------------------

    def _objective(self, spec: LayerSpec, cfg: TileConfig) -> float:
        in_b, out_b, w_b = _l1_bytes(spec, cfg, self.target,
                                     payload_only=True)
        score = self.alpha * (in_b + out_b + w_b) / self.l1_budget
        for h in self.heuristics:
            score += h(spec, cfg)
        return score

    # -- search -------------------------------------------------------------

    def solve(self, spec: LayerSpec) -> TilingSolution:
        """Find the best feasible tiling for ``spec``.

        Raises:
            TilingError: if even the minimal tile violates the budget.
        """
        full = _full_config(spec)
        if self._feasible(spec, full):
            in_b, out_b, w_b = _l1_bytes(spec, full, self.target)
            return TilingSolution(
                spec=spec, cfg=full, target=self.target,
                l1_in_bytes=in_b, l1_out_bytes=out_b, l1_weight_bytes=w_b,
                objective=self._objective(spec, full), needs_tiling=False,
            )

        best: Optional[TileConfig] = None
        best_score = float("-inf")
        for cfg in self._candidate_configs(spec):
            if not self._feasible(spec, cfg):
                continue
            score = self._objective(spec, cfg)
            if score > best_score + 1e-12 or (
                    abs(score - best_score) <= 1e-12 and best is not None
                    and cfg.num_tiles(spec) < best.num_tiles(spec)):
                best, best_score = cfg, score

        if best is None:
            raise TilingError(
                f"{spec.name}: no feasible tiling for target {self.target} "
                f"within L1 budget {self.l1_budget} B"
            )
        in_b, out_b, w_b = _l1_bytes(spec, best, self.target)
        return TilingSolution(
            spec=spec, cfg=best, target=self.target,
            l1_in_bytes=in_b, l1_out_bytes=out_b, l1_weight_bytes=w_b,
            objective=best_score, needs_tiling=True,
        )

    def _max_feasible_oy(self, spec: LayerSpec, c_t: int, k_t: int,
                         hi: Optional[int] = None) -> Optional[int]:
        """Largest feasible oy_t for fixed channel tiles (binary search).

        L1 bytes are monotone in oy_t, and so is the full objective
        (memory term and the Eq. 5 H_DMA both grow with oy_t while the
        PE heuristics ignore it), so per (c_t, k_t) only the maximal
        feasible oy_t can be optimal.

        ``hi`` caps the search from above: L1 use also grows with
        ``k_t`` (and with ``c_t`` for depthwise/add layers), so the
        max feasible oy_t of a *larger* channel tile can never exceed
        that of a smaller one — callers walking the candidate grid in
        ascending order pass the previous result to shrink the range.
        """
        def make(oy: int) -> TileConfig:
            return TileConfig(c_t=c_t, k_t=k_t, oy_t=oy, ox_t=spec.ox)

        if not self._feasible(spec, make(1)):
            return None
        lo, hi = 1, min(spec.oy, hi if hi is not None else spec.oy)
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._feasible(spec, make(mid)):
                lo = mid
            else:
                hi = mid - 1
        return lo

    def _channel_row_configs(self, spec: LayerSpec):
        """(c_t, max oy_t) pairs for depthwise/add layers.

        Feasibility is monotone in c_t for these kinds (every L1 term
        scales with the channel tile), so the previous max oy_t caps
        the next binary search and the first infeasible c_t ends the
        walk.
        """
        cap = 32 if spec.kind == "dwconv2d" else 0
        prev_oy: Optional[int] = None
        for c_t in _candidates(spec.in_channels, include_all_up_to=cap):
            oy = self._max_feasible_oy(spec, c_t, c_t, hi=prev_oy)
            if oy is None:
                break  # larger channel tiles only use more L1
            prev_oy = oy
            yield TileConfig(c_t=c_t, k_t=c_t, oy_t=oy, ox_t=spec.ox)

    def _conv_configs(self, spec: LayerSpec):
        """Pruned (c_t, k_t, max oy_t) grid for digital conv2d.

        Two reductions over the naive k x c product:

        * monotone reuse (always exact): for fixed c_t, L1 use grows
          with k_t, so the max feasible oy_t is non-increasing along
          ascending k_t — the previous result caps the binary search,
          and the first k_t with no feasible row tile ends the k-walk;
        * dominated-pair dedup (``alpha > 0`` only): for fixed c_t the
          memory-payload term grows *strictly* with k_t at equal oy_t
          and the built-in heuristics never decrease in k_t (Eq. 5
          H_DMA grows, Eqs. 3-4 ignore it), so within a plateau of
          equal max-oy the largest k_t strictly dominates — the rest
          of the plateau is never yielded. With ``alpha == 0`` scores
          can tie exactly and the solver's first-seen/fewest-tiles
          tie-break must see every candidate, so the dedup is skipped.
        """
        k_cands = _candidates(spec.out_channels, include_all_up_to=32)
        c_cands = _candidates(spec.in_channels, include_all_up_to=32)
        oy_of = {}
        for c_t in c_cands:
            prev_oy: Optional[int] = None
            for k_t in k_cands:
                oy = self._max_feasible_oy(spec, c_t, k_t, hi=prev_oy)
                if oy is None:
                    break  # larger k tiles only use more L1/weight mem
                prev_oy = oy
                oy_of[c_t, k_t] = oy
        if self.alpha <= 0:
            # every score can tie exactly: the solver's first-seen /
            # fewest-tiles tie-break must see all candidates in the
            # legacy k-outer order to pick identically to the unpruned
            # solver
            for k_t in k_cands:
                for c_t in c_cands:
                    oy = oy_of.get((c_t, k_t))
                    if oy is not None:
                        yield TileConfig(c_t=c_t, k_t=k_t, oy_t=oy,
                                         ox_t=spec.ox)
            return
        for c_t in c_cands:
            plateau: Optional[TileConfig] = None
            for k_t in k_cands:
                oy = oy_of.get((c_t, k_t))
                if oy is None:
                    break
                if plateau is not None and plateau.oy_t != oy:
                    yield plateau
                plateau = TileConfig(c_t=c_t, k_t=k_t, oy_t=oy, ox_t=spec.ox)
            if plateau is not None:
                yield plateau

    def _candidate_configs(self, spec: LayerSpec):
        """Candidate tile configurations for the layer kind."""
        if spec.kind == "dense":
            # feasibility (L1 + weight memory) is monotone in k_t: stop
            # at the first infeasible candidate.
            for k_t in _candidates(spec.out_channels, include_all_up_to=64):
                cfg = TileConfig(c_t=spec.in_channels, k_t=k_t)
                if not self._feasible(spec, cfg):
                    break
                yield cfg
            return
        if spec.kind in ("add", "dwconv2d"):
            yield from self._channel_row_configs(spec)
            return
        if self.target == "soc.analog":
            # weights sit in the macro; only row tiling is needed.
            oy = self._max_feasible_oy(spec, spec.in_channels,
                                       spec.out_channels)
            if oy is not None:
                yield TileConfig(c_t=spec.in_channels,
                                 k_t=spec.out_channels, oy_t=oy,
                                 ox_t=spec.ox)
            return
        # conv2d on digital: DORY tiles K, C (int32 partial sums) and
        # the output height; the width is never tiled (contiguous DMA).
        yield from self._conv_configs(spec)
