"""DORY-style C code generation for accelerator layers.

For every offloaded layer, DORY "generates accelerator-specific and
memory-specific instructions ... and emits an explicit memory
management schedule to move the data between different memory levels"
(paper Sec. III-B). The emitted driver contains the tile loop, the
uDMA transfers L2<->L1, the weight-memory fills, and the coarse-grained
accelerator trigger — the C mirror of what the runtime simulator
executes step-for-step.
"""

from __future__ import annotations

from ..codegen.c_writer import CWriter
from ..soc.params import DianaParams
from .layer_spec import LayerSpec
from .tiling_types import TilingSolution


def _accel_call(target: str) -> str:
    known = {
        "soc.digital": "diana_digital_run",
        "soc.analog": "diana_analog_run",
    }
    return known.get(target, target.replace(".", "_") + "_run")


def emit_accel_layer(name: str, sol: TilingSolution,
                     params: DianaParams) -> str:
    """The C driver function for one tiled accelerator layer."""
    spec: LayerSpec = sol.spec
    cfg = sol.cfg
    w = CWriter()
    w.comment(f"DORY layer driver: {spec.name} on {sol.target}")
    w.line('#include "repro_runtime.h"')
    call = _accel_call(sol.target)
    if call not in ("diana_digital_run", "diana_analog_run"):
        # custom accelerator targets: the BSP header only declares the
        # DIANA cores, so declare the trigger stub here
        w.line(f"void {call}(const int8_t* l1_in, int8_t* l1_out, "
               f"int shift, int relu);")
    w.comment(f"kind={spec.kind} C={spec.in_channels} K={spec.out_channels} "
              f"in={spec.iy}x{spec.ix} out={spec.oy}x{spec.ox} "
              f"f={spec.fy}x{spec.fx} s={spec.strides} p={spec.padding}")
    w.comment(f"tile: C_t={cfg.c_t} K_t={cfg.k_t} oy_t={cfg.oy_t} "
              f"ox_t={cfg.ox_t} -> {sol.num_tiles} tiles, "
              f"L1 {sol.l1_total_bytes} B of {params.l1_bytes} B")
    second_operand = ", const int8_t* restrict l2_in2" if spec.kind == "add" else ""
    w.open(f"void {name}(const int8_t* restrict l2_in{second_operand}, "
           f"int8_t* restrict l2_out, const int8_t* restrict l2_w, "
           f"const int32_t* restrict l2_bias)")
    w.line(f"int8_t* l1_in  = diana_l1_alloc({sol.l1_in_bytes});")
    w.line(f"int8_t* l1_out = diana_l1_alloc({sol.l1_out_bytes});")
    if sol.l1_weight_bytes and sol.target == "soc.digital":
        w.line(f"/* weight tile resides in the {params.dig_weight_bytes} B "
               f"digital weight memory */")
    if sol.target == "soc.analog":
        w.line("diana_analog_load_macro(l2_w);  "
               "/* program ternary cells, all column blocks */")

    iy_t, ix_t = spec.input_tile_hw(cfg.oy_t, cfg.ox_t)
    w.open(f"for (int k0 = 0; k0 < {spec.out_channels}; k0 += {cfg.k_t})")
    if sol.target == "soc.digital" and spec.kind != "add":
        w.line("diana_dig_load_weights(l2_w, k0);  /* uDMA -> weight mem */")
    w.open(f"for (int oy0 = 0; oy0 < {spec.oy}; oy0 += {cfg.oy_t})")
    w.open(f"for (int ox0 = 0; ox0 < {spec.ox}; ox0 += {cfg.ox_t})")
    w.comment(f"input halo tile <= {cfg.c_t}x{iy_t}x{ix_t}")
    w.line("dma_2d_in(l1_in, l2_in, k0, oy0, ox0);")
    if spec.kind == "add":
        w.line("dma_2d_in(l1_in + /*second operand*/ "
               f"{sol.l1_in_bytes // 2}, l2_in2, k0, oy0, ox0);")
    w.line(f"{_accel_call(sol.target)}(l1_in, l1_out, "
           f"/*shift=*/{spec.shift}, /*relu=*/{int(spec.relu)});")
    w.line("dma_2d_out(l2_out, l1_out, k0, oy0, ox0);")
    w.close().close().close()
    w.line("diana_l1_free_all();")
    w.close()
    return w.source()
