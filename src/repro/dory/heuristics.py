"""Accelerator-aware tiling heuristics (paper Eqs. 3-5).

DORY's tiler maximizes ``alpha * (L1_w + L1_in + L1_out) + sum_i beta_i * H_i``
(Eq. 1). The ``H_i`` are platform heuristics; for DIANA's digital
accelerator the paper gives:

* ``H_pe_digital_C  = (C_t  - 1) mod 16``   (Eq. 3)
* ``H_pe_digital_ix = (ix_t - 1) mod 16``   (Eq. 4)
* ``H_DMA           = iy_t``                (Eq. 5)

Eqs. 3-4 reward tile sizes that fill all 16 PE rows/columns; Eq. 5
rewards tall input tiles, which need fewer non-contiguous DMA bursts in
the C-y-x activation layout. Each heuristic here is normalized to
[0, 1] so the ``alpha``/``beta`` balance is scale-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from .layer_spec import LayerSpec
from .tiling_types import TileConfig


@dataclass(frozen=True)
class Heuristic:
    """One ``beta_i * H_i`` term of the tiling objective."""

    name: str
    weight: float
    fn: Callable[[LayerSpec, TileConfig], float]

    def __call__(self, spec: LayerSpec, cfg: TileConfig) -> float:
        return self.weight * self.fn(spec, cfg)


def _mod16_score(value: int) -> float:
    """Normalized ``(value - 1) mod 16``: 1.0 iff value is a multiple of 16."""
    return ((value - 1) % 16) / 15.0


def _h_pe_c(spec: LayerSpec, cfg: TileConfig) -> float:
    """Eq. 3: input-channel tile fills the 16 PE rows."""
    return _mod16_score(cfg.c_t)


def _h_pe_ix(spec: LayerSpec, cfg: TileConfig) -> float:
    """Eq. 4: input-width tile fills the 16 PE columns.

    The input-width tile is clipped to the tensor width (edge tiles
    fetch no halo beyond the feature map), so full-width tiles of a
    16-multiple-wide layer score maximally — and they are also the
    contiguous-DMA-friendly choice in the C-y-x layout.

    For FC layers (no spatial dims) the array unrolls C and K, so the
    output-channel tile plays the role of the second spatial dimension.
    """
    if spec.kind == "dense":
        return _mod16_score(cfg.k_t)
    ix_t = min((cfg.ox_t - 1) * spec.strides[1] + spec.fx, spec.ix)
    return _mod16_score(ix_t)


def _h_dma(spec: LayerSpec, cfg: TileConfig) -> float:
    """Eq. 5: maximize the input-height tile (contiguous DMA bursts).

    The paper states the heuristic as ``H_DMA = i_y^t``. Taken alone
    that would reward trading output channels for rows, which *adds*
    DMA traffic (the input slab is re-fetched once per output-channel
    block). We therefore score the input rows streamed *per weight
    residency*, ``(iy_t / iy) * (k_t / K)`` — maximal exactly when one
    tall tile covers all output channels, which is the configuration
    the paper's formulation assumes.
    """
    if spec.kind == "dense":
        return cfg.k_t / max(spec.out_channels, 1)
    return ((cfg.oy_t / max(spec.oy, 1))
            * (cfg.k_t / max(spec.out_channels, 1)))


def _h_analog_unroll(spec: LayerSpec, cfg: TileConfig) -> float:
    """Analog: "spatially unroll C and K as much as possible"."""
    rows = cfg.c_t * spec.fy * spec.fx if spec.kind != "dense" else cfg.c_t
    cols = cfg.k_t
    return min(rows / 1152.0, 1.0) * min(cols / 512.0, 1.0)


#: default betas: DORY's alpha/beta "control the balance between
#: maximizing memory utilization and maximizing platform-specific
#: heuristics" (paper Sec. III-B). The PE-utilization terms (Eqs. 3-4)
#: are strong tie-breakers around the memory optimum; the DMA term
#: (Eq. 5) is a weak tie-breaker so it never trades away utilization.
DEFAULT_BETA_PE = 0.25
DEFAULT_BETA_DMA = 0.05


def digital_heuristics(beta_pe: float = DEFAULT_BETA_PE,
                       beta_dma: float = DEFAULT_BETA_DMA) -> List[Heuristic]:
    """The full DIANA digital heuristic set (Eqs. 3, 4, 5)."""
    return [
        Heuristic("H_pe_digital_C", beta_pe, _h_pe_c),
        Heuristic("H_pe_digital_ix", beta_pe, _h_pe_ix),
        Heuristic("H_DMA", beta_dma, _h_dma),
    ]


def digital_pe_only_heuristics(beta_pe: float = DEFAULT_BETA_PE) -> List[Heuristic]:
    """Only Eqs. 3-4 — the middle curve ("square markers") of Fig. 4."""
    return [
        Heuristic("H_pe_digital_C", beta_pe, _h_pe_c),
        Heuristic("H_pe_digital_ix", beta_pe, _h_pe_ix),
    ]


def analog_heuristics(beta: float = 1.0) -> List[Heuristic]:
    """DIANA analog heuristic: maximize macro row/column utilization."""
    return [Heuristic("H_analog_unroll", beta, _h_analog_unroll)]


def no_heuristics() -> List[Heuristic]:
    """The hardware-agnostic baseline ("only tile size", Fig. 4)."""
    return []


def heuristic_set_for(kind: str, target: str) -> List[Heuristic]:
    """The heuristic set one ``CompilerConfig.heuristics`` kind implies.

    Shared by the compiler driver and the mapping engine so candidate
    costing solves exactly the tiling a subsequent compile would (same
    cache key, same solution).
    """
    if target == "soc.analog":
        return analog_heuristics() if kind != "none" else no_heuristics()
    if kind == "full":
        return digital_heuristics()
    if kind == "pe-only":
        return digital_pe_only_heuristics()
    if kind == "none":
        return no_heuristics()
    from ..errors import CodegenError
    raise CodegenError(f"unknown heuristic set {kind!r}")
