"""Tiling data structures shared by the solver, codegen and runtime."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from .layer_spec import LayerSpec


@dataclass(frozen=True)
class TileConfig:
    """Nominal tile sizes along each tileable dimension.

    DORY tiles output channels (``k_t``), input channels (``c_t``) and
    the output height (``oy_t``); the feature-map *width* is never
    tiled — in the C-y-x activation layout a full-width slab is a
    contiguous DMA burst per channel, which is precisely what the
    paper's Eq. 5 heuristic protects. When ``c_t < C`` on a (non-
    depthwise) convolution, the accelerator accumulates int32 partial
    sums in L1 across input-channel blocks and requantizes after the
    last block.

    Edge tiles are smaller; :func:`tiles_of` enumerates the actual tile
    instances.
    """

    c_t: int
    k_t: int
    oy_t: int = 1
    ox_t: int = 1

    def reduction_blocks(self, spec: LayerSpec) -> int:
        """Input-channel partial-sum blocks (1 unless conv C is tiled)."""
        if spec.kind == "conv2d":
            return math.ceil(spec.in_channels / self.c_t)
        return 1

    def num_tiles(self, spec: LayerSpec) -> int:
        return (math.ceil(spec.oy / self.oy_t)
                * math.ceil(spec.ox / self.ox_t)
                * math.ceil(spec.out_channels / self.k_t)
                * self.reduction_blocks(spec))


@dataclass(frozen=True)
class Tile:
    """One concrete tile instance with input halo bookkeeping.

    Output ranges are ``[k0:k1, oy0:oy1, ox0:ox1]``. The required input
    slab is ``[c0:c1, iy0:iy1, ix0:ix1]`` *clipped to the tensor*, with
    ``pad_*`` giving the zero-padding this edge tile still needs.
    ``last_reduction`` is False for partial-sum blocks of a C-tiled
    convolution (the output is written back only after the last block).
    """

    k0: int
    k1: int
    oy0: int
    oy1: int
    ox0: int
    ox1: int
    c0: int
    c1: int
    iy0: int
    iy1: int
    ix0: int
    ix1: int
    pad_top: int
    pad_bottom: int
    pad_left: int
    pad_right: int
    last_reduction: bool = True

    @property
    def out_shape(self) -> Tuple[int, int, int]:
        return (self.k1 - self.k0, self.oy1 - self.oy0, self.ox1 - self.ox0)

    @property
    def in_shape(self) -> Tuple[int, int, int]:
        return (self.c1 - self.c0, self.iy1 - self.iy0, self.ix1 - self.ix0)


def _input_range(o0: int, o1: int, stride: int, f: int, pad: int,
                 in_dim: int) -> Tuple[int, int, int, int]:
    """Input interval + residual padding for an output interval."""
    lo = o0 * stride - pad
    hi = (o1 - 1) * stride + f - pad
    pad_lo = max(0, -lo)
    pad_hi = max(0, hi - in_dim)
    return max(lo, 0), min(hi, in_dim), pad_lo, pad_hi


def tiles_of(spec: LayerSpec, cfg: TileConfig) -> Iterator[Tile]:
    """Enumerate all tile instances.

    Order: K blocks, then output rows, then width blocks, with
    input-channel (partial-sum) blocks innermost so the executor can
    accumulate each output tile across consecutive tiles.
    """
    sy, sx = spec.strides
    py, px = spec.padding
    c_blocks: List[tuple]
    if spec.kind == "conv2d":
        c_blocks = [(c0, min(c0 + cfg.c_t, spec.in_channels))
                    for c0 in range(0, spec.in_channels, cfg.c_t)]
    else:
        c_blocks = [(0, spec.in_channels)]
    for k0 in range(0, spec.out_channels, cfg.k_t):
        k1 = min(k0 + cfg.k_t, spec.out_channels)
        for oy0 in range(0, spec.oy, cfg.oy_t):
            oy1 = min(oy0 + cfg.oy_t, spec.oy)
            for ox0 in range(0, spec.ox, cfg.ox_t):
                ox1 = min(ox0 + cfg.ox_t, spec.ox)
                if spec.kind in ("conv2d", "dwconv2d"):
                    iy0, iy1, pt, pb = _input_range(oy0, oy1, sy, spec.fy,
                                                    py, spec.iy)
                    ix0, ix1, pl, pr = _input_range(ox0, ox1, sx, spec.fx,
                                                    px, spec.ix)
                else:  # dense / add: input ranges mirror output ranges
                    iy0, iy1, pt, pb = oy0, oy1, 0, 0
                    ix0, ix1, pl, pr = ox0, ox1, 0, 0
                if spec.is_depthwise or spec.kind == "add":
                    yield Tile(k0, k1, oy0, oy1, ox0, ox1, k0, k1,
                               iy0, iy1, ix0, ix1, pt, pb, pl, pr)
                    continue
                for c0, c1 in c_blocks:
                    yield Tile(k0, k1, oy0, oy1, ox0, ox1, c0, c1,
                               iy0, iy1, ix0, ix1, pt, pb, pl, pr,
                               last_reduction=(c1 == spec.in_channels))


@dataclass
class TilingSolution:
    """Chosen tiling for one layer, with memory accounting.

    ``l1_in/out/weight_bytes`` are the *nominal* per-tile L1 footprints
    (the LHS terms of the paper's Eq. 2).
    """

    spec: LayerSpec
    cfg: TileConfig
    target: str
    l1_in_bytes: int
    l1_out_bytes: int
    l1_weight_bytes: int
    objective: float
    needs_tiling: bool

    @property
    def l1_total_bytes(self) -> int:
        return self.l1_in_bytes + self.l1_out_bytes + self.l1_weight_bytes

    @property
    def num_tiles(self) -> int:
        return self.cfg.num_tiles(self.spec)

    def tiles(self) -> List[Tile]:
        return list(tiles_of(self.spec, self.cfg))
