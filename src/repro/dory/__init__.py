"""BYOC DORY backend: layer analysis, tiling, memory planning, codegen."""

from .codegen import emit_accel_layer
from .heuristics import (
    Heuristic, analog_heuristics, digital_heuristics,
    digital_pe_only_heuristics, no_heuristics,
)
from .layer_spec import (
    LayerSpec, make_conv_spec, make_dense_spec, spec_from_composite,
)
from .memory_plan import MemoryPlan, TensorLife, lifetimes_from_steps, plan_memory
from .tiler import DoryTiler
from .weights import (
    AnalogWeightImage, DigitalWeightImage, layout_analog_weights,
    layout_digital_weights, pack_ternary, restore_analog_weights,
    restore_digital_weights, unpack_ternary, weight_image_for,
)
from .tiling_types import Tile, TileConfig, TilingSolution, tiles_of

__all__ = [
    "emit_accel_layer", "Heuristic", "analog_heuristics",
    "digital_heuristics", "digital_pe_only_heuristics", "no_heuristics",
    "LayerSpec", "make_conv_spec", "make_dense_spec", "spec_from_composite",
    "MemoryPlan", "TensorLife", "lifetimes_from_steps", "plan_memory",
    "DoryTiler", "Tile", "TileConfig", "TilingSolution", "tiles_of",
    "AnalogWeightImage", "DigitalWeightImage", "layout_analog_weights",
    "layout_digital_weights", "pack_ternary", "restore_analog_weights",
    "restore_digital_weights", "unpack_ternary", "weight_image_for",
]
