"""Layer specifications: DORY's view of one offloaded coarse-grained op.

The BYOC DORY backend does not reason about Relay expressions — it
receives "a DNN layer that has to be executed" (paper Sec. III-B). A
:class:`LayerSpec` is that layer description: geometry, dtypes, strides,
the requantization parameters, and the constant payloads, extracted from
a matched :class:`~repro.ir.node.Composite` body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..errors import UnsupportedError
from ..ir import Call, Composite, Constant, conv2d_output_hw


@dataclass
class LayerSpec:
    """Geometry + parameters of one accelerator-eligible layer.

    ``kind`` is one of ``"conv2d"``, ``"dwconv2d"``, ``"dense"``,
    ``"add"``. Dense layers use the convolution naming with
    ``fy = fx = iy = ix = oy = ox = 1`` (the paper deploys FC layers on
    the analog accelerator "by implementing FC layers as Conv2Ds").
    """

    name: str
    kind: str
    in_channels: int
    out_channels: int
    iy: int = 1
    ix: int = 1
    oy: int = 1
    ox: int = 1
    fy: int = 1
    fx: int = 1
    strides: Tuple[int, int] = (1, 1)
    padding: Tuple[int, int] = (0, 0)
    groups: int = 1
    weight_dtype: str = "int8"
    in_dtype: str = "int8"
    out_dtype: str = "int8"
    shift: int = 0
    relu: bool = False
    weight: Optional[np.ndarray] = field(default=None, repr=False)
    bias: Optional[np.ndarray] = field(default=None, repr=False)

    # -- accounting -----------------------------------------------------------

    @property
    def is_depthwise(self) -> bool:
        return self.kind == "dwconv2d"

    def macs(self) -> int:
        if self.kind == "add":
            return 0
        if self.kind == "dense":
            return self.in_channels * self.out_channels
        cg = self.in_channels // self.groups
        return self.out_channels * cg * self.fy * self.fx * self.oy * self.ox

    def input_elements(self) -> int:
        return self.in_channels * self.iy * self.ix

    def output_elements(self) -> int:
        return self.out_channels * self.oy * self.ox

    def weight_elements(self) -> int:
        if self.kind == "add":
            return 0
        cg = self.in_channels // self.groups
        return self.out_channels * cg * self.fy * self.fx

    def input_tile_hw(self, oy_t: int, ox_t: int) -> Tuple[int, int]:
        """Input tile height/width needed to compute an output tile.

        Includes the halo: ``i_t = (o_t - 1) * stride + f``.
        """
        sy, sx = self.strides
        return (oy_t - 1) * sy + self.fy, (ox_t - 1) * sx + self.fx

    def validate(self):
        if self.kind not in ("conv2d", "dwconv2d", "dense", "add"):
            raise UnsupportedError(f"unknown layer kind {self.kind!r}")
        if self.kind == "dwconv2d" and self.in_channels != self.out_channels:
            raise UnsupportedError("depthwise layer must have C == K")
        if self.kind in ("conv2d", "dwconv2d"):
            oy, ox = conv2d_output_hw(
                self.iy, self.ix, self.fy, self.fx, self.strides, self.padding
            )
            if (oy, ox) != (self.oy, self.ox):
                raise UnsupportedError(
                    f"{self.name}: inconsistent geometry "
                    f"(computed {oy}x{ox}, declared {self.oy}x{self.ox})"
                )


def make_conv_spec(name: str, c: int, k: int, iy: int, ix: int,
                   fy: int = 3, fx: int = 3, strides=(1, 1), padding=(0, 0),
                   depthwise: bool = False, weight_dtype: str = "int8",
                   shift: int = 8, relu: bool = True) -> LayerSpec:
    """Convenience constructor used by the Fig. 4 / Fig. 5 benchmarks."""
    if depthwise:
        k = c
    oy, ox = conv2d_output_hw(iy, ix, fy, fx, strides, padding)
    act = "int7" if weight_dtype == "ternary" else "int8"
    spec = LayerSpec(
        name=name, kind="dwconv2d" if depthwise else "conv2d",
        in_channels=c, out_channels=k, iy=iy, ix=ix, oy=oy, ox=ox,
        fy=fy, fx=fx, strides=tuple(strides), padding=tuple(padding),
        groups=c if depthwise else 1, weight_dtype=weight_dtype,
        in_dtype=act, out_dtype=act,
        shift=shift, relu=relu,
    )
    spec.validate()
    return spec


def make_dense_spec(name: str, c: int, k: int, weight_dtype: str = "int8",
                    shift: int = 8, relu: bool = False) -> LayerSpec:
    """Convenience constructor for FC layers."""
    act = "int7" if weight_dtype == "ternary" else "int8"
    spec = LayerSpec(name=name, kind="dense", in_channels=c, out_channels=k,
                     weight_dtype=weight_dtype, in_dtype=act, out_dtype=act,
                     shift=shift, relu=relu)
    spec.validate()
    return spec


def _find_anchor(composite: Composite) -> Call:
    """The MAC-carrying (or add) call inside a composite body."""
    anchors = [
        n for n in composite.body.topo_order()
        if isinstance(n, Call) and n.op in ("nn.conv2d", "nn.dense", "add")
    ]
    if len(anchors) != 1:
        raise UnsupportedError(
            f"composite {composite.pattern_name} has {len(anchors)} anchor ops"
        )
    return anchors[0]


def spec_from_composite(composite: Composite, name: str) -> LayerSpec:
    """Extract a :class:`LayerSpec` from a matched composite node.

    Walks the body: the anchor op provides geometry and weights; the
    ``right_shift`` constant provides the requantization shift; a
    ``clip`` with ``a_min == 0`` after the int8 cast marks ReLU.
    """
    body = composite.body
    anchor = _find_anchor(composite)

    shift = 0
    relu = False
    for node in body.topo_order():
        if not isinstance(node, Call):
            continue
        if node.op == "right_shift" and isinstance(node.inputs[1], Constant):
            shift = int(node.inputs[1].value.data.reshape(-1)[0])
        if (node.op == "clip" and node.attrs["a_min"] == 0
                and node.dtype.bits <= 8):
            relu = True

    bias = None
    for node in body.topo_order():
        if (isinstance(node, Call) and node.op == "nn.bias_add"
                and isinstance(node.inputs[1], Constant)):
            bias = node.inputs[1].value.data

    out_dtype = body.output.dtype.name

    if anchor.op == "nn.conv2d":
        data_t, weight_node = anchor.inputs[0].ttype, anchor.inputs[1]
        if not isinstance(weight_node, Constant):
            raise UnsupportedError(f"{name}: conv weight is not constant")
        _, c, iy, ix = data_t.shape
        k, _, fy, fx = weight_node.shape
        groups = anchor.attrs["groups"]
        kind = "dwconv2d" if (groups == c and groups > 1) else "conv2d"
        if kind == "conv2d" and groups != 1:
            raise UnsupportedError(f"{name}: grouped (non-DW) conv unsupported")
        _, _, oy, ox = anchor.ttype.shape
        spec = LayerSpec(
            name=name, kind=kind, in_channels=c, out_channels=k,
            iy=iy, ix=ix, oy=oy, ox=ox, fy=fy, fx=fx,
            strides=tuple(anchor.attrs["strides"]),
            padding=tuple(anchor.attrs["padding"]),
            groups=groups,
            weight_dtype=weight_node.dtype.name,
            in_dtype=data_t.dtype.name, out_dtype=out_dtype,
            shift=shift, relu=relu,
            weight=weight_node.value.data, bias=bias,
        )
    elif anchor.op == "nn.dense":
        data_t, weight_node = anchor.inputs[0].ttype, anchor.inputs[1]
        if not isinstance(weight_node, Constant):
            raise UnsupportedError(f"{name}: dense weight is not constant")
        _, c = data_t.shape
        k, _ = weight_node.shape
        spec = LayerSpec(
            name=name, kind="dense", in_channels=c, out_channels=k,
            weight_dtype=weight_node.dtype.name,
            in_dtype=data_t.dtype.name, out_dtype=out_dtype,
            shift=shift, relu=relu,
            weight=weight_node.value.data, bias=bias,
        )
    else:  # residual add
        t = anchor.inputs[0].ttype
        if t.rank == 4:
            _, c, h, w = t.shape
        else:
            c, h, w = t.num_elements, 1, 1
        spec = LayerSpec(
            name=name, kind="add", in_channels=c, out_channels=c,
            iy=h, ix=w, oy=h, ox=w,
            weight_dtype="int8", in_dtype=t.dtype.name, out_dtype=out_dtype,
            shift=shift, relu=relu,
        )
    spec.validate()
    return spec
