"""Deterministic, seedable fault injection for the serving fleet.

Chaos testing only works when every failure is reproducible: a flaky
chaos test is worse than none. This module therefore keeps all
randomness inside per-scope :class:`random.Random` instances derived
from one plan seed, and lets rules target faults *exactly* (worker
index, restart generation, n-th request) instead of probabilistically
when a test wants a scripted failure.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries threaded
through :class:`~repro.serve.fleet.FleetConfig`; each fleet worker
derives its own :class:`FaultInjector` (scoped by deployment key,
worker index and restart generation) and consults it at the injection
points below. The parent process derives one admission-scoped injector
per deployment for ``queue_full``.

Fault kinds (the chaos-test matrix in ``docs/RESILIENCE.md`` maps each
to the recovery path it exercises):

===============  ==========================================  =========
kind             effect                                      side
===============  ==========================================  =========
``crash_start``  worker exits before loading the artifact    worker
``slow_start``   worker sleeps ``param`` s before loading    worker
``crash``        worker exits mid-request (SIGKILL-like)     worker
``oom_crash``    worker exits with the OOM exit code         worker
``hang``         worker sleeps ``param`` s holding a request worker
``exec_error``   request fails deterministically             worker
``queue_full``   admission rejects as if over the watermark  parent
===============  ==========================================  =========

Artifact corruption is injected on disk instead (the fleet's failure
surface is the ``load_artifact(verify=True)`` gate):
:func:`corrupt_artifact` deterministically flips bytes inside the
compressed payload so the load fails its integrity checks.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ServingError

__all__ = ["FaultRule", "FaultPlan", "FaultInjector", "corrupt_artifact",
           "FAULT_KINDS"]

FAULT_KINDS = ("crash_start", "slow_start", "crash", "oom_crash", "hang",
               "exec_error", "queue_full")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; unset constraints match everything.

    ``nth`` schedules the fault on exact 1-based event ordinals (a
    worker counts its requests per process lifetime; admission counts
    submit attempts per deployment) — deterministic, for scripted
    chaos. ``rate`` is a per-event Bernoulli probability drawn from the
    scope's seeded RNG — statistical, for soak-style chaos. A rule
    needs exactly one of the two. ``param`` parameterizes the fault
    (sleep seconds for ``slow_start``/``hang``).
    """

    kind: str
    key: Optional[str] = None      #: deployment key ("" prefix-free match)
    worker: Optional[int] = None   #: deployment-local worker index
    gen: Optional[int] = None      #: restart generation (0 = first start)
    nth: Tuple[int, ...] = ()      #: fire on these event ordinals (1-based)
    rate: float = 0.0              #: else: Bernoulli per event
    param: Optional[float] = None  #: fault parameter (seconds)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ServingError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if bool(self.nth) == bool(self.rate):
            raise ServingError(
                f"fault rule {self.kind!r} needs exactly one of nth= or "
                f"rate=")
        if not 0.0 <= self.rate <= 1.0:
            raise ServingError(f"rate must be in [0, 1], got {self.rate}")

    def matches_scope(self, key: str, worker: Optional[int],
                      gen: Optional[int]) -> bool:
        if self.key is not None and self.key != key:
            return False
        if self.worker is not None and self.worker != worker:
            return False
        if self.gen is not None and self.gen != gen:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules, shared by parent and workers.

    The plan is immutable and picklable: it crosses the process
    boundary at worker spawn. Per-scope injectors derive their RNG from
    ``(seed, scope)`` so two workers never share a random stream and
    re-running the same plan replays the same faults.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def for_worker(self, key: str, worker: int, gen: int) -> "FaultInjector":
        rules = tuple(r for r in self.rules
                      if r.kind != "queue_full"
                      and r.matches_scope(key, worker, gen))
        return FaultInjector(rules, self.seed, ("worker", key, worker, gen))

    def for_admission(self, key: str) -> "FaultInjector":
        rules = tuple(r for r in self.rules
                      if r.kind == "queue_full"
                      and r.matches_scope(key, None, None))
        return FaultInjector(rules, self.seed, ("admission", key))


class FaultInjector:
    """Scope-local fault decisions (deterministic given plan seed).

    Not thread-safe by design: each injector belongs to exactly one
    worker process or one lock-guarded admission path.
    """

    def __init__(self, rules: Tuple[FaultRule, ...], seed: int,
                 scope: Tuple):
        self._rules = rules
        digest = hashlib.sha256(repr((seed, scope)).encode()).digest()
        self._rng = random.Random(int.from_bytes(digest[:8], "big"))
        self._counts: dict = {}

    @classmethod
    def none(cls) -> "FaultInjector":
        return cls((), 0, ("none",))

    def fires(self, kind: str) -> Optional[FaultRule]:
        """Check (and count) one injection point; returns the firing
        rule so callers can read ``param``. Each call advances the
        per-kind event ordinal exactly once."""
        n = self._counts[kind] = self._counts.get(kind, 0) + 1
        for rule in self._rules:
            if rule.kind != kind:
                continue
            if rule.nth:
                if n in rule.nth:
                    return rule
            elif self._rng.random() < rule.rate:
                return rule
        return None


def corrupt_artifact(path: str, seed: int = 0, nbytes: int = 8) -> None:
    """Deterministically flip ``nbytes`` bytes inside a ``.dna`` file.

    Skips the first 10 bytes (gzip header) so the damage lands in the
    compressed payload — the load then fails either gzip's CRC or the
    artifact's own fingerprint/geometry cross-checks, exercising the
    ``load_artifact(verify=True)`` failure path a fleet worker hits on
    a corrupt deployment.
    """
    with open(path, "rb") as f:
        raw = bytearray(f.read())
    if len(raw) <= 10:
        raise ServingError(f"artifact {path!r} too small to corrupt")
    rng = random.Random(seed)
    for _ in range(nbytes):
        pos = rng.randrange(10, len(raw))
        raw[pos] ^= 0xFF
    with open(path, "wb") as f:
        f.write(bytes(raw))
