"""Fault-tolerant multi-process serving: :class:`ServingFleet`.

The in-process :class:`~repro.serve.server.InferenceServer` coalesces
requests into batches but lives or dies as one process: a wedged or
crashed execution takes every hosted model down with it. The fleet is
the deployment-grade front door built robustness-first:

* **supervised worker pool** — each deployment is served by N worker
  *processes*; workers receive only the artifact *path* and load the
  ``.dna`` themselves via ``load_artifact(verify=True)``, so a corrupt
  file is caught by the integrity gate inside the expendable worker,
  never the front door. A supervisor restarts dead workers with
  crash-loop backoff and kills workers that hang past a deadline.
* **admission control** — accepted work is bounded per deployment:
  beyond ``queue_limit`` the submit fast-fails with
  :class:`~repro.errors.ServingOverloadError` carrying a
  ``retry_after`` hint, and above ``shed_watermark`` low-priority
  requests are shed first (graceful degradation). An accepted request
  is never silently dropped: every future resolves or fails with a
  typed serving error, including across worker crashes and shutdown.
* **deadlines** — per-request deadlines propagate to workers (the
  remaining budget rides along with the request); overdue queued
  requests are expired cheaply in the front door, and a worker still
  holding a request past its deadline is declared hung and replaced.
* **retries** — a request whose worker died is retried with
  exponential backoff + jitter while its deadline and attempt budget
  allow (:class:`~repro.serve.resilience.RetryPolicy`).
* **circuit breaker** — per deployment
  (:class:`~repro.serve.resilience.CircuitBreaker`): repeated failures
  trip it open and admission fast-fails with
  :class:`~repro.errors.ServingUnavailableError` until a half-open
  probe succeeds.
* **OOM fallback** — repeated out-of-memory worker deaths optionally
  restart the deployment's workers in a smaller-arena exec mode
  (``fallback_exec_mode``, e.g. ``"depthfirst"`` for models with fused
  chains).

Control is deliberately single-threaded: one *pump* thread owns all
worker I/O, health checks, retries and dispatch; client threads only
touch the admission path under one lock. The asyncio front door
(:meth:`ServingFleet.asubmit` / :meth:`ServingFleet.ainfer`) bridges
the pump-resolved futures onto an event loop, so ``await
fleet.ainfer(...)`` composes with any async application.

Every failure mode above is injectable via
:class:`~repro.serve.faults.FaultPlan` and asserted in
``tests/test_fleet_resilience.py``; see ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import heapq
import itertools
import os
import random
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _mp_wait
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import (
    OutOfMemoryError, ServingError, ServingExecutionError,
    ServingOverloadError, ServingTimeoutError, ServingUnavailableError,
    WorkerCrashError,
)
from ..obs.metrics import get_registry
from ..obs.trace import Span, collect, get_tracer
from .faults import FaultInjector, FaultPlan
from .resilience import CircuitBreaker, CrashLoopBackoff, RetryPolicy

__all__ = ["FleetConfig", "FleetFuture", "ServingFleet"]

#: exit code a worker uses to report an out-of-memory death.
OOM_EXIT_CODE = 42


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------

def _worker_main(conn, key: str, worker_index: int, gen: int,
                 artifact_path: str, exec_mode: str,
                 plan: Optional[FaultPlan], verify: bool) -> None:
    """Entry point of one fleet worker process.

    Loads the deployment once from ``artifact_path`` (the integrity
    gate runs here, inside the expendable process), then serves
    single-sample requests off its pipe until told to stop or the
    parent disappears. All injected faults fire from here; ``os._exit``
    models a hard crash (no cleanup, like a segfault or OOM kill).
    """
    faults = (plan.for_worker(key, worker_index, gen) if plan is not None
              else FaultInjector.none())
    rule = faults.fires("slow_start")
    if rule is not None:
        time.sleep(rule.param if rule.param is not None else 1.0)
    if faults.fires("crash_start") is not None:
        os._exit(3)
    degraded: Optional[str] = None
    try:
        from ..runtime import Executor
        from .artifact import load_artifact
        art = load_artifact(artifact_path, verify=verify)
        effective_mode = exec_mode
        if exec_mode == "native":
            # build-or-load the cached shared library next to the .dna
            # at deployment time, so "ready" implies the warm path; a
            # worker without a toolchain (or with a failing build)
            # degrades to the bit-identical fast interpreter and says so
            from ..codegen.build import (
                find_c_compiler, load_native_module, native_cache_dir,
            )
            cache = native_cache_dir(artifact_path)
            if find_c_compiler() is None:
                effective_mode = "fast"
                degraded = "no C toolchain on worker host"
            elif load_native_module(art.model, cache) is None:
                effective_mode = "fast"
                degraded = "native library build failed"
        executor = Executor(art.soc, exec_mode=effective_mode,
                            native_cache_dir=(
                                cache if exec_mode == "native" else None))
    except BaseException as exc:  # noqa: B036, BLE001 — reported, then exit
        try:
            conn.send(("load_error",
                       f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
        os._exit(1)
    from .batcher import normalize_feeds

    if degraded is not None:
        conn.send(("degraded", "S-NATIVE",
                   f"{degraded}; serving via exec_mode='fast'"))
    conn.send(("ready", effective_mode))
    n_requests = 0
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent went away
            return
        kind = msg[0]
        if kind == "stop":
            return
        if kind == "ping":
            conn.send(("pong", msg[1]))
            continue
        if kind != "req":
            continue
        # ctx is the front door's TraceContext (or None when tracing
        # is off): the worker parents its execution spans under it and
        # ships them back in the reply, so one request id stitches
        # admission, queue wait, and in-worker execution into one tree
        _, req_id, feeds, budget_s, ctx = msg
        n_requests += 1
        if faults.fires("oom_crash") is not None:
            os._exit(OOM_EXIT_CODE)
        if faults.fires("crash") is not None:
            os._exit(9)
        rule = faults.fires("hang")
        if rule is not None:
            time.sleep(rule.param if rule.param is not None else 60.0)
        if budget_s is not None and budget_s <= 0:
            conn.send(("err", req_id, "S-TIMEOUT",
                       "deadline expired before execution", []))
            continue
        spans: list = []
        try:
            if faults.fires("exec_error") is not None:
                raise ServingExecutionError("injected execution fault",
                                            model=key)
            if ctx is None:
                normalized = normalize_feeds(art.model, feeds, name=key)
                t0 = time.monotonic()
                result = executor.run(art.model, normalized)
                exec_s = time.monotonic() - t0
            else:
                # fresh per-request tracer: the executor's per-step
                # spans land here, parented under the caller's context
                with collect(ctx) as wtracer:
                    try:
                        with wtracer.span(
                                "worker.execute", category="serve",
                                request_id=ctx.request_id,
                                deployment=key, worker=worker_index,
                                gen=gen, exec_mode=executor.exec_mode):
                            normalized = normalize_feeds(art.model, feeds,
                                                         name=key)
                            t0 = time.monotonic()
                            result = executor.run(art.model, normalized)
                            exec_s = time.monotonic() - t0
                    finally:
                        spans = wtracer.drain()
            conn.send(("ok", req_id, result.output,
                       float(result.perf.total_cycles), exec_s, spans))
        except (MemoryError, OutOfMemoryError) as exc:
            # report, then die the OOM death so the supervisor can
            # count it toward the exec-mode fallback
            try:
                conn.send(("err", req_id, "S-OOM",
                           f"{type(exc).__name__}: {exc}", spans))
            finally:
                os._exit(OOM_EXIT_CODE)
        except BaseException as exc:  # noqa: B036, BLE001 — typed to parent
            code = getattr(exc, "code", None) or "S-EXEC"
            conn.send(("err", req_id, code,
                       f"{type(exc).__name__}: {exc}", spans))


# ---------------------------------------------------------------------------
# front-door data types
# ---------------------------------------------------------------------------

@dataclass
class FleetConfig:
    """Knobs of the serving fleet (one shared config, per-deployment
    state). See ``docs/RESILIENCE.md`` for how the robustness
    parameters interact."""

    workers: int = 2                 #: worker processes per deployment
    exec_mode: str = "fast"          #: executor mode workers start in
    verify_artifacts: bool = True    #: load_artifact(verify=...) in workers
    start_method: str = "fork"       #: multiprocessing start method
    queue_limit: int = 64            #: hard admission bound (per deployment)
    shed_watermark: Optional[int] = None  #: default queue_limit // 2
    shed_priority_floor: int = 0     #: above watermark, shed priority < this
    default_deadline_s: Optional[float] = 30.0
    hang_grace_s: float = 0.25       #: past deadline before a kill
    hang_timeout_s: Optional[float] = None  #: absolute in-flight cap
    tick_s: float = 0.02             #: pump wakeup period
    worker_start_timeout_s: float = 60.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    retry_seed: int = 0              #: jitter RNG seed (deterministic tests)
    breaker_failures: int = 5
    breaker_recovery_s: float = 1.0
    breaker_probes: int = 1
    restart_base_s: float = 0.05     #: crash-loop backoff base
    restart_max_s: float = 5.0
    max_restarts: Optional[int] = None   #: per worker slot; None = unbounded
    oom_fallback_after: int = 2      #: OOM deaths before exec-mode fallback
    fallback_exec_mode: Optional[str] = None  #: e.g. "depthfirst" / "tiled"
    faults: Optional[FaultPlan] = None

    def __post_init__(self):
        if self.workers < 0:
            raise ServingError(f"workers must be >= 0, got {self.workers}")
        if self.queue_limit < 1:
            raise ServingError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.shed_watermark is None:
            self.shed_watermark = max(self.queue_limit // 2, 1)


class FleetFuture:
    """Handle to one accepted fleet request.

    Resolved exactly once by the pump thread — with the output array,
    or with a typed :class:`~repro.errors.ServingError` subclass.
    ``add_done_callback`` powers the asyncio bridge; callbacks run on
    the resolving thread (or immediately if already done).
    """

    def __init__(self, model: str):
        self._event = threading.Event()
        self._output: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._callbacks: List[Callable[["FleetFuture"], None]] = []
        self._cb_lock = threading.Lock()
        self._t_create = time.monotonic()
        #: deployment key this request was admitted for
        self.model = model
        #: client-visible request identifier (``<deployment>#<seq>``);
        #: the same id appears in error messages, trace spans, and
        #: loadgen's per-code ledger
        self.request_id = ""
        #: root trace span of this request (None when tracing is off);
        #: finished by the pump when the future settles
        self._trace_span: Optional[Span] = None
        #: dispatch attempts consumed (>1 means the request was retried)
        self.attempts = 0
        #: modeled cycles of the inference (set on success)
        self.cycles: Optional[float] = None
        #: wall seconds from admission to resolution
        self.wall_s: Optional[float] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until resolved; re-raises the serving-side error.

        A wait timeout raises
        :class:`~repro.errors.ServingTimeoutError` but does not cancel
        the request (pass a ``deadline_s`` at submit for that).
        """
        if not self._event.wait(timeout):
            elapsed = time.monotonic() - self._t_create
            raise ServingTimeoutError(
                f"result wait timed out after {elapsed:.3f}s "
                f"on {self.model}", model=self.model, elapsed_s=elapsed)
        if self._error is not None:
            raise self._error
        return self._output

    def add_done_callback(self, fn: Callable[["FleetFuture"], None]) -> None:
        with self._cb_lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _settle(self, output: Optional[np.ndarray],
                error: Optional[BaseException]) -> None:
        with self._cb_lock:
            if self._event.is_set():
                raise AssertionError(
                    f"future for {self.model} resolved twice")
            self._output, self._error = output, error
            self.wall_s = time.monotonic() - self._t_create
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


@dataclass
class _Request:
    req_id: int
    request_id: str              #: client-visible "<deployment>#<seq>"
    feeds: Dict[str, Any]
    future: FleetFuture
    priority: int
    deadline: Optional[float]    #: absolute time.monotonic()
    t_submit: float
    attempts: int = 0
    #: root span (tracing enabled only); its context crosses the pipe
    span: Optional[Span] = None


class _WorkerHandle:
    """Parent-side state of one worker slot (survives restarts)."""

    __slots__ = ("index", "gen", "proc", "conn", "state", "inflight",
                 "dispatched_at", "spawned_at", "restarts", "backoff",
                 "next_start_at", "exec_mode")

    def __init__(self, index: int, backoff: CrashLoopBackoff):
        self.index = index
        self.gen = -1            #: restart generation (0 = first start)
        self.proc = None
        self.conn = None
        self.state = "down"      #: down|starting|ready|busy|dead|failed_load
        self.exec_mode: Optional[str] = None  #: mode reported at "ready"
        self.inflight: Optional[_Request] = None
        self.dispatched_at = 0.0
        self.spawned_at = 0.0
        self.restarts = 0        #: completed restarts (first start excluded)
        self.backoff = backoff
        self.next_start_at = 0.0


class _Deployment:
    """Parent-side state of one served artifact."""

    def __init__(self, key: str, path: str, cfg: FleetConfig,
                 n_workers: int):
        self.key = key
        self.path = path
        self.exec_mode = cfg.exec_mode
        self.workers = [
            _WorkerHandle(i, CrashLoopBackoff(base_s=cfg.restart_base_s,
                                              max_s=cfg.restart_max_s))
            for i in range(n_workers)]
        self.breaker = CircuitBreaker(
            failure_threshold=cfg.breaker_failures,
            recovery_s=cfg.breaker_recovery_s,
            half_open_probes=cfg.breaker_probes, name=key,
            on_transition=self._on_breaker_transition)
        self.pending: List[Tuple[int, int, _Request]] = []  # (-prio, seq, r)
        self.delayed: List[Tuple[float, _Request]] = []     # (due, r)
        self.seq = itertools.count()
        self.admitted = 0        #: accepted and not yet resolved
        self.failed: Optional[str] = None  #: terminal (artifact) failure
        self.oom_deaths = 0
        self.ema_exec_s = 0.05   #: service-time estimate for retry_after
        self.admission_faults: Optional[FaultInjector] = (
            cfg.faults.for_admission(key) if cfg.faults is not None else None)
        self.counters: Dict[str, int] = {
            "accepted": 0, "completed": 0, "failed": 0, "retried": 0,
            "rejected": 0, "shed": 0, "expired": 0, "timeouts": 0,
            "restarts": 0, "fallbacks": 0, "degraded": 0,
        }

    def bump(self, name: str, n: int = 1) -> None:
        """Increment a local counter and its metrics-registry twin
        (``fleet_<name>_total{deployment=...}``), so ``repro stats``
        and a Prometheus scrape see the same numbers as
        :meth:`ServingFleet.stats`."""
        self.counters[name] += n
        get_registry().counter(f"fleet_{name}_total",
                               deployment=self.key).inc(n)

    def _on_breaker_transition(self, frm: str, to: str) -> None:
        # fires under the breaker lock — publish and return, no
        # re-entry into the breaker
        reg = get_registry()
        reg.counter("fleet_breaker_transitions_total",
                    deployment=self.key).inc()
        reg.event("breaker_transition", deployment=self.key,
                  frm=frm, to=to)


def _tag(error: ServingError, request_id: str) -> ServingError:
    """Stamp the client-visible request id onto a serving error."""
    error.request_id = request_id
    return error


# ---------------------------------------------------------------------------
# the fleet
# ---------------------------------------------------------------------------

class ServingFleet:
    """Supervised multi-process serving front door.

    Usable as a context manager; entering starts the pump and worker
    pool, exiting drains and stops everything::

        with ServingFleet(workers=2) as fleet:
            key = fleet.add_deployment("resnet8.dna", key="resnet8")
            out = fleet.infer(key, feeds, timeout=30)

    Async front door::

        async def handler(feeds):
            return await fleet.ainfer("resnet8", feeds)

    Thread-safe: any thread may submit; one internal pump thread owns
    all worker I/O and supervision.
    """

    def __init__(self, config: Optional[FleetConfig] = None, **overrides):
        if config is None:
            config = FleetConfig(**overrides)
        elif overrides:
            raise ServingError("pass either a FleetConfig or keyword "
                               "overrides, not both")
        self.config = config
        self._ctx = get_context(config.start_method)
        self._lock = threading.RLock()
        self._deployments: Dict[str, _Deployment] = {}
        self._req_seq = itertools.count(1)
        self._rng = random.Random(config.retry_seed)
        self._started = False
        self._shutdown = False
        self._pump_stop = threading.Event()
        self._pump_thread: Optional[threading.Thread] = None
        # self-pipe waker: submits nudge the pump out of its mp_wait
        self._waker_r, self._waker_w = os.pipe()
        os.set_blocking(self._waker_r, False)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServingFleet":
        with self._lock:
            if self._shutdown:
                raise ServingError("fleet is shut down", code="S-SHUTDOWN")
            if self._started:
                return self
            self._started = True
            self._pump_thread = threading.Thread(
                target=self._pump, name="fleet-pump", daemon=True)
            self._pump_thread.start()
        self._wake()
        return self

    def __enter__(self) -> "ServingFleet":
        return self.start()

    def __exit__(self, *exc_info):
        self.shutdown(wait=True)
        return False

    def add_deployment(self, artifact_path: str, key: Optional[str] = None,
                       workers: Optional[int] = None) -> str:
        """Register one packed ``.dna`` for serving; returns its key.

        Only the *path* is recorded here — each worker process loads
        (and integrity-verifies) the artifact itself, so the front door
        never holds model weights and a corrupt file degrades exactly
        one deployment.
        """
        if key is None:
            key = os.path.basename(artifact_path)
            key = key[:-4] if key.endswith(".dna") else key
        with self._lock:
            if self._shutdown:
                raise ServingError("fleet is shut down", code="S-SHUTDOWN")
            if key in self._deployments:
                raise ServingError(f"deployment {key!r} already registered")
            n = self.config.workers if workers is None else workers
            self._deployments[key] = _Deployment(
                key, artifact_path, self.config, n)
        self._wake()
        return key

    def wait_ready(self, key: str, timeout: float = 30.0) -> bool:
        """Block until ``key`` has a ready worker (True) or failed
        terminally / timed out (False). Purely a convenience — submits
        queue fine before workers finish loading."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                dep = self._deployments.get(key)
                if dep is None:
                    raise ServingError(f"unknown deployment {key!r}")
                if dep.failed is not None:
                    return False
                if any(w.state in ("ready", "busy") for w in dep.workers):
                    return True
            time.sleep(0.01)
        return False

    # -- admission (client side) --------------------------------------------

    def submit(self, key: str, feeds: Dict[str, Any], *, priority: int = 0,
               deadline_s: Optional[float] = -1.0) -> FleetFuture:
        """Admit one request; returns a :class:`FleetFuture`.

        ``deadline_s`` is the request's end-to-end budget (default: the
        config's ``default_deadline_s``; pass ``None`` for no
        deadline). Raises typed serving errors instead of queueing
        unboundedly — see the module docstring.
        """
        cfg = self.config
        now = time.monotonic()
        with self._lock:
            if self._shutdown:
                raise ServingError("fleet is shut down", code="S-SHUTDOWN")
            if not self._started:
                raise ServingError("fleet is not started (call start() or "
                                   "use it as a context manager)")
            dep = self._deployments.get(key)
            if dep is None:
                raise ServingError(
                    f"unknown deployment {key!r}; registered: "
                    f"{sorted(self._deployments) or 'none'}")
            # the id is minted before admission checks so even a
            # rejected request is traceable by its client-visible id
            req_id = next(self._req_seq)
            rid = f"{dep.key}#{req_id:06d}"
            if dep.failed is not None:
                raise _tag(ServingUnavailableError(
                    f"{key}: deployment failed terminally: {dep.failed} "
                    f"[request {rid}]", model=key, terminal=True), rid)
            if dep.admission_faults is not None \
                    and dep.admission_faults.fires("queue_full") is not None:
                dep.bump("rejected")
                raise _tag(ServingOverloadError(
                    f"{key}: queue full (injected fault) [request {rid}]",
                    retry_after=self._retry_after_hint(dep), model=key), rid)
            if dep.breaker.blocked():
                raise _tag(ServingUnavailableError(
                    f"{key}: circuit breaker open [request {rid}]",
                    retry_after=dep.breaker.retry_after(), model=key), rid)
            if dep.admitted >= cfg.queue_limit:
                dep.bump("rejected")
                raise _tag(ServingOverloadError(
                    f"{key}: queue depth {dep.admitted} at limit "
                    f"{cfg.queue_limit} [request {rid}]",
                    retry_after=self._retry_after_hint(dep), model=key), rid)
            if (dep.admitted >= cfg.shed_watermark
                    and priority < cfg.shed_priority_floor):
                dep.bump("shed")
                raise _tag(ServingOverloadError(
                    f"{key}: shedding priority {priority} request at "
                    f"depth {dep.admitted} (watermark "
                    f"{cfg.shed_watermark}) [request {rid}]",
                    retry_after=self._retry_after_hint(dep), model=key,
                    shed=True), rid)
            if deadline_s == -1.0:
                deadline_s = cfg.default_deadline_s
            fut = FleetFuture(dep.key)
            fut.request_id = rid
            span = None
            tracer = get_tracer()
            if tracer is not None:
                # root of the request's tree; finished by the pump when
                # the future settles (possibly on another thread, hence
                # begin() rather than the stacking context manager)
                span = tracer.begin(
                    "fleet.request", category="serve", request_id=rid,
                    deployment=dep.key, priority=priority)
                fut._trace_span = span
            req = _Request(
                req_id=req_id, request_id=rid, feeds=feeds,
                future=fut, priority=priority,
                deadline=None if deadline_s is None else now + deadline_s,
                t_submit=now, span=span)
            dep.admitted += 1
            dep.bump("accepted")
            heapq.heappush(dep.pending, (-priority, next(dep.seq), req))
        self._wake()
        return fut

    def infer(self, key: str, feeds: Dict[str, Any],
              timeout: Optional[float] = 60.0, **kw) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(key, feeds, **kw).result(timeout)

    async def asubmit(self, key: str, feeds: Dict[str, Any], **kw):
        """Asyncio front door: admit and await resolution.

        Returns the asyncio future's result; typed serving errors
        propagate as exceptions. Admission errors (overload, breaker
        open) raise immediately without suspending.
        """
        import asyncio

        loop = asyncio.get_running_loop()
        afut = loop.create_future()
        fut = self.submit(key, feeds, **kw)

        def _bridge(f: FleetFuture):
            def _apply():
                if afut.cancelled():
                    return
                if f._error is not None:
                    afut.set_exception(f._error)
                else:
                    afut.set_result(f._output)
            loop.call_soon_threadsafe(_apply)

        fut.add_done_callback(_bridge)
        return await afut

    async def ainfer(self, key: str, feeds: Dict[str, Any],
                     **kw) -> np.ndarray:
        return await self.asubmit(key, feeds, **kw)

    def _retry_after_hint(self, dep: _Deployment) -> float:
        """Backpressure hint: current depth over estimated drain rate."""
        alive = sum(1 for w in dep.workers
                    if w.state in ("ready", "busy", "starting")) or 1
        return round(max(dep.admitted, 1) * dep.ema_exec_s / alive + 0.01, 3)

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-deployment serving/robustness counters (see tests)."""
        with self._lock:
            out: Dict[str, Dict[str, Any]] = {}
            for key, dep in self._deployments.items():
                out[key] = {
                    **dep.counters,
                    "queue_depth": len(dep.pending) + len(dep.delayed),
                    "inflight": sum(1 for w in dep.workers
                                    if w.inflight is not None),
                    "admitted": dep.admitted,
                    "exec_mode": dep.exec_mode,
                    "oom_deaths": dep.oom_deaths,
                    "failed_reason": dep.failed,
                    "breaker_state": dep.breaker.state,
                    "breaker_transitions": list(dep.breaker.transitions),
                    "breaker_trips": sum(
                        1 for _, to in dep.breaker.transitions
                        if to == "open"),
                    "workers": [
                        {"index": w.index, "state": w.state, "gen": w.gen,
                         "restarts": w.restarts, "exec_mode": w.exec_mode,
                         "backoff_streak": w.backoff.streak}
                        for w in dep.workers],
                }
            return out

    def format_stats(self) -> str:
        """The per-deployment table the CLI prints."""
        from ..mapping import format_columns

        headers = ["deployment", "acc", "done", "fail", "retry", "shed+rej",
                   "queue", "workers", "restarts", "breaker", "trips",
                   "mode"]
        rows = []
        for key, s in self.stats().items():
            alive = sum(1 for w in s["workers"]
                        if w["state"] in ("ready", "busy"))
            rows.append([
                key, str(s["accepted"]), str(s["completed"]),
                str(s["failed"]), str(s["retried"]),
                f"{s['shed']}+{s['rejected']}", str(s["queue_depth"]),
                f"{alive}/{len(s['workers'])}", str(s["restarts"]),
                s["breaker_state"], str(s["breaker_trips"]),
                s["exec_mode"],
            ])
        return format_columns(headers, rows)

    # -- pump (single control thread) ---------------------------------------

    def _wake(self):
        try:
            os.write(self._waker_w, b"w")
        except OSError:
            pass

    def _pump(self):
        while not self._pump_stop.is_set():
            with self._lock:
                conn_map = {
                    w.conn: (dep, w)
                    for dep in self._deployments.values()
                    for w in dep.workers
                    if w.conn is not None
                    and w.state in ("starting", "ready", "busy")}
            try:
                ready = _mp_wait(list(conn_map) + [self._waker_r],
                                 timeout=self.config.tick_s)
            except OSError:
                ready = []
            if self._waker_r in ready:
                try:
                    os.read(self._waker_r, 4096)
                except OSError:
                    pass
            settled: List[Tuple[FleetFuture, Optional[np.ndarray],
                                Optional[BaseException]]] = []
            with self._lock:
                now = time.monotonic()
                for conn in ready:
                    if conn not in conn_map:
                        continue
                    dep, worker = conn_map[conn]
                    self._drain_conn(dep, worker, now, settled)
                now = time.monotonic()
                self._check_liveness(now, settled)
                self._check_hangs(now, settled)
                self._expire_pending(now, settled)
                self._release_retries(now)
                self._start_due_workers(now)
                self._dispatch(now, settled)
            for fut, output, error in settled:
                self._finalize(fut, error)
                fut._settle(output, error)
        # pump exits only at shutdown; remaining state is handled there

    def _finalize(self, fut: FleetFuture,
                  error: Optional[BaseException]) -> None:
        """Metrics + root-span close for one settling request (called
        just before the future resolves, off the fleet lock)."""
        wall_s = time.monotonic() - fut._t_create
        get_registry().histogram(
            "fleet_request_ms", deployment=fut.model,
            outcome="ok" if error is None else "error",
        ).observe(wall_s * 1e3)
        span, fut._trace_span = fut._trace_span, None
        if span is not None:
            tracer = get_tracer()
            if tracer is not None:
                status = ("ok" if error is None
                          else getattr(error, "code", None) or "error")
                tracer.finish(span, status=status, attempts=fut.attempts)

    # every helper below runs on the pump thread with self._lock held;
    # futures are settled after the lock drops (via the `settled` list)

    def _drain_conn(self, dep: _Deployment, worker: _WorkerHandle,
                    now: float, settled: List) -> None:
        while True:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                # death: leave it to the liveness check (exitcode there)
                return
            kind = msg[0]
            if kind == "ready":
                if worker.state == "starting":
                    worker.state = "ready"
                if len(msg) > 1:
                    worker.exec_mode = msg[1]
            elif kind == "degraded":
                # worker-side graceful degradation (e.g. S-NATIVE: no
                # toolchain); the worker still serves, just not natively
                dep.bump("degraded")
                get_registry().event("worker_degraded", deployment=dep.key,
                                     worker=worker.index, code=msg[1],
                                     reason=msg[2])
            elif kind == "pong":
                pass
            elif kind == "load_error":
                self._on_load_error(dep, worker, msg[1], settled)
                return
            elif kind in ("ok", "err"):
                req = worker.inflight
                if req is None or req.req_id != msg[1]:
                    continue  # stale reply from a superseded dispatch
                worker.inflight = None
                if worker.state == "busy":
                    worker.state = "ready"
                # spans the worker collected while executing (empty
                # when tracing was off at dispatch) rejoin the front
                # door's trace here
                spans = msg[-1]
                tracer = get_tracer()
                if tracer is not None and spans:
                    tracer.adopt(spans)
                if kind == "ok":
                    _, _, output, cycles, exec_s, _ = msg
                    dep.admitted -= 1
                    dep.bump("completed")
                    dep.breaker.record_success()
                    dep.ema_exec_s = 0.8 * dep.ema_exec_s + 0.2 * exec_s
                    req.future.attempts = req.attempts
                    req.future.cycles = cycles
                    settled.append((req.future, output, None))
                else:
                    _, _, code, text, _ = msg
                    dep.breaker.record_failure()
                    error = self._error_from_code(dep, code, text,
                                                  req.request_id)
                    self._retry_or_fail(dep, req, error, now, settled)

    def _error_from_code(self, dep: _Deployment, code: str, text: str,
                         rid: str) -> ServingError:
        if code == "S-TIMEOUT":
            return _tag(ServingTimeoutError(
                f"{dep.key}: {text} [request {rid}]", model=dep.key), rid)
        if code == "S-OOM":
            exc = WorkerCrashError(f"{dep.key}: worker out of memory: "
                                   f"{text} [request {rid}]", model=dep.key)
            exc.code = "S-OOM"
            return _tag(exc, rid)
        return _tag(ServingExecutionError(
            f"{dep.key}: {text} [request {rid}]", model=dep.key,
            code=code), rid)

    def _on_load_error(self, dep: _Deployment, worker: _WorkerHandle,
                       reason: str, settled: List) -> None:
        worker.state = "failed_load"
        self._close_worker(worker)
        if all(w.state == "failed_load" for w in dep.workers):
            dep.failed = reason
            get_registry().event("deployment_failed", deployment=dep.key,
                                 reason=reason)

            def make_error(rid: str) -> ServingError:
                return _tag(ServingUnavailableError(
                    f"{dep.key}: deployment failed terminally: {reason} "
                    f"[request {rid}]", model=dep.key, terminal=True), rid)

            self._fail_all_queued(dep, make_error, settled)

    def _fail_all_queued(self, dep: _Deployment,
                         make_error: Callable[[str], ServingError],
                         settled: List) -> None:
        """Fail every queued request, each with its own error instance
        so the per-request id survives into the message the client
        sees."""
        for _, _, req in dep.pending:
            dep.admitted -= 1
            dep.bump("failed")
            settled.append((req.future, None, make_error(req.request_id)))
        dep.pending.clear()
        for _, req in dep.delayed:
            dep.admitted -= 1
            dep.bump("failed")
            settled.append((req.future, None, make_error(req.request_id)))
        dep.delayed.clear()

    def _check_liveness(self, now: float, settled: List) -> None:
        for dep in self._deployments.values():
            for worker in dep.workers:
                if worker.state not in ("starting", "ready", "busy"):
                    continue
                if worker.proc is not None and worker.proc.is_alive():
                    if (worker.state == "starting"
                            and now - worker.spawned_at
                            > self.config.worker_start_timeout_s):
                        worker.proc.kill()
                        self._on_worker_death(dep, worker, now, settled,
                                              reason="start timeout")
                    continue
                self._on_worker_death(dep, worker, now, settled,
                                      reason="process died")

    def _on_worker_death(self, dep: _Deployment, worker: _WorkerHandle,
                         now: float, settled: List, reason: str) -> None:
        exitcode = worker.proc.exitcode if worker.proc is not None else None
        if exitcode == OOM_EXIT_CODE:
            dep.oom_deaths += 1
            self._maybe_fallback(dep)
        req, worker.inflight = worker.inflight, None
        if req is not None:
            dep.breaker.record_failure()
            error = _tag(WorkerCrashError(
                f"{dep.key}: worker {worker.index} died "
                f"({reason}, exit code {exitcode}) holding request "
                f"{req.request_id}",
                model=dep.key, worker=worker.index), req.request_id)
            if exitcode == OOM_EXIT_CODE:
                error.code = "S-OOM"
            self._retry_or_fail(dep, req, error, now, settled)
        self._close_worker(worker)
        cfg = self.config
        if self._shutdown or (cfg.max_restarts is not None
                              and worker.restarts >= cfg.max_restarts):
            worker.state = "dead"
            return
        worker.state = "down"
        worker.next_start_at = now + worker.backoff.next_delay_s()

    def _maybe_fallback(self, dep: _Deployment) -> None:
        cfg = self.config
        if (cfg.fallback_exec_mode
                and dep.exec_mode != cfg.fallback_exec_mode
                and dep.oom_deaths >= cfg.oom_fallback_after):
            prev_mode = dep.exec_mode
            dep.exec_mode = cfg.fallback_exec_mode
            dep.bump("fallbacks")
            get_registry().event("exec_mode_fallback", deployment=dep.key,
                                 frm=prev_mode, to=dep.exec_mode,
                                 oom_deaths=dep.oom_deaths)
            # restart the survivors into the smaller-arena mode too:
            # they would otherwise keep OOMing on the old mode
            for w in dep.workers:
                if w.state in ("ready",) and w.inflight is None \
                        and w.proc is not None:
                    try:
                        w.conn.send(("stop",))
                    except OSError:
                        pass

    def _check_hangs(self, now: float, settled: List) -> None:
        cfg = self.config
        for dep in self._deployments.values():
            for worker in dep.workers:
                req = worker.inflight
                if worker.state != "busy" or req is None:
                    continue
                limits = []
                if req.deadline is not None:
                    limits.append(req.deadline + cfg.hang_grace_s)
                if cfg.hang_timeout_s is not None:
                    limits.append(worker.dispatched_at + cfg.hang_timeout_s)
                if not limits or now <= min(limits):
                    continue
                # hung: kill the worker; fail or retry the request
                worker.proc.kill()
                worker.inflight = None
                dep.breaker.record_failure()
                if req.deadline is not None and now >= req.deadline:
                    dep.admitted -= 1
                    dep.bump("failed")
                    dep.bump("timeouts")
                    elapsed = now - req.t_submit
                    settled.append((req.future, None, _tag(
                        ServingTimeoutError(
                            f"{dep.key}: request {req.request_id} missed "
                            f"its deadline after {elapsed:.3f}s (worker "
                            f"{worker.index} hung and was killed)",
                            model=dep.key, elapsed_s=elapsed),
                        req.request_id)))
                else:
                    self._retry_or_fail(dep, req, _tag(WorkerCrashError(
                        f"{dep.key}: worker {worker.index} hung past "
                        f"hang_timeout and was killed holding request "
                        f"{req.request_id}", model=dep.key,
                        worker=worker.index), req.request_id), now, settled)
                self._close_worker(worker)
                worker.state = "down"
                worker.next_start_at = now + worker.backoff.next_delay_s()

    def _expire_pending(self, now: float, settled: List) -> None:
        """Deadline storms die cheaply in the queue, not on a worker."""
        for dep in self._deployments.values():
            if not any(req.deadline is not None and now >= req.deadline
                       for _, _, req in dep.pending):
                continue
            keep = []
            for entry in dep.pending:
                req = entry[2]
                if req.deadline is not None and now >= req.deadline:
                    dep.admitted -= 1
                    dep.bump("failed")
                    dep.bump("expired")
                    dep.bump("timeouts")
                    elapsed = now - req.t_submit
                    settled.append((req.future, None, _tag(
                        ServingTimeoutError(
                            f"{dep.key}: request {req.request_id} expired "
                            f"in queue after {elapsed:.3f}s", model=dep.key,
                            elapsed_s=elapsed), req.request_id)))
                else:
                    keep.append(entry)
            if len(keep) != len(dep.pending):
                dep.pending = keep
                heapq.heapify(dep.pending)

    def _release_retries(self, now: float) -> None:
        for dep in self._deployments.values():
            if not dep.delayed:
                continue
            due = [req for t, req in dep.delayed if t <= now]
            dep.delayed = [(t, req) for t, req in dep.delayed if t > now]
            for req in due:
                heapq.heappush(dep.pending,
                               (-req.priority, next(dep.seq), req))

    def _retry_or_fail(self, dep: _Deployment, req: _Request,
                       error: ServingError, now: float,
                       settled: List) -> None:
        cfg = self.config
        retryable = getattr(error, "retryable", False)
        if retryable and cfg.retry.allows(req.attempts):
            delay = cfg.retry.delay_s(req.attempts, self._rng)
            if req.deadline is None or now + delay < req.deadline:
                dep.bump("retried")
                dep.delayed.append((now + delay, req))
                return
        dep.admitted -= 1
        dep.bump("failed")
        if isinstance(error, ServingTimeoutError):
            dep.bump("timeouts")
        if error.request_id is None:
            _tag(error, req.request_id)
        req.future.attempts = req.attempts
        settled.append((req.future, None, error))

    def _start_due_workers(self, now: float) -> None:
        if self._shutdown:
            return
        for dep in self._deployments.values():
            if dep.failed is not None:
                continue
            for worker in dep.workers:
                if worker.state != "down" or now < worker.next_start_at:
                    continue
                worker.gen += 1
                if worker.gen > 0:
                    worker.restarts += 1
                    dep.bump("restarts")
                    get_registry().event(
                        "worker_restart", deployment=dep.key,
                        worker=worker.index, gen=worker.gen,
                        backoff_streak=worker.backoff.streak)
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main,
                    args=(child_conn, dep.key, worker.index, worker.gen,
                          dep.path, dep.exec_mode, self.config.faults,
                          self.config.verify_artifacts),
                    name=f"fleet-{dep.key}-w{worker.index}", daemon=True)
                proc.start()
                child_conn.close()
                worker.proc, worker.conn = proc, parent_conn
                worker.state = "starting"
                worker.spawned_at = now

    def _dispatch(self, now: float, settled: List) -> None:
        for dep in self._deployments.values():
            if dep.failed is not None or not dep.pending:
                continue
            idle = [w for w in dep.workers if w.state == "ready"]
            while idle and dep.pending:
                if not dep.breaker.allow():
                    break
                _, _, req = heapq.heappop(dep.pending)
                worker = idle.pop()
                req.attempts += 1
                worker.inflight = req
                worker.dispatched_at = now
                worker.state = "busy"
                budget = (None if req.deadline is None
                          else req.deadline - now)
                ctx = None
                if req.span is not None:
                    tracer = get_tracer()
                    if tracer is not None:
                        if req.attempts == 1:
                            # admission -> first dispatch, as a closed
                            # interval under the request's root span
                            # (t_submit is time.monotonic() seconds —
                            # the same clock now_ns() reads)
                            tracer.record(
                                "fleet.queue_wait",
                                int(req.t_submit * 1e9), category="serve",
                                parent=req.span,
                                request_id=req.request_id,
                                deployment=dep.key)
                        ctx = req.span.context()
                try:
                    worker.conn.send(
                        ("req", req.req_id, req.feeds, budget, ctx))
                except (OSError, ValueError):
                    # dead pipe: the liveness check will retry/fail the
                    # in-flight request and schedule the restart
                    continue

    def _close_worker(self, worker: _WorkerHandle) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
        worker.conn = None
        if worker.proc is not None:
            worker.proc.join(timeout=0.1)
        worker.proc = None

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, wait: bool = True,
                 timeout: float = 30.0) -> Dict[str, Dict[str, int]]:
        """Drain and stop the fleet (idempotent).

        With ``wait=True`` the pump keeps serving until every admitted
        request resolved or ``timeout`` elapsed; anything still
        unresolved then fails with a typed ``S-SHUTDOWN`` error —
        an accepted future never hangs across shutdown. Returns the
        final per-deployment counters.
        """
        with self._lock:
            already = self._shutdown
            self._shutdown = True
        if already:
            return {}
        deadline = time.monotonic() + timeout
        if wait and self._started:
            while time.monotonic() < deadline:
                with self._lock:
                    # a deployment with no worker slots can never make
                    # progress — don't hold the drain for it
                    if all(dep.admitted == 0 or not dep.workers
                           for dep in self._deployments.values()):
                        break
                time.sleep(min(self.config.tick_s, 0.02))
        self._pump_stop.set()
        self._wake()
        if self._pump_thread is not None:
            self._pump_thread.join(timeout=10.0)
        settled: List = []
        with self._lock:
            for dep in self._deployments.values():
                def make_error(rid: str,
                               _key: str = dep.key) -> ServingError:
                    return _tag(ServingError(
                        f"{_key}: fleet shut down before request {rid} "
                        f"resolved", code="S-SHUTDOWN"), rid)

                self._fail_all_queued(dep, make_error, settled)
                for worker in dep.workers:
                    req, worker.inflight = worker.inflight, None
                    if req is not None:
                        dep.admitted -= 1
                        dep.bump("failed")
                        settled.append((req.future, None,
                                        make_error(req.request_id)))
                    if worker.conn is not None:
                        try:
                            worker.conn.send(("stop",))
                        except OSError:
                            pass
            procs = [(w.proc, w) for dep in self._deployments.values()
                     for w in dep.workers if w.proc is not None]
        for fut, output, error in settled:
            self._finalize(fut, error)
            fut._settle(output, error)
        for proc, worker in procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
            worker.state = "dead"
            self._close_worker(worker)
        try:
            os.close(self._waker_r)
            os.close(self._waker_w)
        except OSError:
            pass
        return {key: dict(dep.counters)
                for key, dep in self._deployments.items()}
