"""Multi-model inference server over compiled artifacts.

:class:`InferenceServer` hosts many compiled deployments concurrently:

* a **model registry** keyed by ``name@deployment-fingerprint`` —
  compile config + platform — so the same network compiled under two
  configs (or for two accelerator sets) serves as two models,
  LRU-bounded by ``capacity`` — registering beyond capacity evicts and
  drains the least-recently-used model's batcher;
* one :class:`~repro.serve.batcher.DynamicBatcher` per model,
  coalescing queued requests up to ``max_batch_size``/``max_wait_ms``
  and executing them through the vectorized fast executor;
* per-model latency / throughput / queue-depth statistics and a
  graceful :meth:`shutdown` that drains every queue.

Models come from ``.dna`` artifacts (:meth:`register_artifact` — no
compilation on the serving path) or directly from a
:class:`~repro.core.program.CompiledModel` (:meth:`register_model`,
for in-process use). Bare model names resolve to the most recently
registered entry with that name, so callers can say ``"resnet8"``
without knowing the config fingerprint.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.program import CompiledModel
from ..errors import ServingError
from ..obs.metrics import get_registry
from ..runtime import Executor
from ..soc import latency_ms
from .artifact import load_artifact
from .batcher import DrainReport, DynamicBatcher, InferenceFuture


@dataclass
class ServerConfig:
    """Serving knobs shared by every hosted model."""

    capacity: int = 8            #: max resident models (LRU-evicted)
    max_batch_size: int = 8      #: dynamic-batch upper bound
    max_wait_ms: float = 2.0     #: batch linger after first request
    exec_mode: str = "fast"      #: executor mode for served inferences
    #: shared-library cache for ``exec_mode="native"`` (``None`` =
    #: ``$REPRO_NATIVE_CACHE`` or ``~/.cache/repro/native``;
    #: :meth:`InferenceServer.register_artifact` fills in the
    #: artifact's own directory)
    native_cache_dir: Optional[str] = None


class _ServedModel:
    """One registry entry: deployment + its batcher."""

    def __init__(self, key: str, compiled: CompiledModel, soc,
                 cfg: ServerConfig, native_cache_dir: Optional[str] = None):
        self.key = key
        self.compiled = compiled
        self.soc = soc
        self.leases = 0  #: submits in flight between lookup and enqueue
        self.batcher = DynamicBatcher(
            compiled, Executor(soc, exec_mode=cfg.exec_mode,
                               native_cache_dir=(cfg.native_cache_dir
                                                 or native_cache_dir)),
            max_batch_size=cfg.max_batch_size,
            max_wait_ms=cfg.max_wait_ms, name=key)


class InferenceServer:
    """Thread-based multi-model serving front end.

    Usable as a context manager; exit drains and stops every batcher::

        with InferenceServer() as server:
            key = server.register_artifact("resnet8.dna")
            out = server.infer(key, feeds, timeout=30)
    """

    def __init__(self, config: Optional[ServerConfig] = None, **overrides):
        if config is None:
            config = ServerConfig(**overrides)
        elif overrides:
            raise ServingError("pass either a ServerConfig or keyword "
                               "overrides, not both")
        if config.capacity < 1:
            raise ServingError("server capacity must be >= 1")
        self.config = config
        self._models: "OrderedDict[str, _ServedModel]" = OrderedDict()
        self._lock = threading.Lock()
        self._shutdown = False
        self._t_start = time.monotonic()
        self._evicted: List[str] = []

    # -- registry ------------------------------------------------------------

    def register_model(self, compiled: CompiledModel, soc,
                       fingerprint: Optional[str] = None,
                       native_cache_dir: Optional[str] = None) -> str:
        """Host an in-process compiled model; returns its registry key.

        ``fingerprint`` defaults to the model's content fingerprint —
        artifacts pass their deployment fingerprint (config + platform)
        instead so the key is stable across packs of the same config.
        ``native_cache_dir`` seeds the native-library cache location
        when the server runs with ``exec_mode="native"``.
        """
        fp = fingerprint or compiled.fingerprint()
        key = f"{compiled.name}@{fp[:12]}"
        with self._lock:
            if self._shutdown:
                raise ServingError("server is shut down")
            if key in self._models:
                self._models.move_to_end(key)
                return key
            self._models[key] = _ServedModel(key, compiled, soc, self.config,
                                             native_cache_dir)
            evict = self._evict_overflow_locked()
        reg = get_registry()
        reg.counter("server_models_registered_total").inc()
        reg.event("model_registered", key=key)
        for served in evict:  # drain outside the lock
            served.batcher.stop(wait=True)
        return key

    def _evict_overflow_locked(self) -> List[_ServedModel]:
        """Pick over-capacity victims, least-recently-used first.

        A deployment with in-flight requests (queued or mid-batch) is
        *pinned*: evicting it would drain its batcher against an
        unregistered model while clients still hold its futures. Busy
        LRU entries are skipped; if every entry is busy the registry
        temporarily exceeds capacity and the overflow is reaped lazily
        on the next register/submit once queues empty.
        """
        evict: List[_ServedModel] = []
        while len(self._models) > self.config.capacity:
            # never the most-recently-used entry: that is the newcomer
            # (or the model a client just touched)
            candidates = list(self._models.items())[:-1]
            victim = next((k for k, m in candidates
                           if m.batcher.pending == 0 and m.leases == 0),
                          None)
            if victim is None:
                break  # every older model is busy: stay over capacity
            served = self._models.pop(victim)
            self._evicted.append(victim)
            evict.append(served)
            reg = get_registry()
            reg.counter("server_models_evicted_total").inc()
            reg.event("model_evicted", key=victim,
                      resident=len(self._models))
        return evict

    def register_artifact(self, artifact, *args, **kwargs) -> str:
        """Host a packed deployment; accepts a path or a
        :class:`~repro.serve.artifact.LoadedArtifact`.

        When the server executes natively, the artifact's own directory
        is the default library cache — the compile-once/serve-many
        contract extends to machine code: ``repro pack --prebuild``
        drops the ``.so`` next to the ``.dna`` and serving just maps it.
        """
        if isinstance(artifact, (str, bytes, os.PathLike)):
            kwargs.setdefault("native_cache_dir",
                              os.path.dirname(os.path.abspath(artifact)))
            artifact = load_artifact(artifact)
        return self.register_model(
            artifact.model, artifact.soc,
            fingerprint=artifact.deployment_fingerprint, *args, **kwargs)

    def models(self) -> List[str]:
        """Registry keys, least- to most-recently used."""
        with self._lock:
            return list(self._models)

    def _lookup(self, model: str, touch: bool,
                lease: bool = False) -> _ServedModel:
        """Resolve a key or bare name; ``touch`` refreshes LRU order.

        ``lease`` pins the entry against eviction until the caller
        releases it (the lookup-to-enqueue window of :meth:`submit`).
        """
        with self._lock:
            if self._shutdown:
                raise ServingError("server is shut down")
            key = model if model in self._models else next(
                (k for k in reversed(self._models)
                 if k.split("@", 1)[0] == model), None)
            if key is not None:
                if touch:
                    self._models.move_to_end(key)
                if lease:
                    self._models[key].leases += 1
                return self._models[key]
        evicted = [k for k in self._evicted
                   if k == model or k.split("@", 1)[0] == model]
        hint = (" (evicted from the LRU registry)" if evicted else "")
        raise ServingError(
            f"unknown model {model!r}{hint}; "
            f"registered: {self.models() or 'none'}")

    def _resolve(self, model: str) -> _ServedModel:
        return self._lookup(model, touch=True)

    # -- serving -------------------------------------------------------------

    def submit(self, model: str,
               feeds: Dict[str, np.ndarray]) -> InferenceFuture:
        """Queue one request; returns immediately with a future.

        The resolved deployment is leased for the duration of the
        enqueue, so a concurrent over-capacity registration can never
        evict it between lookup and submit. Deferred evictions (models
        that were busy when capacity overflowed) are reaped here once
        their queues drain.
        """
        served = self._lookup(model, touch=True, lease=True)
        try:
            fut = served.batcher.submit(feeds)
        finally:
            with self._lock:
                served.leases -= 1
                evict = self._evict_overflow_locked()
        for old in evict:
            old.batcher.stop(wait=True)
        return fut

    def infer(self, model: str, feeds: Dict[str, np.ndarray],
              timeout: Optional[float] = 60.0) -> np.ndarray:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(model, feeds).result(timeout)

    # -- introspection -------------------------------------------------------

    def stats(self, model: Optional[str] = None) -> Dict[str, Dict]:
        """Per-model serving statistics.

        Keys: ``requests``, ``batches``, ``errors``,
        ``mean_batch_size``, ``mean_wall_ms``, ``max_wall_ms``,
        ``queue_depth``, ``modeled_ms_per_inference``,
        ``throughput_rps`` (served requests over server uptime) and the
        coalesced ``batch_size_counts`` histogram.
        """
        if model is not None:
            served = self._lookup(model, touch=False)
            entries = {served.key: served}
        else:
            with self._lock:
                entries = dict(self._models)
        uptime = max(time.monotonic() - self._t_start, 1e-9)
        out: Dict[str, Dict] = {}
        for key, served in entries.items():
            s = served.batcher.stats()
            out[key] = {
                "requests": s.requests,
                "batches": s.batches,
                "errors": s.errors,
                "mean_batch_size": round(s.mean_batch_size, 3),
                "mean_wall_ms": round(s.mean_wall_ms, 3),
                "max_wall_ms": round(1e3 * s.wall_s_max, 3),
                "queue_depth": served.batcher.queue_depth,
                "modeled_ms_per_inference": (
                    None if s.cycles_per_inference is None else
                    round(latency_ms(s.cycles_per_inference,
                                     served.soc.params), 4)),
                "throughput_rps": round(s.requests / uptime, 2),
                "batch_size_counts": dict(sorted(
                    s.batch_size_counts.items())),
            }
        return out

    def format_stats(self) -> str:
        """The stats table the CLI prints."""
        from ..mapping import format_columns

        stats = self.stats()
        headers = ["model", "req", "batches", "mean batch", "mean ms",
                   "max ms", "queue", "model ms", "req/s"]
        rows = []
        for key, s in stats.items():
            rows.append([
                key, str(s["requests"]), str(s["batches"]),
                f"{s['mean_batch_size']:.2f}", f"{s['mean_wall_ms']:.2f}",
                f"{s['max_wall_ms']:.2f}", str(s["queue_depth"]),
                "-" if s["modeled_ms_per_inference"] is None
                else f"{s['modeled_ms_per_inference']:.3f}",
                f"{s['throughput_rps']:.1f}",
            ])
        return format_columns(headers, rows)

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self, wait: bool = True) -> Dict[str, "DrainReport"]:
        """Stop accepting work and drain every batcher (idempotent).

        Returns one :class:`~repro.serve.batcher.DrainReport` per
        hosted model saying how many of its in-flight requests drained
        cleanly vs. failed; a second call returns ``{}``.
        """
        with self._lock:
            if self._shutdown:
                return {}
            self._shutdown = True
            entries = list(self._models.values())
            self._models.clear()
        return {served.key: served.batcher.stop(wait=wait)
                for served in entries}

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, *exc_info):
        self.shutdown(wait=True)
        return False
