"""Dynamic request batching for one served model.

The simulator's fast executor evaluates a batch of N samples in one
vectorized pass at far below N times the single-sample wall-clock
(see ``BENCH_execute.json``), but requests arrive one at a time. A
:class:`DynamicBatcher` closes that gap the way production inference
servers do: requests queue per model, a worker thread coalesces
whatever is waiting — up to ``max_batch_size`` requests or
``max_wait_ms`` of linger after the first one — and executes the
coalesced batch through :meth:`~repro.runtime.Executor.run_batch`.
Under load, batches fill and throughput approaches the vectorized
limit; a lone request pays at most the linger.

Batching never changes results: ``run_batch`` is byte-identical per
sample to N single runs, and modeled cycles are per-inference (DIANA
processes samples sequentially), so latency/energy accounting is
unaffected by how requests were coalesced.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ServingError, ServingTimeoutError
from ..obs.metrics import get_registry
from ..obs.trace import trace_span

#: sentinel enqueued by :meth:`DynamicBatcher.stop`.
_STOP = object()


def normalize_feeds(compiled, feeds: Dict[str, np.ndarray],
                    name: Optional[str] = None) -> Dict[str, np.ndarray]:
    """Validate one single-sample request against a compiled model.

    Arrays without the leading batch dimension are accepted and
    reshaped to ``(1, ...)``; missing inputs and shape mismatches raise
    :class:`ServingError`. Shared by the in-process batcher and the
    fleet workers so both front doors reject malformed requests the
    same way.
    """
    label = name or compiled.name
    normalized = {}
    for in_name in compiled.input_names:
        if in_name not in feeds:
            raise ServingError(f"{label}: missing input {in_name!r}",
                               code="S-INPUT")
        arr = np.asarray(feeds[in_name])
        expected = tuple(compiled.buffers[in_name].ttype.shape)
        if arr.shape == expected[1:]:
            arr = arr[None, ...]
        if arr.shape != (1,) + expected[1:]:
            raise ServingError(
                f"{label}: input {in_name!r} expected "
                f"{(1,) + expected[1:]}, got {arr.shape}", code="S-INPUT")
        normalized[in_name] = arr
    return normalized


class InferenceFuture:
    """Handle to one queued request; resolved by the batcher worker."""

    def __init__(self, model: Optional[str] = None):
        self._event = threading.Event()
        self._output: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._t_create = time.monotonic()
        #: registry key / batcher name this request was bound for
        self.model = model
        #: client-visible request identifier (``<model>#<seq>``)
        self.request_id = ""
        #: filled by the batcher: wall seconds spent queued + executing
        self.wall_s: Optional[float] = None
        #: modeled cycles of the inference (input-independent)
        self.cycles: Optional[float] = None
        #: size of the coalesced batch this request rode in
        self.batch_size: Optional[int] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block until resolved; re-raises the worker-side error.

        A timeout raises :class:`~repro.errors.ServingTimeoutError`
        naming the model and the elapsed wall-clock — the wait timing
        out does *not* cancel the request, which may still resolve.
        """
        if not self._event.wait(timeout):
            elapsed = time.monotonic() - self._t_create
            raise ServingTimeoutError(
                f"inference timed out after {elapsed:.3f}s"
                + (f" waiting on {self.model}" if self.model else ""),
                model=self.model, elapsed_s=elapsed)
        if self._error is not None:
            raise self._error
        return self._output

    def _resolve(self, output: np.ndarray):
        self._output = output
        self._event.set()

    def _fail(self, error: BaseException):
        self._error = error
        self._event.set()


@dataclass
class _Request:
    feeds: Dict[str, np.ndarray]
    future: InferenceFuture
    t_enqueue: float


@dataclass
class BatcherStats:
    """Running counters of one model's batcher (thread-safe snapshot
    via :meth:`DynamicBatcher.stats`)."""

    requests: int = 0
    batches: int = 0
    errors: int = 0
    wall_s_total: float = 0.0          #: sum of per-request wall latency
    wall_s_max: float = 0.0
    exec_s_total: float = 0.0          #: worker time inside run_batch
    cycles_per_inference: Optional[float] = None
    batch_size_counts: Dict[int, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def mean_wall_ms(self) -> float:
        return 1e3 * self.wall_s_total / self.requests if self.requests \
            else 0.0


@dataclass
class DrainReport:
    """What happened to in-flight requests during a batcher drain.

    ``pending_at_stop`` requests were accepted but unresolved when
    :meth:`DynamicBatcher.stop` took effect; each then either
    ``drained`` (executed and resolved), ``failed`` (resolved with an
    error), or — only if the drain timed out — is still ``unresolved``.
    """

    pending_at_stop: int = 0
    drained: int = 0
    failed: int = 0
    unresolved: int = 0

    def __str__(self) -> str:
        return (f"{self.drained} drained, {self.failed} failed, "
                f"{self.unresolved} unresolved "
                f"(of {self.pending_at_stop} pending at stop)")


class DynamicBatcher:
    """Queue + worker thread coalescing requests for one compiled model.

    Args:
        compiled: the deployment to serve.
        executor: a :class:`~repro.runtime.Executor` bound to the
            artifact's SoC (``"fast"`` mode for throughput serving).
        max_batch_size: upper bound on coalesced batch size (>= 1).
        max_wait_ms: how long the worker lingers for companions after
            the first request of a batch arrives. ``0`` disables
            lingering — each batch is whatever is already queued.
    """

    def __init__(self, compiled, executor, max_batch_size: int = 8,
                 max_wait_ms: float = 2.0, name: Optional[str] = None):
        if max_batch_size < 1:
            raise ServingError(f"max_batch_size must be >= 1, "
                               f"got {max_batch_size}")
        self.compiled = compiled
        self.executor = executor
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.name = name or compiled.name
        # SimpleQueue: C-implemented put/get, no task-tracking locks —
        # the queue is traversed twice per request on the serving path
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._rid_seq = itertools.count(1)
        self._stats = BatcherStats()
        self._stats_lock = threading.Lock()
        # serializes the stopping-flag check against the enqueue: a
        # submit that passed the check cannot land behind the _STOP
        # sentinel (it would be silently dropped and its future would
        # hang forever), and a post-stop submit always raises.
        self._submit_lock = threading.Lock()
        self._stopping = False
        self._pending = 0  #: submitted but not yet resolved requests
        self._pending_at_stop = 0  #: snapshot when stop() took effect
        self._drain_ok = 0         #: resolved OK after stop() began
        self._drain_err = 0        #: resolved with error after stop()
        self._thread = threading.Thread(
            target=self._loop, name=f"batcher-{self.name}", daemon=True)
        self._thread.start()

    # -- client side ---------------------------------------------------------

    def submit(self, feeds: Dict[str, np.ndarray]) -> InferenceFuture:
        """Enqueue one single-sample request (leading batch dim 1).

        Arrays without the batch dimension are accepted and reshaped.
        Raises :class:`ServingError` once :meth:`stop` has begun — the
        check and the enqueue are atomic w.r.t. the stop sentinel, so
        an accepted request is always ahead of it and gets drained.
        """
        rid = f"{self.name}#{next(self._rid_seq):06d}"
        try:
            normalized = normalize_feeds(self.compiled, feeds, self.name)
        except ServingError as exc:
            raise ServingError(f"{exc} [request {rid}]", code=exc.code,
                               request_id=rid) from None
        fut = InferenceFuture(model=self.name)
        fut.request_id = rid
        with self._submit_lock:
            if self._stopping:
                raise ServingError(
                    f"{self.name}: batcher is shut down [request {rid}]",
                    code="S-SHUTDOWN", request_id=rid)
            self._pending += 1
            self._queue.put(_Request(normalized, fut, time.monotonic()))
        return fut

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def pending(self) -> int:
        """Requests accepted but not yet resolved (queued or in the
        batch currently executing) — the in-flight count the server's
        LRU eviction pins on."""
        with self._submit_lock:
            return self._pending

    @property
    def stopped(self) -> bool:
        """True once :meth:`stop` ran and the worker thread exited."""
        with self._submit_lock:
            return self._stopping and not self._thread.is_alive()

    def stats(self) -> BatcherStats:
        """A consistent copy of the running counters."""
        with self._stats_lock:
            snap = BatcherStats(**{
                f.name: getattr(self._stats, f.name)
                for f in self._stats.__dataclass_fields__.values()})
            snap.batch_size_counts = dict(self._stats.batch_size_counts)
        return snap

    def stop(self, wait: bool = True, timeout: float = 30.0) -> DrainReport:
        """Graceful shutdown: drain queued requests, then exit.

        New submissions are rejected immediately; requests already
        accepted are still executed (in maximal batches) before the
        worker exits, so every returned future resolves exactly once.
        Returns a :class:`DrainReport` saying how many of the requests
        pending at stop time drained cleanly vs. failed; with
        ``wait=False`` the report is a point-in-time snapshot (the
        worker keeps draining in the background and ``unresolved``
        counts the remainder).
        """
        with self._submit_lock:
            if not self._stopping:
                self._stopping = True
                self._pending_at_stop = self._pending
                self._queue.put(_STOP)
        if wait:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise ServingError(
                    f"{self.name}: batcher failed to drain within "
                    f"{timeout}s ({self.drain_report()})")
        return self.drain_report()

    def drain_report(self) -> DrainReport:
        """Snapshot of the drain bookkeeping (see :meth:`stop`).

        Invariant (all four fields move under the submit lock):
        ``pending_at_stop == drained + failed + unresolved``.
        """
        with self._submit_lock:
            return DrainReport(pending_at_stop=self._pending_at_stop,
                               drained=self._drain_ok,
                               failed=self._drain_err,
                               unresolved=self._pending)

    # -- worker side ---------------------------------------------------------

    def _loop(self):
        stop_seen = False
        while not stop_seen:
            head = self._queue.get()
            if head is _STOP:
                break
            batch = [head]
            deadline = time.monotonic() + self.max_wait_ms / 1e3
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.monotonic()
                try:
                    nxt = (self._queue.get_nowait() if remaining <= 0
                           else self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop_seen = True
                    break
                batch.append(nxt)
            self._run_batch(batch)
        # safety net: the submit lock guarantees nothing lands behind
        # the sentinel, but drain defensively anyway — a dropped
        # request would be a future that hangs forever
        leftovers: List[_Request] = []
        while True:
            try:
                req = self._queue.get_nowait()
            except queue.Empty:
                break
            if req is not _STOP:
                leftovers.append(req)
        for i in range(0, len(leftovers), self.max_batch_size):
            self._run_batch(leftovers[i:i + self.max_batch_size])

    def _run_batch(self, batch: List[_Request]):
        reg = get_registry()
        t0 = time.monotonic()
        try:
            feeds = {
                name: np.concatenate([r.feeds[name] for r in batch], axis=0)
                for name in self.compiled.input_names
            }
            with trace_span("batch.execute", category="serve",
                            model=self.name, batch_size=len(batch)):
                result = self.executor.run_batch(self.compiled, feeds)
        except BaseException as exc:  # resolve futures, keep serving
            with self._stats_lock:
                self._stats.errors += len(batch)
                self._stats.batches += 1
            reg.counter("batcher_errors_total", model=self.name).inc(
                len(batch))
            reg.counter("batcher_batches_total", model=self.name).inc()
            for r in batch:
                r.future._fail(exc)
            with self._submit_lock:
                self._pending -= len(batch)
                if self._stopping:
                    self._drain_err += len(batch)
            return
        t1 = time.monotonic()
        cycles = result.perf.total_cycles
        with self._stats_lock:
            s = self._stats
            s.requests += len(batch)
            s.batches += 1
            s.exec_s_total += t1 - t0
            s.cycles_per_inference = cycles
            s.batch_size_counts[len(batch)] = \
                s.batch_size_counts.get(len(batch), 0) + 1
            for r in batch:
                wall = t1 - r.t_enqueue
                s.wall_s_total += wall
                s.wall_s_max = max(s.wall_s_max, wall)
        reg.counter("batcher_requests_total", model=self.name).inc(
            len(batch))
        reg.counter("batcher_batches_total", model=self.name).inc()
        hist = reg.histogram("batcher_wall_ms", model=self.name)
        for r in batch:
            hist.observe((t1 - r.t_enqueue) * 1e3)
        for i, r in enumerate(batch):
            r.future.wall_s = t1 - r.t_enqueue
            r.future.cycles = cycles
            r.future.batch_size = len(batch)
            r.future._resolve(result.outputs[i:i + 1])
        with self._submit_lock:
            self._pending -= len(batch)
            if self._stopping:
                self._drain_ok += len(batch)
