"""Robustness primitives shared by the serving fleet.

Three small, independently testable building blocks (see
``docs/RESILIENCE.md`` for parameter guidance):

* :class:`RetryPolicy` — exponential backoff with bounded,
  deterministic jitter. All randomness flows through a caller-supplied
  :class:`random.Random`, so chaos tests replay identical delay
  sequences from a seed.
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine, one per deployment. Consecutive failures trip it open;
  after ``recovery_s`` a bounded number of probe requests are let
  through; a probe success closes it, a probe failure re-opens it. The
  clock is injectable so state transitions are unit-testable without
  sleeping.
* :class:`CrashLoopBackoff` — restart pacing for supervised workers: a
  worker that keeps dying restarts with exponentially growing delays,
  and a quiet period (``reset_after_s``) forgives the streak.

None of these know about processes, queues, or models — the fleet
composes them.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..errors import ServingError

__all__ = [
    "RetryPolicy", "CircuitBreaker", "CrashLoopBackoff",
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``max_attempts`` counts *total* attempts including the first
    dispatch, so ``max_attempts=1`` disables retries. The delay before
    attempt ``k+1`` (after the ``k``-th failed) is
    ``min(base_delay_s * multiplier**(k-1), max_delay_s)``, jittered
    down by up to ``jitter`` of itself: the result lies in
    ``[raw * (1 - jitter), raw]``. Jitter draws from the supplied
    ``rng`` only, so a seeded :class:`random.Random` makes the whole
    sequence reproducible.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ServingError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ServingError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retrying after the ``attempt``-th failure
        (1-based)."""
        if attempt < 1:
            raise ServingError(f"attempt is 1-based, got {attempt}")
        raw = min(self.base_delay_s * self.multiplier ** (attempt - 1),
                  self.max_delay_s)
        if self.jitter == 0.0:
            return raw
        return raw * (1.0 - self.jitter * rng.random())

    def allows(self, attempts_so_far: int) -> bool:
        """True while another attempt fits the budget."""
        return attempts_so_far < self.max_attempts


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-deployment circuit breaker (thread-safe).

    * **closed** — requests flow; ``failure_threshold`` *consecutive*
      failures trip it open (any success resets the streak).
    * **open** — :meth:`blocked` is True until ``recovery_s`` elapses;
      admission fast-fails without touching the queue.
    * **half-open** — after recovery, :meth:`allow` hands out at most
      ``half_open_probes`` probe slots; a recorded success closes the
      breaker, a failure re-opens it (restarting the recovery clock).

    :meth:`allow` *consumes* a probe slot and is meant for the dispatch
    side; :meth:`blocked` is a read-only check for the admission side.
    ``transitions`` keeps an append-only ``(from, to)`` log so tests
    can assert the exact path taken, and ``on_transition(frm, to)`` —
    when given — fires on every state change (the fleet publishes it
    as a metrics event; the callback runs under the breaker lock, so
    it must be quick and must not call back into the breaker).
    """

    def __init__(self, failure_threshold: int = 5, recovery_s: float = 1.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 name: str = "",
                 on_transition: Optional[Callable[[str, str], None]] = None):
        if failure_threshold < 1:
            raise ServingError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if half_open_probes < 1:
            raise ServingError(
                f"half_open_probes must be >= 1, got {half_open_probes}")
        self.failure_threshold = failure_threshold
        self.recovery_s = recovery_s
        self.half_open_probes = half_open_probes
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probes_left = 0
        self.transitions: List[Tuple[str, str]] = []
        self.on_transition = on_transition

    # -- state inspection ----------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def blocked(self) -> bool:
        """True while open and the recovery window has not elapsed."""
        with self._lock:
            return (self._state == BREAKER_OPEN
                    and self._clock() - self._opened_at < self.recovery_s)

    def retry_after(self) -> Optional[float]:
        """Remaining recovery seconds, or None when not blocking."""
        with self._lock:
            if self._state != BREAKER_OPEN:
                return None
            remaining = self.recovery_s - (self._clock() - self._opened_at)
            return max(remaining, 0.0)

    # -- state machine -------------------------------------------------------

    def _transition(self, to: str):
        if self._state != to:
            frm, self._state = self._state, to
            self.transitions.append((frm, to))
            if self.on_transition is not None:
                self.on_transition(frm, to)

    def allow(self) -> bool:
        """Dispatch-side gate; consumes a probe slot when half-open."""
        with self._lock:
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                if self._clock() - self._opened_at < self.recovery_s:
                    return False
                self._transition(BREAKER_HALF_OPEN)
                self._probes_left = self.half_open_probes
            # half-open: hand out the bounded probe budget
            if self._probes_left > 0:
                self._probes_left -= 1
                return True
            return False

    def record_success(self):
        with self._lock:
            self._consecutive_failures = 0
            if self._state == BREAKER_HALF_OPEN:
                self._transition(BREAKER_CLOSED)

    def record_failure(self):
        with self._lock:
            if self._state == BREAKER_HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(BREAKER_OPEN)
                return
            self._consecutive_failures += 1
            if (self._state == BREAKER_CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._transition(BREAKER_OPEN)


class CrashLoopBackoff:
    """Restart pacing for a supervised worker.

    Each call to :meth:`next_delay_s` records one death and returns how
    long the supervisor should wait before the restart: exponentially
    growing with the current death streak, capped at ``max_s``. A
    worker that stays up longer than ``reset_after_s`` since its last
    death is forgiven — the streak restarts from the base delay.
    """

    def __init__(self, base_s: float = 0.05, max_s: float = 5.0,
                 multiplier: float = 2.0, reset_after_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        self.base_s = base_s
        self.max_s = max_s
        self.multiplier = multiplier
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._streak = 0
        self._last_death: Optional[float] = None

    @property
    def streak(self) -> int:
        return self._streak

    def next_delay_s(self) -> float:
        now = self._clock()
        if (self._last_death is not None
                and now - self._last_death > self.reset_after_s):
            self._streak = 0
        self._last_death = now
        self._streak += 1
        return min(self.base_s * self.multiplier ** (self._streak - 1),
                   self.max_s)
