"""Compiled-artifact store: persistent ``.dna`` deployment files.

Production deployment stacks split *compile once* from *serve many*:
the expensive search (mapping, DORY tiling, memory planning) runs in a
build step whose output is a self-contained artifact, and the serving
fleet only ever loads artifacts. ``save_artifact``/``load_artifact``
implement that split for this system.

A ``.dna`` file is a gzip-compressed JSON document holding one fully
compiled deployment:

* the optimized graph (structure + weights, via
  :mod:`repro.ir.serialization`),
* the program: every step with its target, layer geometry and chosen
  tile configuration,
* the L2 buffer plan, binary-size model and mapping decisions,
* the generated C sources,
* the platform (accelerator set + all calibration constants), and
* provenance: format version, the
  :meth:`~repro.core.config.CompilerConfig.fingerprint` of the compile,
  the compiled model's content fingerprint, and an optional validation
  record from pack time.

Loading rebuilds a :class:`~repro.core.program.CompiledModel` without
invoking the compiler: layer specs are re-extracted from the stored
graph (so weight payloads are stored exactly once) and cross-checked
against the stored geometry, tile configurations are restored verbatim
(no DORY search), and the memory plan / size model are restored
verbatim. A loaded artifact therefore produces byte-identical outputs
and exactly equal modeled cycles to the compile that produced it —
property-tested over the model zoo in ``tests/test_serve.py``.
"""

from __future__ import annotations

import dataclasses
import gzip
import hashlib
import json
import zlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.config import CompilerConfig
from ..core.program import (
    AccelStep, BufferSpec, CompiledModel, CpuKernelStep, DepthFirstChain,
    SizeBreakdown,
)
from ..dory.memory_plan import MemoryPlan, TensorLife
from ..dory.tiling_types import TileConfig, TilingSolution
from ..errors import ArtifactError, PlatformError
from ..ir import TensorType, graph_from_dict, graph_to_dict
from ..ir.dtypes import dtype as _dtype
from ..mapping import layer_spec_of
from ..mapping.rules import DispatchDecision
from ..soc import DianaParams, Platform, get_platform

#: artifact container format version; bump on any layout change.
ARTIFACT_VERSION = 1
#: magic marker distinguishing ``.dna`` payloads from arbitrary JSON.
ARTIFACT_MAGIC = "repro-dna"

#: LayerSpec fields stored for the integrity cross-check (everything
#: except the weight/bias payloads, which live in the graph).
_SPEC_FIELDS = (
    "name", "kind", "in_channels", "out_channels", "iy", "ix", "oy", "ox",
    "fy", "fx", "strides", "padding", "groups", "weight_dtype", "in_dtype",
    "out_dtype", "shift", "relu",
)


@dataclass
class LoadedArtifact:
    """Everything :func:`load_artifact` reconstructs from one file."""

    model: CompiledModel
    soc: Platform
    config: CompilerConfig
    config_fingerprint: str
    fingerprint: str
    deployment_fingerprint: str = ""
    validation: Optional[Dict] = None
    meta: Optional[Dict] = None

    @property
    def key(self) -> str:
        """Registry key: model name + deployment fingerprint.

        The deployment fingerprint extends the compile-config
        fingerprint with the platform (accelerator set + calibration
        constants): Table I's ``digital`` and ``mixed`` cells share one
        ``CompilerConfig`` and differ only in enabled accelerators, so
        the config fingerprint alone would alias distinct deployments.
        """
        return f"{self.model.name}@{self.deployment_fingerprint[:12]}"


def _spec_to_dict(spec) -> Dict:
    out = {}
    for f in _SPEC_FIELDS:
        v = getattr(spec, f)
        out[f] = list(v) if isinstance(v, tuple) else v
    return out


def _step_to_dict(step, index: int) -> Dict:
    base = {
        "name": step.name,
        "input_names": list(step.input_names),
        "output_name": step.output_name,
        "composite": index,
    }
    if isinstance(step, CpuKernelStep):
        base.update(kind="cpu", signature=step.signature)
    elif isinstance(step, AccelStep):
        sol = step.tiling
        base.update(
            kind="accel",
            target=step.accel_target,
            spec=_spec_to_dict(step.spec),
            tiling={
                "c_t": sol.cfg.c_t, "k_t": sol.cfg.k_t,
                "oy_t": sol.cfg.oy_t, "ox_t": sol.cfg.ox_t,
                "l1_in_bytes": sol.l1_in_bytes,
                "l1_out_bytes": sol.l1_out_bytes,
                "l1_weight_bytes": sol.l1_weight_bytes,
                "objective": sol.objective,
                "needs_tiling": sol.needs_tiling,
            },
        )
    else:
        raise ArtifactError(f"cannot serialize step {step!r}")
    return base


def _decision_to_dict(d: DispatchDecision) -> Dict:
    return {
        "layer_name": d.layer_name, "pattern": d.pattern, "target": d.target,
        "candidates": list(d.candidates), "rejections": dict(d.rejections),
        "spec_error": d.spec_error, "costs": dict(d.costs),
        "chosen_cost": d.chosen_cost,
    }


def artifact_to_dict(compiled: CompiledModel, soc: Platform,
                     config: CompilerConfig,
                     validation: Optional[Dict] = None,
                     meta: Optional[Dict] = None) -> Dict:
    """Serialize one compiled deployment to a JSON-safe dict."""
    if compiled.graph is None:
        raise ArtifactError(
            f"{compiled.name}: compiled model carries no graph; "
            "cannot build a self-contained artifact")
    plan = compiled.memory_plan
    return {
        "format": ARTIFACT_MAGIC,
        "version": ARTIFACT_VERSION,
        "model": compiled.name,
        "config": dataclasses.asdict(config),
        "config_fingerprint": config.fingerprint(),
        "fingerprint": compiled.fingerprint(),
        # "soc" keeps its historical diana-shaped layout (the
        # deployment fingerprint hashes it verbatim); "platform" names
        # the registered platform so loaders off the stock SoC rebuild
        # the exact accelerator set through the registry.
        "soc": {
            "enable_digital": "soc.digital" in soc.accelerators,
            "enable_analog": "soc.analog" in soc.accelerators,
            "params": dataclasses.asdict(soc.params),
        },
        "platform": {
            "name": getattr(soc, "name", "diana"),
            "accelerators": list(soc.accelerators),
        },
        "graph": graph_to_dict(compiled.graph),
        "steps": [_step_to_dict(s, i) for i, s in enumerate(compiled.steps)],
        "buffers": {name: {"shape": list(b.ttype.shape),
                           "dtype": b.ttype.dtype.name}
                    for name, b in compiled.buffers.items()},
        "input_names": list(compiled.input_names),
        "output_name": compiled.output_name,
        "memory_plan": {
            "offsets": dict(plan.offsets),
            "sizes": dict(plan.sizes),
            "lifetimes": {n: [life.size, life.start, life.end]
                          for n, life in plan.lifetimes.items()},
            "arena_bytes": plan.arena_bytes,
            "reuse": plan.reuse,
        },
        "size": {
            "runtime": compiled.size.runtime,
            "cpu_kernels": compiled.size.cpu_kernels,
            "accel_drivers": compiled.size.accel_drivers,
            "weights": compiled.size.weights,
        },
        "decisions": [_decision_to_dict(d)
                      for d in compiled.dispatch_decisions],
        "c_sources": dict(compiled.c_sources),
        # depth-first schedules (absent for layer-by-layer models, so
        # pre-existing artifacts keep their exact layout)
        **({"depthfirst": [{
                "start": c.start, "length": c.length,
                "patch_grid": list(c.patch_grid),
                "num_patches": c.num_patches,
                "peak_bytes": c.peak_bytes,
                "patch_buffer_bytes": c.patch_buffer_bytes,
                "per_layer_patch_bytes": list(c.per_layer_patch_bytes),
                "recompute_factor": c.recompute_factor,
                "per_layer_recompute": list(c.per_layer_recompute),
            } for c in compiled.depthfirst_chains]}
           if compiled.depthfirst_chains else {}),
        "validation": validation,
        "meta": meta,
    }


def _check_spec(name: str, spec, stored: Dict):
    """Cross-check a re-extracted spec against the stored geometry."""
    got = _spec_to_dict(spec)
    if got != stored:
        diff = {k: (stored.get(k), got.get(k))
                for k in set(stored) | set(got)
                if stored.get(k) != got.get(k)}
        raise ArtifactError(
            f"{name}: stored layer geometry disagrees with the packed "
            f"graph ({diff}); artifact is corrupt or from an "
            "incompatible version")


def artifact_from_dict(obj: Dict,
                       expected_platform: Optional[str] = None
                       ) -> LoadedArtifact:
    """Rebuild a deployment from :func:`artifact_to_dict` output.

    ``expected_platform`` pins the artifact to one registered platform:
    a file packed for any other platform is rejected with a
    ``V-ART-012`` diagnostic instead of silently serving a deployment
    whose tilings and kernels were solved for different hardware.
    """
    if obj.get("format") != ARTIFACT_MAGIC:
        raise ArtifactError("not a repro artifact (bad magic)")
    if obj.get("version") != ARTIFACT_VERSION:
        raise ArtifactError(
            f"unsupported artifact version {obj.get('version')!r} "
            f"(this build reads version {ARTIFACT_VERSION})")

    config = CompilerConfig(**obj["config"])
    soc_rec = obj["soc"]
    # pre-registry artifacts carry no "platform" record: they are by
    # construction stock-diana files
    plat_rec = obj.get("platform") or {"name": "diana"}
    plat_name = plat_rec.get("name", "diana")
    if expected_platform is not None and plat_name != expected_platform:
        raise ArtifactError(
            f"[V-ART-012] artifact {obj.get('model')!r} was packed for "
            f"platform {plat_name!r} but this deployment expects "
            f"{expected_platform!r}; its tile configurations and memory "
            "plan are not valid here — recompile with "
            f"--platform {expected_platform}")
    params = DianaParams(**soc_rec["params"])
    if plat_name == "diana":
        soc: Platform = get_platform(
            "diana", params=params,
            enable_digital=soc_rec["enable_digital"],
            enable_analog=soc_rec["enable_analog"],
        )
    else:
        try:
            soc = get_platform(plat_name, params=params,
                               accelerators=plat_rec.get("accelerators"))
        except PlatformError as exc:
            raise ArtifactError(
                f"[V-ART-012] artifact {obj.get('model')!r} targets "
                f"platform {plat_name!r}, which is not registered in "
                f"this process ({exc}); import its plugin module or set "
                "REPRO_PLATFORMS before loading") from exc
    graph = graph_from_dict(obj["graph"])
    composites = graph.composites()

    steps = []
    for rec in obj["steps"]:
        idx = rec["composite"]
        if idx >= len(composites):
            raise ArtifactError(
                f"step {rec['name']}: composite index {idx} out of range "
                f"({len(composites)} composites in packed graph)")
        comp = composites[idx]
        if rec["kind"] == "cpu":
            steps.append(CpuKernelStep(
                name=rec["name"], input_names=list(rec["input_names"]),
                output_name=rec["output_name"], body=comp.body,
                signature=rec["signature"],
            ))
            continue
        if rec["kind"] != "accel":
            raise ArtifactError(f"unknown step kind {rec['kind']!r}")
        spec = layer_spec_of(comp, idx)
        if spec is None:
            raise ArtifactError(
                f"step {rec['name']}: packed composite no longer yields "
                "a layer spec")
        _check_spec(rec["name"], spec, rec["spec"])
        t = rec["tiling"]
        sol = TilingSolution(
            spec=spec,
            cfg=TileConfig(c_t=t["c_t"], k_t=t["k_t"],
                           oy_t=t["oy_t"], ox_t=t["ox_t"]),
            target=rec["target"],
            l1_in_bytes=t["l1_in_bytes"],
            l1_out_bytes=t["l1_out_bytes"],
            l1_weight_bytes=t["l1_weight_bytes"],
            objective=t["objective"],
            needs_tiling=t["needs_tiling"],
        )
        steps.append(AccelStep(
            name=rec["name"], input_names=list(rec["input_names"]),
            output_name=rec["output_name"], accel_target=rec["target"],
            spec=spec, tiling=sol,
        ))

    buffers = {
        name: BufferSpec(name, TensorType(tuple(b["shape"]),
                                          _dtype(b["dtype"])))
        for name, b in obj["buffers"].items()
    }
    plan_rec = obj["memory_plan"]
    plan = MemoryPlan(
        offsets=dict(plan_rec["offsets"]),
        sizes=dict(plan_rec["sizes"]),
        lifetimes={n: TensorLife(n, size, start, end)
                   for n, (size, start, end)
                   in plan_rec["lifetimes"].items()},
        arena_bytes=plan_rec["arena_bytes"],
        reuse=plan_rec["reuse"],
    )
    decisions = [DispatchDecision(**d) for d in obj.get("decisions", [])]
    df_chains = [DepthFirstChain(
        start=c["start"], length=c["length"],
        patch_grid=tuple(c["patch_grid"]),
        num_patches=c["num_patches"],
        peak_bytes=c["peak_bytes"],
        patch_buffer_bytes=c["patch_buffer_bytes"],
        per_layer_patch_bytes=list(c["per_layer_patch_bytes"]),
        recompute_factor=c["recompute_factor"],
        per_layer_recompute=list(c["per_layer_recompute"]),
    ) for c in obj.get("depthfirst", [])]

    model = CompiledModel(
        name=obj["model"], config_name=config.name, steps=steps,
        buffers=buffers, input_names=list(obj["input_names"]),
        output_name=obj["output_name"], memory_plan=plan,
        size=SizeBreakdown(**obj["size"]),
        c_sources=dict(obj.get("c_sources", {})),
        dispatch_decisions=decisions, graph=graph,
        depthfirst_chains=df_chains, platform=plat_name,
    )

    fingerprint = model.fingerprint()
    if fingerprint != obj["fingerprint"]:
        raise ArtifactError(
            f"{model.name}: artifact fingerprint mismatch "
            f"(stored {obj['fingerprint'][:12]}, "
            f"reconstructed {fingerprint[:12]}) — file is corrupt")

    # the diana payload predates the platform record and must keep
    # hashing to the historical serving keys; other platforms fold
    # their identity in so two platforms never alias one deployment
    fp_payload = obj["config_fingerprint"] + json.dumps(soc_rec,
                                                        sort_keys=True)
    if plat_name != "diana":
        fp_payload += json.dumps(plat_rec, sort_keys=True)
    deployment_fp = hashlib.sha256(fp_payload.encode()).hexdigest()
    return LoadedArtifact(
        model=model, soc=soc, config=config,
        config_fingerprint=obj["config_fingerprint"],
        fingerprint=fingerprint,
        deployment_fingerprint=deployment_fp,
        validation=obj.get("validation"),
        meta=obj.get("meta"),
    )


def save_artifact(path: str, compiled: CompiledModel, soc: Platform,
                  config: CompilerConfig,
                  validation: Optional[Dict] = None,
                  meta: Optional[Dict] = None) -> str:
    """Write one compiled deployment to ``path`` as a ``.dna`` file.

    Returns the artifact's content fingerprint. ``validation`` is an
    optional free-form record of a pack-time validation run (see
    :func:`pack_model`); loaders can use it to skip re-validation on
    the serving hot path. ``meta`` is free-form provenance (e.g. which
    zoo model / seed produced the graph) used by ``repro load
    --check`` to reproduce the fresh compile.
    """
    record = artifact_to_dict(compiled, soc, config, validation=validation,
                              meta=meta)
    with gzip.open(path, "wt", encoding="utf-8", compresslevel=6) as f:
        json.dump(record, f)
    return record["fingerprint"]


def load_artifact(path: str, verify: bool = False,
                  expected_platform: Optional[str] = None) -> LoadedArtifact:
    """Read a ``.dna`` file back into an executable deployment.

    Skips compilation entirely: no pattern matching, mapping search,
    DORY tiling or memory planning runs. Raises
    :class:`~repro.errors.ArtifactError` on any integrity failure —
    including, when ``expected_platform`` is given, a ``V-ART-012``
    rejection of files packed for a different registered platform.

    With ``verify=True`` the static checkers additionally gate the
    load: the raw container is schema-checked before reconstruction
    and the reconstructed deployment runs the graph / memory-plan /
    compiled-plan verifiers (see :mod:`repro.verify`); any
    error-severity diagnostic raises :class:`ArtifactError`.
    """
    try:
        with gzip.open(path, "rt", encoding="utf-8") as f:
            obj = json.load(f)
    except (OSError, ValueError, EOFError, zlib.error) as exc:
        raise ArtifactError(f"cannot read artifact {path!r}: {exc}") from exc
    if not verify:
        return artifact_from_dict(obj, expected_platform=expected_platform)

    from ..verify import check_artifact_dict, verify_model

    shallow = [d for d in check_artifact_dict(obj, deep=False)
               if d.severity.value == "error"]
    if shallow:
        raise ArtifactError(
            f"artifact {path!r} failed static checks:\n"
            + "\n".join(d.render() for d in shallow))
    art = artifact_from_dict(obj, expected_platform=expected_platform)
    result = verify_model(art.model, soc=art.soc, config=art.config)
    if not result.ok:
        raise ArtifactError(
            f"artifact {path!r} failed static checks:\n"
            + "\n".join(d.render() for d in result.errors))
    return art


def pack_model(graph, soc: Platform, config: CompilerConfig, path: str,
               validate_runs: int = 1,
               meta: Optional[Dict] = None) -> LoadedArtifact:
    """Compile ``graph`` and write the artifact in one step.

    With ``validate_runs > 0`` the fresh deployment is validated
    (bit-exact vs. the reference interpreter) before packing and the
    outcome is recorded in the artifact, so serving can trust the file
    without re-running the check. Returns the loaded-back artifact —
    the round trip doubles as an end-to-end integrity test.
    """
    from ..core.compiler import compile_model
    from ..runtime import validate_deployment

    compiled = compile_model(graph, soc, config)
    validation = None
    if validate_runs > 0:
        report = validate_deployment(compiled, soc, runs=validate_runs)
        if not report.passed:
            raise ArtifactError(
                f"{compiled.name}: refusing to pack an unvalidated "
                f"deployment ({report})")
        validation = {"runs": report.runs, "exact_runs": report.exact_runs,
                      "passed": True}
    save_artifact(path, compiled, soc, config, validation=validation,
                  meta=meta)
    return load_artifact(path)
