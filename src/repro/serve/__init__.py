"""Serving subsystem: compiled-artifact store + multi-model server.

Splits deployment into *compile once* (``pack_model`` /
``save_artifact`` produce a self-contained versioned ``.dna`` file)
and *serve many* (:class:`InferenceServer` hosts loaded artifacts with
per-model dynamic batching). See ``docs/SERVING.md``.
"""

from .artifact import (
    ARTIFACT_MAGIC, ARTIFACT_VERSION, LoadedArtifact, artifact_from_dict,
    artifact_to_dict, load_artifact, pack_model, save_artifact,
)
from .batcher import BatcherStats, DynamicBatcher, InferenceFuture
from .server import InferenceServer, ServerConfig

__all__ = [
    "ARTIFACT_MAGIC", "ARTIFACT_VERSION", "LoadedArtifact",
    "artifact_from_dict", "artifact_to_dict", "load_artifact",
    "pack_model", "save_artifact",
    "BatcherStats", "DynamicBatcher", "InferenceFuture",
    "InferenceServer", "ServerConfig",
]
