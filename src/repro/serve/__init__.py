"""Serving subsystem: compiled-artifact store + two serving tiers.

Splits deployment into *compile once* (``pack_model`` /
``save_artifact`` produce a self-contained versioned ``.dna`` file)
and *serve many*:

* :class:`InferenceServer` — in-process, thread-based, per-model
  dynamic batching (low overhead, shared fate);
* :class:`ServingFleet` — supervised multi-process worker pool with
  admission control, deadlines, retries, circuit breaking and chaos
  testing (``serve.faults``) for deployment-grade robustness.

See ``docs/SERVING.md`` and ``docs/RESILIENCE.md``.
"""

from .artifact import (
    ARTIFACT_MAGIC, ARTIFACT_VERSION, LoadedArtifact, artifact_from_dict,
    artifact_to_dict, load_artifact, pack_model, save_artifact,
)
from .batcher import BatcherStats, DrainReport, DynamicBatcher, InferenceFuture
from .faults import FAULT_KINDS, FaultInjector, FaultPlan, FaultRule, \
    corrupt_artifact
from .fleet import FleetConfig, FleetFuture, ServingFleet
from .resilience import (
    BREAKER_CLOSED, BREAKER_HALF_OPEN, BREAKER_OPEN, CircuitBreaker,
    CrashLoopBackoff, RetryPolicy,
)
from .server import InferenceServer, ServerConfig

__all__ = [
    "ARTIFACT_MAGIC", "ARTIFACT_VERSION", "LoadedArtifact",
    "artifact_from_dict", "artifact_to_dict", "load_artifact",
    "pack_model", "save_artifact",
    "BatcherStats", "DrainReport", "DynamicBatcher", "InferenceFuture",
    "InferenceServer", "ServerConfig",
    "FleetConfig", "FleetFuture", "ServingFleet",
    "FaultPlan", "FaultRule", "FaultInjector", "FAULT_KINDS",
    "corrupt_artifact",
    "RetryPolicy", "CircuitBreaker", "CrashLoopBackoff",
    "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN",
]
