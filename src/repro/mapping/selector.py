"""Rule-based target selection across multiple accelerators.

"If a pattern satisfies all rules of one of the accelerators, the
operations will be offloaded to it ... When multiple accelerators on
the platform can execute the pattern, the flow selects the one best
optimized for that given operation. This choice is based on factors
like bit widths, layer geometries, or other user-defined parameters."
(paper Sec. III-A)

On DIANA the bit-width of the weights decides: 8-bit goes to the
digital core, ternary to the analog core (Sec. III-C). The *mixed*
deployments of Table I arise from mixed-precision models (first/last
accelerator-eligible layers and depthwise layers in 8-bit, the rest
ternary), so the same weight-dtype rule produces the paper's mixed
mapping — the selector itself stays model-agnostic.

This is the ``mapping_strategy="rules"`` seed policy; the cost-driven
alternatives live in :mod:`repro.mapping.engine`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..ir import Composite, Graph, Node
from .rules import DispatchDecision, dispatchable_layers


def _prefer_by_bit_width(spec, accepted: List[str]) -> str:
    """DIANA's selection rule: weight precision picks the core."""
    if spec.kind != "add":
        if spec.weight_dtype == "ternary" and "soc.analog" in accepted:
            return "soc.analog"
        if spec.weight_dtype == "int8" and "soc.digital" in accepted:
            return "soc.digital"
    # adds: co-locate with whichever core is present, digital first
    for name in ("soc.digital", "soc.analog"):
        if name in accepted:
            return name
    return accepted[0]


def rules_target(spec, accepted: List[str]) -> str:
    """The complete rules policy for one layer: CPU fallback + prefer.

    The single source of truth shared by :func:`assign_targets` and
    the cost-driven engine's rules baseline
    (:func:`repro.mapping.engine.analyze_mapping`), so the two can
    never diverge (the CI drift gate fingerprints the engine path).
    """
    if spec is None or not accepted:
        return "cpu"
    return _prefer_by_bit_width(spec, accepted)


def retarget_composites(graph: Graph, target_of: Dict[int, str]) -> Graph:
    """Rebuild ``graph`` with composite targets set from ``target_of``."""

    def rewriter(node: Node, new_inputs):
        if isinstance(node, Composite) and node.node_id in target_of:
            return Composite(node.pattern_name, node.body, new_inputs,
                             target=target_of[node.node_id])
        return None

    return graph.rewrite(rewriter)


def assign_targets(
    graph: Graph,
    soc,
    prefer: Optional[Callable] = None,
) -> tuple:
    """Assign each pattern-matched composite to an accelerator or the CPU.

    Args:
        graph: a partitioned graph (composites present).
        soc: the platform model (capability rules).
        prefer: optional override of the multi-accelerator choice;
            signature ``prefer(spec, accepted_names) -> name``. When
            not given, a registered platform's own ``prefer`` hook
            (``PlatformSpec.prefer``, paper "component 2") applies;
            platforms without one use DIANA's bit-width rule.

    Returns:
        (new_graph, decisions): the graph with composite targets set and
        the list of :class:`DispatchDecision` records.
    """
    prefer = prefer or getattr(soc, "prefer", None) or _prefer_by_bit_width
    decisions: List[DispatchDecision] = []
    target_of: Dict[int, str] = {}

    for comp, spec, eligibility, spec_error in dispatchable_layers(graph, soc):
        accepted = [n for n, reason in eligibility.items() if reason == ""]
        rejections = {n: r for n, r in eligibility.items() if r}
        if prefer is _prefer_by_bit_width:
            target = rules_target(spec, accepted)
        elif spec is None or not accepted:
            target = "cpu"
        else:
            target = prefer(spec, accepted)
        target_of[comp.node_id] = target
        decisions.append(DispatchDecision(
            layer_name=spec.name if spec else comp.pattern_name,
            pattern=comp.pattern_name,
            target=target,
            candidates=accepted,
            rejections=rejections,
            spec_error=spec_error,
        ))

    return retarget_composites(graph, target_of), decisions


def format_columns(headers: List[str], rows: List[list]) -> str:
    """Left-aligned text table with content-adaptive column widths.

    The sizing logic behind :func:`dispatch_summary`, shared with other
    tabular CLI output (e.g. ``repro models``).
    """
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    for row in rows:
        lines.append("  ".join(
            c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def dispatch_summary(decisions: List[DispatchDecision]) -> str:
    """A table of layer -> target with per-candidate costs and reasons.

    Column widths adapt to the content (long layer names no longer
    break the alignment); the cost column appears only when at least
    one decision carries modeled costs (cost-driven strategies).
    """
    with_costs = any(d.costs for d in decisions)
    headers = ["layer", "pattern", "target"]
    if with_costs:
        headers.append("cost (objective units)")
    headers.append("why not offloaded")

    rows = []
    for d in decisions:
        row = [d.layer_name, d.pattern, d.target]
        if with_costs:
            row.append(", ".join(
                f"{t}={c:.0f}" if c != float("inf") else f"{t}=inf"
                for t, c in sorted(d.costs.items())))
        row.append(d.fallback_reason or "; ".join(
            f"{k}: {v}" for k, v in d.rejections.items()))
        rows.append(row)

    return format_columns(headers, rows)
